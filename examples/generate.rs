//! Streaming KV-cache generation through a [`DecodeSession`]: prefill a
//! prompt once, keep each layer's K/V cache resident in its arena slab,
//! and decode one column per token — bitwise identical to re-running the
//! full forward over the growing prefix, at zero heap allocations per
//! steady-state step.
//!
//! ```text
//! cargo run --release --example generate
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use substation::dataflow::EncoderDims;
use substation::transformer::decode::{DecodeOptions, DecodeSession, Sampling};
use substation::transformer::model::{BlockKind, ModelConfig, TransformerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig {
        dims: EncoderDims {
            b: 2,
            j: 48,
            k: 48,
            h: 2,
            p: 8,
            i: 16,
            u: 32,
        },
        layers: 2,
        vocab: 32,
        block: BlockKind::Decoder,
        dropout_p: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let model = TransformerModel::init(config, &mut rng)?;
    println!(
        "decoder stack: {} layers, vocab {}, {} parameters",
        config.layers,
        config.vocab,
        model.num_parameters()
    );

    let prompt: Vec<Vec<usize>> = vec![vec![3, 1, 4, 1, 5], vec![2, 7, 1, 8, 2]];
    let steps = 24;

    // Deterministic sampling: `Temperature` draws exactly one f32 per
    // batch row per token, so the stream is reproducible from the seed
    // alone — independent of thread count or cache-bucket geometry.
    let opts = DecodeOptions {
        seed: 0xdec0de,
        ..DecodeOptions::default()
    };
    let mut session = DecodeSession::new(&model, opts)?;
    let t = std::time::Instant::now();
    let generated = session.generate(
        &prompt,
        steps,
        Sampling::Temperature {
            temperature: 0.8,
            top_k: Some(8),
        },
    )?;
    let elapsed = t.elapsed().as_secs_f64();

    for (b, (p, g)) in prompt.iter().zip(&generated).enumerate() {
        println!("row {b}: prompt {p:?} → {g:?}");
    }
    println!(
        "\n{} tokens in {:.1} ms ({:.0} tokens/s), {} resident positions \
         of capacity {}, {:.1} KiB resident cache arenas",
        steps * config.dims.b,
        elapsed * 1e3,
        (steps * config.dims.b) as f64 / elapsed,
        session.len(),
        session.capacity(),
        session.resident_bytes() as f64 / 1024.0,
    );

    // The same prompt under greedy decoding touches the RNG not at all —
    // two sessions agree token-for-token.
    let mut a = DecodeSession::new(&model, DecodeOptions::default())?;
    let mut b = DecodeSession::new(&model, DecodeOptions::default())?;
    let ga = a.generate(&prompt, steps, Sampling::Greedy)?;
    let gb = b.generate(&prompt, steps, Sampling::Greedy)?;
    assert_eq!(ga, gb, "greedy decoding is deterministic");
    println!("greedy decode reproduces exactly: {:?}…", &ga[0][..8]);
    Ok(())
}
