//! Quickstart: the full data-movement optimization recipe on a BERT-large
//! encoder layer, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the four steps of the paper's recipe (Sec. III): dataflow
//! analysis, fusion, layout sweeps, and global configuration selection —
//! then compares the assembled implementation against the PyTorch-model
//! baseline.

use substation::core::recipe::{optimize_encoder, RecipeOptions};
use substation::dataflow::{analysis, build, EncoderDims, OpClass};
use substation::gpusim::framework::{execute, FrameworkPolicy};
use substation::gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();

    // Step 1 — dataflow analysis: build the training graph and look at
    // where the flop and the data movement live.
    let enc = build::encoder(&dims);
    println!("step 1: dataflow analysis");
    println!("  operators          : {}", enc.graph.ops().len());
    for share in analysis::class_shares(&enc.graph) {
        println!(
            "  {} {:<26} {:6.2}% of flop, {:5.1}% of data movement",
            share.class.glyph(),
            share.class.to_string(),
            share.flop_pct,
            share.io_pct
        );
    }
    println!(
        "  → tensor contractions do ~all the flop, but most data movement\n\
         \u{20}   happens elsewhere: training is memory-bound.\n"
    );

    // Steps 2-4 — fusion, exhaustive layout sweeps, shortest-path global
    // configuration selection. `optimize_encoder` runs them all.
    let plan = optimize_encoder(&device, &dims, &RecipeOptions::default())?;
    println!("steps 2-4: fuse → sweep → select");
    println!(
        "  fused kernels      : {} (from {} operators)",
        plan.graph.ops().len(),
        enc.graph.ops().len()
    );
    println!(
        "  data movement      : −{:.1}% vs the unfused graph",
        plan.movement_reduction_pct
    );
    println!(
        "  layout selection   : {:.1}% above the per-op lower bound, {} transposes",
        100.0 * (plan.selection.total_us / plan.selection.per_op_best_us - 1.0),
        plan.selection.transposes
    );
    println!(
        "  optimized encoder  : {:.2} ms forward, {:.2} ms backward\n",
        plan.forward_us / 1000.0,
        plan.backward_us / 1000.0
    );

    // Compare against the eager-framework baseline.
    let pt = execute(&enc.graph, &device, &FrameworkPolicy::pytorch())?;
    println!("baseline comparison (modelled V100):");
    println!("  PyTorch model      : {:.2} ms", pt.total_us / 1000.0);
    println!("  ours               : {:.2} ms", plan.total_us() / 1000.0);
    println!(
        "  speedup            : {:.2}×  (paper: 1.30×)",
        pt.total_us / plan.total_us()
    );

    // Where did the time go? The paper's MUE-vs-%peak bottleneck ranking:
    println!("\nslowest kernels after optimization (MUE > %peak ⇒ memory-bound):");
    for b in substation::core::report::bottlenecks(&device, &plan)
        .iter()
        .take(5)
    {
        println!(
            "  {:<12} {:7.0} µs ({:4.1}%)  {} MUE {:>4.0} vs {:4.1}% peak → {}",
            b.name,
            b.time_us,
            b.share_pct,
            b.class.glyph(),
            b.mue,
            b.pct_peak,
            if b.memory_bound {
                "memory-bound"
            } else {
                "compute-bound"
            }
        );
    }
    let _ = OpClass::TensorContraction;
    Ok(())
}
