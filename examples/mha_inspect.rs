//! Inspect multi-head attention: dataflow annotations (Fig. 1) plus a real
//! CPU execution of general attention.
//!
//! ```text
//! cargo run --release --example mha_inspect
//! ```

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::dataflow::{analysis, build, EncoderDims};
use substation::tensor::{Shape, Tensor};
use substation::transformer::mha::{mha_backward, mha_forward};
use substation::transformer::params::EncoderWeights;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the dataflow view (Fig. 1b) at paper scale ---
    let paper = EncoderDims::bert_large();
    let g = build::mha_forward(&paper);
    println!("MHA dataflow at BERT-large scale (Fig. 1b):");
    for a in analysis::annotate(&g) {
        println!(
            "  {:<14} {}  {:>8.3} Gflop  {:>7.1} flop/word",
            a.name,
            a.class.glyph(),
            a.flop as f64 / 1_073_741_824.0,
            a.flop_per_word()
        );
    }
    println!(
        "\nEvery edge of this graph is exact data movement; the flop/word column\n\
         is what separates compute-bound contractions from memory-bound rest.\n"
    );

    // --- a real execution at CPU scale (general attention: distinct q/k/v) ---
    let dims = EncoderDims {
        b: 2,
        j: 12,
        k: 10, // encoder/decoder attention: different key length
        h: 4,
        p: 8,
        i: 32,
        u: 64,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let w = EncoderWeights::init(&dims, &mut rng);
    let sizes = dims.size_table();
    let q = Tensor::random(
        Shape::from_spec("ibj", &sizes)?,
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    let k = Tensor::random(
        Shape::from_spec("ibk", &sizes)?,
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    let v = Tensor::random(
        Shape::from_spec("ibk", &sizes)?,
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    let (out, acts) = mha_forward(&dims, &q, &k, &v, &w, 0.1, &mut rng)?;
    println!(
        "real CPU general attention (J={} queries over K={} keys):",
        dims.j, dims.k
    );
    println!("  output shape       : {}", out.shape());
    println!(
        "  attention row sums : {:.4} (softmax over keys)",
        (0..dims.k)
            .map(|kk| acts.sm.softmax.at(&[0, 0, 0, kk]))
            .sum::<f32>()
    );
    let dropped = acts.sm.mask.data().iter().filter(|&&m| m == 0.0).count();
    println!(
        "  dropout            : {:.1}% of attention weights dropped",
        100.0 * dropped as f32 / acts.sm.mask.len() as f32
    );
    let grads = mha_backward(&dims, &out, &w, &acts)?;
    println!(
        "  input gradients    : dq {}, dk {}, dv {}",
        grads.dq.shape(),
        grads.dk.shape(),
        grads.dv.shape()
    );
    Ok(())
}
