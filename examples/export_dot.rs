//! Export the paper's dataflow graphs as Graphviz DOT files.
//!
//! ```text
//! cargo run --release --example export_dot
//! dot -Tsvg mha.dot -o mha.svg        # if graphviz is installed
//! ```
//!
//! Writes `mha.dot` (Fig. 1b), `encoder.dot` (Fig. 2) and
//! `encoder_fused.dot` (the graph after the fusion pass) to the current
//! directory. Saved tensors are dashed, weights dotted, operators boxed
//! with their class glyph, and every edge is labelled with its exact
//! data-movement volume.

use std::fs;

use substation::core::fusion::{apply_plan, encoder_fusion_plan};
use substation::dataflow::{build, EncoderDims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();

    let mha = build::mha_forward(&dims);
    fs::write("mha.dot", mha.to_dot("MHA forward (Fig. 1b)"))?;

    let enc = build::encoder(&dims);
    fs::write(
        "encoder.dot",
        enc.graph.to_dot("BERT encoder fwd+bwd (Fig. 2)"),
    )?;

    let mut fused = build::encoder(&dims).graph;
    apply_plan(&mut fused, &encoder_fusion_plan())?;
    fs::write(
        "encoder_fused.dot",
        fused.to_dot("BERT encoder after fusion"),
    )?;

    for f in ["mha.dot", "encoder.dot", "encoder_fused.dot"] {
        let bytes = fs::metadata(f)?.len();
        println!("wrote {f} ({bytes} bytes)");
    }
    println!(
        "\nunfused encoder: {} operators, {:.0} Mwords moved\n\
         fused encoder  : {} operators, {:.0} Mwords moved",
        enc.graph.ops().len(),
        enc.graph.total_io_words() as f64 / 1e6,
        fused.ops().len(),
        fused.total_io_words() as f64 / 1e6,
    );
    Ok(())
}
