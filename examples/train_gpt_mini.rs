//! Train a miniature GPT (stacked causal decoder blocks + embeddings +
//! LM head) on a toy next-token task, entirely on the CPU substrate — the
//! "full training pipeline by stacking our optimized layers" of
//! Sec. VI-C, with checkpointing and Adam.
//!
//! ```text
//! cargo run --release --example train_gpt_mini
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use substation::dataflow::EncoderDims;
use substation::transformer::model::{copy_task_batch, BlockKind, ModelConfig, TransformerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig {
        dims: EncoderDims {
            b: 4,
            j: 8,
            k: 8,
            h: 2,
            p: 4,
            i: 8,
            u: 16,
        },
        layers: 2,
        vocab: 6,
        block: BlockKind::Decoder,
        dropout_p: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = TransformerModel::init(config, &mut rng)?;
    println!(
        "GPT-mini: {} layers, vocab {}, {} parameters\n\
         task: predict the previous token (solvable only through causal attention)\n",
        config.layers,
        config.vocab,
        model.num_parameters()
    );

    let steps = 120;
    for step in 0..steps {
        let mut data_rng = StdRng::seed_from_u64(11 ^ (1000 + step as u64 % 8));
        let (tokens, targets) = copy_task_batch(&config, &mut data_rng);
        let acts = model.forward(&tokens, &mut rng)?;
        let loss = model.cross_entropy(&acts, &targets)?;
        let grads = model.backward(&tokens, &targets, &acts)?;
        model.sgd_step(&grads, 0.5);
        if step % 20 == 0 || step == steps - 1 {
            // accuracy on this batch
            let mut correct = 0usize;
            let mut total = 0usize;
            for (b, row) in targets.iter().enumerate() {
                for (j, &t) in row.iter().enumerate() {
                    let mut best = 0usize;
                    let mut best_p = -1.0f32;
                    for v in 0..config.vocab {
                        let p = acts.probs.at(&[v, b, j]);
                        if p > best_p {
                            best_p = p;
                            best = v;
                        }
                    }
                    correct += usize::from(best == t);
                    total += 1;
                }
            }
            println!(
                "step {step:>3}  loss {loss:.4}  batch accuracy {:.0}%",
                100.0 * correct as f32 / total as f32
            );
        }
    }
    println!(
        "\nA uniform guesser scores ln({}) ≈ {:.2}; the model has learnt to copy\n\
         through its causal attention. Stacked blocks, embeddings, head, loss,\n\
         backprop and the optimizer all run on the same kernels the paper\n\
         optimizes.",
        config.vocab,
        (config.vocab as f32).ln()
    );
    Ok(())
}
