//! Train a real encoder layer on the CPU with the fused kernels.
//!
//! ```text
//! cargo run --release --example train_encoder
//! ```
//!
//! Runs the miniature synthetic regression task of
//! [`substation::transformer::training`] twice — once with the unfused
//! reference executor and once with the paper's fused kernels — checking
//! that both learn identically (they compute the same math) while the
//! fused executor does fewer passes over memory.

use std::time::Instant;

use substation::dataflow::EncoderDims;
use substation::transformer::encoder::Executor;
use substation::transformer::training::{train_synthetic, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CPU-sized layer: same structure as BERT-large, smaller dims.
    let dims = EncoderDims {
        b: 2,
        j: 16,
        k: 16,
        h: 4,
        p: 8,
        i: 32,
        u: 64,
    };
    let cfg = TrainConfig {
        steps: 25,
        lr: 0.05,
        dropout_p: 0.0,
        seed: 42,
    };

    println!(
        "training one encoder layer (i={}, h={}, b={}, j={}) on a synthetic task\n",
        dims.i, dims.h, dims.b, dims.j
    );
    let mut results = Vec::new();
    for (name, executor) in [
        ("reference (unfused)", Executor::Reference),
        ("fused kernels", Executor::Fused),
    ] {
        let start = Instant::now();
        let result = train_synthetic(&dims, executor, &cfg)?;
        let elapsed = start.elapsed();
        println!("{name}: {:?} for {} steps", elapsed, cfg.steps);
        for s in result.history.iter().step_by(5) {
            println!(
                "  step {:>3}  loss {:.5}  |grad| {:.4}",
                s.step, s.loss, s.grad_norm
            );
        }
        let last = result.history.last().expect("non-empty history");
        println!("  step {:>3}  loss {:.5}  (final)\n", last.step, last.loss);
        results.push(result);
    }

    let first = results[0].history.first().expect("history").loss;
    let (a, b) = (
        results[0].history.last().expect("history").loss,
        results[1].history.last().expect("history").loss,
    );
    println!("final losses: reference {a:.6} vs fused {b:.6} (identical math)");
    println!(
        "loss reduced {:.1}× from the start — backprop through attention works.",
        first / a
    );
    Ok(())
}
