//! Data-layout tuning, both simulated and for real.
//!
//! ```text
//! cargo run --release --example layout_tuning
//! ```
//!
//! Part 1 sweeps the layout configuration space of the fused `SM`
//! (scale+softmax+dropout) kernel through the V100 model, reproducing the
//! Fig. 5 methodology for one kernel. Part 2 demonstrates the same
//! phenomenon *on this machine*: the CPU softmax kernel is timed with the
//! reduction axis contiguous vs maximally strided.

use std::time::Instant;

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::core::fusion::{apply_plan, encoder_fusion_plan};
use substation::core::sweep::{sweep_op, SimulatorSource, SweepOptions};
use substation::dataflow::{build, EncoderDims};
use substation::tensor::ops::softmax::softmax;
use substation::tensor::{Axis, Layout, Shape, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: simulated exhaustive sweep (the paper's Step 3) ---
    let dims = EncoderDims::bert_large();
    let mut g = build::encoder(&dims).graph;
    apply_plan(&mut g, &encoder_fusion_plan())?;
    let sm = g.op_by_name("SM").expect("fused graph has SM");
    let sweep = sweep_op(&SimulatorSource::default(), &g, sm, SweepOptions::default())?;
    println!(
        "SM kernel layout sweep on the V100 model ({} configurations):",
        sweep.times_us.len()
    );
    println!(
        "  best  : {:8.0} µs   ({} → {}, vectorize {:?}, warp {:?})",
        sweep.best.time_us,
        sweep.best.cfg.in_spec,
        sweep.best.cfg.out_spec,
        sweep.best.cfg.vector_axis,
        sweep.best.cfg.warp_axis,
    );
    println!(
        "  worst : {:8.0} µs   ({:.0}× worse — the Fig. 5 long tail)",
        sweep.worst_us,
        sweep.worst_us / sweep.best.time_us
    );

    // --- Part 2: the same effect, measured on this CPU ---
    let shape = Shape::new([('h', 8), ('b', 4), ('j', 128), ('k', 128)])?;
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let good = x.relayout(&Layout::from_axis_order(&shape, "hbjk")?); // k contiguous
    let bad = x.relayout(&Layout::from_axis_order(&shape, "kjbh")?); // k stride = 4096

    let time = |t: &Tensor| -> (f64, f32) {
        // warm up, then measure several repetitions
        let mut sink = 0.0f32;
        let _ = softmax(t, Axis('k')).expect("softmax");
        let reps = 20;
        let start = Instant::now();
        for _ in 0..reps {
            let y = softmax(t, Axis('k')).expect("softmax");
            sink += y.data()[0];
        }
        (start.elapsed().as_secs_f64() * 1e3 / reps as f64, sink)
    };
    let (t_good, s1) = time(&good);
    let (t_bad, s2) = time(&bad);
    println!(
        "\nreal CPU softmax over k ({} elements):",
        shape.num_elements()
    );
    println!("  k contiguous (layout hbjk): {t_good:.2} ms");
    println!(
        "  k strided    (layout kjbh): {t_bad:.2} ms   ({:.1}× slower)",
        t_bad / t_good
    );
    println!(
        "\nSame lesson on both substrates: layout choice changes kernel time by\n\
         large factors, and the best layout is found by measuring, not guessing."
    );
    let _ = (s1, s2);
    Ok(())
}
