//! Cross-crate equivalence of the plan-driven execution engine: a plan
//! lowered from the full recipe (fuse → sweep → SSSP select) produces the
//! same encoder output as the reference executor; the certified
//! wave-parallel interpreter is bitwise-equal to the serial one on that
//! same recipe-selected plan; arbitrary layout perturbations survive
//! `reflow` unchanged in value; and malformed plans are rejected by the
//! static analyzer before any kernel runs. All runs go through the single
//! unified `forward(&x, &w, &ExecOptions)` entry point, with plans
//! substituted via [`substation::core::plan::PlanOverride`].

use proptest::prelude::*;
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::core::analyze::{PlanLint, Severity};
use substation::core::plan::{ExecOptions, ExecutionPlan, PlanOverride};
use substation::core::sanitize::certify;
use substation::core::selection::select_forward;
use substation::core::sweep::{sweep_all, SimulatorSource, SweepOptions};
use substation::dataflow::EncoderDims;
use substation::gpusim::DeviceSpec;
use substation::tensor::{Shape, Tensor};
use substation::transformer::encoder::{EncoderLayer, Executor};
use substation::transformer::interp;
use substation::transformer::params::EncoderWeights;

fn is_error_clean(plan: &ExecutionPlan, graph: &substation::dataflow::Graph) -> bool {
    plan.check(graph)
        .iter()
        .all(|l| l.severity() != Severity::Error)
}

fn dims() -> EncoderDims {
    EncoderDims {
        b: 2,
        j: 8,
        k: 8,
        h: 2,
        p: 4,
        i: 8,
        u: 12,
    }
}

fn inputs(dims: &EncoderDims, seed: u64) -> (Tensor, EncoderWeights) {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = EncoderWeights::init(dims, &mut rng);
    let x = Tensor::random(
        Shape::from_spec("ibj", &dims.size_table()).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    (x, w)
}

fn opts(seed: u64) -> ExecOptions<'static> {
    ExecOptions::builder().seed(seed).build()
}

/// The reference executor's output for the given input (dropout off).
fn reference_y(dims: &EncoderDims, x: &Tensor, w: &EncoderWeights) -> Tensor {
    let layer = EncoderLayer::new(*dims, Executor::Reference, 0.0);
    layer.forward(x, w, &opts(3)).expect("reference forward").y
}

#[test]
fn recipe_lowered_plan_matches_reference_executor() {
    let dims = dims();
    let planned = interp::encoder_fused(&dims).unwrap();
    let fwd: Vec<_> = planned.plan.steps.iter().map(|s| s.op).collect();
    let sweeps = sweep_all(
        &SimulatorSource::default(),
        &planned.graph,
        SweepOptions {
            max_configs: Some(400),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    let sel = select_forward(&planned.graph, &DeviceSpec::v100(), &fwd, &sweeps).unwrap();
    let plan = ExecutionPlan::lower(&planned.graph, &sel).unwrap();
    assert!(is_error_clean(&plan, &planned.graph));

    let (x, w) = inputs(&dims, 17);
    let y_ref = reference_y(&dims, &x, &w);
    let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
    let run = (opts(3))
        .to_builder()
        .plan(Some(PlanOverride {
            graph: &planned.graph,
            plan: &plan,
            cert: None,
        }))
        .build();
    let y_sel = layer.forward(&x, &w, &run).expect("plan-driven forward").y;
    // layouts may differ; max_abs_diff compares logical elements
    assert!(
        y_sel.max_abs_diff(&y_ref).unwrap() < 1e-4,
        "recipe-selected plan diverged from the reference executor"
    );
}

// Lowers the recipe-selected plan, certifies it, and checks the
// wave-parallel interpreter against the serial one at several thread
// counts — bitwise, on both the output values and its materialized
// layout. (Dropout is off, so no RNG stream is consumed and parallel
// execution must reproduce the serial run exactly.)
#[test]
fn parallel_execution_of_recipe_plan_is_bitwise_equal_to_serial() {
    let dims = dims();
    let planned = interp::encoder_fused(&dims).unwrap();
    let fwd: Vec<_> = planned.plan.steps.iter().map(|s| s.op).collect();
    let sweeps = sweep_all(
        &SimulatorSource::default(),
        &planned.graph,
        SweepOptions {
            max_configs: Some(400),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    let sel = select_forward(&planned.graph, &DeviceSpec::v100(), &fwd, &sweeps).unwrap();
    let plan = ExecutionPlan::lower(&planned.graph, &sel).unwrap();
    let cert = certify(&planned.graph, &plan).expect("the recipe-selected plan certifies");

    let (x, w) = inputs(&dims, 29);
    let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
    let over = PlanOverride {
        graph: &planned.graph,
        plan: &plan,
        cert: Some(&cert),
    };
    let serial = (opts(3)).to_builder().plan(Some(over)).build();
    let (y_serial, a_serial) = layer
        .forward(&x, &w, &serial)
        .expect("serial plan-driven forward")
        .into_pair()
        .unwrap();
    for threads in [1usize, 2, 4, 8] {
        let run = serial.to_builder().threads(threads).build();
        let (y_par, a_par) = layer
            .forward(&x, &w, &run)
            .expect("parallel plan-driven forward")
            .into_pair()
            .unwrap();
        assert_eq!(
            y_par.data(),
            y_serial.data(),
            "parallel output diverged at {threads} threads"
        );
        assert_eq!(y_par.layout(), y_serial.layout());
        assert_eq!(a_par.gam.data(), a_serial.gam.data());
        assert_eq!(a_par.ln1.ln_input.data(), a_serial.ln1.ln_input.data());
        assert_eq!(a_par.ln2.stats.mean, a_serial.ln2.stats.mean);
    }
}

/// Rotates `s` left by `n` — always a valid permutation of the layout.
fn rotate(s: &str, n: usize) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let n = n % chars.len();
    chars[n..].iter().chain(&chars[..n]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Any valid per-operand layout perturbation of the fused schedule,
    // repaired by `reflow`, executes to the reference output.
    #[test]
    fn perturbed_plans_execute_to_the_same_output(seed in 0u64..1_000) {
        let dims = dims();
        let planned = interp::encoder_fused(&dims).unwrap();
        let mut plan = planned.plan.clone();
        let mut twist = StdRng::seed_from_u64(seed);
        for step in &mut plan.steps {
            for o in step.inputs.iter_mut().chain(step.outputs.iter_mut()) {
                let n = rand::Rng::gen_range(&mut twist, 0..4usize);
                o.layout = rotate(&o.layout, n);
            }
        }
        plan.reflow(&planned.graph);
        prop_assert!(is_error_clean(&plan, &planned.graph));

        let (x, w) = inputs(&dims, seed ^ 0xABCD);
        let y_ref = reference_y(&dims, &x, &w);
        let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
        let run = (opts(3)).to_builder()
            .plan(Some(PlanOverride { graph: &planned.graph, plan: &plan, cert: None }))
            .build();
        let y = layer.forward(&x, &w, &run).expect("perturbed plan executes").y;
        prop_assert!(y.max_abs_diff(&y_ref).unwrap() < 1e-4);
    }
}

#[test]
fn invalid_plans_are_rejected_before_execution() {
    let dims = dims();
    let planned = interp::encoder_fused(&dims).unwrap();
    let (x, w) = inputs(&dims, 5);
    let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
    let run = |plan: &ExecutionPlan, x: &Tensor, w: &EncoderWeights| {
        let o = (opts(3))
            .to_builder()
            .plan(Some(PlanOverride {
                graph: &planned.graph,
                plan,
                cert: None,
            }))
            .build();
        layer.forward(x, w, &o).map(|out| out.y)
    };

    // a layout that is not a permutation of the container's axes
    let mut garbled = planned.plan.clone();
    garbled.steps[0].inputs[0].layout = "zz".into();
    assert!(garbled
        .check(&planned.graph)
        .iter()
        .any(|l| matches!(l, PlanLint::BadLayout { .. })));
    assert!(run(&garbled, &x, &w).is_err());

    // a schedule missing the producer of a consumed container
    let mut truncated = planned.plan.clone();
    let mid = truncated.steps.len() / 2;
    truncated.steps.remove(mid);
    assert!(!is_error_clean(&truncated, &planned.graph));
    assert!(run(&truncated, &x, &w).is_err());
}
