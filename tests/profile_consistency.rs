//! Cross-crate consistency of the runtime profiler: the bytes the
//! profiler charges each executed step must equal the static audit's
//! accounting *exactly* (same memlet words, same relayout traffic — the
//! measured MUE and the static MUE may then differ only in the bandwidth
//! term), and profile-guided re-selection must never adopt a plan that
//! measured slower than the natural one.

use substation::core::analyze::audit;
use substation::core::cpusource::CpuSource;
use substation::core::plan::{random_externals, ExecOptions};
use substation::core::profile::{profile_plan, reselect};
use substation::core::sweep::{SimulatorSource, SweepOptions};
use substation::dataflow::EncoderDims;
use substation::gpusim::DeviceSpec;
use substation::transformer::interp;

fn dims() -> EncoderDims {
    EncoderDims {
        b: 2,
        j: 8,
        k: 8,
        h: 2,
        p: 4,
        i: 8,
        u: 12,
    }
}

#[test]
fn profiler_bytes_equal_static_audit_exactly() {
    let pf = interp::cached_plan(&dims(), interp::PlanKind::EncoderFused).unwrap();
    let base = random_externals(&pf.graph, &pf.plan, 7).unwrap();
    let prof = profile_plan(&pf.graph, &pf.plan, &base, &ExecOptions::default(), 2).unwrap();
    let audited = audit(&pf.graph, &pf.plan, &DeviceSpec::v100());

    assert_eq!(prof.steps().count(), audited.per_step.len());
    for (sp, sa) in prof.steps().zip(&audited.per_step) {
        assert_eq!(sp.step, sa.step);
        assert_eq!(sp.name, sa.name, "step {} name", sp.step);
        assert_eq!(sp.class, sa.class, "step {} class", sp.step);
        assert_eq!(
            sp.read_words, sa.read_words,
            "step {} ({}) read words",
            sp.step, sp.name
        );
        assert_eq!(
            sp.write_words, sa.write_words,
            "step {} ({}) write words",
            sp.step, sp.name
        );
        assert_eq!(
            sp.relayout_words, sa.relayout_words,
            "step {} ({}) relayout words",
            sp.step, sp.name
        );
        assert_eq!(sp.flop, sa.flop, "step {} ({}) flop", sp.step, sp.name);
    }
    // plan-level totals follow from the per-step identity (the audit
    // prices bytes at the device's word size, the profiler at f32, so
    // compare words)
    let audited_words: u64 = audited
        .per_step
        .iter()
        .map(|s| s.read_words + s.write_words + s.relayout_words)
        .sum();
    assert_eq!(prof.total_bytes(), audited_words * 4);
    // and the MUE numerators agree — measured MUE differs from static
    // only via the bandwidth term
    let pm = prof.plan_mue();
    let am = &audited.plan_mue;
    assert_eq!(pm.q_words, am.q_words);
}

#[test]
fn reselection_never_measures_worse_than_natural() {
    let pf = interp::cached_plan(&dims(), interp::PlanKind::EncoderFused).unwrap();
    let fwd: Vec<_> = pf.plan.steps.iter().map(|s| s.op).collect();
    // simulator fallback keeps this deterministic and fast; the adoption
    // guard is what's under test, and it must hold for any fallback
    for run in 0..2u64 {
        let fallback: Box<dyn substation::core::sweep::PerfSource> = if run == 0 {
            Box::new(SimulatorSource::default())
        } else {
            Box::new(CpuSource::new(1))
        };
        let r = reselect(
            &pf.graph,
            &pf.plan,
            &fwd,
            &DeviceSpec::v100(),
            fallback.as_ref(),
            SweepOptions {
                max_configs: Some(24),
                ..SweepOptions::default()
            },
            &ExecOptions::default(),
            3,
            run + 1,
        )
        .unwrap();
        assert!(
            r.best_us() <= r.natural_us(),
            "run {run}: adopted {:.1} µs worse than natural {:.1} µs",
            r.best_us(),
            r.natural_us()
        );
        if r.adopted {
            assert!(r.reselected_us() <= r.natural_us());
        } else {
            assert!(r.reselected_us() > r.natural_us());
        }
    }
}
