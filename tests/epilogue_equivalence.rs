//! Equivalence of the GEMM-epilogue mega-kernel plans with their unfused
//! (element-wise-fused) counterparts: the epilogue plans must compute the
//! same function bitwise — same values, same dropout masks, same RNG draw
//! order — even though the contraction outputs they eliminate are never
//! materialized. Three layers of evidence:
//!
//! * a proptest drives the serial environment interpreter over both plans
//!   at random dims with dropout on and asserts every surviving container
//!   is bitwise-equal AND the dropout RNG streams end in the same state
//!   (proven by drawing from both after execution);
//! * the arena-routed layer forwards (`Executor::Epilogue`,
//!   `DecoderLayer::with_epilogue`) agree with the allocating environment
//!   interpreter bitwise when no RNG is drawn, at both granularities —
//!   CI runs this file under `XFORM_SANITIZE=1` so every slab access is
//!   shadow-checked;
//! * at sequence-length-dominant dims the epilogue arena slab is strictly
//!   smaller than the unfused one, because the eliminated intermediates
//!   no longer have a live interval at the peak.

use proptest::prelude::*;
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use substation::core::plan::{execute_plan, random_externals, ExecOptions, PlanOverride};
use substation::dataflow::{EncoderDims, OpKind};
use substation::tensor::{Shape, Tensor};
use substation::transformer::decoder::DecoderLayer;
use substation::transformer::encoder::{EncoderLayer, Executor};
use substation::transformer::interp;
use substation::transformer::params::EncoderWeights;

fn setup(dims: &EncoderDims) -> (EncoderWeights, Tensor) {
    let mut rng = StdRng::seed_from_u64(41);
    let w = EncoderWeights::init(dims, &mut rng);
    let x = Tensor::random(
        Shape::from_spec("ibj", &dims.size_table()).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    (w, x)
}

fn mega_steps(pf: &interp::PlannedForward) -> usize {
    pf.plan
        .steps
        .iter()
        .filter(|s| {
            matches!(
                pf.graph.op(s.op).map(|n| &n.kind),
                Some(OpKind::ContractionEpilogue { .. })
            )
        })
        .count()
}

#[test]
fn canned_epilogue_plans_lower_mega_kernel_steps() {
    let dims = EncoderDims::tiny();
    let enc = interp::cached_plan(&dims, interp::PlanKind::EncoderEpilogue).unwrap();
    let dec = interp::cached_plan(&dims, interp::PlanKind::DecoderEpilogue).unwrap();
    assert_eq!(mega_steps(&enc), 2, "encoder: QKT+SM and Linear 1+BRD");
    assert_eq!(
        mega_steps(&dec),
        4,
        "decoder: QKT+SM, Out+BDR, Linear 1+BRD, Linear 2+BDR2"
    );
    // the eliminated contraction outputs must be gone from the buffer set
    for (pf, interim) in [(&enc, "beta"), (&dec, "beta")] {
        assert!(
            !pf.plan
                .steps
                .iter()
                .flat_map(|s| s.inputs.iter().chain(s.outputs.iter()))
                .any(|o| o.name == *interim),
            "{interim} still referenced by the epilogue plan"
        );
    }
}

/// Runs a plan through the serial environment interpreter on the given
/// externals and returns the final container environment plus the RNG.
fn run_env(
    pf: &interp::PlannedForward,
    externals: &substation::core::plan::ExecState,
    dropout_p: f32,
) -> (substation::core::plan::ExecState, StdRng) {
    let mut state = substation::core::plan::ExecState {
        env: externals.env.clone(),
        ..Default::default()
    };
    let opts = ExecOptions::builder()
        .dropout_p(dropout_p)
        .scaler(0.5)
        .build();
    let mut rng = StdRng::seed_from_u64(97);
    execute_plan(&pf.graph, &pf.plan, &mut state, &opts, &mut rng).unwrap();
    (state, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Epilogue-fused == unfused bitwise at random dims, dropout on: every
    // container both plans materialize has identical bits, and both RNG
    // streams end in the same state (the mega-kernel draws the tail's
    // dropout mask in exactly the unfused order, no more, no fewer).
    #[test]
    fn epilogue_env_execution_is_bitwise_equal_at_random_dims(
        b in 1usize..3,
        j in 2usize..5,
        h in 1usize..3,
        p in 2usize..4,
        u in 4usize..7,
        seed in 0u64..1_000,
    ) {
        let (j, p, u) = (j * 2, 1 << p, u * 2);
        let drop_p = if seed % 2 == 0 { 0.0f32 } else { 0.3 };
        let dims = EncoderDims { b, j, k: j, h, p, i: h * p, u };
        for (fused, epilogue) in [
            (interp::encoder_fused(&dims), interp::encoder_epilogue(&dims)),
            (interp::decoder_fused(&dims), interp::decoder_epilogue(&dims)),
        ] {
            let (pf, pe) = (fused.unwrap(), epilogue.unwrap());
            prop_assert!(mega_steps(&pe) >= 2, "no mega-kernel lowered at {dims:?}");
            // both graphs share the same external set; generate once from
            // the epilogue plan so both runs see identical inputs
            let externals = random_externals(&pe.graph, &pe.plan, seed).unwrap();
            let (sf, mut rf) = run_env(&pf, &externals, drop_p);
            let (se, mut re) = run_env(&pe, &externals, drop_p);
            let mut shared = 0usize;
            for (name, tf) in &sf.env {
                if let Some(te) = se.env.get(name) {
                    prop_assert!(tf.data() == te.data(), "container {name} diverged");
                    shared += 1;
                }
            }
            prop_assert!(shared > externals.env.len(), "no produced container compared");
            for _ in 0..4 {
                prop_assert!(rf.next_u64() == re.next_u64(), "RNG streams diverged");
            }
        }
    }
}

#[test]
fn epilogue_arena_forward_matches_the_env_interpreter_bitwise_without_rng() {
    // With dropout off no RNG is drawn, so the arena-routed epilogue
    // forward and a PlanOverride forward (allocating env interpreter)
    // must agree bitwise — at both arena granularities. Under
    // XFORM_SANITIZE=1 every slab read/write is shadow-checked.
    let dims = EncoderDims::tiny();
    let (w, x) = setup(&dims);
    let enc = EncoderLayer::new(dims, Executor::Epilogue, 0.0);
    let dec = DecoderLayer::new(dims, 0.0).with_epilogue();
    let pe = interp::cached_plan(&dims, interp::PlanKind::EncoderEpilogue).unwrap();
    let pd = interp::cached_plan(&dims, interp::PlanKind::DecoderEpilogue).unwrap();
    for threads in [1usize, 4] {
        let arena_opts = ExecOptions::builder().threads(threads).build();
        for (tag, pf, arena_y) in [
            ("encoder", &pe, enc.forward(&x, &w, &arena_opts).unwrap().y),
            ("decoder", &pd, dec.forward(&x, &w, &arena_opts).unwrap().y),
        ] {
            let env_opts = ExecOptions::builder()
                .plan(Some(PlanOverride {
                    graph: &pf.graph,
                    plan: &pf.plan,
                    cert: Some(&pf.cert),
                }))
                .build();
            let env_y = match tag {
                "encoder" => enc.forward(&x, &w, &env_opts).unwrap().y,
                _ => dec.forward(&x, &w, &env_opts).unwrap().y,
            };
            assert_eq!(arena_y.data(), env_y.data(), "{tag} threads={threads}");
        }
    }
}

#[test]
fn epilogue_forward_equals_unfused_forward_without_rng() {
    // Dropout off: the epilogue executors compute the same function as
    // the element-wise-fused ones, bitwise, through the arena path.
    let dims = EncoderDims::tiny();
    let (w, x) = setup(&dims);
    let opts = ExecOptions::default();
    let y_fused = EncoderLayer::new(dims, Executor::Fused, 0.0)
        .forward(&x, &w, &opts)
        .unwrap()
        .y;
    let y_epi = EncoderLayer::new(dims, Executor::Epilogue, 0.0)
        .forward(&x, &w, &opts)
        .unwrap()
        .y;
    assert_eq!(y_fused.data(), y_epi.data(), "encoder");
    let y_fused = DecoderLayer::new(dims, 0.0)
        .forward(&x, &w, &opts)
        .unwrap()
        .y;
    let y_epi = DecoderLayer::new(dims, 0.0)
        .with_epilogue()
        .forward(&x, &w, &opts)
        .unwrap()
        .y;
    assert_eq!(y_fused.data(), y_epi.data(), "decoder");
}

#[test]
fn epilogue_dropout_is_thread_count_invariant_under_the_arena() {
    // The arena draws one RNG stream per step, so the epilogue plans'
    // dropout masks are a function of (seed, step) alone and survive any
    // worker count unchanged.
    let dims = EncoderDims::tiny();
    let (w, x) = setup(&dims);
    for p in [0.3f32, 0.5] {
        let layer = EncoderLayer::new(dims, Executor::Epilogue, p);
        let serial = layer
            .forward(&x, &w, &ExecOptions::builder().seed(23).build())
            .unwrap()
            .y;
        for threads in [2usize, 4] {
            let par = layer
                .forward(
                    &x,
                    &w,
                    &ExecOptions::builder().seed(23).threads(threads).build(),
                )
                .unwrap()
                .y;
            assert_eq!(serial.data(), par.data(), "p={p} threads={threads}");
        }
    }
}

#[test]
fn epilogue_arena_slab_is_smaller_at_sequence_dominant_dims() {
    // The eliminated intermediates (`beta`, `ff1`, ...) scale with j·k
    // while the end-of-plan resident set scales linearly in j, so once
    // the sequence length dominates, dropping their live intervals
    // strictly shrinks the slab high-water mark.
    let dims = EncoderDims {
        b: 2,
        j: 128,
        k: 128,
        h: 2,
        p: 8,
        i: 16,
        u: 32,
    };
    for (fused, epilogue) in [
        (
            interp::PlanKind::EncoderFused,
            interp::PlanKind::EncoderEpilogue,
        ),
        (
            interp::PlanKind::DecoderFused,
            interp::PlanKind::DecoderEpilogue,
        ),
    ] {
        for threads in [1usize, 4] {
            let gran = interp::granularity_for(threads);
            let sf = interp::cached_arena(&dims, fused, gran)
                .unwrap()
                .unwrap()
                .slab_words();
            let se = interp::cached_arena(&dims, epilogue, gran)
                .unwrap()
                .unwrap()
                .slab_words();
            assert!(
                se < sf,
                "{epilogue:?} slab {se} must be smaller than {fused:?} slab {sf} ({gran:?})"
            );
        }
    }
}
