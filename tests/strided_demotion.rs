//! The `StridedInnerLoop` demotion path, end to end: a deliberately
//! strided schedule (the softmax input's layout rotated so the reduce
//! axis is no longer innermost, plus random layout twists elsewhere)
//! loses its access license on the strided step — the interpreters must
//! demote it to the checked kernels — and the wave-parallel run of that
//! demoted plan must stay bitwise identical to the serial run at every
//! thread count. Dropout is off, so no RNG stream is consumed and any
//! divergence is a kernel-dispatch bug, not noise.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::core::access::certify_access;
use substation::core::analyze::{PlanLint, Severity};
use substation::core::plan::{ExecOptions, PlanOverride};
use substation::core::sanitize::certify;
use substation::dataflow::EncoderDims;
use substation::tensor::{Shape, Tensor};
use substation::transformer::encoder::{EncoderLayer, Executor};
use substation::transformer::interp;
use substation::transformer::params::EncoderWeights;

fn dims() -> EncoderDims {
    EncoderDims {
        b: 2,
        j: 8,
        k: 8,
        h: 2,
        p: 4,
        i: 8,
        u: 12,
    }
}

/// Rotates `s` right by one — the reduce axis stops being innermost.
fn rotate_right(s: &str) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    chars.rotate_right(1);
    chars.into_iter().collect()
}

/// Rotates `s` left by `n` — always a valid permutation of the layout.
fn rotate(s: &str, n: usize) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let n = n % chars.len();
    chars[n..].iter().chain(&chars[..n]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // A strided softmax input demotes the step to the checked kernels
    // (unlicensed, StridedInnerLoop warning), and the wave-parallel
    // interpreter of the demoted plan is bitwise-equal to the serial one.
    #[test]
    fn strided_plan_demotes_and_wave_parallel_matches_serial_bitwise(
        seed in 0u64..1_000,
        twist in 0u64..1_000,
    ) {
        let dims = dims();
        let planned = interp::encoder_fused(&dims).unwrap();
        let mut plan = planned.plan.clone();

        // force the demotion: the softmax input's reduce axis leaves the
        // innermost position, so its access path gains an inner stride
        let si = plan.steps.iter().position(|s| s.name == "SM").unwrap();
        plan.steps[si].inputs[0].layout = rotate_right(&plan.steps[si].inputs[0].layout);
        // and twist a few other operands for variety
        let mut r = StdRng::seed_from_u64(twist);
        for step in &mut plan.steps {
            for o in step.inputs.iter_mut().chain(step.outputs.iter_mut()) {
                let n = rand::Rng::gen_range(&mut r, 0..3usize);
                if n > 0 {
                    o.layout = rotate(&o.layout, n);
                }
            }
        }
        plan.reflow(&planned.graph);
        prop_assert!(plan
            .check(&planned.graph)
            .iter()
            .all(|l| l.severity() != Severity::Error));

        // the access certifier still certifies the plan (strided is a
        // warning, not an error) but refuses the strided step its
        // unchecked license — that's the demotion the interpreters obey
        let acc = certify_access(&planned.graph, &plan)
            .expect("a strided plan certifies with warnings");
        prop_assert!(
            acc.lints
                .iter()
                .any(|l| matches!(l, PlanLint::StridedInnerLoop { .. })),
            "the rotated layout must surface a StridedInnerLoop warning"
        );
        prop_assert!(
            !acc.licensed(si),
            "the strided softmax step must lose its unchecked license"
        );

        let cert = certify(&planned.graph, &plan).expect("race certification");
        let mut rng = StdRng::seed_from_u64(seed);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = Tensor::random(
            Shape::from_spec("ibj", &dims.size_table()).unwrap(),
            &rand::distributions::Uniform::new(-1.0, 1.0),
            &mut rng,
        );
        let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
        let over = PlanOverride {
            graph: &planned.graph,
            plan: &plan,
            cert: Some(&cert),
        };
        let serial = ExecOptions::builder().plan(Some(over)).seed(3).build();
        let y_serial = layer
            .forward(&x, &w, &serial)
            .expect("serial forward of the demoted plan")
            .y;
        for threads in [2usize, 4, 8] {
            let run = serial.to_builder().threads(threads).build();
            let y_par = layer
                .forward(&x, &w, &run)
                .expect("wave-parallel forward of the demoted plan")
                .y;
            prop_assert_eq!(y_par.data(), y_serial.data());
            prop_assert_eq!(y_par.layout(), y_serial.layout());
        }
    }
}
