//! Heap-allocation discipline of the arena interpreter: after one warmup
//! call has populated the plan and arena caches, every subsequent
//! `forward_into` — encoder and decoder, serial and wave-parallel —
//! executes out of the preallocated slab through the `*_into` kernels and
//! must touch the heap **not at all**. A counting global allocator makes
//! the claim falsifiable: any stray `Vec`, `String`, or `HashMap` rehash
//! on the steady-state path shows up as a nonzero event delta and fails
//! the test.
//!
//! Everything runs inside one `#[test]` function: the default harness
//! runs tests on separate threads, and the allocator counters are
//! process-wide, so splitting the cases would let one case's setup
//! allocations land inside another case's measured window.

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::core::plan::ExecOptions;
use substation::core::profile::CountingAlloc;
use substation::dataflow::EncoderDims;
use substation::tensor::{Shape, Tensor};
use substation::transformer::decode::{DecodeOptions, DecodeSession, Sampling};
use substation::transformer::decoder::DecoderLayer;
use substation::transformer::encoder::{EncoderLayer, Executor};
use substation::transformer::model::{BlockKind, ModelConfig, TransformerModel};
use substation::transformer::params::EncoderWeights;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const STEADY_CALLS: usize = 10;

/// Runs `STEADY_CALLS` forwards after warmup and returns the heap-event
/// delta across them (allocations + deallocations + reallocations).
fn steady_state_events(tag: &str, mut forward: impl FnMut(&mut Tensor), y: &mut Tensor) -> u64 {
    // Warmup: lowers the plan, compiles the arena, spawns pool workers,
    // resolves `XFORM_SANITIZE` — all cached process-wide.
    forward(y);
    forward(y);
    let before = ALLOC.events();
    for _ in 0..STEADY_CALLS {
        forward(y);
    }
    let delta = ALLOC.events() - before;
    assert!(
        y.data().iter().all(|v| v.is_finite()),
        "{tag}: steady-state output is not finite"
    );
    delta
}

#[test]
fn steady_state_forwards_touch_no_heap() {
    let dims = EncoderDims::tiny();
    let mut rng = StdRng::seed_from_u64(9);
    let w = EncoderWeights::init(&dims, &mut rng);
    let shape = Shape::from_spec("ibj", &dims.size_table()).unwrap();
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let mut y = Tensor::from_vec(shape, vec![0.0; dims.i * dims.b * dims.j]).unwrap();

    let fused = EncoderLayer::new(dims, Executor::Fused, 0.3);
    let reference = EncoderLayer::new(dims, Executor::Reference, 0.3);
    let decoder = DecoderLayer::new(dims, 0.3);

    let mut failures: Vec<String> = Vec::new();
    for threads in [1usize, 4] {
        let opts = ExecOptions::builder().threads(threads).seed(5).build();
        type Case<'a> = (&'a str, &'a dyn Fn(&mut Tensor));
        let cases: [Case; 3] = [
            ("encoder/fused", &|y: &mut Tensor| {
                fused.forward_into(&x, &w, &opts, y).unwrap()
            }),
            ("encoder/reference", &|y: &mut Tensor| {
                reference.forward_into(&x, &w, &opts, y).unwrap()
            }),
            ("decoder/fused", &|y: &mut Tensor| {
                decoder.forward_into(&x, &w, &opts, y).unwrap()
            }),
        ];
        for (tag, fwd) in cases {
            let delta = steady_state_events(tag, fwd, &mut y);
            if delta != 0 {
                failures.push(format!(
                    "{tag} at {threads} thread(s): {delta} heap event(s) across \
                     {STEADY_CALLS} steady-state forwards"
                ));
            }
        }
    }
    // Streaming decode: after prefill has compiled the bucket's step plans
    // and arenas, every advance + sample pair inside the bucket is two
    // arena executions, two cache-column copies, and an in-place sampling
    // pass — zero heap events per decoded token.
    let cfg = ModelConfig {
        dims: EncoderDims {
            b: 2,
            j: 32,
            k: 32,
            h: 2,
            p: 4,
            i: 8,
            u: 16,
        },
        layers: 2,
        vocab: 7,
        block: BlockKind::Decoder,
        dropout_p: 0.0,
    };
    let model = TransformerModel::init(cfg, &mut rng).unwrap();
    let mut sess = DecodeSession::new(&model, DecodeOptions::default()).unwrap();
    sess.prefill(&[vec![1, 2, 3, 4], vec![2, 3, 4, 5]]).unwrap();
    let sampling = Sampling::Temperature {
        temperature: 0.8,
        top_k: Some(3),
    };
    let mut tokens = [0usize; 2];
    // warmup: first sample sizes the scratch vectors
    for _ in 0..2 {
        sess.sample(sampling, &mut tokens).unwrap();
        sess.advance(&tokens).unwrap();
    }
    assert!(
        sess.len() + STEADY_CALLS < sess.capacity(),
        "measured decode window must not cross a bucket growth"
    );
    let before = ALLOC.events();
    for _ in 0..STEADY_CALLS {
        sess.sample(sampling, &mut tokens).unwrap();
        sess.advance(&tokens).unwrap();
    }
    let delta = ALLOC.events() - before;
    if delta != 0 {
        failures.push(format!(
            "decode/steady-state: {delta} heap event(s) across {STEADY_CALLS} \
             advance+sample steps"
        ));
    }

    assert!(
        failures.is_empty(),
        "steady-state forwards must not touch the heap:\n  {}",
        failures.join("\n  ")
    );
}
