//! Heap-allocation discipline of the arena interpreter: after one warmup
//! call has populated the plan and arena caches, every subsequent
//! `forward_into` — encoder and decoder, serial and wave-parallel —
//! executes out of the preallocated slab through the `*_into` kernels and
//! must touch the heap **not at all**. A counting global allocator makes
//! the claim falsifiable: any stray `Vec`, `String`, or `HashMap` rehash
//! on the steady-state path shows up as a nonzero event delta and fails
//! the test.
//!
//! Everything runs inside one `#[test]` function: the default harness
//! runs tests on separate threads, and the allocator counters are
//! process-wide, so splitting the cases would let one case's setup
//! allocations land inside another case's measured window.

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::core::plan::ExecOptions;
use substation::core::profile::CountingAlloc;
use substation::dataflow::EncoderDims;
use substation::tensor::{Shape, Tensor};
use substation::transformer::decoder::DecoderLayer;
use substation::transformer::encoder::{EncoderLayer, Executor};
use substation::transformer::params::EncoderWeights;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const STEADY_CALLS: usize = 10;

/// Runs `STEADY_CALLS` forwards after warmup and returns the heap-event
/// delta across them (allocations + deallocations + reallocations).
fn steady_state_events(tag: &str, mut forward: impl FnMut(&mut Tensor), y: &mut Tensor) -> u64 {
    // Warmup: lowers the plan, compiles the arena, spawns pool workers,
    // resolves `XFORM_SANITIZE` — all cached process-wide.
    forward(y);
    forward(y);
    let before = ALLOC.events();
    for _ in 0..STEADY_CALLS {
        forward(y);
    }
    let delta = ALLOC.events() - before;
    assert!(
        y.data().iter().all(|v| v.is_finite()),
        "{tag}: steady-state output is not finite"
    );
    delta
}

#[test]
fn steady_state_forwards_touch_no_heap() {
    let dims = EncoderDims::tiny();
    let mut rng = StdRng::seed_from_u64(9);
    let w = EncoderWeights::init(&dims, &mut rng);
    let shape = Shape::from_spec("ibj", &dims.size_table()).unwrap();
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let mut y = Tensor::from_vec(shape, vec![0.0; dims.i * dims.b * dims.j]).unwrap();

    let fused = EncoderLayer::new(dims, Executor::Fused, 0.3);
    let reference = EncoderLayer::new(dims, Executor::Reference, 0.3);
    let decoder = DecoderLayer::new(dims, 0.3);

    let mut failures: Vec<String> = Vec::new();
    for threads in [1usize, 4] {
        let opts = ExecOptions {
            threads,
            seed: 5,
            ..ExecOptions::default()
        };
        type Case<'a> = (&'a str, &'a dyn Fn(&mut Tensor));
        let cases: [Case; 3] = [
            ("encoder/fused", &|y: &mut Tensor| {
                fused.forward_into(&x, &w, &opts, y).unwrap()
            }),
            ("encoder/reference", &|y: &mut Tensor| {
                reference.forward_into(&x, &w, &opts, y).unwrap()
            }),
            ("decoder/fused", &|y: &mut Tensor| {
                decoder.forward_into(&x, &w, &opts, y).unwrap()
            }),
        ];
        for (tag, fwd) in cases {
            let delta = steady_state_events(tag, fwd, &mut y);
            if delta != 0 {
                failures.push(format!(
                    "{tag} at {threads} thread(s): {delta} heap event(s) across \
                     {STEADY_CALLS} steady-state forwards"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "steady-state forwards must not touch the heap:\n  {}",
        failures.join("\n  ")
    );
}
