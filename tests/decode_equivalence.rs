//! Streaming-decode equivalence: prefill + token-at-a-time steps through a
//! [`xform_transformer::decode::DecodeSession`] must reproduce the
//! full-sequence decoder forward's logits **bitwise** at every position —
//! the KV cache, the bucketed step plans, and the position-shifted causal
//! softmax are pure data-movement changes, so not one ULP of drift is
//! tolerated. Also pins the sampling RNG discipline: the RNG end state
//! depends only on the number of sampled tokens, and sampled tokens are
//! invariant under the prefill thread count.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xform_dataflow::EncoderDims;
use xform_tensor::ops::elementwise::bias_add;
use xform_tensor::{einsum, Tensor};
use xform_transformer::decode::{DecodeOptions, DecodeSession, Sampling};
use xform_transformer::model::{BlockKind, ModelConfig, TransformerModel};

fn model(dims: EncoderDims, layers: usize, vocab: usize, seed: u64) -> TransformerModel {
    let cfg = ModelConfig {
        dims,
        layers,
        vocab,
        block: BlockKind::Decoder,
        dropout_p: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    TransformerModel::init(cfg, &mut rng).expect("model init")
}

fn random_tokens(dims: &EncoderDims, vocab: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..dims.b)
        .map(|_| (0..dims.j).map(|_| rng.gen_range(0..vocab)).collect())
        .collect()
}

/// Full-sequence logits `[v,b,j]` via the model forward (the head is
/// `einsum("vi,ibj->vbj") + bias`, same accumulation the session uses).
fn full_logits(m: &TransformerModel, tokens: &[Vec<usize>]) -> Tensor {
    let mut rng = StdRng::seed_from_u64(7);
    let acts = m.forward(tokens, &mut rng).expect("full forward");
    bias_add(
        &einsum("vi,ibj->vbj", &[&m.head, &acts.hidden]).expect("head einsum"),
        &m.head_bias,
    )
    .expect("head bias")
}

/// Drives a teacher-forced incremental decode over `tokens` (prefill on
/// the first `prompt_len` columns, then one `advance` per remaining
/// position) and asserts bitwise logit equality at every position.
fn assert_incremental_matches_full(
    m: &TransformerModel,
    tokens: &[Vec<usize>],
    prompt_len: usize,
    opts: DecodeOptions,
) {
    let d = m.config.dims;
    let total = tokens[0].len();
    let full = full_logits(m, tokens);
    let vocab = m.config.vocab;

    let mut sess = DecodeSession::new(m, opts).expect("session");
    let prompt: Vec<Vec<usize>> = tokens.iter().map(|r| r[..prompt_len].to_vec()).collect();
    let pre = sess.prefill(&prompt).expect("prefill");

    // prefill logits: all prompt columns, bitwise
    for v in 0..vocab {
        for b in 0..d.b {
            for j in 0..prompt_len {
                let got = pre.at(&[v, b, j]);
                let want = full.at(&[v, b, j]);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "prefill logit [{v},{b},{j}]: {got} != {want}"
                );
            }
        }
    }

    // teacher-forced steps: feed the true token at each position, compare
    // the new position's logit column bitwise
    for pos in prompt_len..total {
        let step: Vec<usize> = tokens.iter().map(|r| r[pos]).collect();
        let logits = sess.advance(&step).expect("advance");
        for v in 0..vocab {
            for b in 0..d.b {
                let got = logits.at(&[v, b, 0]);
                let want = full.at(&[v, b, pos]);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "step logit [{v},{b}] at pos {pos}: {got} != {want}"
                );
            }
        }
    }
    assert_eq!(sess.len(), total);
}

#[test]
fn incremental_decode_matches_full_forward_bitwise() {
    let dims = EncoderDims {
        b: 2,
        j: 12,
        k: 12,
        h: 2,
        p: 4,
        i: 8,
        u: 16,
    };
    let m = model(dims, 2, 11, 0xDEC0DE);
    let tokens = random_tokens(&dims, 11, 3);
    assert_incremental_matches_full(&m, &tokens, 5, DecodeOptions::default());
}

#[test]
fn bucket_growth_preserves_bitwise_equality() {
    let dims = EncoderDims {
        b: 2,
        j: 12,
        k: 12,
        h: 2,
        p: 4,
        i: 8,
        u: 16,
    };
    let m = model(dims, 2, 11, 0xDEC0DE);
    let tokens = random_tokens(&dims, 11, 4);
    // bucket 4 forces cache-slab migration mid-decode: prefill(3) compiles
    // capacity 4, so steps grow the bucket at positions 4 and 8
    let opts = DecodeOptions {
        bucket: Some(4),
        ..DecodeOptions::default()
    };
    let mut sess = DecodeSession::new(&m, opts).expect("session");
    let prompt: Vec<Vec<usize>> = tokens.iter().map(|r| r[..3].to_vec()).collect();
    sess.prefill(&prompt).expect("prefill");
    assert_eq!(sess.capacity(), 4);
    let full = full_logits(&m, &tokens);
    for pos in 3..dims.j {
        let step: Vec<usize> = tokens.iter().map(|r| r[pos]).collect();
        let logits = sess.advance(&step).expect("advance");
        for v in 0..m.config.vocab {
            for b in 0..dims.b {
                assert_eq!(
                    logits.at(&[v, b, 0]).to_bits(),
                    full.at(&[v, b, pos]).to_bits(),
                    "grown-bucket logit [{v},{b}] at pos {pos}"
                );
            }
        }
    }
    assert!(sess.capacity() >= dims.j);
}

#[test]
fn greedy_generation_is_deterministic_and_rng_free() {
    let dims = EncoderDims {
        b: 2,
        j: 10,
        k: 10,
        h: 2,
        p: 4,
        i: 8,
        u: 16,
    };
    let m = model(dims, 2, 9, 1);
    let prompt: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![4, 5, 6]];

    let mut a = DecodeSession::new(&m, DecodeOptions::default()).expect("session");
    let ta = a.generate(&prompt, 6, Sampling::Greedy).expect("generate");
    let mut b = DecodeSession::new(&m, DecodeOptions::default()).expect("session");
    let tb = b.generate(&prompt, 6, Sampling::Greedy).expect("generate");
    assert_eq!(ta, tb);
    // greedy never draws: both RNGs are still at their seeded origin
    assert_eq!(a.rng_fingerprint(), b.rng_fingerprint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Random geometry, seeds, and temperatures: the incremental path
    // reproduces the full forward bitwise at every position; sampled
    // tokens and the RNG end state are invariant under the prefill
    // thread count.
    #[test]
    fn decode_equivalence_properties(
        b in 1usize..3,
        h in 1usize..3,
        p in 2usize..5,
        total in 6usize..11,
        prompt_len in 2usize..5,
        layers in 1usize..3,
        weight_seed in 0u64..1000,
        token_seed in 0u64..1000,
        sample_seed in 0u64..1000,
        temperature in 0.25f32..2.0,
        top_k in 1usize..8,
        bucket in 2usize..6,
    ) {
        let prompt_len = prompt_len.min(total - 1);
        let i = p * h;
        let dims = EncoderDims { b, j: total, k: total, h, p, i, u: 2 * i };
        let vocab = 7;
        let m = model(dims, layers, vocab, weight_seed);
        let tokens = random_tokens(&dims, vocab, token_seed);

        // bitwise equivalence, including under forced bucket growth
        let opts = DecodeOptions {
            bucket: Some(bucket),
            ..DecodeOptions::default()
        };
        assert_incremental_matches_full(&m, &tokens, prompt_len, opts);

        // sampling: thread-count invariance + RNG end-state equality
        let sampling = Sampling::Temperature { temperature, top_k: Some(top_k) };
        let prompt: Vec<Vec<usize>> =
            tokens.iter().map(|r| r[..prompt_len].to_vec()).collect();
        let steps = total - prompt_len;
        let mut one = DecodeSession::new(&m, DecodeOptions {
            seed: sample_seed,
            threads: 1,
            ..DecodeOptions::default()
        }).expect("session");
        let mut two = DecodeSession::new(&m, DecodeOptions {
            seed: sample_seed,
            threads: 2,
            ..DecodeOptions::default()
        }).expect("session");
        let t1 = one.generate(&prompt, steps, sampling).expect("generate");
        let t2 = two.generate(&prompt, steps, sampling).expect("generate");
        prop_assert_eq!(&t1, &t2);
        // the RNG advanced once per sampled token per row — end states match
        prop_assert_eq!(one.rng_fingerprint(), two.rng_fingerprint());
        for row in &t1 {
            prop_assert_eq!(row.len(), steps);
        }
    }
}
