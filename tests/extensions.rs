//! Integration tests for the beyond-the-paper extensions: decoder recipe,
//! stacked model, CPU-measured recipe, hardware study, checkpoint — all
//! exercised across crate boundaries.

use substation::core::cpusource::CpuSource;
use substation::core::recipe::{
    optimize_decoder, optimize_encoder, optimize_encoder_with, RecipeOptions,
};
use substation::core::sweep::SweepOptions;
use substation::dataflow::EncoderDims;
use substation::gpusim::DeviceSpec;
use substation::transformer::model::{train_lm, BlockKind, ModelConfig};

fn quick() -> RecipeOptions {
    RecipeOptions {
        sweep: SweepOptions {
            max_configs: Some(4_000),
            ..SweepOptions::default()
        },
        per_op_overhead_us: 1.0,
    }
}

#[test]
fn decoder_and_encoder_recipes_agree_on_contractions() {
    // pre-LN vs post-LN only moves the normalization; GEMM totals match
    let device = DeviceSpec::v100();
    let dims = EncoderDims::bert_large();
    let enc = optimize_encoder(&device, &dims, &quick()).unwrap();
    let dec = optimize_decoder(&device, &dims, &quick()).unwrap();
    let tc = |p: &substation::core::recipe::OptimizedEncoder| -> f64 {
        p.rows
            .iter()
            .filter(|r| r.class == substation::dataflow::OpClass::TensorContraction)
            .map(|r| r.time_us)
            .sum()
    };
    let ratio = tc(&dec) / tc(&enc);
    assert!((0.9..1.1).contains(&ratio), "contraction ratio {ratio}");
}

#[test]
fn a100_runs_the_whole_encoder_faster_than_v100() {
    let dims = EncoderDims::bert_large();
    let v = optimize_encoder(&DeviceSpec::v100(), &dims, &quick()).unwrap();
    let a = optimize_encoder(&DeviceSpec::a100(), &dims, &quick()).unwrap();
    let speedup = v.total_us() / a.total_us();
    assert!(speedup > 1.4 && speedup < 3.0, "A100 speedup {speedup:.2}×");
}

#[test]
fn cpu_measured_recipe_is_consistent() {
    let src = CpuSource::new(1);
    let plan = optimize_encoder_with(
        &src,
        &DeviceSpec::v100(),
        &EncoderDims::tiny(),
        &RecipeOptions {
            sweep: SweepOptions {
                max_configs: Some(30),
                ..SweepOptions::default()
            },
            per_op_overhead_us: 0.0,
        },
    )
    .unwrap();
    // measured selection still dominates its own per-op lower bound
    assert!(plan.selection.total_us + 1e-6 >= plan.selection.per_op_best_us);
    assert!(plan.rows.iter().all(|r| r.time_us > 0.0));
}

#[test]
fn lm_training_pipeline_learns_through_both_block_kinds() {
    for block in [BlockKind::Decoder, BlockKind::Encoder] {
        let cfg = ModelConfig {
            dims: EncoderDims {
                b: 2,
                j: 6,
                k: 6,
                h: 2,
                p: 4,
                i: 8,
                u: 16,
            },
            layers: 1,
            vocab: 4,
            block,
            dropout_p: 0.0,
        };
        let (_, losses) = train_lm(cfg, 30, 0.5, 5).unwrap();
        let first = losses[..3].iter().sum::<f32>() / 3.0;
        let last = losses[losses.len() - 3..].iter().sum::<f32>() / 3.0;
        assert!(
            last < first,
            "{block:?} stack failed to learn: {first} -> {last}"
        );
    }
}

#[test]
fn checkpoint_roundtrips_through_the_facade() {
    use rand::SeedableRng;
    let dims = EncoderDims::tiny();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let w = substation::transformer::params::EncoderWeights::init(&dims, &mut rng);
    let path = std::env::temp_dir().join(format!("substation-it-{}", std::process::id()));
    w.save(&path).unwrap();
    let mut w2 = substation::transformer::params::EncoderWeights::init(&dims, &mut rng);
    w2.load(&path).unwrap();
    assert!((w.global_norm() - w2.global_norm()).abs() < 1e-6);
    std::fs::remove_file(path).ok();
}

#[test]
fn dot_export_is_parsable_shape() {
    let g = substation::dataflow::build::mha_forward(&EncoderDims::tiny());
    let dot = g.to_dot("mha");
    assert!(dot.starts_with("digraph"));
    let opens = dot.matches('{').count();
    let closes = dot.matches('}').count();
    assert_eq!(opens, closes);
    assert!(dot.contains("QKT"));
}
