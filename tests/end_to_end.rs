//! End-to-end integration tests spanning all crates: the full recipe
//! against the baseline framework models, reproducing the paper's headline
//! comparisons in test form.

use substation::core::algebraic::qkv_variants;
use substation::core::fusion::{apply_plan, encoder_fusion_plan};
use substation::core::recipe::{optimize_encoder, RecipeOptions};
use substation::core::sweep::SweepOptions;
use substation::dataflow::{build, EncoderDims};
use substation::gpusim::framework::{cudnn_mha_time_ms, execute, FrameworkPolicy};
use substation::gpusim::DeviceSpec;

fn quick() -> RecipeOptions {
    RecipeOptions {
        sweep: SweepOptions {
            max_configs: Some(8_000),
            ..SweepOptions::default()
        },
        per_op_overhead_us: 1.0,
    }
}

#[test]
fn table5_ordering_holds() {
    // Table V: ours < DeepSpeed < TF+XLA < PyTorch (total time).
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();

    let unfused = build::encoder(&dims).graph;
    let pt = execute(&unfused, &device, &FrameworkPolicy::pytorch()).unwrap();

    let mut fused = build::encoder(&dims).graph;
    apply_plan(&mut fused, &encoder_fusion_plan()).unwrap();
    let xla = execute(&fused, &device, &FrameworkPolicy::tf_xla()).unwrap();
    let ds = execute(&fused, &device, &FrameworkPolicy::deepspeed()).unwrap();

    let ours = optimize_encoder(&device, &dims, &quick()).unwrap();

    assert!(
        ours.total_us() < ds.total_us,
        "ours {} !< DS {}",
        ours.total_us(),
        ds.total_us
    );
    assert!(
        ds.total_us < xla.total_us,
        "DS {} !< XLA {}",
        ds.total_us,
        xla.total_us
    );
    assert!(
        xla.total_us < pt.total_us,
        "XLA {} !< PT {}",
        xla.total_us,
        pt.total_us
    );

    // headline speedups: ≥1.30× over PyTorch, ≥1.08× over DeepSpeed
    let vs_pt = pt.total_us / ours.total_us();
    let vs_ds = ds.total_us / ours.total_us();
    assert!(vs_pt > 1.15 && vs_pt < 2.2, "speedup vs PT {vs_pt:.2}×");
    assert!(vs_ds > 1.02 && vs_ds < 1.8, "speedup vs DS {vs_ds:.2}×");
}

#[test]
fn ours_absolute_times_near_paper() {
    // Table V "Ours": 2.63 ms forward, 4.38 ms backward.
    let ours = optimize_encoder(&DeviceSpec::v100(), &EncoderDims::bert_large(), &quick()).unwrap();
    let fwd = ours.forward_us / 1000.0;
    let bwd = ours.backward_us / 1000.0;
    assert!((fwd - 2.63).abs() < 0.8, "forward {fwd:.2} ms (paper 2.63)");
    assert!(
        (bwd - 4.38).abs() < 1.2,
        "backward {bwd:.2} ms (paper 4.38)"
    );
}

#[test]
fn mha_is_orders_of_magnitude_faster_than_cudnn() {
    // Table IV: cuDNN's MHA path is ~100× slower than any framework.
    let (fwd, bwd) = cudnn_mha_time_ms(&DeviceSpec::v100(), &EncoderDims::bert_large());
    let ours = optimize_encoder(&DeviceSpec::v100(), &EncoderDims::bert_large(), &quick()).unwrap();
    let ours_total_ms = ours.total_us() / 1000.0;
    assert!(fwd + bwd > 10.0 * ours_total_ms);
}

#[test]
fn table2_ordering_holds() {
    let rows = qkv_variants(&DeviceSpec::v100(), &EncoderDims::bert_large());
    assert!(rows[0].forward_us > rows[2].forward_us);
    assert!(rows[0].backward_us > rows[2].backward_us);
}

#[test]
fn b96_configuration_beats_pytorch() {
    // Sec. VI-C: at B=96/L=128 ours still clearly beats PyTorch.
    let dims = EncoderDims::bert_b96();
    let device = DeviceSpec::v100();
    let unfused = build::encoder(&dims).graph;
    let pt = execute(&unfused, &device, &FrameworkPolicy::pytorch()).unwrap();
    let ours = optimize_encoder(&device, &dims, &quick()).unwrap();
    assert!(pt.total_us / ours.total_us() > 1.2);
    // and the absolute magnitude is in the paper's ballpark (16-23 ms PT)
    let pt_ms = pt.total_us / 1000.0;
    assert!(pt_ms > 12.0 && pt_ms < 30.0, "PT at B=96 is {pt_ms:.1} ms");
}

#[test]
fn movement_reduction_is_reported_consistently() {
    let ours = optimize_encoder(&DeviceSpec::v100(), &EncoderDims::bert_large(), &quick()).unwrap();
    assert!(ours.movement_reduction_pct > 15.0 && ours.movement_reduction_pct < 30.0);
    // fused graph has strictly fewer kernels than the unfused one
    let unfused = build::encoder(&EncoderDims::bert_large()).graph;
    assert!(ours.graph.ops().len() < unfused.ops().len());
}
