//! Value equivalence of the arena interpreter through the public layer
//! API: the slab-executing forward must be bitwise-equal to the
//! allocating environment interpreter whenever no RNG is drawn, the
//! zero-allocation `forward_into` must agree with `forward` exactly, and
//! dropout masks must be invariant to the thread count (the arena draws
//! each step's stream independently, so serial and wave-parallel runs see
//! identical randomness).

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::core::plan::{ExecOptions, PlanOverride};
use substation::dataflow::EncoderDims;
use substation::tensor::{Shape, Tensor};
use substation::transformer::decoder::DecoderLayer;
use substation::transformer::encoder::{EncoderLayer, Executor};
use substation::transformer::interp;
use substation::transformer::params::EncoderWeights;

fn setup() -> (EncoderDims, EncoderWeights, Tensor) {
    let dims = EncoderDims::tiny();
    let mut rng = StdRng::seed_from_u64(41);
    let w = EncoderWeights::init(&dims, &mut rng);
    let x = Tensor::random(
        Shape::from_spec("ibj", &dims.size_table()).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    (dims, w, x)
}

fn out_buffer(dims: &EncoderDims) -> Tensor {
    Tensor::from_vec(
        Shape::from_spec("ibj", &dims.size_table()).unwrap(),
        vec![0.0; dims.i * dims.b * dims.j],
    )
    .unwrap()
}

#[test]
fn every_canned_plan_compiles_an_arena_at_both_granularities() {
    let dims = EncoderDims::tiny();
    for kind in [
        interp::PlanKind::EncoderReference,
        interp::PlanKind::EncoderFused,
        interp::PlanKind::DecoderFused,
    ] {
        for threads in [1, 4] {
            let arena = interp::cached_arena(&dims, kind, interp::granularity_for(threads))
                .unwrap()
                .unwrap_or_else(|| panic!("{kind:?} must compile at {threads} thread(s)"));
            assert!(arena.slab_words() > 0);
        }
    }
}

#[test]
fn arena_forward_matches_the_env_interpreter_bitwise_without_rng() {
    // With dropout off no RNG is drawn, so the arena-routed forward and a
    // PlanOverride forward (which bypasses the arena and runs the
    // allocating environment interpreter) must agree bitwise.
    let (dims, w, x) = setup();
    for executor in [Executor::Reference, Executor::Fused, Executor::Epilogue] {
        let layer = EncoderLayer::new(dims, executor, 0.0);
        let arena_y = layer.forward(&x, &w, &ExecOptions::default()).unwrap().y;
        let pf = interp::cached_plan(
            &dims,
            match executor {
                Executor::Reference => interp::PlanKind::EncoderReference,
                Executor::Fused => interp::PlanKind::EncoderFused,
                Executor::Epilogue => interp::PlanKind::EncoderEpilogue,
            },
        )
        .unwrap();
        let env_opts = ExecOptions::builder()
            .plan(Some(PlanOverride {
                graph: &pf.graph,
                plan: &pf.plan,
                cert: Some(&pf.cert),
            }))
            .build();
        let env_y = layer.forward(&x, &w, &env_opts).unwrap().y;
        assert_eq!(arena_y.data(), env_y.data(), "{executor:?}");
    }
}

#[test]
fn forward_into_agrees_with_forward_exactly() {
    let (dims, w, x) = setup();
    let mut y = out_buffer(&dims);
    for p in [0.0f32, 0.3] {
        for threads in [1usize, 4] {
            let opts = ExecOptions::builder().threads(threads).seed(17).build();
            let encoder = EncoderLayer::new(dims, Executor::Fused, p);
            let full = encoder.forward(&x, &w, &opts).unwrap().y;
            encoder.forward_into(&x, &w, &opts, &mut y).unwrap();
            assert_eq!(full.data(), y.data(), "encoder p={p} threads={threads}");

            let decoder = DecoderLayer::new(dims, p);
            let full = decoder.forward(&x, &w, &opts).unwrap().y;
            decoder.forward_into(&x, &w, &opts, &mut y).unwrap();
            assert_eq!(full.data(), y.data(), "decoder p={p} threads={threads}");
        }
    }
}

#[test]
fn dropout_is_thread_count_invariant_under_the_arena() {
    // Per-step RNG streams make the drawn masks a function of (seed,
    // step) alone: the serial arena and the wave-parallel arena at any
    // worker count produce bitwise-identical outputs even with dropout
    // active.
    let (dims, w, x) = setup();
    for p in [0.0f32, 0.3, 0.5] {
        let layer = EncoderLayer::new(dims, Executor::Fused, p);
        let serial = layer
            .forward(&x, &w, &ExecOptions::builder().seed(23).build())
            .unwrap()
            .y;
        for threads in [2usize, 4, 8] {
            let par = layer
                .forward(
                    &x,
                    &w,
                    &ExecOptions::builder().seed(23).threads(threads).build(),
                )
                .unwrap()
                .y;
            assert_eq!(serial.data(), par.data(), "p={p} threads={threads}");
        }
    }
}

#[test]
fn collected_activations_match_between_arena_and_env_interpreter() {
    // Saved activations and layer-norm statistics materialized out of the
    // slab must be the same values the environment interpreter produces.
    let (dims, w, x) = setup();
    let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
    let arena_out = layer.forward(&x, &w, &ExecOptions::default()).unwrap();
    let pf = interp::cached_plan(&dims, interp::PlanKind::EncoderFused).unwrap();
    let env_opts = ExecOptions::builder()
        .plan(Some(PlanOverride {
            graph: &pf.graph,
            plan: &pf.plan,
            cert: Some(&pf.cert),
        }))
        .build();
    let env_out = layer.forward(&x, &w, &env_opts).unwrap();
    let (a, b) = (
        arena_out.activations.as_ref().unwrap(),
        env_out.activations.as_ref().unwrap(),
    );
    assert_eq!(a.qq.data(), b.qq.data());
    assert_eq!(a.sm.softmax.data(), b.sm.softmax.data());
    assert_eq!(a.gam.data(), b.gam.data());
    assert_eq!(a.ln1.stats.mean, b.ln1.stats.mean);
    assert_eq!(a.ln1.stats.inv_std, b.ln1.stats.inv_std);
    assert_eq!(a.ln2.out.data(), b.ln2.out.data());
}
