//! Differential proofs that every certificate-licensed unchecked kernel
//! twin is **bitwise identical** to its checked original — across
//! randomized lane geometries, seeds, dropout probabilities (including
//! the branch-free select-based dropout), and causal masks. The twins
//! mirror the checked kernels statement-for-statement, so any float or
//! RNG-stream divergence is a bug; equality here is `to_bits()`, not an
//! epsilon.
//!
//! Also pins the layout-level dispatch: `ops::softmax` / `ops::layernorm`
//! take their locally-certified fast path on physically row-major
//! tensors, and the result must match the strided fallback bitwise.

use proptest::prelude::*;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use substation::tensor::into_ops::{
    bdr_into, bdr_into_unchecked, bdrln_into, bdrln_into_unchecked, bias_add_into,
    bias_add_into_unchecked, brd_act_into, brd_act_into_unchecked, layernorm_into,
    layernorm_into_unchecked, sm_into, sm_into_unchecked, softmax_causal_into,
    softmax_causal_into_unchecked, softmax_scaled_into, softmax_scaled_into_unchecked, BiasMap,
    CausalMap, LaneGeom,
};
use substation::tensor::ops::elementwise::ActivationKind;
use substation::tensor::ops::layernorm::layernorm;
use substation::tensor::ops::softmax::softmax;
use substation::tensor::{Axis, Layout, Shape, Tensor};

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-2.0f32, 2.0);
    (0..n).map(|_| dist.sample(&mut rng)).collect()
}

/// Asserts two f32 slices are bitwise identical.
fn assert_bits(name: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}: word {i} differs, {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn softmax_scaled_twin_is_bitwise(pre in 1usize..6, len in 1usize..9, seed in 0u64..1000) {
        let lane = LaneGeom { pre, len, post: 1 };
        let x = rand_vec(lane.elements(), seed);
        let mut checked = vec![0.0f32; lane.elements()];
        let mut fast = vec![7.0f32; lane.elements()];
        softmax_scaled_into(&x, 0.5, lane, &mut checked);
        unsafe { softmax_scaled_into_unchecked(&x, 0.5, lane, &mut fast) };
        assert_bits("softmax_scaled", &checked, &fast);
    }

    #[test]
    fn softmax_causal_twin_is_bitwise(
        q in 1usize..5, div in 1usize..4, len in 1usize..9, seed in 0u64..1000,
    ) {
        let causal = CausalMap { div, len: q, base: 0 };
        let lane = LaneGeom { pre: q * div, len, post: 1 };
        let x = rand_vec(lane.elements(), seed);
        let mut checked = vec![0.0f32; lane.elements()];
        let mut fast = vec![7.0f32; lane.elements()];
        softmax_causal_into(&x, 0.25, lane, causal, &mut checked);
        unsafe { softmax_causal_into_unchecked(&x, 0.25, lane, causal, &mut fast) };
        assert_bits("softmax_causal", &checked, &fast);
    }

    #[test]
    fn sm_twin_is_bitwise_with_dropout_and_causal(
        pre in 1usize..5, len in 1usize..9, seed in 0u64..1000,
        p_idx in 0usize..3, use_causal in any::<bool>(),
    ) {
        let p = [0.0f32, 0.1, 0.5][p_idx];
        let causal = use_causal.then_some(CausalMap { div: 1, len: pre, base: 0 });
        let lane = LaneGeom { pre, len, post: 1 };
        let x = rand_vec(lane.elements(), seed);
        let n = lane.elements();
        let (mut s1, mut a1, mut m1) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
        let (mut s2, mut a2, mut m2) = (vec![7.0f32; n], vec![7.0f32; n], vec![7.0f32; n]);
        // identical seeds: the twin must draw the same stream in the
        // same order, or the masks (and everything after) diverge
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xD5);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xD5);
        sm_into(&x, 0.125, lane, causal, p, &mut r1, &mut s1, &mut a1, &mut m1);
        unsafe {
            sm_into_unchecked(&x, 0.125, lane, causal, p, &mut r2, &mut s2, &mut a2, &mut m2)
        };
        assert_bits("sm softmax", &s1, &s2);
        assert_bits("sm alpha", &a1, &a2);
        assert_bits("sm mask", &m1, &m2);
        // and the RNG streams must end in the same state
        prop_assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn layernorm_twin_is_bitwise(pre in 1usize..6, len in 1usize..9, seed in 0u64..1000) {
        let lane = LaneGeom { pre, len, post: 1 };
        let n = lane.elements();
        let x = rand_vec(n, seed);
        let gamma = rand_vec(lane.len, seed ^ 1);
        let beta = rand_vec(lane.len, seed ^ 2);
        let (mut o1, mut mu1, mut is1) =
            (vec![0.0f32; n], vec![0.0f32; pre], vec![0.0f32; pre]);
        let (mut o2, mut mu2, mut is2) =
            (vec![7.0f32; n], vec![7.0f32; pre], vec![7.0f32; pre]);
        layernorm_into(&x, &gamma, &beta, lane, &mut o1, &mut mu1, &mut is1);
        unsafe {
            layernorm_into_unchecked(&x, &gamma, &beta, lane, &mut o2, &mut mu2, &mut is2)
        };
        assert_bits("layernorm out", &o1, &o2);
        assert_bits("layernorm mean", &mu1, &mu2);
        assert_bits("layernorm inv_std", &is1, &is2);
    }

    #[test]
    fn bias_add_twin_is_bitwise(rows in 1usize..6, cols in 1usize..9, seed in 0u64..1000) {
        let n = rows * cols;
        let x = rand_vec(n, seed);
        let bias = rand_vec(cols, seed ^ 3);
        // bias broadcast over the row axis: one (stride, size, bstride)
        let map = BiasMap { dims: vec![(1, cols, 1)] };
        let mut checked = vec![0.0f32; n];
        let mut fast = vec![7.0f32; n];
        bias_add_into(&x, &bias, &map, &mut checked);
        unsafe { bias_add_into_unchecked(&x, &bias, &map, &mut fast) };
        assert_bits("bias_add", &checked, &fast);
    }

    #[test]
    fn bdrln_twin_is_bitwise(
        pre in 1usize..5, len in 1usize..9, seed in 0u64..1000,
        p_idx in 0usize..3,
    ) {
        let p = [0.0f32, 0.1, 0.5][p_idx];
        let lane = LaneGeom { pre, len, post: 1 };
        let n = lane.elements();
        let x = rand_vec(n, seed);
        let bias = rand_vec(len, seed ^ 4);
        let residual = rand_vec(n, seed ^ 5);
        let gamma = rand_vec(len, seed ^ 6);
        let beta = rand_vec(len, seed ^ 7);
        let map = BiasMap { dims: vec![(1, len, 1)] };
        let mut c = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n],
                     vec![0.0f32; pre], vec![0.0f32; pre]);
        let mut u = (vec![7.0f32; n], vec![7.0f32; n], vec![7.0f32; n],
                     vec![7.0f32; pre], vec![7.0f32; pre]);
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xB0);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xB0);
        bdrln_into(&x, &bias, &map, &residual, &gamma, &beta, lane, p, &mut r1,
                   &mut c.0, &mut c.1, &mut c.2, &mut c.3, &mut c.4);
        unsafe {
            bdrln_into_unchecked(&x, &bias, &map, &residual, &gamma, &beta, lane, p, &mut r2,
                                 &mut u.0, &mut u.1, &mut u.2, &mut u.3, &mut u.4)
        };
        assert_bits("bdrln mask", &c.0, &u.0);
        assert_bits("bdrln ln_input", &c.1, &u.1);
        assert_bits("bdrln out", &c.2, &u.2);
        assert_bits("bdrln mean", &c.3, &u.3);
        assert_bits("bdrln inv_std", &c.4, &u.4);
        prop_assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn brd_act_twin_is_bitwise(
        rows in 1usize..5, cols in 1usize..9, seed in 0u64..1000,
        p_idx in 0usize..3, gelu in any::<bool>(),
    ) {
        let p = [0.0f32, 0.1, 0.5][p_idx];
        let n = rows * cols;
        let kind = if gelu { ActivationKind::Gelu } else { ActivationKind::Relu };
        let x = rand_vec(n, seed);
        let bias = rand_vec(cols, seed ^ 8);
        let map = BiasMap { dims: vec![(1, cols, 1)] };
        let (mut z1, mut o1, mut m1) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
        let (mut z2, mut o2, mut m2) = (vec![7.0f32; n], vec![7.0f32; n], vec![7.0f32; n]);
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xAC);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xAC);
        brd_act_into(&x, &bias, &map, kind, p, &mut r1, &mut z1, &mut o1, &mut m1);
        unsafe {
            brd_act_into_unchecked(&x, &bias, &map, kind, p, &mut r2, &mut z2, &mut o2, &mut m2)
        };
        assert_bits("brd pre_activation", &z1, &z2);
        assert_bits("brd out", &o1, &o2);
        assert_bits("brd mask", &m1, &m2);
        prop_assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn bdr_twin_is_bitwise(
        rows in 1usize..5, cols in 1usize..9, seed in 0u64..1000,
        p_idx in 0usize..3,
    ) {
        let p = [0.0f32, 0.1, 0.5][p_idx];
        let n = rows * cols;
        let x = rand_vec(n, seed);
        let bias = rand_vec(cols, seed ^ 9);
        let residual = rand_vec(n, seed ^ 10);
        let map = BiasMap { dims: vec![(1, cols, 1)] };
        let (mut m1, mut o1) = (vec![0.0f32; n], vec![0.0f32; n]);
        let (mut m2, mut o2) = (vec![7.0f32; n], vec![7.0f32; n]);
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xBD);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xBD);
        bdr_into(&x, &bias, &map, &residual, p, &mut r1, &mut m1, &mut o1);
        unsafe {
            bdr_into_unchecked(&x, &bias, &map, &residual, p, &mut r2, &mut m2, &mut o2)
        };
        assert_bits("bdr mask", &m1, &m2);
        assert_bits("bdr out", &o1, &o2);
        // p == 0 must draw nothing in either kernel; p > 0 one per element
        prop_assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn ops_softmax_fast_path_matches_strided_fallback(
        b in 1usize..4, j in 1usize..4, k in 2usize..7, seed in 0u64..1000,
    ) {
        let shape = Shape::new([('b', b), ('j', j), ('k', k)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random(shape, &Uniform::new(-2.0, 2.0), &mut rng);
        // row-major: unit-stride reduce axis → the fast path runs
        let fast = softmax(&x, Axis('k')).unwrap();
        // permuted so `k` is outermost: strided fallback
        let xp = x.relayout(&Layout::from_axis_order(x.shape(), "kbj").unwrap());
        let slow = softmax(&xp, Axis('k')).unwrap();
        let mut idx = vec![0usize; 3];
        loop {
            let (a, c) = (fast.at(&idx), slow.at(&idx));
            prop_assert!(a.to_bits() == c.to_bits(), "softmax at {:?}: {} vs {}", idx, a, c);
            if !fast.advance(&mut idx) { break; }
        }
    }

    #[test]
    fn ops_layernorm_fast_path_matches_strided_fallback(
        b in 1usize..4, j in 1usize..4, i in 2usize..7, seed in 0u64..1000,
    ) {
        let shape = Shape::new([('b', b), ('j', j), ('i', i)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random(shape, &Uniform::new(-2.0, 2.0), &mut rng);
        let gamma = Tensor::random(
            Shape::new([('i', i)]).unwrap(), &Uniform::new(0.5, 1.5), &mut rng);
        let beta = Tensor::random(
            Shape::new([('i', i)]).unwrap(), &Uniform::new(-0.5, 0.5), &mut rng);
        let (fast, fs) = layernorm(&x, Axis('i'), &gamma, &beta).unwrap();
        let xp = x.relayout(&Layout::from_axis_order(x.shape(), "ibj").unwrap());
        let (slow, ss) = layernorm(&xp, Axis('i'), &gamma, &beta).unwrap();
        let mut idx = vec![0usize; 3];
        loop {
            let (a, c) = (fast.at(&idx), slow.at(&idx));
            prop_assert!(a.to_bits() == c.to_bits(), "layernorm at {:?}: {} vs {}", idx, a, c);
            if !fast.advance(&mut idx) { break; }
        }
        // the strided kernel pushes stats in outer-index order, which on
        // the permuted layout is still logical (b, j) order — same vector
        assert_bits("layernorm stats mean", &fs.mean, &ss.mean);
        assert_bits("layernorm stats inv_std", &fs.inv_std, &ss.inv_std);
    }
}
