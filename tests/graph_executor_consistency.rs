//! Cross-crate consistency: the dataflow graph (what we *analyze*) and the
//! CPU executor (what we *run*) must describe the same computation — same
//! tensor shapes, same saved values, same operator inventory.

use rand::rngs::StdRng;
use rand::SeedableRng;

use substation::core::plan::ExecOptions;
use substation::dataflow::{build, DataRole, EncoderDims};
use substation::transformer::encoder::{EncoderLayer, Executor};
use substation::transformer::params::EncoderWeights;
use substation::transformer::training::synthetic_batch;

fn dims() -> EncoderDims {
    EncoderDims::tiny()
}

#[test]
fn activations_match_graph_containers() {
    let d = dims();
    let enc = build::encoder(&d);
    let mut rng = StdRng::seed_from_u64(1);
    let w = EncoderWeights::init(&d, &mut rng);
    let layer = EncoderLayer::new(d, Executor::Fused, 0.0);
    let x = synthetic_batch(&d, &mut rng).unwrap();
    let (y, acts) = layer
        .forward(&x, &w, &ExecOptions::default())
        .unwrap()
        .into_pair()
        .unwrap();

    // Every saved container the graph declares has a live counterpart in
    // the executor's activations, with an identical shape.
    let check = |name: &str, shape: &substation::tensor::Shape| {
        let id = enc
            .graph
            .data_by_name(name)
            .unwrap_or_else(|| panic!("graph lacks container {name}"));
        let node = enc.graph.data(id).unwrap();
        assert_eq!(&node.shape, shape, "shape mismatch for {name}");
        assert_eq!(node.role, DataRole::Saved, "{name} should be Saved");
    };
    check("qq", acts.qq.shape());
    check("kk", acts.kk.shape());
    check("vv", acts.vv.shape());
    check("alpha", acts.sm.alpha.shape());
    check("att", acts.sm.softmax.shape());
    check("att_mask", acts.sm.mask.shape());
    check("gamma", acts.gam.shape());
    check("ln1_in", acts.ln1.ln_input.shape());
    check("drop1_mask", acts.ln1.mask.shape());
    check("ff1_b", acts.brd.pre_activation.shape());
    check("ff1_drop", acts.brd.out.shape());
    check("drop2_mask", acts.brd.mask.shape());
    check("ln2_in", acts.ln2.ln_input.shape());

    // output container
    let y_id = enc.graph.data_by_name("y").unwrap();
    assert_eq!(&enc.graph.data(y_id).unwrap().shape, y.shape());
}

#[test]
fn gradients_match_graph_outputs() {
    let d = dims();
    let enc = build::encoder(&d);
    let mut rng = StdRng::seed_from_u64(2);
    let w = EncoderWeights::init(&d, &mut rng);
    let layer = EncoderLayer::new(d, Executor::Fused, 0.0);
    let x = synthetic_batch(&d, &mut rng).unwrap();
    let (y, acts) = layer
        .forward(&x, &w, &ExecOptions::default())
        .unwrap()
        .into_pair()
        .unwrap();
    let (dx, grads) = layer.backward(&y, &x, &w, &acts).unwrap();

    let shape_of = |name: &str| {
        let id = enc.graph.data_by_name(name).unwrap();
        enc.graph.data(id).unwrap().shape.clone()
    };
    assert_eq!(&shape_of("dx"), dx.shape());
    assert_eq!(&shape_of("d_w1"), grads.w1.shape());
    assert_eq!(&shape_of("d_w2"), grads.w2.shape());
    assert_eq!(&shape_of("d_bo"), grads.bo.shape());
    assert_eq!(&shape_of("d_ln1_gamma"), grads.ln1_gamma.shape());
    assert_eq!(&shape_of("d_b1"), grads.b1.shape());
    // stacked QKV weight gradient covers the three projection grads
    let stacked = shape_of("d_w_qkv");
    assert_eq!(
        stacked.num_elements(),
        grads.wq.len() + grads.wk.len() + grads.wv.len()
    );
}

#[test]
fn graph_flop_dominated_by_real_multiplies() {
    // The graph's flop total should equal the sum over einsum ops computed
    // from the same shapes the executor contracts.
    let d = EncoderDims::bert_large();
    let enc = build::encoder(&d);
    let total = substation::dataflow::flops::total_flop(&enc.graph) as f64;
    // closed form: fwd contractions 104 Gi + bwd 208 Gi + small kernels
    let gi = 1_073_741_824.0;
    assert!((total / gi - 312.6).abs() < 2.0, "total {}", total / gi);
}

#[test]
fn executor_weight_count_matches_graph_weight_words() {
    let d = dims();
    let enc = build::encoder(&d);
    let mut rng = StdRng::seed_from_u64(3);
    let w = EncoderWeights::init(&d, &mut rng);
    let graph_weight_words: usize = enc
        .graph
        .data_nodes()
        .into_iter()
        .filter_map(|id| enc.graph.data(id))
        .filter(|n| n.role == DataRole::Weight)
        .map(|n| n.shape.num_elements())
        .sum();
    assert_eq!(graph_weight_words, w.num_parameters());
}
