//! `substation` — data-movement-centric optimization of transformer
//! training, in Rust.
//!
//! A reproduction of *Ivanov, Dryden, Ben-Nun, Li, Hoefler: "Data Movement
//! Is All You Need: A Case Study on Optimizing Transformers" (MLSys 2021)*.
//! The facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `xform-tensor` | CPU tensors, layouts, einsum, kernels (fwd+bwd), fused kernels |
//! | [`dataflow`] | `xform-dataflow` | SDFG-style IR, encoder graphs, flop/IO analysis |
//! | [`gpusim`] | `xform-gpusim` | analytical V100 model, GEMM algorithms, MUE, framework models |
//! | [`core`] | `xform-core` | the recipe: fusion, algebraic fusion, layout sweeps, SSSP selection |
//! | [`transformer`] | `xform-transformer` | executable BERT encoder layer + training loop |
//!
//! # Quickstart
//!
//! ```
//! use substation::dataflow::{analysis, build, EncoderDims};
//!
//! // Step 1 of the recipe: build the dataflow graph and inspect it.
//! let enc = build::encoder(&EncoderDims::bert_large());
//! let shares = analysis::class_shares(&enc.graph);
//! assert!(shares[0].flop_pct > 99.5); // contractions dominate flop…
//! // …but non-contraction operators dominate data movement — the paper's
//! // motivating imbalance. See `examples/quickstart.rs` for the full
//! // fuse → sweep → select pipeline.
//! ```

#![warn(missing_docs)]

pub use xform_core as core;
pub use xform_dataflow as dataflow;
pub use xform_gpusim as gpusim;
pub use xform_tensor as tensor;
pub use xform_transformer as transformer;
