//! Property tests for the static plan analyzer: `parallel_waves()` must
//! respect every hazard edge under random layout perturbations, injected
//! schedule corruptions (shuffled steps, duplicated writes, orphan
//! relayouts) must each be caught statically, and the arena coloring must
//! never alias simultaneously-live buffers while packing the slab down to
//! the liveness analysis's peak-resident prediction — no execution.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xform_core::analyze::{
    analyze, assign_arena, ArenaAssignment, ArenaGranularity, DepKind, PlanLint, Severity,
};
use xform_core::fusion::{apply_plan, decoder_fusion_plan, encoder_fusion_plan};
use xform_core::plan::{ExecutionPlan, Relayout};
use xform_core::recipe::forward_ops;
use xform_dataflow::{build, EncoderDims, Graph};

fn fused_at(dims: &EncoderDims) -> (Graph, ExecutionPlan) {
    let eg = build::encoder(dims);
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn unfused_at(dims: &EncoderDims) -> (Graph, ExecutionPlan) {
    let eg = build::encoder(dims);
    let plan = ExecutionPlan::natural(&eg.graph, &forward_ops(&eg.graph, eg.dy)).unwrap();
    (eg.graph, plan)
}

fn decoder_at(dims: &EncoderDims) -> (Graph, ExecutionPlan) {
    let eg = build::decoder(dims);
    let mut g = eg.graph;
    apply_plan(&mut g, &decoder_fusion_plan()).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn fused() -> (Graph, ExecutionPlan) {
    fused_at(&EncoderDims::tiny())
}

fn unfused() -> (Graph, ExecutionPlan) {
    unfused_at(&EncoderDims::tiny())
}

/// The arena invariants every assignment must satisfy, checked from the
/// slot list alone (independently of the coloring internals):
/// overlapping live intervals get disjoint slab ranges, the slab is
/// exactly the furthest slot extent, it never undershoots the
/// peak-resident words recomputed here from the intervals, and it matches
/// that peak exactly unless a fragmentation lint says otherwise.
fn check_assignment(a: &ArenaAssignment) -> std::result::Result<(), String> {
    for (i, s) in a.slots.iter().enumerate() {
        for t in &a.slots[i + 1..] {
            if s.start <= t.end && t.start <= s.end {
                prop_assert!(
                    s.offset + s.words <= t.offset || t.offset + t.words <= s.offset,
                    "live-overlapping `{}` [{},{}] and `{}` [{},{}] share slab words \
                     ({}+{} vs {}+{})",
                    s.name,
                    s.start,
                    s.end,
                    t.name,
                    t.start,
                    t.end,
                    s.offset,
                    s.words,
                    t.offset,
                    t.words,
                );
            }
        }
    }
    let extent = a
        .slots
        .iter()
        .map(|s| s.offset + s.words)
        .max()
        .unwrap_or(0);
    prop_assert_eq!(a.slab_words, extent);
    let horizon = a.slots.iter().map(|s| s.end).max().unwrap_or(0);
    let peak = (0..=horizon)
        .map(|t| {
            a.slots
                .iter()
                .filter(|s| s.start <= t && t <= s.end)
                .map(|s| s.words)
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);
    prop_assert_eq!(a.target_words, peak);
    prop_assert!(
        a.slab_words >= peak,
        "a slab below peak residency cannot hold the plan"
    );
    if a.lints.is_empty() {
        prop_assert_eq!(a.slab_words, peak);
    } else {
        prop_assert!(a
            .lints
            .iter()
            .all(|l| matches!(l, PlanLint::ArenaFragmentation { .. })));
        prop_assert!(a.slab_words > peak);
    }
    Ok(())
}

/// Rotates `s` left by `n` — always a valid permutation of the layout.
fn rotate(s: &str, n: usize) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let n = n % chars.len();
    chars[n..].iter().chain(&chars[..n]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Any reflowed layout perturbation stays error-clean, and the waves
    // schedule respects every hazard edge (RAW, WAR, WAW) while covering
    // each step exactly once.
    #[test]
    fn waves_respect_hazards_under_random_perturbations(seed in 0u64..10_000) {
        for (g, base) in [unfused(), fused()] {
            let mut plan = base.clone();
            let mut twist = StdRng::seed_from_u64(seed);
            for step in &mut plan.steps {
                for o in step.inputs.iter_mut().chain(step.outputs.iter_mut()) {
                    let n = twist.gen_range(0..4usize);
                    o.layout = rotate(&o.layout, n);
                }
            }
            plan.reflow(&g);
            let a = analyze(&g, &plan);
            prop_assert!(a.is_clean(), "{:?}", a.errors());

            let mut covered: Vec<usize> =
                a.parallel_waves().into_iter().flatten().collect();
            covered.sort_unstable();
            prop_assert_eq!(covered, (0..plan.steps.len()).collect::<Vec<_>>());
            let wave_of = a.wave_of();
            for e in &a.deps {
                prop_assert!(
                    wave_of[e.from] < wave_of[e.to],
                    "wave schedule violates {:?}",
                    e
                );
            }
            // every RAW edge in particular orders producer before consumer
            prop_assert!(a.deps.iter().any(|e| e.kind == DepKind::Raw));
        }
    }

    // Moving the target of any hazard edge in front of its source makes
    // the schedule incoherent, and the analyzer says so.
    #[test]
    fn shuffling_across_a_hazard_edge_is_caught(seed in 0u64..10_000) {
        let (g, base) = fused();
        let a = analyze(&g, &base);
        let raws: Vec<_> = a.deps.iter().filter(|e| e.kind == DepKind::Raw).collect();
        prop_assert!(!raws.is_empty());
        let mut pick = StdRng::seed_from_u64(seed);
        let edge = raws[pick.gen_range(0..raws.len())];
        let mut shuffled = base.clone();
        let moved = shuffled.steps.remove(edge.to);
        shuffled.steps.insert(edge.from, moved);
        let b = analyze(&g, &shuffled);
        prop_assert!(
            !b.is_clean(),
            "consumer of step {} hoisted above it went undetected",
            edge.from
        );
        prop_assert!(b
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::UseBeforeDef { .. })));
    }

    // Duplicating any step is a double write of a single-producer
    // container.
    #[test]
    fn duplicated_steps_are_caught(pick in 0usize..64) {
        let (g, base) = fused();
        let idx = pick % base.steps.len();
        let mut plan = base.clone();
        let dup = plan.steps[idx].clone();
        plan.steps.insert(idx + 1, dup);
        let a = analyze(&g, &plan);
        prop_assert!(
            a.lints
                .iter()
                .any(|l| matches!(l, PlanLint::DoubleWrite { .. })),
            "duplicate of step {idx} went undetected: {:?}",
            a.lints
        );
    }

    // A relayout of a container the step never consumes is flagged, as is
    // a from == to no-op relayout.
    #[test]
    fn orphan_relayouts_are_caught(pick in 0usize..64) {
        let (g, base) = fused();
        let idx = 1 + pick % (base.steps.len() - 1);
        let mut plan = base.clone();
        let foreign = plan.steps[idx].outputs[0].clone();
        if plan.steps[0].inputs.iter().any(|i| i.data == foreign.data) {
            return Ok(()); // skip: not foreign to step 0 after all
        }
        plan.steps[0].relayouts.push(Relayout {
            data: foreign.data,
            name: foreign.name.clone(),
            from: foreign.layout.clone(),
            to: foreign.layout.clone(),
        });
        let a = analyze(&g, &plan);
        prop_assert!(a
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::OrphanRelayout { .. })));
        prop_assert!(a
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::RedundantRelayout { .. })));
    }

    // The arena coloring never aliases simultaneously-live buffers at
    // either granularity, for any problem dimensions — and at serial
    // granularity its declared target is exactly the liveness analysis's
    // peak-resident high-water mark.
    #[test]
    fn arena_coloring_never_aliases_live_buffers(seed in 0u64..10_000) {
        let mut pick = StdRng::seed_from_u64(seed);
        let j = pick.gen_range(2..6);
        let dims = EncoderDims {
            b: pick.gen_range(1..3),
            j,
            k: j, // self-attention requires equal sequence lengths
            h: pick.gen_range(1..3),
            p: pick.gen_range(2..5),
            i: pick.gen_range(2..6),
            u: pick.gen_range(2..8),
        };
        let cases = [unfused_at(&dims), fused_at(&dims), decoder_at(&dims)];
        for (g, plan) in cases {
            let analysis = analyze(&g, &plan);
            prop_assert!(analysis.is_clean());
            for gran in [ArenaGranularity::Serial, ArenaGranularity::Waves] {
                let a = assign_arena(&analysis, gran);
                prop_assert_eq!(a.granularity, gran);
                prop_assert_eq!(a.slots.len(), analysis.liveness.len());
                check_assignment(&a)?;
                if gran == ArenaGranularity::Serial {
                    prop_assert_eq!(a.target_words, analysis.peak_resident_words);
                }
            }
        }
    }
}

#[test]
fn canned_plans_color_to_the_audited_peak_exactly() {
    // On every canned plan the randomized packing search must close the
    // fragmentation gap completely: serial slab bytes == the static
    // audit's peak-resident bytes, with no lint.
    let dims = EncoderDims::tiny();
    for (tag, (g, plan)) in [
        ("encoder/reference", unfused_at(&dims)),
        ("encoder/fused", fused_at(&dims)),
        ("decoder/fused", decoder_at(&dims)),
    ] {
        let analysis = analyze(&g, &plan);
        let a = assign_arena(&analysis, ArenaGranularity::Serial);
        assert!(a.lints.is_empty(), "{tag}: {:?}", a.lints);
        assert_eq!(
            a.slab_words, analysis.peak_resident_words,
            "{tag}: slab must equal the audited peak-resident words"
        );
        assert_eq!(a.slab_bytes(4), analysis.peak_resident_words * 4);
        // the wave-granularity coloring answers to its own (coarser) peak
        let w = assign_arena(&analysis, ArenaGranularity::Waves);
        assert_eq!(
            w.target_words,
            analysis.peak_wave_resident_words().1,
            "{tag}"
        );
        assert!(w.slab_words >= a.target_words, "{tag}");
    }
}

#[test]
fn severity_partition_matches_executability() {
    // a plan whose only lints are warnings still executes; one with any
    // error does not — checked through the public severity API
    let (g, plan) = unfused();
    let lints = plan.check(&g);
    assert!(lints.iter().all(|l| l.severity() != Severity::Error));
    assert!(
        lints.iter().any(|l| l.severity() == Severity::Warning),
        "the unfused schedule should warn about missed fusion"
    );
    let mut broken = plan.clone();
    broken.steps.remove(2);
    assert!(broken
        .check(&g)
        .iter()
        .any(|l| l.severity() == Severity::Error));
}
