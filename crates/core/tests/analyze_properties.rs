//! Property tests for the static plan analyzer: `parallel_waves()` must
//! respect every hazard edge under random layout perturbations, and
//! injected schedule corruptions (shuffled steps, duplicated writes,
//! orphan relayouts) must each be caught statically — no execution.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xform_core::analyze::{analyze, DepKind, PlanLint, Severity};
use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::plan::{ExecutionPlan, Relayout};
use xform_core::recipe::forward_ops;
use xform_dataflow::{build, EncoderDims, Graph};

fn fused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn unfused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let plan = ExecutionPlan::natural(&eg.graph, &forward_ops(&eg.graph, eg.dy)).unwrap();
    (eg.graph, plan)
}

/// Rotates `s` left by `n` — always a valid permutation of the layout.
fn rotate(s: &str, n: usize) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let n = n % chars.len();
    chars[n..].iter().chain(&chars[..n]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Any reflowed layout perturbation stays error-clean, and the waves
    // schedule respects every hazard edge (RAW, WAR, WAW) while covering
    // each step exactly once.
    #[test]
    fn waves_respect_hazards_under_random_perturbations(seed in 0u64..10_000) {
        for (g, base) in [unfused(), fused()] {
            let mut plan = base.clone();
            let mut twist = StdRng::seed_from_u64(seed);
            for step in &mut plan.steps {
                for o in step.inputs.iter_mut().chain(step.outputs.iter_mut()) {
                    let n = twist.gen_range(0..4usize);
                    o.layout = rotate(&o.layout, n);
                }
            }
            plan.reflow(&g);
            let a = analyze(&g, &plan);
            prop_assert!(a.is_clean(), "{:?}", a.errors());

            let mut covered: Vec<usize> =
                a.parallel_waves().into_iter().flatten().collect();
            covered.sort_unstable();
            prop_assert_eq!(covered, (0..plan.steps.len()).collect::<Vec<_>>());
            let wave_of = a.wave_of();
            for e in &a.deps {
                prop_assert!(
                    wave_of[e.from] < wave_of[e.to],
                    "wave schedule violates {:?}",
                    e
                );
            }
            // every RAW edge in particular orders producer before consumer
            prop_assert!(a.deps.iter().any(|e| e.kind == DepKind::Raw));
        }
    }

    // Moving the target of any hazard edge in front of its source makes
    // the schedule incoherent, and the analyzer says so.
    #[test]
    fn shuffling_across_a_hazard_edge_is_caught(seed in 0u64..10_000) {
        let (g, base) = fused();
        let a = analyze(&g, &base);
        let raws: Vec<_> = a.deps.iter().filter(|e| e.kind == DepKind::Raw).collect();
        prop_assert!(!raws.is_empty());
        let mut pick = StdRng::seed_from_u64(seed);
        let edge = raws[pick.gen_range(0..raws.len())];
        let mut shuffled = base.clone();
        let moved = shuffled.steps.remove(edge.to);
        shuffled.steps.insert(edge.from, moved);
        let b = analyze(&g, &shuffled);
        prop_assert!(
            !b.is_clean(),
            "consumer of step {} hoisted above it went undetected",
            edge.from
        );
        prop_assert!(b
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::UseBeforeDef { .. })));
    }

    // Duplicating any step is a double write of a single-producer
    // container.
    #[test]
    fn duplicated_steps_are_caught(pick in 0usize..64) {
        let (g, base) = fused();
        let idx = pick % base.steps.len();
        let mut plan = base.clone();
        let dup = plan.steps[idx].clone();
        plan.steps.insert(idx + 1, dup);
        let a = analyze(&g, &plan);
        prop_assert!(
            a.lints
                .iter()
                .any(|l| matches!(l, PlanLint::DoubleWrite { .. })),
            "duplicate of step {idx} went undetected: {:?}",
            a.lints
        );
    }

    // A relayout of a container the step never consumes is flagged, as is
    // a from == to no-op relayout.
    #[test]
    fn orphan_relayouts_are_caught(pick in 0usize..64) {
        let (g, base) = fused();
        let idx = 1 + pick % (base.steps.len() - 1);
        let mut plan = base.clone();
        let foreign = plan.steps[idx].outputs[0].clone();
        if plan.steps[0].inputs.iter().any(|i| i.data == foreign.data) {
            return Ok(()); // skip: not foreign to step 0 after all
        }
        plan.steps[0].relayouts.push(Relayout {
            data: foreign.data,
            name: foreign.name.clone(),
            from: foreign.layout.clone(),
            to: foreign.layout.clone(),
        });
        let a = analyze(&g, &plan);
        prop_assert!(a
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::OrphanRelayout { .. })));
        prop_assert!(a
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::RedundantRelayout { .. })));
    }
}

#[test]
fn severity_partition_matches_executability() {
    // a plan whose only lints are warnings still executes; one with any
    // error does not — checked through the public severity API
    let (g, plan) = unfused();
    let lints = plan.check(&g);
    assert!(lints.iter().all(|l| l.severity() != Severity::Error));
    assert!(
        lints.iter().any(|l| l.severity() == Severity::Warning),
        "the unfused schedule should warn about missed fusion"
    );
    let mut broken = plan.clone();
    broken.steps.remove(2);
    assert!(broken
        .check(&g)
        .iter()
        .any(|l| l.severity() == Severity::Error));
}
