//! Property tests for the static cache-hierarchy analyzer: over random
//! cache geometries and every canned tiny plan, predicted DRAM traffic
//! must be monotone non-increasing in cache capacity, must never exceed
//! the flat audit's byte account, must equal it exactly when the
//! hierarchy has no levels, and the cache-corrected MUE must dominate
//! the flat MUE without touching `Q` — no execution, analysis only.

use proptest::collection;
use proptest::prelude::*;

use xform_core::analyze::audit;
use xform_core::cachemodel::{cache_audit, plan_dram_words, CacheGeometry, CacheLevel};
use xform_core::fusion::{apply_epilogues, apply_plan, decoder_fusion_plan, encoder_fusion_plan};
use xform_core::plan::ExecutionPlan;
use xform_core::recipe::forward_ops;
use xform_dataflow::{build, EncoderDims, Graph};
use xform_gpusim::DeviceSpec;

fn fused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn epilogue() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
    apply_epilogues(&mut g).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn unfused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let plan = ExecutionPlan::natural(&eg.graph, &forward_ops(&eg.graph, eg.dy)).unwrap();
    (eg.graph, plan)
}

fn decoder() -> (Graph, ExecutionPlan) {
    let eg = build::decoder(&EncoderDims::tiny());
    let mut g = eg.graph;
    apply_plan(&mut g, &decoder_fusion_plan()).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn plans() -> Vec<(Graph, ExecutionPlan)> {
    vec![fused(), epilogue(), unfused(), decoder()]
}

/// A random hierarchy: up to three levels with arbitrary (unsorted,
/// possibly tiny or generous) capacities — `CacheGeometry::new` owns the
/// sorting and zero-dropping.
fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    collection::vec((1u64..4097, 0usize..3, 1u64..17), 0..4).prop_map(|levels| {
        CacheGeometry::new(
            levels
                .into_iter()
                .enumerate()
                .map(|(i, (kib, line_ix, assoc))| CacheLevel {
                    name: format!("L{}", i + 1),
                    size_bytes: kib << 10,
                    line_bytes: [16, 32, 64][line_ix],
                    assoc,
                })
                .collect(),
        )
    })
}

/// Grows every level of `g` by `factor` and optionally appends one more,
/// larger level — a strictly more capable hierarchy.
fn grown(g: &CacheGeometry, factor: u64, extra: bool) -> CacheGeometry {
    let mut levels: Vec<CacheLevel> = g
        .levels
        .iter()
        .map(|l| CacheLevel {
            size_bytes: l.size_bytes * factor,
            ..l.clone()
        })
        .collect();
    if extra {
        levels.push(CacheLevel {
            name: "LLC".to_string(),
            size_bytes: levels.iter().map(|l| l.size_bytes).max().unwrap_or(1 << 20) * 4,
            line_bytes: 64,
            assoc: 16,
        });
    }
    CacheGeometry::new(levels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Growing every level (and optionally adding one) never increases
    // the predicted DRAM traffic: the hit set is monotone in capacity.
    #[test]
    fn dram_words_monotone_in_cache_size(
        geom in arb_geometry(),
        factor in 2u64..17,
        extra in any::<bool>(),
        wb_ix in 0usize..3,
    ) {
        let wb = [1u64, 2, 4][wb_ix];
        let bigger = grown(&geom, factor, extra);
        for (g, plan) in plans() {
            let base = plan_dram_words(&g, &plan, &geom, wb);
            let less = plan_dram_words(&g, &plan, &bigger, wb);
            prop_assert!(
                less <= base,
                "growing the hierarchy raised predicted DRAM: {less} > {base} words"
            );
        }
    }

    // Predicted DRAM bytes never exceed the flat audit's byte account —
    // the cache can only remove traffic, never add it.
    #[test]
    fn dram_bytes_never_exceed_flat_audit(geom in arb_geometry()) {
        let device = DeviceSpec::v100();
        let wb = device.word_bytes as u64;
        for (g, plan) in plans() {
            let flat = audit(&g, &plan, &device);
            let dram = plan_dram_words(&g, &plan, &geom, wb);
            prop_assert!(
                dram * wb <= flat.total_bytes(),
                "predicted {} DRAM bytes exceed the flat audit's {}",
                dram * wb,
                flat.total_bytes()
            );
        }
    }

    // The cache-corrected MUE dominates the flat MUE under any
    // hierarchy, with `Q` untouched and `D` never raised.
    #[test]
    fn cache_mue_dominates_flat(geom in arb_geometry()) {
        let device = DeviceSpec::v100();
        for (g, plan) in plans() {
            let flat = audit(&g, &plan, &device);
            let cached = cache_audit(&g, &plan, &device, &geom);
            prop_assert!(cached.plan_mue.value + 1e-9 >= flat.plan_mue.value);
            prop_assert!((cached.plan_mue.q_words - flat.plan_mue.q_words).abs() < 0.5);
            prop_assert!(cached.plan_mue.d_words <= flat.plan_mue.d_words + 0.5);
        }
    }
}

/// With no cache levels every reference reaches DRAM: the prediction
/// degenerates to the flat audit's byte account exactly, and the
/// corrected MUE equals the flat one.
#[test]
fn zero_geometry_is_exactly_the_flat_audit() {
    let device = DeviceSpec::v100();
    let wb = device.word_bytes as u64;
    for (g, plan) in plans() {
        let flat = audit(&g, &plan, &device);
        let dram = plan_dram_words(&g, &plan, &CacheGeometry::none(), wb);
        assert_eq!(dram * wb, flat.total_bytes());
        let cached = cache_audit(&g, &plan, &device, &CacheGeometry::none());
        assert!((cached.plan_mue.value - flat.plan_mue.value).abs() < 1e-9);
    }
}
