//! Property tests for the access-path certifier: every injected access
//! corruption — an out-of-bounds retarget, a strided inner loop, an
//! intra-step write/read alias, a tampered arena slot — must surface as
//! the right typed lint statically, and the out-of-bounds case must also
//! be caught dynamically by the shadow interpreter's certified-path
//! cross-check when the static gate is bypassed (`XFORM_SANITIZE`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xform_core::access::{certify_access, certify_access_arena, step_accesses};
use xform_core::analyze::{analyze, assign_arena, ArenaGranularity, PlanLint, Severity};
use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::plan::{random_externals, ExecOptions, ExecutionPlan};
use xform_core::recipe::forward_ops;
use xform_core::sanitize::execute_plan_sanitized;
use xform_dataflow::{build, EncoderDims, Graph};

fn fused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn unfused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let plan = ExecutionPlan::natural(&eg.graph, &forward_ops(&eg.graph, eg.dy)).unwrap();
    (eg.graph, plan)
}

fn opts() -> ExecOptions<'static> {
    ExecOptions::builder().scaler(1.0 / (3f32).sqrt()).build()
}

/// Runs the shadow interpreter (static gate bypassed) over a possibly
/// tampered plan, binding externals from the untampered plan.
fn shadow_run(
    graph: &Graph,
    sound: &ExecutionPlan,
    tampered: &ExecutionPlan,
) -> xform_tensor::Result<()> {
    let mut state = random_externals(graph, sound, 17).unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    execute_plan_sanitized(graph, tampered, &mut state, &opts(), &mut rng, None)
}

/// Rotates a layout spec left by one: `"hbjk"` → `"bjkh"`. On a rank > 1
/// swept container this moves the innermost axis, de-vectorizing the
/// kernel's inner loop.
fn rotate(spec: &str) -> String {
    let mut cs: Vec<char> = spec.chars().collect();
    cs.rotate_left(1);
    cs.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Retargeting an input operand (data + environment name) at a
    // strictly smaller container leaves the kernel sweeping the original
    // edge's words through a buffer that cannot hold them: the certifier
    // proves the escape (UnprovenAccess, error severity), and the shadow
    // interpreter's certified-path cross-check catches the same escape
    // at runtime before the kernel runs.
    #[test]
    fn out_of_bounds_retarget_is_convicted_and_caught(
        step_pick in 0usize..64, input_pick in 0usize..8,
    ) {
        for (g, sound) in [unfused(), fused()] {
            // the smallest container named anywhere in the plan (a bias)
            let victim = sound
                .steps
                .iter()
                .flat_map(|s| s.inputs.iter())
                .min_by_key(|o| g.data(o.data).unwrap().shape.num_elements())
                .unwrap()
                .clone();
            let victim_words = g.data(victim.data).unwrap().shape.num_elements();

            // pick a (step, input) whose edge is strictly larger than the
            // victim and which doesn't already touch the victim's name
            let mut plan = sound.clone();
            let n = plan.steps.len();
            let pick = (0..n)
                .flat_map(|si| (0..plan.steps[si].inputs.len()).map(move |k| (si, k)))
                .cycle()
                .skip(step_pick * 7 + input_pick)
                .take(n * 8)
                .find(|&(si, k)| {
                    let s = &plan.steps[si];
                    let edge = g.inputs_of(s.op)[k];
                    g.data(edge).unwrap().shape.num_elements() > victim_words
                        && s.inputs.iter().all(|o| o.name != victim.name)
                        && s.outputs.iter().all(|o| o.name != victim.name)
                });
            let Some((si, k)) = pick else { return Ok(()) };
            plan.steps[si].inputs[k].data = victim.data;
            plan.steps[si].inputs[k].name = victim.name.clone();
            plan.steps[si].relayouts.clear();

            let lints = certify_access(&g, &plan)
                .expect_err("an out-of-bounds retarget must not certify");
            prop_assert!(
                lints.iter().any(|l| matches!(
                    l,
                    PlanLint::UnprovenAccess { step, .. } if *step == si
                )),
                "expected an UnprovenAccess lint at step {si}, got {lints:?}"
            );
            prop_assert!(
                lints.iter().any(|l| l.severity() == Severity::Error),
                "the conviction must be error severity"
            );

            let err = shadow_run(&g, &sound, &plan)
                .expect_err("the shadow interpreter must catch the escape");
            prop_assert!(
                err.to_string().contains("ends at word")
                    || err.to_string().contains("sanitizer"),
                "expected the certified-path cross-check to fire, got: {err}"
            );
        }
    }

    // Rotating a swept operand's layout moves the kernel's inner loop off
    // the contiguous axis. That is not a safety violation — the certifier
    // still certifies — but the step loses its license (StridedInnerLoop,
    // warning severity) and must take the checked fallback.
    #[test]
    fn strided_inner_loop_demotes_but_does_not_reject(step_pick in 0usize..64) {
        let (g, sound) = fused();
        let baseline = certify_access(&g, &sound).expect("the canned plan certifies");
        // pick a licensed step whose first input, once rotated, genuinely
        // sweeps with a non-unit inner stride (a singleton axis moved to
        // the innermost slot would leave the walk contiguous)
        let n = sound.steps.len();
        let mut found = None;
        for off in 0..n {
            let si = (step_pick + off) % n;
            if !baseline.licensed(si) {
                continue;
            }
            let s = &sound.steps[si];
            let Some(op0) = s.inputs.first() else { continue };
            if op0.layout.len() < 2 {
                continue;
            }
            let mut step = s.clone();
            step.inputs[0].layout = rotate(&op0.layout);
            let sa = step_accesses(&g, &step);
            if sa
                .accesses
                .iter()
                .any(|a| a.swept && a.path.inner_stride() != 1)
            {
                found = Some((si, step));
                break;
            }
        }
        let Some((si, step)) = found else { return Ok(()) };
        let mut plan = sound.clone();
        plan.steps[si] = step;

        let cert = certify_access(&g, &plan)
            .expect("a strided loop is a demotion, not a rejection");
        prop_assert!(
            !cert.licensed(si),
            "step {si} must lose its license after the layout rotation"
        );
        prop_assert!(
            cert.lints.iter().any(|l| matches!(
                l,
                PlanLint::StridedInnerLoop { step, .. } if *step == si
            )),
            "expected a StridedInnerLoop lint at step {si}, got {:?}",
            cert.lints
        );
        prop_assert!(
            cert.lints
                .iter()
                .all(|l| l.severity() == Severity::Warning),
            "strided demotions are warnings, never errors"
        );
    }

    // Pointing a step's output at one of its own input containers is a
    // write/read overlap the race certificate never granted: rejected
    // with an error lint, and the shadow interpreter refuses the same
    // step at runtime.
    #[test]
    fn intra_step_alias_is_convicted_and_caught(step_pick in 0usize..64) {
        let (g, sound) = fused();
        let n = sound.steps.len();
        // pick a step with a same-shape input/output pair so the only
        // defect is the alias itself (not a size mismatch)
        let pick = (0..n)
            .cycle()
            .skip(step_pick)
            .take(n)
            .find(|&si| {
                let s = &sound.steps[si];
                s.inputs.first().zip(s.outputs.first()).is_some_and(|(i, o)| {
                    g.data(i.data).unwrap().shape.num_elements()
                        == g.data(o.data).unwrap().shape.num_elements()
                })
            });
        let Some(si) = pick else { return Ok(()) };
        let mut plan = sound.clone();
        // the output now writes through the input's container while still
        // declaring its own name: a same-data write/read overlap
        plan.steps[si].outputs[0].data = plan.steps[si].inputs[0].data;

        let lints = certify_access(&g, &plan)
            .expect_err("an intra-step write/read alias must not certify");
        prop_assert!(
            lints.iter().any(|l| matches!(
                l,
                PlanLint::UnprovenAccess { step, .. } if *step == si
            )),
            "expected an UnprovenAccess lint at step {si}, got {lints:?}"
        );

        let err = shadow_run(&g, &sound, &plan)
            .expect_err("the shadow interpreter must catch the alias");
        prop_assert!(!err.to_string().is_empty());
    }

    // Tampering with the arena coloring — shrinking a slot under its
    // container — breaks the slab embedding: the arena-level certifier
    // convicts it even though the logical certificate is clean.
    #[test]
    fn shrunken_arena_slot_is_convicted(victim_pick in 0usize..64, serial in any::<bool>()) {
        let (g, plan) = fused();
        let analysis = analyze(&g, &plan);
        let gran = if serial {
            ArenaGranularity::Serial
        } else {
            ArenaGranularity::Waves
        };
        let mut arena = assign_arena(&analysis, gran);
        certify_access_arena(&g, &plan, &arena).expect("the untampered coloring certifies");

        let shrinkable: Vec<usize> = (0..arena.slots.len())
            .filter(|&i| arena.slots[i].words > 1)
            .collect();
        prop_assert!(!shrinkable.is_empty());
        let vi = shrinkable[victim_pick % shrinkable.len()];
        arena.slots[vi].words /= 2;

        let lints = certify_access_arena(&g, &plan, &arena)
            .expect_err("a shrunken slot must not certify");
        prop_assert!(
            lints.iter().any(|l| matches!(l, PlanLint::UnprovenAccess { .. })),
            "expected an UnprovenAccess conviction, got {lints:?}"
        );
    }
}
