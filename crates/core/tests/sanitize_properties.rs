//! Property tests for the footprint sanitizer and race certifier: each
//! injected corruption — an under-declared operand, an overlapping
//! aliased write, a wave-internal WAR race — must be rejected statically
//! by `certify`/`certify_waves`, and caught dynamically by the shadow
//! interpreter when the static check is bypassed
//! (`execute_plan_sanitized` runs without the lint gate).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xform_core::analyze::{analyze, DepKind, PlanLint};
use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::plan::{random_externals, ExecOptions, ExecutionPlan};
use xform_core::recipe::forward_ops;
use xform_core::sanitize::{certify, certify_waves, execute_plan_sanitized};
use xform_dataflow::{build, DataRole, EncoderDims, Graph, OpKind};
use xform_tensor::Shape;

fn fused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
    let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
    (g, plan)
}

fn unfused() -> (Graph, ExecutionPlan) {
    let eg = build::encoder(&EncoderDims::tiny());
    let plan = ExecutionPlan::natural(&eg.graph, &forward_ops(&eg.graph, eg.dy)).unwrap();
    (eg.graph, plan)
}

fn opts() -> ExecOptions<'static> {
    ExecOptions::builder().scaler(1.0 / (3f32).sqrt()).build()
}

/// Runs the shadow interpreter over a (possibly corrupted) plan with the
/// static gate bypassed, binding externals from the *untampered* plan so
/// every legitimately-consumed container exists.
fn shadow_run(
    graph: &Graph,
    sound: &ExecutionPlan,
    tampered: &ExecutionPlan,
    waves: Option<&[Vec<usize>]>,
) -> xform_tensor::Result<()> {
    let mut state = random_externals(graph, sound, 17).unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    execute_plan_sanitized(graph, tampered, &mut state, &opts(), &mut rng, waves)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Dropping any declared input operand under-declares the step's
    // footprint: the certifier rejects it (with an explicit
    // UnderDeclaredFootprint lint), and the shadow interpreter catches
    // the kernel touching the undeclared container at runtime.
    #[test]
    fn under_declared_operand_is_rejected_and_caught(step_pick in 0usize..64, input_pick in 0usize..8) {
        for (g, sound) in [unfused(), fused()] {
            let mut plan = sound.clone();
            let si = step_pick % plan.steps.len();
            let step = &mut plan.steps[si];
            prop_assert!(!step.inputs.is_empty());
            let removed = step.inputs.remove(input_pick % step.inputs.len());
            // keep the relayout list consistent with the declared operands
            step.relayouts.retain(|r| r.data != removed.data);

            let lints = certify(&g, &plan).expect_err("under-declaration must not certify");
            prop_assert!(
                lints.iter().any(|l| matches!(
                    l,
                    PlanLint::UnderDeclaredFootprint { step, declared_words: 0, .. } if *step == si
                )),
                "expected an UnderDeclaredFootprint lint at step {si}, got {lints:?}"
            );

            let err = shadow_run(&g, &sound, &plan, None)
                .expect_err("the shadow interpreter must catch the undeclared access");
            prop_assert!(err.to_string().contains("sanitizer") || !err.to_string().is_empty());
        }
    }

    // Renaming a step's output to another container's name makes two
    // distinct buffers share one environment slot — an overlapping write
    // through an alias. Rejected statically (NameAlias), caught
    // dynamically by the per-step name check.
    #[test]
    fn aliased_overlapping_write_is_rejected_and_caught(step_pick in 0usize..64, victim_pick in 0usize..64) {
        let (g, sound) = fused();
        let mut plan = sound.clone();
        let n = plan.steps.len();
        let si = step_pick % n;
        let vi = victim_pick % n;
        let victim = plan.steps[vi].outputs[0].name.clone();
        if plan.steps[si].outputs[0].name == victim {
            return Ok(()); // picked itself; nothing aliased
        }
        plan.steps[si].outputs[0].name = victim;

        let lints = certify(&g, &plan).expect_err("an aliased write must not certify");
        prop_assert!(
            lints.iter().any(|l| matches!(l, PlanLint::NameAlias { step, .. } if *step == si)),
            "expected a NameAlias lint at step {si}, got {lints:?}"
        );

        let err = shadow_run(&g, &sound, &plan, None)
            .expect_err("the shadow interpreter must catch the alias");
        prop_assert!(err.to_string().contains("alias"), "{err}");
    }

    // A container with two legitimate writers (slice-writer pattern) and a
    // reader between them carries a genuine WAR edge. Merging the reader's
    // and the rewriter's waves injects a wave-internal WAR race: the
    // certifier refuses the partition, and the shadow interpreter flags
    // the same conflict when handed the partition directly.
    #[test]
    fn wave_internal_war_race_is_rejected_and_caught(rows in 2usize..6, cols in 2usize..6) {
        let mut g = Graph::new();
        let shape = || Shape::new([('b', rows), ('i', cols)]).unwrap();
        let a = g.add_data("a", shape(), DataRole::Input);
        let b = g.add_data("b", shape(), DataRole::Input);
        let c = g.add_data("c", shape(), DataRole::Input);
        let y = g.add_data("y", shape(), DataRole::Activation);
        let w = g.add_data("w", shape(), DataRole::Output);
        let z = g.add_data("z", shape(), DataRole::Output);
        let first = g.add_op("first write", OpKind::Residual, &[a, b], &[y]);
        let reader = g.add_op("reader", OpKind::Residual, &[y, a], &[w]);
        let rewrite = g.add_op("rewrite", OpKind::Residual, &[a, c], &[y]);
        let sink = g.add_op("sink", OpKind::Residual, &[y, w], &[z]);
        let plan = ExecutionPlan::natural(&g, &[first, reader, rewrite, sink]).unwrap();

        // sound: the analyzer serializes the WAR hazard and certifies
        let analysis = analyze(&g, &plan);
        prop_assert!(analysis.is_clean(), "{:?}", analysis.errors());
        prop_assert!(
            analysis.deps.iter().any(|e| e.kind == DepKind::War && e.from == 1 && e.to == 2),
            "expected a WAR edge reader→rewrite, got {:?}",
            analysis.deps
        );
        certify(&g, &plan).expect("the serialized schedule certifies");

        // injected: reader and rewriter share a wave
        let racy = vec![vec![0], vec![1, 2], vec![3]];
        let lints = certify_waves(&g, &plan, &racy).expect_err("a WAR race within a wave");
        prop_assert!(
            lints.iter().any(|l| matches!(
                l,
                PlanLint::WaveHazard { kind: DepKind::War, from: 1, to: 2, .. }
            )),
            "expected a WAR WaveHazard, got {lints:?}"
        );

        let err = shadow_run(&g, &plan, &plan, Some(&racy))
            .expect_err("the shadow interpreter must flag the racy partition");
        prop_assert!(err.to_string().contains("race"), "{err}");
    }
}

// The tampered plans above must be rejected by the production entry
// points too: `execute_plan` gates on the same error lints the certifier
// aggregates, and `execute_plan_parallel` only accepts a certificate —
// which the corrupted plans can never obtain.
#[test]
fn corrupted_plans_cannot_reach_execution() {
    use rand::Rng;
    let (g, sound) = fused();
    let mut under = sound.clone();
    under.steps[3].inputs.pop();
    let mut aliased = sound.clone();
    aliased.steps[2].outputs[0].name = sound.steps[5].outputs[0].name.clone();
    for plan in [&under, &aliased] {
        let mut state = random_externals(&g, &sound, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen::<u32>();
        let err = xform_core::plan::execute_plan(&g, plan, &mut state, &opts(), &mut rng)
            .expect_err("the serial interpreter refuses error-lint plans");
        assert!(err.to_string().contains("invalid execution plan"), "{err}");
        assert!(certify(&g, plan).is_err());
    }
}
