//! Property-based tests of the recipe machinery: sweeps dominate their
//! per-layout tables, selection respects its lower bound, fusion-plan
//! application preserves totals across dimension choices.

use proptest::prelude::*;

use xform_core::fusion::{apply_plan, detect_groups, encoder_fusion_plan};
use xform_core::recipe::{backward_ops, forward_ops};
use xform_core::selection::{select_forward, translate_layout};
use xform_core::sweep::{sweep_all, sweep_op, SimulatorSource, SweepOptions};
use xform_dataflow::{build, flops, EncoderDims};
use xform_gpusim::DeviceSpec;

fn arb_dims() -> impl Strategy<Value = EncoderDims> {
    (1usize..3, 2usize..5, 1usize..3, 2usize..4, 2usize..6).prop_map(|(b, j, h, p, u)| {
        EncoderDims {
            b,
            j,
            k: j,
            h,
            p,
            i: h * p,
            u,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sweep_best_dominates_per_io_table(dims in arb_dims(), pick in 0usize..14) {
        let mut g = build::encoder(&dims).graph;
        let fused = apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let op = fused[pick % fused.len()];
        let sweep = sweep_op(
            &SimulatorSource::default(),
            &g,
            op,
            SweepOptions { max_configs: Some(1500), ..SweepOptions::default() },
        )
        .unwrap();
        for t in sweep.per_io.values() {
            prop_assert!(t.time_us + 1e-9 >= sweep.best.time_us);
        }
        prop_assert!(sweep.worst_us + 1e-9 >= sweep.best.time_us);
        prop_assert!(!sweep.times_us.is_empty());
    }

    #[test]
    fn selection_bounded_by_per_op_best(dims in arb_dims()) {
        let device = DeviceSpec::v100();
        let mut g = build::encoder(&dims).graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let dy = g.data_by_name("dy").unwrap();
        let fwd = forward_ops(&g, dy);
        let sweeps = sweep_all(
            &SimulatorSource { device: device.clone() },
            &g,
            SweepOptions { max_configs: Some(1500), ..SweepOptions::default() },
        )
        .unwrap();
        let sel = select_forward(&g, &device, &fwd, &sweeps).unwrap();
        prop_assert!(sel.total_us + 1e-9 >= sel.per_op_best_us);
        prop_assert_eq!(sel.per_op.len(), fwd.len());
        // every chosen timing is at least its op's best
        for (op, t) in &sel.per_op {
            prop_assert!(t.time_us + 1e-9 >= sweeps[op].best.time_us);
        }
    }

    #[test]
    fn fusion_plan_invariant_across_dims(dims in arb_dims()) {
        let unfused = build::encoder(&dims).graph;
        let flop_before = flops::total_flop(&unfused);
        let io_before = unfused.total_io_words();
        let mut g = unfused;
        let fused = apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        prop_assert_eq!(fused.len(), 14);
        prop_assert_eq!(flops::total_flop(&g), flop_before);
        prop_assert!(g.total_io_words() < io_before);
        // forward/backward split is stable
        let dy = g.data_by_name("dy").unwrap();
        prop_assert_eq!(forward_ops(&g, dy).len(), 11);
        prop_assert_eq!(backward_ops(&g, dy).len(), 21);
    }

    #[test]
    fn detection_partitions_non_contractions(dims in arb_dims()) {
        let g = build::encoder(&dims).graph;
        let groups = detect_groups(&g);
        let mut seen = std::collections::HashSet::new();
        for grp in &groups {
            prop_assert!(!grp.is_empty());
            for id in grp {
                prop_assert!(seen.insert(*id), "op in two groups");
            }
        }
    }

    #[test]
    fn translate_layout_roundtrips(perm in 0usize..24) {
        // translating a layout to another alphabet and back is identity
        let layouts = xform_tensor::Layout::all(4);
        let l = &layouts[perm % layouts.len()];
        let from = "phbj";
        let to = "whbk";
        let spec: String = l.order().iter().map(|&i| from.chars().nth(i).unwrap()).collect();
        let there = translate_layout(&spec, from, to);
        let back = translate_layout(&there, to, from);
        prop_assert_eq!(back, spec);
    }
}
