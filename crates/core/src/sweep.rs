//! Exhaustive per-operator configuration sweeps (Sec. V).
//!
//! For each operator, every feasible configuration (layout permutations,
//! vectorization/warp axes, GEMM algorithm, math mode) is priced through a
//! [`PerfSource`] — the V100 model by default, but the trait also admits
//! real CPU measurements, demonstrating that the recipe is
//! hardware-agnostic. The sweep records the full runtime distribution
//! (Figs. 4 & 5) and, for the configuration-selection step, the best
//! configuration for every (input-layout, output-layout) pair.

use std::collections::HashMap;

use xform_dataflow::{DataRole, Graph, NodeId};
use xform_gpusim::opmodel::{config_space, op_cost, OpConfig, OpModel};
use xform_gpusim::{DeviceSpec, KernelCost};
use xform_tensor::{Result, TensorError};

/// A provider of per-configuration operator timings.
///
/// Sources must be [`Sync`]: [`sweep_all`] prices different operators from
/// multiple threads against one shared source.
pub trait PerfSource: Sync {
    /// Human-readable source name (for reports).
    fn name(&self) -> &str;

    /// Prices one operator configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid for the operator.
    fn measure(&self, graph: &Graph, op: NodeId, cfg: &OpConfig) -> Result<KernelCost>;

    /// Prices many configurations of one operator. Sources should override
    /// this when per-operator setup (shape gathering, buffer allocation)
    /// can be amortized across the sweep.
    fn measure_many(
        &self,
        graph: &Graph,
        op: NodeId,
        cfgs: &[OpConfig],
    ) -> Vec<Result<KernelCost>> {
        cfgs.iter().map(|c| self.measure(graph, op, c)).collect()
    }
}

/// The analytical V100 model as a performance source.
#[derive(Debug, Clone, Default)]
pub struct SimulatorSource {
    /// The modelled device.
    pub device: DeviceSpec,
}

impl PerfSource for SimulatorSource {
    fn name(&self) -> &str {
        &self.device.name
    }

    fn measure(&self, graph: &Graph, op: NodeId, cfg: &OpConfig) -> Result<KernelCost> {
        op_cost(&self.device, graph, op, cfg)
    }

    fn measure_many(
        &self,
        graph: &Graph,
        op: NodeId,
        cfgs: &[OpConfig],
    ) -> Vec<Result<KernelCost>> {
        match OpModel::new(graph, op) {
            Ok(model) => cfgs.iter().map(|c| model.cost(&self.device, c)).collect(),
            Err(e) => cfgs.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}

/// One timed configuration.
#[derive(Debug, Clone)]
pub struct ConfigTiming {
    /// The configuration.
    pub cfg: OpConfig,
    /// Its modelled/measured kernel time in µs.
    pub time_us: f64,
}

/// Sweep output for one operator.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The operator id.
    pub op: NodeId,
    /// The operator name.
    pub name: String,
    /// Fastest configuration found.
    pub best: ConfigTiming,
    /// Slowest sampled time (the far end of the violin).
    pub worst_us: f64,
    /// Every sampled time, unsorted (the distribution of Figs. 4/5).
    pub times_us: Vec<f64>,
    /// Best configuration per (flowing-input layout, primary-output
    /// layout) pair — the edge weights of the selection graph (Sec. VI-A).
    pub per_io: HashMap<(String, String), ConfigTiming>,
    /// Index of the flowing input among the op's inputs.
    pub flowing_input: usize,
}

/// Options controlling a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// If set, sample at most this many configurations (stride sampling).
    /// Best/worst remain correct with respect to the sample only.
    pub max_configs: Option<usize>,
    /// Worker threads [`sweep_all`] spreads operators across. Defaults to
    /// the host's available parallelism; `1` (or `0`) sweeps serially.
    /// Results are identical regardless of the thread count — each
    /// operator's sweep is an independent pure computation.
    pub threads: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            max_configs: None,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// The index of an operator's *flowing* input: the non-weight input with
/// the largest memlet volume (ties broken by position). This is the tensor
/// whose layout the configuration-selection chain threads through the
/// graph.
pub fn flowing_input_index(graph: &Graph, op: NodeId) -> usize {
    let topo = graph.topo_ops();
    let rank = |id: NodeId| topo.iter().position(|&o| o == id).unwrap_or(0);
    let inputs = graph.inputs_of(op);
    let mut best = 0usize;
    let mut best_key = (0u64, 0usize);
    for (i, &d) in inputs.iter().enumerate() {
        let Some(node) = graph.data(d) else { continue };
        if node.role == DataRole::Weight {
            continue;
        }
        let vol = node.shape.num_elements() as u64;
        // Ties (equal volumes) go to the tensor whose producer executes
        // latest: the one deeper in the chain is the true flowing
        // continuation (e.g. Gamma's `alpha` from softmax, not its `vv`
        // from the input projections).
        let producer_rank = graph
            .producers_of(d)
            .into_iter()
            .map(rank)
            .max()
            .unwrap_or(0);
        let key = (vol, producer_rank);
        if key > best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Sweeps one operator's configuration space through a performance source.
///
/// # Errors
///
/// Returns an error if the op is invalid or the space is empty.
///
/// # Examples
///
/// ```
/// use xform_core::sweep::{sweep_op, SimulatorSource, SweepOptions};
/// use xform_dataflow::{build, EncoderDims};
/// let e = build::encoder(&EncoderDims::bert_large());
/// let op = e.graph.op_by_name("Scaled softmax").unwrap();
/// let r = sweep_op(&SimulatorSource::default(), &e.graph, op,
///                  SweepOptions { max_configs: Some(200), ..SweepOptions::default() }).unwrap();
/// assert!(r.worst_us >= r.best.time_us); // layouts matter
/// ```
pub fn sweep_op(
    source: &dyn PerfSource,
    graph: &Graph,
    op: NodeId,
    opts: SweepOptions,
) -> Result<SweepResult> {
    let name = graph
        .op(op)
        .ok_or_else(|| TensorError::Unsupported(format!("{op} is not an operator")))?
        .name
        .clone();
    let space = config_space(graph, op)?;
    let stride = match opts.max_configs {
        Some(m) if space.len() > m => space.len().div_ceil(m),
        _ => 1,
    };
    let flowing = flowing_input_index(graph, op);
    let sampled: Vec<OpConfig> = space.into_iter().step_by(stride).collect();
    let costs = source.measure_many(graph, op, &sampled);
    let mut best: Option<ConfigTiming> = None;
    let mut worst = 0.0f64;
    let mut times = Vec::new();
    let mut per_io: HashMap<(String, String), ConfigTiming> = HashMap::new();
    for (cfg, cost) in sampled.into_iter().zip(costs) {
        let Ok(cost) = cost else { continue };
        let t = cost.time_us;
        times.push(t);
        worst = worst.max(t);
        if best.as_ref().map(|b| t < b.time_us).unwrap_or(true) {
            best = Some(ConfigTiming {
                cfg: cfg.clone(),
                time_us: t,
            });
        }
        let in_key = if flowing == 1 {
            cfg.in2_spec.clone().unwrap_or_else(|| cfg.in_spec.clone())
        } else {
            cfg.in_spec.clone()
        };
        let key = (in_key, cfg.out_spec.clone());
        match per_io.get(&key) {
            Some(prev) if prev.time_us <= t => {}
            _ => {
                per_io.insert(key, ConfigTiming { cfg, time_us: t });
            }
        }
    }
    let best = best
        .ok_or_else(|| TensorError::Unsupported(format!("no valid configuration for `{name}`")))?;
    Ok(SweepResult {
        op,
        name,
        best,
        worst_us: worst,
        times_us: times,
        per_io,
        flowing_input: flowing,
    })
}

/// Sweeps every operator of a graph, with per-op results keyed by id.
///
/// Operators are striped across `opts.threads` scoped worker threads
/// ([`crossbeam::scope`]); each operator's sweep is an independent pure
/// computation, so the result map is identical for any thread count.
///
/// # Errors
///
/// Propagates the first per-op failure (in operator order).
pub fn sweep_all(
    source: &dyn PerfSource,
    graph: &Graph,
    opts: SweepOptions,
) -> Result<HashMap<NodeId, SweepResult>> {
    let ops = graph.ops();
    let threads = opts.threads.max(1).min(ops.len().max(1));
    if threads <= 1 {
        let mut out = HashMap::new();
        for op in ops {
            out.insert(op, sweep_op(source, graph, op, opts)?);
        }
        return Ok(out);
    }
    let results: Vec<Vec<(usize, Result<SweepResult>)>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ops = &ops;
                s.spawn(move |_| {
                    ops.iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(i, &op)| (i, sweep_op(source, graph, op, opts)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope panicked");
    // merge, surfacing the earliest failure in operator order
    let mut merged: Vec<Option<Result<SweepResult>>> = (0..ops.len()).map(|_| None).collect();
    for (i, r) in results.into_iter().flatten() {
        merged[i] = Some(r);
    }
    let mut out = HashMap::new();
    for (slot, &op) in merged.into_iter().zip(&ops) {
        let r = slot.expect("every operator swept")?;
        out.insert(op, r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xform_dataflow::{build, EncoderDims};

    fn sim() -> SimulatorSource {
        SimulatorSource::default()
    }

    #[test]
    fn sweep_finds_spread_on_softmax() {
        let e = build::encoder(&EncoderDims::bert_large());
        let op = e.graph.op_by_name("Scaled softmax").unwrap();
        let r = sweep_op(&sim(), &e.graph, op, SweepOptions::default()).unwrap();
        assert!(r.worst_us / r.best.time_us > 5.0);
        assert!(!r.per_io.is_empty());
        assert_eq!(r.times_us.len(), 24 * 24 * 4 * 4);
    }

    #[test]
    fn per_io_entries_dominate_best() {
        let e = build::encoder(&EncoderDims::bert_large());
        let op = e.graph.op_by_name("Dropout 1").unwrap();
        let r = sweep_op(&sim(), &e.graph, op, SweepOptions::default()).unwrap();
        for ct in r.per_io.values() {
            assert!(ct.time_us >= r.best.time_us - 1e-9);
        }
        // the best config's own (in, out) pair must hold the best time
        let key = (r.best.cfg.in_spec.clone(), r.best.cfg.out_spec.clone());
        assert!((r.per_io[&key].time_us - r.best.time_us).abs() < 1e-9);
    }

    #[test]
    fn sampling_caps_the_space() {
        let e = build::encoder(&EncoderDims::bert_large());
        let op = e.graph.op_by_name("QKT").unwrap();
        let r = sweep_op(
            &sim(),
            &e.graph,
            op,
            SweepOptions {
                max_configs: Some(500),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(r.times_us.len() <= 500);
        assert!(r.best.time_us > 0.0);
    }

    #[test]
    fn flowing_input_skips_weights() {
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        // Linear 1 inputs are [w1, ln1_out]: flowing is index 1
        let lin = g.op_by_name("Linear 1").unwrap();
        assert_eq!(flowing_input_index(g, lin), 1);
        // Gamma inputs are [vv, alpha]: alpha is 8× larger
        let gamma = g.op_by_name("Gamma").unwrap();
        assert_eq!(flowing_input_index(g, gamma), 1);
        // QKT inputs are [kk, qq]: tie broken to first
        let qkt = g.op_by_name("QKT").unwrap();
        assert_eq!(flowing_input_index(g, qkt), 0);
    }

    #[test]
    fn sweep_all_is_deterministic_across_thread_counts() {
        let e = build::encoder(&EncoderDims::tiny());
        let serial = sweep_all(
            &sim(),
            &e.graph,
            SweepOptions {
                max_configs: Some(300),
                threads: 1,
            },
        )
        .unwrap();
        let parallel = sweep_all(
            &sim(),
            &e.graph,
            SweepOptions {
                max_configs: Some(300),
                threads: 4,
            },
        )
        .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (op, s) in &serial {
            let p = &parallel[op];
            assert_eq!(s.name, p.name);
            assert_eq!(s.best.cfg, p.best.cfg, "best config differs for {}", s.name);
            assert!((s.best.time_us - p.best.time_us).abs() < 1e-12);
            assert_eq!(s.times_us, p.times_us);
            assert_eq!(s.per_io.len(), p.per_io.len());
        }
    }

    #[test]
    fn sweep_all_covers_small_graph() {
        let e = build::encoder(&EncoderDims::tiny());
        let r = sweep_all(
            &sim(),
            &e.graph,
            SweepOptions {
                max_configs: Some(200),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.len(), e.graph.ops().len());
    }
}
