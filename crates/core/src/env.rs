//! The environment-settings registry: every `XFORM_*` knob the crate
//! family reads, folded into one table so tools can enumerate them.
//!
//! Each setting keeps its feature-local reader (`XFORM_SANITIZE` through
//! [`crate::sanitize::sanitize_enabled`], `XFORM_CACHE_GEOM` through
//! [`crate::cachemodel`]) — this module owns the *catalog* plus the
//! readers for the decode knobs, which have no older home. Both bench
//! binaries print [`list`] under `--help`, so a knob that is not
//! registered here is invisible; add new env vars to [`REGISTRY`] in the
//! same change that introduces them.
//!
//! All switches share one enable grammar (see
//! [`crate::sanitize::env_setting`]): unset, empty, `0`, `false`, `off`,
//! and `no` mean *disabled*; anything else enables and is parsed
//! feature-specifically.

use crate::sanitize::env_setting;

/// One registered environment knob.
#[derive(Debug, Clone, Copy)]
pub struct EnvSetting {
    /// The environment variable name.
    pub name: &'static str,
    /// Effective value when unset.
    pub default: &'static str,
    /// One-line description for `--help` output.
    pub doc: &'static str,
}

/// Position-bucket quantum for decode sessions: step plans are compiled
/// per bucket of cache capacity, so a session re-plans only every
/// `bucket` generated tokens.
pub const DECODE_BUCKET_ENV: &str = "XFORM_DECODE_BUCKET";

/// Cross-call residency horizon: the `max_seq` the static audit scales
/// cache containers to when reporting the decode high-water mark.
pub const DECODE_MAX_SEQ_ENV: &str = "XFORM_DECODE_MAX_SEQ";

/// Every `XFORM_*` environment knob, in stable display order.
pub const REGISTRY: &[EnvSetting] = &[
    EnvSetting {
        name: "XFORM_SANITIZE",
        default: "off",
        doc: "shadow-access sanitizer: poison slabs/footprints and convict out-of-footprint reads",
    },
    EnvSetting {
        name: "XFORM_CACHE_GEOM",
        default: "probe sysfs",
        doc: "cache hierarchy override `L1:words,L2:words[,...]` for deterministic MUE audits",
    },
    EnvSetting {
        name: DECODE_BUCKET_ENV,
        default: "32",
        doc: "decode position-bucket quantum: step plans are recompiled every this many tokens",
    },
    EnvSetting {
        name: DECODE_MAX_SEQ_ENV,
        default: "model max_seq",
        doc: "horizon the static audit scales KV-cache residency to (cross-call high-water mark)",
    },
];

/// The registry formatted for `--help`: one `  NAME (default X)  doc`
/// line per knob.
pub fn list() -> String {
    let width = REGISTRY.iter().map(|s| s.name.len()).max().unwrap_or(0);
    let mut out = String::from("environment:\n");
    for s in REGISTRY {
        out.push_str(&format!(
            "  {:width$}  (default: {}) {}\n",
            s.name, s.default, s.doc
        ));
    }
    out
}

/// Parses a positive integer out of an enabled setting value; `None` on
/// disabled or unparseable values (the caller falls back to its default).
fn parse_usize(name: &str) -> Option<usize> {
    env_setting(name)?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&v| v > 0)
}

/// The decode position-bucket quantum ([`DECODE_BUCKET_ENV`], default
/// 32). Sessions round cache capacity up to the next multiple of this, so
/// a bigger bucket trades slab words for fewer re-plans.
pub fn decode_bucket() -> usize {
    parse_usize(DECODE_BUCKET_ENV).unwrap_or(32)
}

/// The configured cross-call audit horizon ([`DECODE_MAX_SEQ_ENV`]), when
/// set: `None` defers to the model's own maximum sequence length.
pub fn decode_max_seq() -> Option<usize> {
    parse_usize(DECODE_MAX_SEQ_ENV)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_every_knob_once() {
        let listing = list();
        for s in REGISTRY {
            assert!(listing.contains(s.name), "{} missing from list()", s.name);
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len(), "duplicate registry entry");
    }

    #[test]
    fn decode_bucket_defaults_when_unset() {
        // the test environment does not set the knob; the default must be
        // the documented bucket quantum
        if std::env::var(DECODE_BUCKET_ENV).is_err() {
            assert_eq!(decode_bucket(), 32);
        }
    }
}
