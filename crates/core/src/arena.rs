//! The static-arena interpreter: certified plans lowered onto one
//! preallocated slab.
//!
//! [`CompiledArena::compile`] takes a plan that already passed the static
//! analyzer, colors its buffer-liveness intervals into slab offsets with
//! [`crate::analyze::assign_arena`], proves the coloring respects liveness
//! with [`crate::sanitize::certify_arena`], and precompiles every step
//! into a `StepExec` descriptor over raw slab views. Execution then
//! walks the descriptors through the zero-allocation `*_into` kernels of
//! [`xform_tensor::into_ops`] — no tensors are built, no heap is touched.
//!
//! Three execution modes share one compiled arena:
//!
//! * **serial** — steps in schedule order, one per wave at
//!   [`ArenaGranularity::Serial`];
//! * **wave-parallel** — waves dispatched across a lazily-spawned
//!   persistent worker pool (scoped-thread spawning would allocate per
//!   call), bitwise-equal to the serial arena run at any thread count
//!   because every step draws from its own seeded RNG stream;
//! * **sanitized** — the aliasing-aware shadow mode: the slab is poisoned
//!   with NaN, each buffer is re-poisoned the moment its certified live
//!   interval ends, and every step's outputs are checked finite, so a
//!   read of a dead (reused) buffer surfaces as an error instead of
//!   silent corruption.
//!
//! Compilation is conservative: any step the arena cannot prove it
//! reproduces bitwise (non-natural operand layouts, relayout insertions,
//! unexpected operand counts) makes [`CompiledArena::compile`] return
//! `Ok(None)`, and callers fall back to the allocating interpreter.
//! Arithmetic on the supported set is mirrored statement-for-statement,
//! so with dropout disabled arena results are bitwise-identical to
//! [`crate::plan::execute_plan`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use rand::Rng;

use xform_dataflow::{DataRole, Graph, NodeId, OpKind};
use xform_tensor::into_ops::{self, BiasMap, CausalMap, ContractPlan, LaneGeom};
use xform_tensor::ops::elementwise::ActivationKind;
use xform_tensor::ops::layernorm::LayerNormStats;
use xform_tensor::{Axis, Layout, Result, Shape, Tensor, TensorError};

use crate::access::AccessCertificate;
use crate::analyze::{ArenaGranularity, PlanAnalysis};
use crate::plan::{
    classify_fused, epilogue_geometry, stacked_carve_start, ExecState, ExecutionPlan, FusedClass,
    PlanStep,
};
use crate::sanitize::{certify_arena, step_rng, ArenaCertificate};

/// One contiguous word range of the slab (or of the scratch/stats
/// buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufView {
    off: usize,
    len: usize,
}

/// A precompiled step: every operand resolved to a slab view, every lane
/// decomposition and broadcast map baked in. Executing one of these
/// touches no heap.
#[derive(Debug, Clone)]
enum StepExec {
    /// Two-operand einsum: gather both operands into pack scratch, run
    /// serial per-batch GEMMs, scatter into the output view.
    Contract {
        a: BufView,
        b: BufView,
        out: BufView,
        plan: ContractPlan,
        a_off: usize,
        b_off: usize,
        c_off: usize,
    },
    /// Broadcast bias add; `x` is pre-carved for stacked-Q/K/V steps.
    Bias {
        x: BufView,
        bias: BufView,
        out: BufView,
        bmap: BiasMap,
    },
    /// Fused AIB: all three Q/K/V biases over one stacked projection.
    InputBias {
        parts: Vec<(BufView, BufView, BufView, BiasMap)>,
    },
    Scale {
        x: BufView,
        out: BufView,
    },
    /// Unfused scale-folded softmax.
    SoftmaxScaled {
        x: BufView,
        out: BufView,
        lane: LaneGeom,
    },
    /// Unfused masked (causal) softmax.
    SoftmaxCausal {
        x: BufView,
        out: BufView,
        lane: LaneGeom,
        causal: CausalMap,
    },
    /// Fused SM (scale + softmax + dropout), causal for decoders.
    Sm {
        x: BufView,
        softmax: BufView,
        alpha: BufView,
        mask: BufView,
        lane: LaneGeom,
        causal: Option<CausalMap>,
    },
    LayerNorm {
        x: BufView,
        gamma: BufView,
        beta: BufView,
        out: BufView,
        lane: LaneGeom,
        mean: BufView,
        inv_std: BufView,
    },
    Dropout {
        x: BufView,
        out: BufView,
        mask: BufView,
    },
    Activate {
        x: BufView,
        out: BufView,
    },
    Residual {
        a: BufView,
        b: BufView,
        out: BufView,
    },
    /// Fused BDRLN.
    Bdrln {
        x: BufView,
        bias: BufView,
        bmap: BiasMap,
        residual: BufView,
        gamma: BufView,
        beta: BufView,
        mask: BufView,
        ln_input: BufView,
        out: BufView,
        lane: LaneGeom,
        mean: BufView,
        inv_std: BufView,
    },
    /// Fused BRD (bias + activation + dropout).
    BrdAct {
        x: BufView,
        bias: BufView,
        bmap: BiasMap,
        pre_activation: BufView,
        out: BufView,
        mask: BufView,
    },
    /// Fused BDR (bias + dropout + residual, no norm).
    Bdr {
        x: BufView,
        bias: BufView,
        bmap: BiasMap,
        residual: BufView,
        mask: BufView,
        out: BufView,
    },
    /// GEMM-epilogue mega-kernel: gather both packs, stream the GEMM in
    /// row tiles and apply the epilogue per tile. The contraction output
    /// lives only in the `tile_rows · n` scratch tile at `t_off` — it has
    /// no slab slot.
    ContractEpilogue {
        a: BufView,
        b: BufView,
        plan: ContractPlan,
        tile_rows: usize,
        a_off: usize,
        b_off: usize,
        t_off: usize,
        epi: EpiExec,
    },
}

/// The baked per-tile epilogue of a [`StepExec::ContractEpilogue`] step.
#[derive(Debug, Clone)]
enum EpiExec {
    /// Scaled (optionally causal) softmax + dropout.
    Sm {
        softmax: BufView,
        alpha: BufView,
        mask: BufView,
        causal: Option<CausalMap>,
    },
    /// Bias + activation + dropout.
    BrdAct {
        bias: BufView,
        /// Tile bias map `[(n, m, 1)]`, built at compile time so the
        /// steady-state path stays allocation-free.
        bmap: into_ops::BiasMap,
        pre_activation: BufView,
        out: BufView,
        mask: BufView,
    },
    /// Bias + dropout + residual.
    Bdr {
        bias: BufView,
        /// Tile bias map `[(n, m, 1)]`, as in [`EpiExec::BrdAct`].
        bmap: into_ops::BiasMap,
        residual: BufView,
        mask: BufView,
        out: BufView,
    },
}

/// An external input the caller binds into the slab before execution.
#[derive(Debug, Clone)]
struct ExternalBind {
    name: String,
    view: BufView,
    /// Persistent cross-call state ([`DataRole::Cache`]): the slab range
    /// survives between executions — the initial sanitizer poison skips
    /// it, and a bind callback may decline it (returning `false`) to keep
    /// the resident contents instead of aborting the run.
    persistent: bool,
}

/// An output (or saved activation) materialized out of the slab after
/// execution.
#[derive(Debug, Clone)]
struct MaterializeSpec {
    name: String,
    shape: Shape,
    view: BufView,
    saved: bool,
}

/// A layer-norm statistics region surfaced after execution, keyed by the
/// norm's output container name like the allocating interpreter's stats
/// side channel.
#[derive(Debug, Clone)]
struct StatsSpec {
    name: String,
    mean: BufView,
    inv_std: BufView,
}

/// The slab, einsum pack scratch, and layer-norm statistics storage of one
/// arena, reused across calls under a mutex.
#[derive(Debug)]
struct ArenaBuffers {
    slab: Vec<f32>,
    scratch: Vec<f32>,
    stats: Vec<f32>,
}

/// Raw views of one [`ArenaBuffers`], copyable into worker threads. The
/// arena certificate makes concurrent use sound: steps sharing a wave
/// write disjoint slab ranges (their outputs' live intervals all start at
/// that wave, so the certifier proved them range-disjoint), scratch and
/// stats regions are disjoint per step by construction, and reads of
/// shared inputs are read-only.
#[derive(Debug, Clone, Copy)]
struct SlabMem {
    slab: *mut f32,
    scratch: *mut f32,
    stats: *mut f32,
}

unsafe impl Send for SlabMem {}
unsafe impl Sync for SlabMem {}

impl SlabMem {
    fn new(bufs: &mut ArenaBuffers) -> SlabMem {
        SlabMem {
            slab: bufs.slab.as_mut_ptr(),
            scratch: bufs.scratch.as_mut_ptr(),
            stats: bufs.stats.as_mut_ptr(),
        }
    }

    unsafe fn slab<'a>(self, v: BufView) -> &'a [f32] {
        unsafe { std::slice::from_raw_parts(self.slab.add(v.off), v.len) }
    }

    unsafe fn slab_mut<'a>(self, v: BufView) -> &'a mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.slab.add(v.off), v.len) }
    }

    unsafe fn scratch_mut<'a>(self, off: usize, len: usize) -> &'a mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.scratch.add(off), len) }
    }

    unsafe fn stats_mut<'a>(self, v: BufView) -> &'a mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.stats.add(v.off), v.len) }
    }
}

/// Scalar knobs for one arena execution (the arena-side mirror of
/// [`crate::plan::ExecOptions`]).
#[derive(Debug, Clone, Copy)]
pub struct ArenaRun {
    /// Dropout probability (`0` draws nothing).
    pub dropout_p: f32,
    /// Activation behind generic activation nodes.
    pub activation: ActivationKind,
    /// Scale folded into the softmax kernels.
    pub scaler: f32,
    /// Base seed; each step draws from its own derived stream, so results
    /// are identical at any thread count.
    pub seed: u64,
    /// Worker threads: `<= 1` runs serially; more dispatches each wave
    /// across the persistent pool (requires a waves-granularity arena).
    pub threads: usize,
    /// Run the aliasing-aware shadow sanitizer (poison + finiteness
    /// checks).
    pub sanitize: bool,
    /// Absolute sequence position of the run's first query column: every
    /// causal softmax's visibility window shifts by this (decode steps set
    /// it to the current token position; full-sequence runs leave it 0).
    pub pos: usize,
}

/// Why an arena execution did or did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaOutcome {
    /// The plan executed out of the slab.
    Ran,
    /// The arena was unavailable (buffers busy in another thread, an
    /// external failed to bind, or the thread/granularity combination
    /// does not match) — the caller should fall back to the allocating
    /// interpreter.
    Busy,
}

/// One artifact surfaced to the sink after an arena execution. Borrows
/// slab storage, so sinks that only copy into preallocated destinations
/// keep the whole call allocation-free.
#[derive(Debug)]
pub enum ArenaArtifact<'a> {
    /// A produced output (or saved activation) container.
    Tensor {
        /// Container name.
        name: &'a str,
        /// `true` for saved-for-backward activations, `false` for
        /// outputs.
        saved: bool,
        /// The container's logical shape; data is dense row-major.
        shape: &'a Shape,
        /// The container's words in the slab.
        data: &'a [f32],
    },
    /// Per-lane layer-norm statistics, keyed by the norm's output
    /// container name.
    Stats {
        /// The norm's output container name.
        name: &'a str,
        /// Per-lane means.
        mean: &'a [f32],
        /// Per-lane inverse standard deviations.
        inv_std: &'a [f32],
    },
}

/// A certified plan compiled onto a static arena. Build one with
/// [`CompiledArena::compile`]; execute with
/// [`CompiledArena::execute_bound`] (zero-allocation entry) or
/// [`CompiledArena::run_with_state`] (drop-in for the allocating
/// interpreters' `ExecState`).
#[derive(Debug)]
pub struct CompiledArena {
    granularity: ArenaGranularity,
    cert: ArenaCertificate,
    access: AccessCertificate,
    /// Per step: the access certificate licensed unchecked dispatch AND
    /// the step's kernel class has an unchecked twin.
    licensed: Vec<bool>,
    slab_words: usize,
    scratch_words: usize,
    stats_words: usize,
    steps: Vec<StepExec>,
    step_names: Vec<String>,
    step_outputs: Vec<Vec<BufView>>,
    waves: Vec<Vec<usize>>,
    retire: Vec<Vec<BufView>>,
    externals: Vec<ExternalBind>,
    /// Slab spans the sanitizer may poison before a run: the complement
    /// of the persistent (cache) ranges, which hold live cross-call state.
    poison_spans: Vec<BufView>,
    outputs: Vec<MaterializeSpec>,
    stats_out: Vec<StatsSpec>,
    buffers: Mutex<ArenaBuffers>,
}

/// Row-major strides for a shape.
fn rm_strides(shape: &Shape) -> Vec<usize> {
    Layout::row_major(shape.rank()).strides(shape)
}

/// `true` when every operand of every step is declared in its container's
/// natural (logical row-major) layout and no relayouts were inserted —
/// the precondition for executing out of dense row-major slab views.
fn plan_is_row_major(graph: &Graph, plan: &ExecutionPlan) -> bool {
    plan.steps.iter().all(|step| {
        step.relayouts.is_empty()
            && step.inputs.iter().chain(&step.outputs).all(|o| {
                graph
                    .data(o.data)
                    .is_some_and(|d| d.shape.spec() == o.layout)
            })
    })
}

/// Broadcast map from `out`'s row-major geometry to `bias`'s row-major
/// geometry; `None` when a bias axis is absent from the output.
fn bias_map(out: &Shape, bias: &Shape) -> Option<BiasMap> {
    let out_strides = rm_strides(out);
    let bias_strides = rm_strides(bias);
    let mut dims = Vec::with_capacity(bias.rank());
    for (bi, &ax) in bias.axes().iter().enumerate() {
        let p = out.index_of(ax).ok()?;
        if out.sizes()[p] != bias.sizes()[bi] {
            return None;
        }
        dims.push((out_strides[p], out.sizes()[p], bias_strides[bi]));
    }
    Some(BiasMap { dims })
}

/// Lane decomposition of `shape` along `axis`.
fn lane_of(shape: &Shape, axis: Axis) -> Option<LaneGeom> {
    let ai = shape.index_of(axis).ok()?;
    Some(LaneGeom::new(shape.sizes(), ai))
}

/// Causal-query recovery for a masked softmax along `axis` of `shape`:
/// the query axis is the one immediately preceding the softmax axis, so
/// it is always part of a lane's `pre` coordinate.
fn causal_of(shape: &Shape, axis: Axis) -> Option<CausalMap> {
    let ai = shape.index_of(axis).ok()?;
    let q = crate::plan::causal_query_axis(shape, axis).ok()?;
    let qi = shape.index_of(q).ok()?;
    if qi >= ai {
        return None;
    }
    let div: usize = shape.sizes()[qi + 1..ai].iter().product();
    Some(CausalMap {
        div,
        len: shape.sizes()[qi],
        base: 0,
    })
}

/// Gather descriptor for one operand of a contraction: `(len, src_stride,
/// pack_stride)` per group axis, pack strides outermost-first.
fn gather_dims(groups: &[Axis], shape: &Shape) -> Option<Vec<(usize, usize, usize)>> {
    let strides = rm_strides(shape);
    let total: usize = groups
        .iter()
        .map(|&ax| shape.size(ax).ok())
        .collect::<Option<Vec<_>>>()?
        .iter()
        .product();
    let mut dims = Vec::with_capacity(groups.len());
    let mut ps = total;
    for &ax in groups {
        let len = shape.size(ax).ok()?;
        ps /= len;
        dims.push((len, strides[shape.index_of(ax).ok()?], ps));
    }
    Some(dims)
}

impl CompiledArena {
    /// Lowers an analyzed plan onto a static arena at the given
    /// granularity.
    ///
    /// Returns `Ok(None)` when the plan is outside the arena's supported
    /// set (non-natural operand layouts, relayout insertions, operator
    /// kinds or operand counts the precompiler does not model) — callers
    /// fall back to the allocating interpreter.
    ///
    /// # Errors
    ///
    /// Returns an error when the arena *coloring* cannot be certified
    /// ([`crate::sanitize::certify_arena`] found aliasing between
    /// simultaneously-live buffers) — an internal invariant violation,
    /// not a fallback condition.
    pub fn compile(
        graph: &Graph,
        plan: &ExecutionPlan,
        analysis: &PlanAnalysis,
        granularity: ArenaGranularity,
    ) -> Result<Option<CompiledArena>> {
        if !plan_is_row_major(graph, plan) {
            return Ok(None);
        }
        let assignment = crate::analyze::assign_arena(analysis, granularity);
        let cert = certify_arena(plan, &assignment).map_err(|lints| {
            TensorError::Unsupported(format!(
                "arena coloring failed certification: {}",
                lints
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            ))
        })?;
        let access =
            crate::access::certify_access_arena(graph, plan, &assignment).map_err(|lints| {
                TensorError::Unsupported(format!(
                    "arena access paths failed certification: {}",
                    lints
                        .iter()
                        .map(|l| l.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ))
            })?;

        let view_of: HashMap<NodeId, BufView> = assignment
            .slots
            .iter()
            .map(|s| {
                (
                    s.data,
                    BufView {
                        off: s.offset as usize,
                        len: s.words as usize,
                    },
                )
            })
            .collect();

        let waves: Vec<Vec<usize>> = match granularity {
            ArenaGranularity::Serial => (0..plan.steps.len()).map(|i| vec![i]).collect(),
            ArenaGranularity::Waves => analysis.parallel_waves(),
        };

        let mut steps = Vec::with_capacity(plan.steps.len());
        let mut stats_words = 0usize;
        let mut stats_out = Vec::new();
        for step in &plan.steps {
            let Some(exec) = compile_step(graph, step, &view_of, &mut stats_words, &mut stats_out)?
            else {
                return Ok(None);
            };
            steps.push(exec);
        }

        // per-wave cumulative scratch offsets for the einsum pack buffers;
        // the high-water mark over waves sizes the scratch allocation
        let mut scratch_words = 0usize;
        for wave in &waves {
            let mut acc = 0usize;
            for &si in wave {
                match &mut steps[si] {
                    StepExec::Contract {
                        plan: cp,
                        a_off,
                        b_off,
                        c_off,
                        ..
                    } => {
                        *a_off = acc;
                        acc += cp.a_words();
                        *b_off = acc;
                        acc += cp.b_words();
                        *c_off = acc;
                        acc += cp.c_words();
                    }
                    StepExec::ContractEpilogue {
                        plan: cp,
                        tile_rows,
                        a_off,
                        b_off,
                        t_off,
                        ..
                    } => {
                        // the C buffer shrinks to one row tile
                        *a_off = acc;
                        acc += cp.a_words();
                        *b_off = acc;
                        acc += cp.b_words();
                        *t_off = acc;
                        acc += *tile_rows * cp.n;
                    }
                    _ => {}
                }
            }
            scratch_words = scratch_words.max(acc);
        }

        let step_outputs: Vec<Vec<BufView>> = plan
            .steps
            .iter()
            .map(|step| {
                step.outputs
                    .iter()
                    .filter_map(|o| view_of.get(&o.data).copied())
                    .collect()
            })
            .collect();

        let mut retire: Vec<Vec<BufView>> = vec![Vec::new(); waves.len()];
        let last = waves.len().saturating_sub(1);
        for slot in &assignment.slots {
            if slot.end < last {
                retire[slot.end].push(BufView {
                    off: slot.offset as usize,
                    len: slot.words as usize,
                });
            }
        }

        let mut externals = Vec::new();
        let mut outputs = Vec::new();
        for b in &analysis.liveness {
            let Some(&view) = view_of.get(&b.data) else {
                return Ok(None);
            };
            if b.def.is_none() {
                externals.push(ExternalBind {
                    name: b.name.clone(),
                    view,
                    persistent: b.role == DataRole::Cache,
                });
            }
            if matches!(b.role, DataRole::Output | DataRole::Saved) {
                let Some(d) = graph.data(b.data) else {
                    return Ok(None);
                };
                outputs.push(MaterializeSpec {
                    name: b.name.clone(),
                    shape: d.shape.clone(),
                    view,
                    saved: b.role == DataRole::Saved,
                });
            }
        }

        // a step runs its bounds-check-free twin only when the access
        // certificate proved its paths AND such a twin exists for its
        // kernel class; everything else takes the checked kernel
        let licensed: Vec<bool> = steps
            .iter()
            .enumerate()
            .map(|(si, s)| access.licensed(si) && step_has_unchecked_twin(s))
            .collect();

        let slab_words = assignment.slab_words as usize;

        // sanitizer poison spans: the whole slab minus persistent ranges
        let mut persist: Vec<(usize, usize)> = externals
            .iter()
            .filter(|e| e.persistent)
            .map(|e| (e.view.off, e.view.off + e.view.len))
            .collect();
        persist.sort_unstable();
        let mut poison_spans = Vec::new();
        let mut cur = 0usize;
        for (s, e) in persist {
            if s > cur {
                poison_spans.push(BufView {
                    off: cur,
                    len: s - cur,
                });
            }
            cur = cur.max(e);
        }
        if cur < slab_words {
            poison_spans.push(BufView {
                off: cur,
                len: slab_words - cur,
            });
        }

        Ok(Some(CompiledArena {
            granularity,
            cert,
            access,
            licensed,
            slab_words,
            scratch_words,
            stats_words,
            step_names: plan.steps.iter().map(|s| s.name.clone()).collect(),
            steps,
            step_outputs,
            waves,
            retire,
            externals,
            poison_spans,
            outputs,
            stats_out,
            buffers: Mutex::new(ArenaBuffers {
                slab: vec![0.0; slab_words],
                scratch: vec![0.0; scratch_words],
                stats: vec![0.0; stats_words],
            }),
        }))
    }

    /// The execution order this arena's coloring is valid for.
    pub fn granularity(&self) -> ArenaGranularity {
        self.granularity
    }

    /// The certificate proving the coloring respects liveness.
    pub fn certificate(&self) -> &ArenaCertificate {
        &self.cert
    }

    /// The certificate proving every step's access paths in-bounds and
    /// alias-free within the slab.
    pub fn access_certificate(&self) -> &AccessCertificate {
        &self.access
    }

    /// Number of steps dispatching their bounds-check-free kernel twin.
    pub fn licensed_steps(&self) -> usize {
        self.licensed.iter().filter(|&&l| l).count()
    }

    /// Slab size in words — the arena's high-water mark.
    pub fn slab_words(&self) -> usize {
        self.slab_words
    }

    /// Einsum pack-scratch words held alongside the slab.
    pub fn scratch_words(&self) -> usize {
        self.scratch_words
    }

    /// Layer-norm statistics words held alongside the slab.
    pub fn stats_words(&self) -> usize {
        self.stats_words
    }

    /// Slab size in bytes at f32 width.
    pub fn slab_bytes(&self) -> usize {
        self.slab_words * 4
    }

    /// Cheap structural guard that `plan` is the schedule this arena was
    /// compiled from (same step count and kernel names, in order). The
    /// certificate's fingerprint is authoritative but hashing allocates;
    /// this check is allocation-free for the steady-state path.
    pub fn matches(&self, plan: &ExecutionPlan) -> bool {
        self.step_names.len() == plan.steps.len()
            && self
                .step_names
                .iter()
                .zip(&plan.steps)
                .all(|(n, s)| n == &s.name)
    }

    /// Runs `f` over the resident slab region of the external container
    /// `name` (dense row-major). Returns `None` when no external of that
    /// name exists or the buffers are locked by a concurrent run.
    ///
    /// This is the read half of the cross-call residency surface: decode
    /// sessions use it to migrate cache contents between arenas when a
    /// position bucket grows.
    pub fn with_external<R>(&self, name: &str, f: impl FnOnce(&[f32]) -> R) -> Option<R> {
        let e = self.externals.iter().find(|e| e.name == name)?;
        let guard = self.buffers.try_lock().ok()?;
        Some(f(&guard.slab[e.view.off..e.view.off + e.view.len]))
    }

    /// Runs `f` over the mutable resident slab region of the external
    /// container `name`. Returns `None` when no external of that name
    /// exists or the buffers are locked by a concurrent run.
    ///
    /// This is the write half of the cross-call residency surface: decode
    /// sessions append one new cache column per step through a
    /// bounds-checked [`crate::access::column_span`] license before the
    /// attend plan runs.
    pub fn with_external_mut<R>(&self, name: &str, f: impl FnOnce(&mut [f32]) -> R) -> Option<R> {
        let e = self.externals.iter().find(|e| e.name == name)?;
        let mut guard = self.buffers.try_lock().ok()?;
        Some(f(&mut guard.slab[e.view.off..e.view.off + e.view.len]))
    }

    /// Executes the compiled plan with caller-provided binding and
    /// materialization, touching no heap on the steady-state path.
    ///
    /// `bind` is called once per external input with the container name
    /// and its (dense row-major) slab destination; returning `false`
    /// aborts with [`ArenaOutcome::Busy`] (the caller falls back to the
    /// allocating interpreter). `sink` is called once per output/saved
    /// container and per layer-norm statistics region after the run;
    /// artifacts borrow slab storage, so copying sinks stay
    /// allocation-free.
    ///
    /// Returns [`ArenaOutcome::Busy`] without executing when the buffers
    /// are locked by a concurrent run or the thread/granularity
    /// combination does not match.
    ///
    /// # Errors
    ///
    /// Returns an error when a worker panics or the shadow sanitizer
    /// detects a non-finite output (a read of a dead, reused buffer).
    pub fn execute_bound(
        &self,
        run: &ArenaRun,
        bind: &mut dyn FnMut(&str, &mut [f32]) -> bool,
        sink: &mut dyn FnMut(ArenaArtifact<'_>),
    ) -> Result<ArenaOutcome> {
        if run.threads > 1 && self.granularity != ArenaGranularity::Waves {
            return Ok(ArenaOutcome::Busy);
        }
        let Ok(mut guard) = self.buffers.try_lock() else {
            return Ok(ArenaOutcome::Busy);
        };
        let bufs = &mut *guard;
        if run.sanitize {
            // poison everything except persistent (cache) ranges, whose
            // resident contents must survive between calls
            for span in &self.poison_spans {
                for v in &mut bufs.slab[span.off..span.off + span.len] {
                    *v = f32::NAN;
                }
            }
        }
        for e in &self.externals {
            let dst = &mut bufs.slab[e.view.off..e.view.off + e.view.len];
            if !bind(&e.name, dst) {
                if e.persistent {
                    // a declined persistent external keeps its resident
                    // slab contents (the steady-state decode path: the
                    // cache already lives here)
                    continue;
                }
                return Ok(ArenaOutcome::Busy);
            }
        }
        let mem = SlabMem::new(bufs);
        if run.threads > 1 {
            self.run_parallel(mem, run)?;
        } else {
            self.run_serial(mem, run)?;
        }
        for m in &self.outputs {
            sink(ArenaArtifact::Tensor {
                name: &m.name,
                saved: m.saved,
                shape: &m.shape,
                data: &bufs.slab[m.view.off..m.view.off + m.view.len],
            });
        }
        for s in &self.stats_out {
            sink(ArenaArtifact::Stats {
                name: &s.name,
                mean: &bufs.stats[s.mean.off..s.mean.off + s.mean.len],
                inv_std: &bufs.stats[s.inv_std.off..s.inv_std.off + s.inv_std.len],
            });
        }
        Ok(ArenaOutcome::Ran)
    }

    /// Drop-in arena execution over the allocating interpreters'
    /// [`ExecState`]: externals are copied out of `state.env`, and
    /// outputs, saved activations, and layer-norm statistics are
    /// materialized back into it (which allocates — use
    /// [`CompiledArena::execute_bound`] for the zero-allocation path).
    ///
    /// # Errors
    ///
    /// Same as [`CompiledArena::execute_bound`].
    pub fn run_with_state(&self, state: &mut ExecState, run: &ArenaRun) -> Result<ArenaOutcome> {
        let env = &state.env;
        let mut bind = |name: &str, dst: &mut [f32]| -> bool {
            match env.get(name) {
                Some(t) if t.len() == dst.len() => {
                    into_ops::copy_tensor_into(t, dst);
                    true
                }
                _ => false,
            }
        };
        let mut produced: Vec<(String, Tensor)> = Vec::new();
        let mut stats: Vec<(String, LayerNormStats)> = Vec::new();
        let mut sink = |a: ArenaArtifact<'_>| match a {
            ArenaArtifact::Tensor {
                name, shape, data, ..
            } => {
                if let Ok(t) = Tensor::from_vec(shape.clone(), data.to_vec()) {
                    produced.push((name.to_string(), t));
                }
            }
            ArenaArtifact::Stats {
                name,
                mean,
                inv_std,
            } => {
                stats.push((
                    name.to_string(),
                    LayerNormStats {
                        mean: mean.to_vec(),
                        inv_std: inv_std.to_vec(),
                    },
                ));
            }
        };
        let outcome = self.execute_bound(run, &mut bind, &mut sink)?;
        if outcome == ArenaOutcome::Ran {
            for (name, t) in produced {
                state.env.insert(name, t);
            }
            for (name, s) in stats {
                state.stats.insert(name, s);
            }
        }
        Ok(outcome)
    }

    fn run_serial(&self, mem: SlabMem, run: &ArenaRun) -> Result<()> {
        for (w, wave) in self.waves.iter().enumerate() {
            for &si in wave {
                let mut rng = step_rng(run.seed, si);
                // SAFETY: the arena certificate proves every pair of
                // simultaneously-live buffers occupies disjoint slab
                // ranges, and serial execution never overlaps two steps;
                // `licensed` only when the access certificate proved this
                // step's paths.
                unsafe { run_step(&self.steps[si], self.licensed[si], mem, run, &mut rng) };
            }
            if run.sanitize {
                self.sanitize_wave(mem, w)?;
            }
        }
        Ok(())
    }

    fn run_parallel(&self, mem: SlabMem, run: &ArenaRun) -> Result<()> {
        let pool = pool();
        // serialize concurrent parallel arena runs; waves of one run must
        // not interleave with another run's on the shared job slot
        let _dispatch = pool.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        for (w, wave) in self.waves.iter().enumerate() {
            if wave.len() <= 1 || pool.workers == 0 {
                for &si in wave {
                    let mut rng = step_rng(run.seed, si);
                    // SAFETY: as in `run_serial`.
                    unsafe { run_step(&self.steps[si], self.licensed[si], mem, run, &mut rng) };
                }
            } else {
                pool.run_wave(&self.steps, &self.licensed, wave, mem, run)?;
            }
            if run.sanitize {
                self.sanitize_wave(mem, w)?;
            }
        }
        Ok(())
    }

    /// Shadow-sanitizer epilogue for one wave: every output written by the
    /// wave must be finite (a NaN means some kernel read poisoned — dead
    /// and reused — slab words), then every buffer whose certified live
    /// interval ends at this wave is re-poisoned.
    fn sanitize_wave(&self, mem: SlabMem, w: usize) -> Result<()> {
        for &si in &self.waves[w] {
            for v in &self.step_outputs[si] {
                // SAFETY: the wave finished; no kernel holds these words.
                let data = unsafe { mem.slab(*v) };
                if data.iter().any(|x| !x.is_finite()) {
                    return Err(TensorError::Unsupported(format!(
                        "arena sanitizer: step {si} (`{}`) produced a non-finite value — a kernel read a retired (reused) buffer",
                        self.step_names[si]
                    )));
                }
            }
        }
        for v in &self.retire[w] {
            // SAFETY: the buffer's live interval ended with this wave.
            let data = unsafe { mem.slab_mut(*v) };
            for x in data.iter_mut() {
                *x = f32::NAN;
            }
        }
        Ok(())
    }
}

/// Precompiles one plan step into a [`StepExec`], accumulating layer-norm
/// statistics regions. `Ok(None)` means the step is outside the supported
/// set and the whole plan falls back.
fn compile_step(
    graph: &Graph,
    step: &PlanStep,
    view_of: &HashMap<NodeId, BufView>,
    stats_words: &mut usize,
    stats_out: &mut Vec<StatsSpec>,
) -> Result<Option<StepExec>> {
    let shape_of = |id: NodeId| -> Option<&Shape> { graph.data(id).map(|d| &d.shape) };
    let vw = |id: NodeId| -> Option<BufView> { view_of.get(&id).copied() };
    let in_shape = |k: usize| -> Option<&Shape> { shape_of(step.inputs.get(k)?.data) };
    let out_shape = |k: usize| -> Option<&Shape> { shape_of(step.outputs.get(k)?.data) };
    let in_view = |k: usize| -> Option<BufView> { vw(step.inputs.get(k)?.data) };
    let out_view = |k: usize| -> Option<BufView> { vw(step.outputs.get(k)?.data) };
    let mut alloc_stats = |lanes: usize, key: &str| -> (BufView, BufView) {
        let mean = BufView {
            off: *stats_words,
            len: lanes,
        };
        let inv_std = BufView {
            off: *stats_words + lanes,
            len: lanes,
        };
        *stats_words += 2 * lanes;
        stats_out.push(StatsSpec {
            name: key.to_string(),
            mean,
            inv_std,
        });
        (mean, inv_std)
    };
    // carve of a stacked-QKV projection: a contiguous row-major slice
    // along the stacking axis (always the first)
    let carve =
        |x_view: BufView, x_shape: &Shape, out_shape: &Shape, name: &str| -> Option<BufView> {
            let total = *x_shape.sizes().first()?;
            let len = *out_shape.sizes().first()?;
            if x_shape.sizes()[1..] != out_shape.sizes()[1..] {
                return None;
            }
            let rest: usize = x_shape.sizes()[1..].iter().product();
            let start = stacked_carve_start(name, total, len)?;
            Some(BufView {
                off: x_view.off + start * rest,
                len: len * rest,
            })
        };

    let exec = match &step.kind {
        OpKind::Einsum(spec) => {
            if step.inputs.len() != 2 || step.outputs.len() != 1 {
                return Ok(None);
            }
            let (a_c, b_c, out_c) = match (in_shape(0), in_shape(1), out_shape(0)) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => return Ok(None),
            };
            let ops = spec.operands();
            if ops.len() != 2 {
                return Ok(None);
            }
            // relabel the operands' shapes positionally to the spec's
            // letters, as the interpreter does before contracting
            let relabel = |axes: &[Axis], c: &Shape| -> Option<Shape> {
                if axes.len() != c.rank() {
                    return None;
                }
                let dims: Vec<(char, usize)> =
                    axes.iter().zip(c.sizes()).map(|(a, &s)| (a.0, s)).collect();
                Shape::new(dims).ok()
            };
            let (a_shape, b_shape) = match (relabel(&ops[0], a_c), relabel(&ops[1], b_c)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Ok(None),
            };
            let Ok(class) = spec.classify() else {
                return Ok(None);
            };
            let Ok(gs) = spec.gemm_sizes(&a_shape, &b_shape) else {
                return Ok(None);
            };
            let size_of =
                |ax: Axis| -> Option<usize> { a_shape.size(ax).or_else(|_| b_shape.size(ax)).ok() };
            // the labeled output shape must positionally match the
            // container's declared shape, or the scatter would misplace
            let lbl_dims: Vec<(char, usize)> = match spec
                .output()
                .iter()
                .map(|&ax| size_of(ax).map(|s| (ax.0, s)))
                .collect::<Option<Vec<_>>>()
            {
                Some(d) => d,
                None => return Ok(None),
            };
            let Ok(lbl_shape) = Shape::new(lbl_dims) else {
                return Ok(None);
            };
            if lbl_shape.sizes() != out_c.sizes() {
                return Ok(None);
            }
            let groups = |lists: &[&Vec<Axis>]| -> Vec<Axis> {
                lists.iter().flat_map(|l| l.iter().copied()).collect()
            };
            let a_groups = groups(&[&class.batch, &class.m, &class.k]);
            let b_groups = groups(&[&class.batch, &class.k, &class.n]);
            let c_groups = groups(&[&class.batch, &class.m, &class.n]);
            let (a_dims, b_dims) = match (
                gather_dims(&a_groups, &a_shape),
                gather_dims(&b_groups, &b_shape),
            ) {
                (Some(a), Some(b)) => (a, b),
                _ => return Ok(None),
            };
            // scatter: pack strides outermost-first, destination strides
            // row-major in the labeled output shape
            let out_strides = rm_strides(&lbl_shape);
            let c_total: usize = match c_groups
                .iter()
                .map(|&ax| size_of(ax))
                .collect::<Option<Vec<_>>>()
            {
                Some(v) => v.iter().product(),
                None => return Ok(None),
            };
            let mut c_dims = Vec::with_capacity(c_groups.len());
            let mut ps = c_total;
            for &ax in &c_groups {
                let Some(len) = size_of(ax) else {
                    return Ok(None);
                };
                ps /= len;
                let Ok(oi) = lbl_shape.index_of(ax) else {
                    return Ok(None);
                };
                c_dims.push((len, ps, out_strides[oi]));
            }
            let (a, b, out) = match (in_view(0), in_view(1), out_view(0)) {
                (Some(a), Some(b), Some(o)) => (a, b, o),
                _ => return Ok(None),
            };
            StepExec::Contract {
                a,
                b,
                out,
                plan: ContractPlan {
                    a_dims,
                    b_dims,
                    c_dims,
                    batch: gs.batch,
                    m: gs.m,
                    n: gs.n,
                    k: gs.k,
                },
                a_off: 0,
                b_off: 0,
                c_off: 0,
            }
        }
        OpKind::Bias { .. } => {
            if step.inputs.len() != 2 || step.outputs.len() != 1 {
                return Ok(None);
            }
            let (x_s, b_s, o_s) = match (in_shape(0), in_shape(1), out_shape(0)) {
                (Some(x), Some(b), Some(o)) => (x, b, o),
                _ => return Ok(None),
            };
            let (x_v, b_v, o_v) = match (in_view(0), in_view(1), out_view(0)) {
                (Some(x), Some(b), Some(o)) => (x, b, o),
                _ => return Ok(None),
            };
            let x = if x_s.sizes() != o_s.sizes() || x_s.spec() != o_s.spec() {
                match carve(x_v, x_s, o_s, &step.name) {
                    Some(v) => v,
                    None => return Ok(None),
                }
            } else {
                x_v
            };
            let Some(bmap) = bias_map(o_s, b_s) else {
                return Ok(None);
            };
            StepExec::Bias {
                x,
                bias: b_v,
                out: o_v,
                bmap,
            }
        }
        OpKind::Scale => {
            let (Some(x), Some(out)) = (in_view(0), out_view(0)) else {
                return Ok(None);
            };
            StepExec::Scale { x, out }
        }
        OpKind::Softmax { axis } => {
            let (Some(x_s), Some(x), Some(out)) = (in_shape(0), in_view(0), out_view(0)) else {
                return Ok(None);
            };
            let Some(lane) = lane_of(x_s, *axis) else {
                return Ok(None);
            };
            if step.name.contains("Masked") {
                let Some(causal) = causal_of(x_s, *axis) else {
                    return Ok(None);
                };
                StepExec::SoftmaxCausal {
                    x,
                    out,
                    lane,
                    causal,
                }
            } else {
                StepExec::SoftmaxScaled { x, out, lane }
            }
        }
        OpKind::LayerNorm { axis } => {
            if step.inputs.len() != 3 || step.outputs.len() != 1 {
                return Ok(None);
            }
            let (Some(x_s), Some(x), Some(gamma), Some(beta), Some(out)) =
                (in_shape(0), in_view(0), in_view(1), in_view(2), out_view(0))
            else {
                return Ok(None);
            };
            let Some(lane) = lane_of(x_s, *axis) else {
                return Ok(None);
            };
            if gamma.len != lane.len || beta.len != lane.len {
                return Ok(None);
            }
            let (mean, inv_std) = alloc_stats(lane.lanes(), &step.outputs[0].name);
            StepExec::LayerNorm {
                x,
                gamma,
                beta,
                out,
                lane,
                mean,
                inv_std,
            }
        }
        OpKind::Dropout => {
            if step.outputs.len() != 2 {
                return Ok(None);
            }
            let (Some(x), Some(out), Some(mask)) = (in_view(0), out_view(0), out_view(1)) else {
                return Ok(None);
            };
            StepExec::Dropout { x, out, mask }
        }
        OpKind::Relu => {
            let (Some(x), Some(out)) = (in_view(0), out_view(0)) else {
                return Ok(None);
            };
            StepExec::Activate { x, out }
        }
        OpKind::Residual => {
            if step.inputs.len() != 2 {
                return Ok(None);
            }
            let (Some(a), Some(b), Some(out)) = (in_view(0), in_view(1), out_view(0)) else {
                return Ok(None);
            };
            if a.len != out.len || b.len != out.len {
                return Ok(None);
            }
            StepExec::Residual { a, b, out }
        }
        OpKind::Fused {
            parts, reduce_axis, ..
        } => {
            let Some(class) = classify_fused(parts) else {
                return Ok(None);
            };
            match class {
                FusedClass::InputBias => {
                    if step.inputs.len() != step.outputs.len() + 1 || step.outputs.is_empty() {
                        return Ok(None);
                    }
                    let (Some(stacked_s), Some(stacked_v)) = (in_shape(0), in_view(0)) else {
                        return Ok(None);
                    };
                    let rest: usize = stacked_s.sizes()[1..].iter().product();
                    let mut start = 0usize;
                    let mut parts_exec = Vec::with_capacity(step.outputs.len());
                    for k in 0..step.outputs.len() {
                        let (Some(o_s), Some(b_s)) = (out_shape(k), in_shape(k + 1)) else {
                            return Ok(None);
                        };
                        if o_s.sizes()[1..] != stacked_s.sizes()[1..] {
                            return Ok(None);
                        }
                        let len = o_s.sizes()[0];
                        let x = BufView {
                            off: stacked_v.off + start * rest,
                            len: len * rest,
                        };
                        let (Some(b_v), Some(o_v)) = (in_view(k + 1), out_view(k)) else {
                            return Ok(None);
                        };
                        let Some(bmap) = bias_map(o_s, b_s) else {
                            return Ok(None);
                        };
                        parts_exec.push((x, b_v, o_v, bmap));
                        start += len;
                    }
                    StepExec::InputBias { parts: parts_exec }
                }
                FusedClass::Softmax { causal } => {
                    if step.outputs.len() != 3 {
                        return Ok(None);
                    }
                    let (Some(x_s), Some(x)) = (in_shape(0), in_view(0)) else {
                        return Ok(None);
                    };
                    let Some(axis) = *reduce_axis else {
                        return Ok(None);
                    };
                    let Some(lane) = lane_of(x_s, axis) else {
                        return Ok(None);
                    };
                    let causal_map = if causal {
                        match causal_of(x_s, axis) {
                            Some(c) => Some(c),
                            None => return Ok(None),
                        }
                    } else {
                        None
                    };
                    let (Some(softmax), Some(alpha), Some(mask)) =
                        (out_view(0), out_view(1), out_view(2))
                    else {
                        return Ok(None);
                    };
                    StepExec::Sm {
                        x,
                        softmax,
                        alpha,
                        mask,
                        lane,
                        causal: causal_map,
                    }
                }
                FusedClass::BiasDropResidualNorm => {
                    if step.inputs.len() != 5 || step.outputs.len() != 3 {
                        return Ok(None);
                    }
                    let (Some(x_s), Some(b_s)) = (in_shape(0), in_shape(1)) else {
                        return Ok(None);
                    };
                    let Some(axis) = *reduce_axis else {
                        return Ok(None);
                    };
                    let Some(lane) = lane_of(x_s, axis) else {
                        return Ok(None);
                    };
                    let Some(bmap) = bias_map(x_s, b_s) else {
                        return Ok(None);
                    };
                    let (
                        Some(x),
                        Some(bias),
                        Some(residual),
                        Some(gamma),
                        Some(beta),
                        Some(mask),
                        Some(ln_input),
                        Some(out),
                    ) = (
                        in_view(0),
                        in_view(1),
                        in_view(2),
                        in_view(3),
                        in_view(4),
                        out_view(0),
                        out_view(1),
                        out_view(2),
                    )
                    else {
                        return Ok(None);
                    };
                    if gamma.len != lane.len || beta.len != lane.len {
                        return Ok(None);
                    }
                    let (mean, inv_std) = alloc_stats(lane.lanes(), &step.outputs[2].name);
                    StepExec::Bdrln {
                        x,
                        bias,
                        bmap,
                        residual,
                        gamma,
                        beta,
                        mask,
                        ln_input,
                        out,
                        lane,
                        mean,
                        inv_std,
                    }
                }
                FusedClass::BiasActDrop => {
                    if step.inputs.len() != 2 || step.outputs.len() != 3 {
                        return Ok(None);
                    }
                    let (Some(x_s), Some(b_s)) = (in_shape(0), in_shape(1)) else {
                        return Ok(None);
                    };
                    let Some(bmap) = bias_map(x_s, b_s) else {
                        return Ok(None);
                    };
                    let (Some(x), Some(bias), Some(pre), Some(out), Some(mask)) = (
                        in_view(0),
                        in_view(1),
                        out_view(0),
                        out_view(1),
                        out_view(2),
                    ) else {
                        return Ok(None);
                    };
                    StepExec::BrdAct {
                        x,
                        bias,
                        bmap,
                        pre_activation: pre,
                        out,
                        mask,
                    }
                }
                FusedClass::BiasDropResidual => {
                    if step.inputs.len() != 3 || step.outputs.len() != 2 {
                        return Ok(None);
                    }
                    let (Some(x_s), Some(b_s)) = (in_shape(0), in_shape(1)) else {
                        return Ok(None);
                    };
                    let Some(bmap) = bias_map(x_s, b_s) else {
                        return Ok(None);
                    };
                    let (Some(x), Some(bias), Some(residual), Some(mask), Some(out)) =
                        (in_view(0), in_view(1), in_view(2), out_view(0), out_view(1))
                    else {
                        return Ok(None);
                    };
                    StepExec::Bdr {
                        x,
                        bias,
                        bmap,
                        residual,
                        mask,
                        out,
                    }
                }
                FusedClass::Norm => {
                    if step.inputs.len() != 3 || step.outputs.len() != 1 {
                        return Ok(None);
                    }
                    let (Some(x_s), Some(x), Some(gamma), Some(beta), Some(out)) =
                        (in_shape(0), in_view(0), in_view(1), in_view(2), out_view(0))
                    else {
                        return Ok(None);
                    };
                    let Some(axis) = *reduce_axis else {
                        return Ok(None);
                    };
                    let Some(lane) = lane_of(x_s, axis) else {
                        return Ok(None);
                    };
                    if gamma.len != lane.len || beta.len != lane.len {
                        return Ok(None);
                    }
                    let (mean, inv_std) = alloc_stats(lane.lanes(), &step.outputs[0].name);
                    StepExec::LayerNorm {
                        x,
                        gamma,
                        beta,
                        out,
                        lane,
                        mean,
                        inv_std,
                    }
                }
            }
        }
        OpKind::ContractionEpilogue {
            spec,
            parts,
            reduce_axis,
            ..
        } => {
            if step.inputs.len() < 2 || step.outputs.is_empty() {
                return Ok(None);
            }
            let (Some(a_c), Some(b_c), Some(out_c)) = (in_shape(0), in_shape(1), out_shape(0))
            else {
                return Ok(None);
            };
            let Some(geom) = epilogue_geometry(
                spec,
                parts,
                *reduce_axis,
                a_c,
                b_c,
                out_c,
                in_shape(2),
                in_shape(3),
            ) else {
                return Ok(None);
            };
            let (Some(av), Some(bv)) = (in_view(0), in_view(1)) else {
                return Ok(None);
            };
            let (a, b) = if geom.swapped { (bv, av) } else { (av, bv) };
            let epi = match geom.class {
                FusedClass::Softmax { .. } => {
                    if step.inputs.len() != 2 || step.outputs.len() != 3 {
                        return Ok(None);
                    }
                    let (Some(softmax), Some(alpha), Some(mask)) =
                        (out_view(0), out_view(1), out_view(2))
                    else {
                        return Ok(None);
                    };
                    EpiExec::Sm {
                        softmax,
                        alpha,
                        mask,
                        causal: geom.causal,
                    }
                }
                FusedClass::BiasActDrop => {
                    if step.inputs.len() != 3 || step.outputs.len() != 3 {
                        return Ok(None);
                    }
                    let (Some(bias), Some(pre), Some(out), Some(mask)) =
                        (in_view(2), out_view(0), out_view(1), out_view(2))
                    else {
                        return Ok(None);
                    };
                    EpiExec::BrdAct {
                        bias,
                        bmap: into_ops::BiasMap {
                            dims: vec![(geom.plan.n, geom.plan.m, 1)],
                        },
                        pre_activation: pre,
                        out,
                        mask,
                    }
                }
                FusedClass::BiasDropResidual => {
                    if step.inputs.len() != 4 || step.outputs.len() != 2 {
                        return Ok(None);
                    }
                    let (Some(bias), Some(residual), Some(mask), Some(out)) =
                        (in_view(2), in_view(3), out_view(0), out_view(1))
                    else {
                        return Ok(None);
                    };
                    EpiExec::Bdr {
                        bias,
                        bmap: into_ops::BiasMap {
                            dims: vec![(geom.plan.n, geom.plan.m, 1)],
                        },
                        residual,
                        mask,
                        out,
                    }
                }
                _ => return Ok(None),
            };
            StepExec::ContractEpilogue {
                a,
                b,
                plan: geom.plan,
                tile_rows: geom.tile_rows,
                a_off: 0,
                b_off: 0,
                t_off: 0,
                epi,
            }
        }
        _ => return Ok(None),
    };
    Ok(Some(exec))
}

/// `true` when the step's kernel class has a bounds-check-free twin in
/// `into_ops`. Contractions gather through `copy_strided`/`sgemm` (already
/// branch-free on packed buffers) and the zip-iterator element-wise
/// kernels compile without bounds checks as-is, so neither has one.
fn step_has_unchecked_twin(step: &StepExec) -> bool {
    !matches!(
        step,
        StepExec::Contract { .. }
            | StepExec::Scale { .. }
            | StepExec::Dropout { .. }
            | StepExec::Activate { .. }
            | StepExec::Residual { .. }
    )
}

/// Executes one precompiled step out of the slab. When `licensed` is set
/// the step's bounds-check-free kernel twin is dispatched; the license is
/// granted only by a clean [`crate::access::certify_access_arena`] pass
/// over this exact plan and slab coloring, and every unlicensed step
/// falls back to the checked kernel.
///
/// # Safety
///
/// `mem` must point into live buffers at least as large as every view the
/// step references, and no concurrently-running step may write any word
/// this step touches — guaranteed by the arena certificate (interval
/// overlap ⇒ range disjointness) plus the wave partition's race
/// certificate semantics. When `licensed` is set, the access certificate
/// must have proven every derived path of this step in-bounds,
/// unit-stride, and alias-free.
unsafe fn run_step<R: Rng + ?Sized>(
    step: &StepExec,
    licensed: bool,
    mem: SlabMem,
    run: &ArenaRun,
    rng: &mut R,
) {
    let p = run.dropout_p;
    match step {
        StepExec::Contract {
            a,
            b,
            out,
            plan,
            a_off,
            b_off,
            c_off,
        } => unsafe {
            into_ops::contract_into(
                plan,
                mem.slab(*a),
                mem.slab(*b),
                mem.slab_mut(*out),
                mem.scratch_mut(*a_off, plan.a_words()),
                mem.scratch_mut(*b_off, plan.b_words()),
                mem.scratch_mut(*c_off, plan.c_words()),
            );
        },
        StepExec::Bias { x, bias, out, bmap } => unsafe {
            let (x, bias, out) = (mem.slab(*x), mem.slab(*bias), mem.slab_mut(*out));
            if licensed {
                into_ops::bias_add_into_unchecked(x, bias, bmap, out);
            } else {
                into_ops::bias_add_into(x, bias, bmap, out);
            }
        },
        StepExec::InputBias { parts } => unsafe {
            for (x, bias, out, bmap) in parts {
                let (x, bias, out) = (mem.slab(*x), mem.slab(*bias), mem.slab_mut(*out));
                if licensed {
                    into_ops::bias_add_into_unchecked(x, bias, bmap, out);
                } else {
                    into_ops::bias_add_into(x, bias, bmap, out);
                }
            }
        },
        StepExec::Scale { x, out } => unsafe {
            into_ops::scale_into(mem.slab(*x), run.scaler, mem.slab_mut(*out));
        },
        StepExec::SoftmaxScaled { x, out, lane } => unsafe {
            let (x, out) = (mem.slab(*x), mem.slab_mut(*out));
            if licensed {
                into_ops::softmax_scaled_into_unchecked(x, run.scaler, *lane, out);
            } else {
                into_ops::softmax_scaled_into(x, run.scaler, *lane, out);
            }
        },
        StepExec::SoftmaxCausal {
            x,
            out,
            lane,
            causal,
        } => unsafe {
            let (x, out) = (mem.slab(*x), mem.slab_mut(*out));
            let c = causal.at(causal.base + run.pos);
            if licensed {
                into_ops::softmax_causal_into_unchecked(x, run.scaler, *lane, c, out);
            } else {
                into_ops::softmax_causal_into(x, run.scaler, *lane, c, out);
            }
        },
        StepExec::Sm {
            x,
            softmax,
            alpha,
            mask,
            lane,
            causal,
        } => unsafe {
            let (x, softmax, alpha, mask) = (
                mem.slab(*x),
                mem.slab_mut(*softmax),
                mem.slab_mut(*alpha),
                mem.slab_mut(*mask),
            );
            let c = causal.map(|c| c.at(c.base + run.pos));
            if licensed {
                into_ops::sm_into_unchecked(x, run.scaler, *lane, c, p, rng, softmax, alpha, mask);
            } else {
                into_ops::sm_into(x, run.scaler, *lane, c, p, rng, softmax, alpha, mask);
            }
        },
        StepExec::LayerNorm {
            x,
            gamma,
            beta,
            out,
            lane,
            mean,
            inv_std,
        } => unsafe {
            let (x, gamma, beta, out, mean, inv_std) = (
                mem.slab(*x),
                mem.slab(*gamma),
                mem.slab(*beta),
                mem.slab_mut(*out),
                mem.stats_mut(*mean),
                mem.stats_mut(*inv_std),
            );
            if licensed {
                into_ops::layernorm_into_unchecked(x, gamma, beta, *lane, out, mean, inv_std);
            } else {
                into_ops::layernorm_into(x, gamma, beta, *lane, out, mean, inv_std);
            }
        },
        StepExec::Dropout { x, out, mask } => unsafe {
            if p > 0.0 {
                into_ops::dropout_into(
                    mem.slab(*x),
                    p,
                    rng,
                    mem.slab_mut(*out),
                    mem.slab_mut(*mask),
                );
            } else {
                into_ops::dropout_disabled_into(
                    mem.slab(*x),
                    mem.slab_mut(*out),
                    mem.slab_mut(*mask),
                );
            }
        },
        StepExec::Activate { x, out } => unsafe {
            into_ops::activate_into(mem.slab(*x), run.activation, mem.slab_mut(*out));
        },
        StepExec::Residual { a, b, out } => unsafe {
            into_ops::add_into(mem.slab(*a), mem.slab(*b), mem.slab_mut(*out));
        },
        StepExec::Bdrln {
            x,
            bias,
            bmap,
            residual,
            gamma,
            beta,
            mask,
            ln_input,
            out,
            lane,
            mean,
            inv_std,
        } => unsafe {
            let (x, bias, residual, gamma, beta, mask, ln_input, out, mean, inv_std) = (
                mem.slab(*x),
                mem.slab(*bias),
                mem.slab(*residual),
                mem.slab(*gamma),
                mem.slab(*beta),
                mem.slab_mut(*mask),
                mem.slab_mut(*ln_input),
                mem.slab_mut(*out),
                mem.stats_mut(*mean),
                mem.stats_mut(*inv_std),
            );
            if licensed {
                into_ops::bdrln_into_unchecked(
                    x, bias, bmap, residual, gamma, beta, *lane, p, rng, mask, ln_input, out, mean,
                    inv_std,
                );
            } else {
                into_ops::bdrln_into(
                    x, bias, bmap, residual, gamma, beta, *lane, p, rng, mask, ln_input, out, mean,
                    inv_std,
                );
            }
        },
        StepExec::BrdAct {
            x,
            bias,
            bmap,
            pre_activation,
            out,
            mask,
        } => unsafe {
            let (x, bias, pre_activation, out, mask) = (
                mem.slab(*x),
                mem.slab(*bias),
                mem.slab_mut(*pre_activation),
                mem.slab_mut(*out),
                mem.slab_mut(*mask),
            );
            if licensed {
                into_ops::brd_act_into_unchecked(
                    x,
                    bias,
                    bmap,
                    run.activation,
                    p,
                    rng,
                    pre_activation,
                    out,
                    mask,
                );
            } else {
                into_ops::brd_act_into(
                    x,
                    bias,
                    bmap,
                    run.activation,
                    p,
                    rng,
                    pre_activation,
                    out,
                    mask,
                );
            }
        },
        StepExec::Bdr {
            x,
            bias,
            bmap,
            residual,
            mask,
            out,
        } => unsafe {
            let (x, bias, residual, mask, out) = (
                mem.slab(*x),
                mem.slab(*bias),
                mem.slab(*residual),
                mem.slab_mut(*mask),
                mem.slab_mut(*out),
            );
            if licensed {
                into_ops::bdr_into_unchecked(x, bias, bmap, residual, p, rng, mask, out);
            } else {
                into_ops::bdr_into(x, bias, bmap, residual, p, rng, mask, out);
            }
        },
        StepExec::ContractEpilogue {
            a,
            b,
            plan,
            tile_rows,
            a_off,
            b_off,
            t_off,
            epi,
        } => unsafe {
            let mut drive = |e: &mut into_ops::TileEpilogue<'_>| {
                into_ops::contract_epilogue_tiled(
                    plan,
                    *tile_rows,
                    mem.slab(*a),
                    mem.slab(*b),
                    mem.scratch_mut(*a_off, plan.a_words()),
                    mem.scratch_mut(*b_off, plan.b_words()),
                    mem.scratch_mut(*t_off, *tile_rows * plan.n),
                    p,
                    rng,
                    licensed,
                    e,
                );
            };
            match epi {
                EpiExec::Sm {
                    softmax,
                    alpha,
                    mask,
                    causal,
                } => drive(&mut into_ops::TileEpilogue::Softmax {
                    scaler: run.scaler,
                    causal: causal.map(|c| c.at(c.base + run.pos)),
                    softmax: mem.slab_mut(*softmax),
                    alpha: mem.slab_mut(*alpha),
                    mask: mem.slab_mut(*mask),
                }),
                EpiExec::BrdAct {
                    bias,
                    bmap,
                    pre_activation,
                    out,
                    mask,
                } => drive(&mut into_ops::TileEpilogue::BiasActDrop {
                    bias: mem.slab(*bias),
                    bmap,
                    kind: run.activation,
                    pre_activation: mem.slab_mut(*pre_activation),
                    out: mem.slab_mut(*out),
                    mask: mem.slab_mut(*mask),
                }),
                EpiExec::Bdr {
                    bias,
                    bmap,
                    residual,
                    mask,
                    out,
                } => drive(&mut into_ops::TileEpilogue::BiasDropResidual {
                    bias: mem.slab(*bias),
                    bmap,
                    residual: mem.slab(*residual),
                    mask: mem.slab_mut(*mask),
                    out: mem.slab_mut(*out),
                }),
            }
        },
    }
}

/// `XFORM_SANITIZE`, resolved once per process. Reading an environment
/// variable allocates, so the arena's steady-state path caches the flag;
/// the allocating interpreters keep resolving it per call. Callers
/// building an [`ArenaRun`] from a [`crate::plan::SanitizeMode::Env`]
/// option should use this to stay allocation-free.
pub fn env_sanitize_cached() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(crate::sanitize::sanitize_enabled)
}

/// A wave handed to the persistent worker pool: raw views of one arena's
/// step table, wave slice, and buffers, all outliving the dispatch because
/// the publishing thread blocks until every worker has drained.
#[derive(Clone, Copy)]
struct WaveJob {
    steps: *const StepExec,
    licensed: *const bool,
    wave: *const usize,
    wave_len: usize,
    mem: SlabMem,
    run: ArenaRun,
}

unsafe impl Send for WaveJob {}

struct PoolState {
    epoch: u64,
    job: Option<WaveJob>,
    running: usize,
    panicked: bool,
}

/// The persistent wave-execution pool. Workers are spawned once, on the
/// first parallel arena run (part of warmup), and live for the process —
/// spawning scoped threads per call would allocate stacks on every
/// forward.
struct Pool {
    /// Serializes whole parallel runs onto the single job slot.
    dispatch: Mutex<()>,
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Work-stealing cursor into the published wave.
    claim: AtomicUsize,
    workers: usize,
}

impl Pool {
    fn run_wave(
        &self,
        steps: &[StepExec],
        licensed: &[bool],
        wave: &[usize],
        mem: SlabMem,
        run: &ArenaRun,
    ) -> Result<()> {
        self.claim.store(0, Ordering::Relaxed);
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.job = Some(WaveJob {
                steps: steps.as_ptr(),
                licensed: licensed.as_ptr(),
                wave: wave.as_ptr(),
                wave_len: wave.len(),
                mem,
                run: *run,
            });
            st.epoch = st.epoch.wrapping_add(1);
            st.panicked = false;
        }
        self.work_cv.notify_all();
        // participate from the publishing thread
        let own = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.claim.fetch_add(1, Ordering::Relaxed);
            if i >= wave.len() {
                break;
            }
            let si = wave[i];
            let mut rng = step_rng(run.seed, si);
            // SAFETY: per the arena and access certificates, see `run_step`.
            unsafe { run_step(&steps[si], licensed[si], mem, run, &mut rng) };
        }));
        // wait until no worker still holds the job's pointers, then
        // retract it — workers that wake later see `None` and re-wait
        let panicked;
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.running > 0 {
                st = self.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            panicked = st.panicked;
        }
        if own.is_err() || panicked {
            return Err(TensorError::Unsupported(
                "arena wave execution panicked".into(),
            ));
        }
        Ok(())
    }
}

fn worker_loop(pool: &'static Pool) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match st.job {
                    Some(j) if st.epoch != seen => {
                        seen = st.epoch;
                        st.running += 1;
                        break j;
                    }
                    _ => {
                        st = pool.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        };
        let res = catch_unwind(AssertUnwindSafe(|| loop {
            let i = pool.claim.fetch_add(1, Ordering::Relaxed);
            if i >= job.wave_len {
                break;
            }
            // SAFETY: the publisher keeps `steps`/`wave`/`mem` alive until
            // `running` drops to zero, which happens strictly after this
            // worker finishes.
            let si = unsafe { *job.wave.add(i) };
            let mut rng = step_rng(job.run.seed, si);
            unsafe {
                run_step(
                    &*job.steps.add(si),
                    *job.licensed.add(si),
                    job.mem,
                    &job.run,
                    &mut rng,
                )
            };
        }));
        let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
        if res.is_err() {
            st.panicked = true;
        }
        st.running -= 1;
        if st.running == 0 {
            pool.done_cv.notify_all();
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1)
            .min(7);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            dispatch: Mutex::new(()),
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                running: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicUsize::new(0),
            workers,
        }));
        for _ in 0..workers {
            std::thread::spawn(move || worker_loop(pool));
        }
        pool
    })
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::analyze::analyze;
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::plan::{execute_plan, random_externals, ExecOptions, SanitizeMode};
    use crate::recipe::forward_ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xform_dataflow::{build, EncoderDims};

    fn fused_plan() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
        (g, plan)
    }

    fn run_env(graph: &Graph, plan: &ExecutionPlan, state: &mut ExecState) {
        let opts = ExecOptions::builder().sanitize(SanitizeMode::Off).build();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        execute_plan(graph, plan, state, &opts, &mut rng).unwrap();
    }

    #[test]
    fn canned_fused_plan_compiles_and_matches_env_bitwise() {
        let (graph, plan) = fused_plan();
        let analysis = analyze(&graph, &plan);
        let arena = CompiledArena::compile(&graph, &plan, &analysis, ArenaGranularity::Serial)
            .unwrap()
            .expect("canned fused encoder plan must compile to an arena");
        assert!(arena.matches(&plan));
        assert_eq!(
            arena.slab_words() as u64,
            analysis.peak_resident_words,
            "serial arena slab must hit the peak-resident target exactly"
        );

        let mut env_state = random_externals(&graph, &plan, 42).unwrap();
        let mut arena_state = ExecState {
            env: env_state.env.clone(),
            stats: Default::default(),
        };
        run_env(&graph, &plan, &mut env_state);
        let run = ArenaRun {
            dropout_p: 0.0,
            activation: ActivationKind::Relu,
            scaler: 1.0,
            seed: 0x5eed,
            threads: 1,
            sanitize: false,
            pos: 0,
        };
        let outcome = arena.run_with_state(&mut arena_state, &run).unwrap();
        assert_eq!(outcome, ArenaOutcome::Ran);
        // every Output/Saved container must be bitwise equal to the
        // allocating interpreter's result
        let mut compared = 0;
        for (name, t) in &arena_state.env {
            let e = env_state.env.get(name).expect("env missing container");
            assert_eq!(t.shape(), e.shape(), "{name} shape");
            assert_eq!(t.data(), e.data(), "{name} data");
            compared += 1;
        }
        assert!(compared > 3);
        for (name, s) in &arena_state.stats {
            let e = env_state.stats.get(name).expect("env missing stats");
            assert_eq!(s.mean, e.mean, "{name} mean");
            assert_eq!(s.inv_std, e.inv_std, "{name} inv_std");
        }
        assert!(!arena_state.stats.is_empty());
    }

    #[test]
    fn waves_arena_parallel_matches_serial_arena_bitwise() {
        let (graph, plan) = fused_plan();
        let analysis = analyze(&graph, &plan);
        let arena = CompiledArena::compile(&graph, &plan, &analysis, ArenaGranularity::Waves)
            .unwrap()
            .expect("waves arena must compile");
        let base = random_externals(&graph, &plan, 7).unwrap();
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            for p in [0.0f32, 0.4] {
                let mut state = ExecState {
                    env: base.env.clone(),
                    stats: Default::default(),
                };
                let run = ArenaRun {
                    dropout_p: p,
                    activation: ActivationKind::Relu,
                    scaler: 0.5,
                    seed: 0xfeed,
                    threads,
                    sanitize: false,
                    pos: 0,
                };
                assert_eq!(
                    arena.run_with_state(&mut state, &run).unwrap(),
                    ArenaOutcome::Ran
                );
                let mut names: Vec<&String> = state.env.keys().collect();
                names.sort();
                let snapshot: Vec<Vec<f32>> = names
                    .iter()
                    .map(|n| state.env[*n].data().to_vec())
                    .collect();
                results.push((p, snapshot));
            }
        }
        // group by p: all thread counts must agree bitwise
        for p in [0.0f32, 0.4] {
            let group: Vec<_> = results.iter().filter(|(rp, _)| *rp == p).collect();
            for w in group.windows(2) {
                assert_eq!(w[0].1, w[1].1, "thread-count variance at p={p}");
            }
        }
    }

    #[test]
    fn sanitized_arena_run_passes_on_clean_plan() {
        let (graph, plan) = fused_plan();
        let analysis = analyze(&graph, &plan);
        for g in [ArenaGranularity::Serial, ArenaGranularity::Waves] {
            let arena = CompiledArena::compile(&graph, &plan, &analysis, g)
                .unwrap()
                .expect("arena must compile");
            let mut state = random_externals(&graph, &plan, 11).unwrap();
            let run = ArenaRun {
                dropout_p: 0.0,
                activation: ActivationKind::Relu,
                scaler: 1.0,
                seed: 1,
                threads: if g == ArenaGranularity::Waves { 4 } else { 1 },
                sanitize: true,
                pos: 0,
            };
            assert_eq!(
                arena.run_with_state(&mut state, &run).unwrap(),
                ArenaOutcome::Ran,
                "sanitized arena run must pass at {g}"
            );
        }
    }

    #[test]
    fn all_canned_plans_compile_at_the_peak_resident_target() {
        let dims = EncoderDims::tiny();
        type FusionFn = fn() -> Vec<crate::fusion::FusionGroup>;
        let canned: Vec<(&str, Graph, Option<FusionFn>)> = vec![
            ("encoder reference", build::encoder(&dims).graph, None),
            (
                "encoder fused",
                build::encoder(&dims).graph,
                Some(encoder_fusion_plan),
            ),
            ("decoder reference", build::decoder(&dims).graph, None),
            (
                "decoder fused",
                build::decoder(&dims).graph,
                Some(crate::fusion::decoder_fusion_plan),
            ),
        ];
        for (label, graph, fuse) in canned {
            let eg = if label.starts_with("encoder") {
                build::encoder(&dims)
            } else {
                build::decoder(&dims)
            };
            let mut g = graph;
            if let Some(f) = fuse {
                apply_plan(&mut g, &f()).unwrap();
            }
            let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
            let analysis = analyze(&g, &plan);
            let arena = CompiledArena::compile(&g, &plan, &analysis, ArenaGranularity::Serial)
                .unwrap()
                .unwrap_or_else(|| panic!("{label} plan must compile to an arena"));
            assert_eq!(
                arena.slab_words() as u64,
                analysis.peak_resident_words,
                "{label}: serial slab must hit the peak-resident target"
            );
        }
    }
}
