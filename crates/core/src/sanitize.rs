//! Footprint sanitizer and race certifier: the proof obligations behind
//! wave-parallel plan execution.
//!
//! The paper's recipe rests on knowing exactly what each operator reads
//! and writes (Sec. IV's dataflow analysis); [`crate::analyze`] builds the
//! hazard DAG from each step's *declared* operands, but nothing in that
//! pass verifies the declarations against what the `xform-tensor` kernels
//! actually touch. Dispatching [`PlanAnalysis::parallel_waves`] across
//! threads would turn any under-declared alias into a silent data race.
//! This module closes that gap in three layers:
//!
//! * **Static certifier** — [`certify`] derives each kernel's access
//!   footprint symbolically ([`step_footprint`]) from the graph's shapes,
//!   the kernel's iteration space ([`crate::itspace::op_iter_space`]),
//!   and the interpreter's own dispatch rules (the stacked-Q/K/V carve),
//!   cross-checks it against the step's declared operands and memlet
//!   volumes, and validates the wave partition pairwise for conflicting
//!   in-wave access. Under-declaration, aliased buffer names, and
//!   wave-internal hazards become error-severity
//!   [`PlanLint`]s; a clean pass yields a [`RaceCertificate`] keyed to
//!   the plan's fingerprint.
//! * **Dynamic shadow sanitizer** — [`execute_plan_sanitized`] runs the
//!   schedule serially with the same kernels and RNG draws (bitwise
//!   identical results) but executes every step against an instrumented
//!   environment: containers are poisoned with NaN outside the derived
//!   read footprint, partial reads observed at runtime
//!   ([`xform_tensor::trace`]) are checked against the derivation, operand
//!   names are checked against the graph, kernel panics from missing
//!   operands are converted into errors, and each wave's observed
//!   footprints are checked for cross-thread conflicts — a
//!   ThreadSanitizer for plans. `XFORM_SANITIZE=1` routes
//!   [`crate::plan::execute_plan`] through this path.
//! * **Wave-parallel interpreter** — [`execute_plan_parallel`] refuses to
//!   run without a [`RaceCertificate`] matching the plan's fingerprint,
//!   then dispatches each certified wave's steps across a scoped thread
//!   pool, joining between waves.
//!
//! Why in-wave *relayout vs. read* pairs are safe (and everything else is
//! not): every kernel addresses elements logically and is bitwise
//! layout-invariant, and each parallel step snapshots its operands at
//! step start — so a concurrent re-materialization changes only the
//! physical order a reader might snapshot, never a value. Concurrent
//! value-writes, write/read pairs, and double materializations all remain
//! races and are rejected.
//!
//! [`PlanAnalysis::parallel_waves`]: crate::analyze::PlanAnalysis::parallel_waves

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xform_dataflow::{Graph, NodeId, OpKind};
use xform_tensor::{trace, Result, Tensor, TensorError};

use crate::analyze::{analyze, DepKind, PlanLint};
use crate::itspace::op_iter_space;
use crate::plan::{
    execute_step, stacked_carve_start, ExecOptions, ExecState, ExecutionPlan, PlanStep,
};

/// A contiguous interval `[lo, hi)` of a container's logical element
/// space (row-major over the container's natural axis order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First element (inclusive).
    pub lo: u64,
    /// One past the last element (exclusive).
    pub hi: u64,
}

impl Span {
    /// Interval length in words.
    pub fn words(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// `true` when the intervals share at least one element.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }
}

/// How a step touches a span of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The step consumes the span's values.
    Read,
    /// The step defines the span's values.
    Write,
    /// The step re-materializes the span's values into a different
    /// physical buffer without changing them (an explicit relayout).
    /// Safe against concurrent reads, a race against anything else.
    Materialize,
}

/// One derived element-level access of a scheduled step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The container.
    pub data: NodeId,
    /// Its graph name.
    pub name: String,
    /// Access class.
    pub kind: AccessKind,
    /// The logical element interval touched.
    pub span: Span,
}

/// Derives the access footprint of one scheduled step from the *graph*
/// (shapes, edges, operator kind) and the interpreter's dispatch rules —
/// deliberately not from the step's declared operand list, so the
/// certifier can cross-check declarations against this oracle.
///
/// Every forward kernel sweeps whole containers (their iteration spaces
/// cover every operand axis); the one sub-container pattern is the
/// stacked-Q/K/V carve of `Input bias Q/K/V`, whose interval is derived
/// from the same start/length arithmetic the interpreter dispatches with
/// and cross-checked against the kernel's iteration space. Relayouts
/// contribute a value read plus a materialization write over the full
/// container. Containers missing from the graph are skipped (the
/// structural lints of [`crate::analyze`] already flag them).
pub fn step_footprint(graph: &Graph, step: &PlanStep) -> Vec<Access> {
    let mut acc = Vec::new();
    for r in &step.relayouts {
        if let Some(d) = graph.data(r.data) {
            let full = Span {
                lo: 0,
                hi: d.shape.num_elements() as u64,
            };
            acc.push(Access {
                data: r.data,
                name: d.name.clone(),
                kind: AccessKind::Read,
                span: full,
            });
            acc.push(Access {
                data: r.data,
                name: d.name.clone(),
                kind: AccessKind::Materialize,
                span: full,
            });
        }
    }
    let Some(node) = graph.op(step.op) else {
        return acc;
    };
    let in_ids = graph.inputs_of(step.op);
    let out_ids = graph.outputs_of(step.op);
    for (i, &id) in in_ids.iter().enumerate() {
        let Some(d) = graph.data(id) else { continue };
        let total = d.shape.num_elements() as u64;
        let mut span = Span { lo: 0, hi: total };
        if i == 0 && matches!(node.kind, OpKind::Bias { .. }) {
            if let Some(o) = out_ids.first().and_then(|&o| graph.data(o)) {
                if o.shape.spec() != d.shape.spec() || o.shape.sizes() != d.shape.sizes() {
                    // stacked-projection carve: `len` leading rows starting
                    // at the projection's offset
                    let total_rows = d.shape.sizes()[0];
                    let len = o.shape.sizes()[0];
                    let row_words: u64 = d.shape.sizes()[1..].iter().map(|&n| n as u64).product();
                    if let Some(start) = stacked_carve_start(&node.name, total_rows, len) {
                        let carved = Span {
                            lo: start as u64 * row_words,
                            hi: (start + len) as u64 * row_words,
                        };
                        // cross-check against the kernel's iteration space:
                        // the carve must be exactly one sweep of the output
                        // space; fall back to the conservative full span if
                        // the symbolic sizes disagree
                        let space_words = op_iter_space(graph, step.op).ok().map(|s| {
                            s.independent
                                .iter()
                                .chain(&s.reduction)
                                .map(|&(_, n)| n as u64)
                                .product::<u64>()
                        });
                        if space_words.is_none_or(|w| w == carved.words()) {
                            span = carved;
                        }
                    }
                }
            }
        }
        acc.push(Access {
            data: id,
            name: d.name.clone(),
            kind: AccessKind::Read,
            span,
        });
    }
    for &id in &out_ids {
        if let Some(d) = graph.data(id) {
            acc.push(Access {
                data: id,
                name: d.name.clone(),
                kind: AccessKind::Write,
                span: Span {
                    lo: 0,
                    hi: d.shape.num_elements() as u64,
                },
            });
        }
    }
    acc
}

/// FNV-1a content fingerprint of a schedule: operator ids, kernel names,
/// operator kinds, every operand's container/name/layout, and every
/// relayout insertion. Any edit to the plan — reordering, re-laying-out,
/// renaming, adding or dropping steps — changes the fingerprint, which is
/// what ties a [`RaceCertificate`] to exactly the plan it certified.
pub fn plan_fingerprint(plan: &ExecutionPlan) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(PRIME);
    };
    for step in &plan.steps {
        eat(&step.op.to_string());
        eat(&step.name);
        eat(&format!("{:?}", step.kind));
        for o in step.inputs.iter().chain(&step.outputs) {
            eat(&o.data.to_string());
            eat(&o.name);
            eat(&o.layout);
        }
        for r in &step.relayouts {
            eat(&r.data.to_string());
            eat(&r.name);
            eat(&r.from);
            eat(&r.to);
        }
        eat("\u{0}");
    }
    h
}

/// Proof that a plan's wave partition is free of data races: produced only
/// by a clean [`certify`]/[`certify_waves`] pass, consumed by
/// [`execute_plan_parallel`], and keyed to the plan by
/// [`plan_fingerprint`] so it cannot be replayed against an edited
/// schedule.
#[derive(Debug, Clone)]
pub struct RaceCertificate {
    /// Fingerprint of the certified plan.
    pub plan_hash: u64,
    /// The certified wave partition (step indices per wave, concatenation
    /// is a permutation of the schedule).
    pub waves: Vec<Vec<usize>>,
}

/// Proof that an arena coloring respects buffer liveness: produced only by
/// a clean [`certify_arena`] pass, consumed by the arena interpreter
/// ([`crate::arena::CompiledArena`]), and keyed to the plan by
/// [`plan_fingerprint`] so a recolored or edited schedule must be
/// re-certified. Two logical buffers may share physical slab words only
/// when their live intervals (at the certificate's granularity) are
/// disjoint.
#[derive(Debug, Clone)]
pub struct ArenaCertificate {
    /// Fingerprint of the certified plan.
    pub plan_hash: u64,
    /// The execution order the coloring is valid for.
    pub granularity: crate::analyze::ArenaGranularity,
    /// Size of the certified slab in words.
    pub slab_words: u64,
}

/// Certifies an arena assignment against the plan it was colored for: the
/// aliasing-aware mode of the certifier. Checks, both mandatory:
///
/// 1. every pair of buffers whose live intervals overlap occupies disjoint
///    word ranges of the slab ([`PlanLint::ArenaOverlap`] otherwise — two
///    simultaneously-live tensors sharing memory would corrupt data);
/// 2. every buffer lies inside the slab bounds.
///
/// The dynamic complement is the arena interpreter's shadow mode (see
/// [`crate::arena::CompiledArena`]): with sanitizing enabled it poisons
/// the slab with NaN, re-poisons each buffer's words the moment its
/// certified live interval ends, and verifies every step's outputs are
/// finite — so any read of a dead (reused) buffer is caught at runtime.
///
/// # Errors
///
/// Returns every [`PlanLint::ArenaOverlap`] found when the coloring
/// cannot be certified.
pub fn certify_arena(
    plan: &ExecutionPlan,
    assignment: &crate::analyze::ArenaAssignment,
) -> std::result::Result<ArenaCertificate, Vec<PlanLint>> {
    let mut lints = Vec::new();
    let slots = &assignment.slots;
    for (i, a) in slots.iter().enumerate() {
        if a.offset + a.words > assignment.slab_words {
            lints.push(PlanLint::ArenaOverlap {
                a: a.name.clone(),
                b: "<slab bound>".into(),
                a_offset: a.offset,
                b_offset: assignment.slab_words,
            });
        }
        for b in &slots[i + 1..] {
            let live_overlap = a.start <= b.end && b.start <= a.end;
            let range_overlap = a.offset < b.offset + b.words && b.offset < a.offset + a.words;
            if live_overlap && range_overlap {
                lints.push(PlanLint::ArenaOverlap {
                    a: a.name.clone(),
                    b: b.name.clone(),
                    a_offset: a.offset,
                    b_offset: b.offset,
                });
            }
        }
    }
    if lints.is_empty() {
        Ok(ArenaCertificate {
            plan_hash: plan_fingerprint(plan),
            granularity: assignment.granularity,
            slab_words: assignment.slab_words,
        })
    } else {
        Err(lints)
    }
}

/// Certifies a plan for wave-parallel execution over its own
/// [`parallel_waves`](crate::analyze::PlanAnalysis::parallel_waves)
/// partition. See [`certify_waves`].
///
/// # Errors
///
/// Returns every error-severity [`PlanLint`] found when the plan cannot
/// be certified.
pub fn certify(
    graph: &Graph,
    plan: &ExecutionPlan,
) -> std::result::Result<RaceCertificate, Vec<PlanLint>> {
    let waves = analyze(graph, plan).parallel_waves();
    certify_waves(graph, plan, &waves)
}

/// Certifies a plan against an explicit wave partition (the injection
/// point property tests use to present adversarial partitions). Four
/// checks, all mandatory:
///
/// 1. the structural/hazard analysis of [`crate::analyze`] reports no
///    error lints (this includes per-operand name-alias detection);
/// 2. no environment name is shared by two distinct containers anywhere
///    in the schedule ([`PlanLint::NameAlias`]);
/// 3. every step's declared operands and memlet volumes cover the
///    footprint [`step_footprint`] derives
///    ([`PlanLint::UnderDeclaredFootprint`]);
/// 4. every hazard edge crosses strictly forward between waves and no two
///    steps sharing a wave have conflicting footprints
///    ([`PlanLint::WaveHazard`]) — conflicting means overlapping spans
///    where either side value-writes, or both re-materialize.
///
/// # Errors
///
/// Returns the error-severity lints when any check fails.
pub fn certify_waves(
    graph: &Graph,
    plan: &ExecutionPlan,
    waves: &[Vec<usize>],
) -> std::result::Result<RaceCertificate, Vec<PlanLint>> {
    let analysis = analyze(graph, plan);
    let mut lints: Vec<PlanLint> = analysis.errors().into_iter().cloned().collect();

    // global name-alias scan: one environment key, one container
    let mut by_name: HashMap<&str, NodeId> = HashMap::new();
    for (si, step) in plan.steps.iter().enumerate() {
        for o in step.inputs.iter().chain(&step.outputs) {
            match by_name.get(o.name.as_str()) {
                Some(&prev) if prev != o.data => lints.push(PlanLint::NameAlias {
                    step: si,
                    name: step.name.clone(),
                    operand: o.name.clone(),
                    expected: graph
                        .data(prev)
                        .map(|d| d.name.clone())
                        .unwrap_or_else(|| prev.to_string()),
                    data: o.data,
                }),
                Some(_) => {}
                None => {
                    by_name.insert(o.name.as_str(), o.data);
                }
            }
        }
    }

    // footprint derivation + declaration cross-check
    let footprints: Vec<Vec<Access>> = plan
        .steps
        .iter()
        .map(|s| step_footprint(graph, s))
        .collect();
    for (si, step) in plan.steps.iter().enumerate() {
        for a in &footprints[si] {
            if a.kind != AccessKind::Read {
                continue;
            }
            let declared_operand = step.inputs.iter().any(|o| o.data == a.data)
                || step.relayouts.iter().any(|r| r.data == a.data);
            let declared_words = if declared_operand {
                graph.read_words(step.op, a.data)
            } else {
                0
            };
            if declared_words < a.span.words() {
                lints.push(PlanLint::UnderDeclaredFootprint {
                    step: si,
                    name: step.name.clone(),
                    container: a.name.clone(),
                    declared_words,
                    derived_words: a.span.words(),
                });
            }
        }
    }

    // wave validation: hazard edges strictly forward, footprints
    // conflict-free within each wave
    let mut wave_of: HashMap<usize, usize> = HashMap::new();
    for (w, wave) in waves.iter().enumerate() {
        for &s in wave {
            wave_of.insert(s, w);
        }
    }
    for e in &analysis.deps {
        if let (Some(&wf), Some(&wt)) = (wave_of.get(&e.from), wave_of.get(&e.to)) {
            if wf >= wt {
                lints.push(PlanLint::WaveHazard {
                    wave: wt,
                    from: e.from,
                    to: e.to,
                    container: graph
                        .data(e.data)
                        .map(|d| d.name.clone())
                        .unwrap_or_else(|| e.data.to_string()),
                    kind: e.kind,
                });
            }
        }
    }
    for (w, wave) in waves.iter().enumerate() {
        for (i, &sa) in wave.iter().enumerate() {
            for &sb in &wave[i + 1..] {
                let (first, second) = if sa <= sb { (sa, sb) } else { (sb, sa) };
                for (a, b) in conflicts(&footprints[first], &footprints[second]) {
                    lints.push(PlanLint::WaveHazard {
                        wave: w,
                        from: first,
                        to: second,
                        container: a.name.clone(),
                        kind: hazard_kind(a.kind, b.kind),
                    });
                }
            }
        }
    }

    if lints.is_empty() {
        Ok(RaceCertificate {
            plan_hash: plan_fingerprint(plan),
            waves: waves.to_vec(),
        })
    } else {
        lints.sort_by_key(|l| l.step());
        lints.dedup();
        Err(lints)
    }
}

/// Overlapping access pairs between two steps' footprints that would race
/// under concurrent dispatch (first access from `a`, second from `b`).
fn conflicts<'a>(a: &'a [Access], b: &'a [Access]) -> Vec<(&'a Access, &'a Access)> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            if x.data == y.data && x.span.overlaps(&y.span) && !compatible(x.kind, y.kind) {
                out.push((x, y));
            }
        }
    }
    out
}

/// Whether two overlapping accesses may run concurrently: reads commute,
/// and a re-materialization is safe against reads (values unchanged,
/// kernels layout-invariant, operands snapshotted per step). Everything
/// else races.
fn compatible(a: AccessKind, b: AccessKind) -> bool {
    use AccessKind::*;
    matches!(
        (a, b),
        (Read, Read) | (Read, Materialize) | (Materialize, Read)
    )
}

/// The hazard class of a conflicting pair, with `a` from the
/// schedule-earlier step.
fn hazard_kind(a: AccessKind, b: AccessKind) -> DepKind {
    use AccessKind::*;
    match (a, b) {
        (Write, Write) | (Materialize, Materialize) => DepKind::Waw,
        (Write, _) | (Materialize, _) => DepKind::Raw,
        (Read, _) => DepKind::War,
    }
}

/// Whether a `XFORM_SANITIZE` value enables the sanitizer: unset, empty
/// (after trimming), `0`, `false`, `off`, and `no` (case-insensitive) all
/// disable; anything else enables. The pure half of
/// [`sanitize_enabled`], separated so it can be unit-tested without
/// mutating the process environment.
pub fn sanitize_value_enables(value: Option<&str>) -> bool {
    let Some(v) = value else { return false };
    let v = v.trim();
    !(v.is_empty()
        || v == "0"
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("off")
        || v.eq_ignore_ascii_case("no"))
}

/// Reads env var `name` under the unified enable semantics every
/// `XFORM_*` switch shares (`XFORM_SANITIZE`, `XFORM_CACHE_GEOM`):
/// unset, empty, `0`, `false`, `off`, and `no` all mean *disabled* and
/// return `None`; any other value enables the feature and the raw value
/// is returned for feature-specific parsing.
pub fn env_setting(name: &str) -> Option<String> {
    let raw = std::env::var(name).ok();
    if sanitize_value_enables(raw.as_deref()) {
        raw
    } else {
        None
    }
}

/// `true` when `XFORM_SANITIZE` is set to anything but
/// empty/`0`/`false`/`off`/`no` — [`crate::plan::execute_plan`] then
/// routes through [`execute_plan_sanitized`] (see
/// [`sanitize_value_enables`] for the exact parse).
pub fn sanitize_enabled() -> bool {
    env_setting("XFORM_SANITIZE").is_some()
}

/// Clone of `t` with every element outside the union of `spans` (logical
/// element intervals) replaced by NaN: reads escaping the derived
/// footprint surface as NaN in some downstream output.
fn poisoned_outside(t: &Tensor, spans: &[Span]) -> Tensor {
    let mut out = t.clone();
    let mut idx = vec![0usize; t.shape().rank()];
    let mut flat: u64 = 0;
    loop {
        if !spans.iter().any(|s| flat >= s.lo && flat < s.hi) {
            let off = out.offset(&idx);
            out.data_mut()[off] = f32::NAN;
        }
        flat += 1;
        if !out.advance(&mut idx) {
            break;
        }
    }
    out
}

/// Runs `f` with the panic hook silenced, converting a panic into a
/// sanitizer error. Kernels index their declared operand lists directly,
/// so an under-declared operand surfaces as an out-of-bounds panic inside
/// the step — the shadow interpreter reports it instead of crashing.
fn shadow_catch<T>(name: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    match caught {
        Ok(r) => r,
        Err(_) => Err(TensorError::Unsupported(format!(
            "sanitizer: step `{name}` panicked — its declared operands do not cover what the kernel touches"
        ))),
    }
}

/// The shadow-access sanitizer: executes the schedule serially with the
/// same kernels and the same RNG draw order as
/// [`crate::plan::execute_plan`] (results are bitwise identical), but
/// validates every step's actual behaviour against its derived footprint:
///
/// * operand names are checked against the graph per step (dynamic alias
///   detection, even when the static gate was bypassed);
/// * each step runs against a private environment holding only its
///   declared operands, NaN-poisoned outside the derived read footprint —
///   a NaN in any output convicts the step of reading beyond its
///   declaration, and a missing-operand panic is caught and reported;
/// * partial reads the kernels observe at runtime
///   ([`xform_tensor::trace`]) must fall inside the derived read spans;
/// * the observed footprints of every wave (`waves`, defaulting to the
///   plan's own hazard-DAG antichains) are checked pairwise for
///   conflicting access, exactly as a concurrent dispatch would interleave
///   them.
///
/// This path deliberately skips the static lint gate so tests can bypass
/// the certifier and prove the dynamic net catches the same injections.
///
/// # Errors
///
/// Returns an error on the first footprint violation, alias, in-wave
/// conflict, or kernel failure.
pub fn execute_plan_sanitized<R: Rng + ?Sized>(
    graph: &Graph,
    plan: &ExecutionPlan,
    state: &mut ExecState,
    opts: &ExecOptions,
    rng: &mut R,
    waves: Option<&[Vec<usize>]>,
) -> Result<()> {
    let own_waves;
    let waves: &[Vec<usize>] = match waves {
        Some(w) => w,
        None => {
            own_waves = analyze(graph, plan).parallel_waves();
            &own_waves
        }
    };

    let mut footprints: Vec<Vec<Access>> = Vec::with_capacity(plan.steps.len());
    for (si, step) in plan.steps.iter().enumerate() {
        let foot = step_footprint(graph, step);

        // dynamic alias detection: every declared operand name must be the
        // graph name of the container it claims to be
        for o in step.inputs.iter().chain(&step.outputs) {
            if let Some(d) = graph.data(o.data) {
                if d.name != o.name {
                    return Err(TensorError::Unsupported(format!(
                        "sanitizer: step {si} (`{}`) names operand `{}` but {} is `{}` — aliased buffers",
                        step.name, o.name, o.data, d.name
                    )));
                }
            }
        }

        // dynamic cross-check of the access certifier's symbolic paths:
        // every derived path must land inside the *live* buffer bound to
        // the operand name, not just the declared container's shape —
        // catching certificates that went stale against the environment
        let derived = crate::access::step_accesses(graph, step);
        for a in &derived.accesses {
            if let Some(t) = state.env.get(&a.name) {
                let end = a.path.max_end();
                if end > t.len() as u64 {
                    return Err(TensorError::Unsupported(format!(
                        "sanitizer: step {si} (`{}`): certified access path of `{}` ends at word {end} but the live buffer holds {} words",
                        step.name, a.name, t.len()
                    )));
                }
            }
        }

        // private environment: declared operands only, poisoned outside
        // the derived read footprint
        let mut local = ExecState::default();
        let mut poison_live = false;
        for name in step
            .inputs
            .iter()
            .map(|o| &o.name)
            .chain(step.relayouts.iter().map(|r| &r.name))
        {
            if local.env.contains_key(name) {
                continue;
            }
            let Some(real) = state.env.get(name) else {
                return Err(TensorError::Unsupported(format!(
                    "sanitizer: step {si} (`{}`) consumes `{name}` before anything produces it",
                    step.name
                )));
            };
            let spans: Vec<Span> = foot
                .iter()
                .filter(|a| a.kind == AccessKind::Read && &a.name == name)
                .map(|a| a.span)
                .collect();
            let full = real.len() as u64;
            let covered = spans.iter().any(|s| s.lo == 0 && s.hi >= full);
            poison_live |= real.data().iter().any(|v| v.is_nan());
            local.env.insert(
                name.clone(),
                if covered {
                    real.clone()
                } else {
                    poisoned_outside(real, &spans)
                },
            );
        }

        // single execution — same kernels, same RNG stream as the
        // unsanitized interpreter — with runtime partial-read tracing
        let t0 = opts.profiler.map(|_| std::time::Instant::now());
        trace::start();
        let ran = shadow_catch(&step.name, || {
            execute_step(graph, step, &mut local, opts, rng)
        });
        let observed = trace::stop();
        ran?;
        if let (Some(sink), Some(t0)) = (opts.profiler, t0) {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            crate::profile::record_step(sink, graph, step, si, None, us, true);
        }

        // observed partial reads must fall inside the derived spans
        for ob in &observed {
            let inside = foot.iter().any(|a| {
                a.kind == AccessKind::Read
                    && graph.data(a.data).map(|d| d.shape.num_elements() as u64) == Some(ob.of)
                    && ob.lo >= a.span.lo
                    && ob.hi <= a.span.hi
            });
            if !inside {
                return Err(TensorError::Unsupported(format!(
                    "sanitizer: step {si} (`{}`) read elements [{}, {}) outside its derived footprint",
                    step.name, ob.lo, ob.hi
                )));
            }
        }

        // NaN in an output with NaN-free declared inputs ⇒ the kernel
        // consumed poisoned (undeclared) elements
        if !poison_live {
            for o in &step.outputs {
                if let Some(t) = local.env.get(&o.name) {
                    if t.data().iter().any(|v| v.is_nan()) {
                        return Err(TensorError::Unsupported(format!(
                            "sanitizer: step {si} (`{}`) produced NaN in `{}` — it read outside its declared footprint",
                            step.name, o.name
                        )));
                    }
                }
            }
        }

        // commit: re-materialized inputs and outputs back to the real state
        for r in &step.relayouts {
            if let Some(t) = local.env.remove(&r.name) {
                state.env.insert(r.name.clone(), t);
            }
        }
        for o in &step.outputs {
            if let Some(t) = local.env.remove(&o.name) {
                state.env.insert(o.name.clone(), t);
            }
        }
        for (k, v) in local.stats.drain() {
            state.stats.insert(k, v);
        }
        footprints.push(foot);
    }

    // per-wave conflict check over the footprints each step actually ran
    // with — what a concurrent dispatch of these waves would interleave
    for (w, wave) in waves.iter().enumerate() {
        for (i, &sa) in wave.iter().enumerate() {
            for &sb in &wave[i + 1..] {
                let (first, second) = if sa <= sb { (sa, sb) } else { (sb, sa) };
                let (Some(fa), Some(fb)) = (footprints.get(first), footprints.get(second)) else {
                    continue;
                };
                if let Some((a, _)) = conflicts(fa, fb).first() {
                    return Err(TensorError::Unsupported(format!(
                        "sanitizer: wave {w} steps {first} and {second} race on `{}` — conflicting access within one wave",
                        a.name
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Thread count and RNG seed for [`execute_plan_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Worker threads per wave (clamped to at least 1; waves narrower
    /// than this use one thread per step).
    pub threads: usize,
    /// Base seed for the per-step RNG streams. Each step draws from
    /// `StdRng` seeded by `seed` mixed with the step index, so stochastic
    /// kernels (dropout with `p > 0`) are deterministic for a given seed
    /// at *any* thread count — though not bitwise-equal to a serial run
    /// drawing from one shared stream. With `dropout_p = 0` no step draws
    /// at all and parallel results are bitwise-equal to serial.
    pub seed: u64,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 4,
            seed: 0x5eed,
        }
    }
}

pub(crate) fn step_rng(seed: u64, si: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (si as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The wave-parallel interpreter: executes a certified plan by
/// dispatching each wave's steps across a scoped thread pool, joining
/// between waves. Refuses to run unless `cert` — the proof from
/// [`certify`] — matches the plan's current [`plan_fingerprint`], so an
/// edited schedule must be re-certified.
///
/// Each step snapshots its operands from the shared state under a lock,
/// runs the unchanged serial kernel ([`execute_step`]) without the lock,
/// and commits its outputs (and any re-materialized inputs) back under
/// the lock. The certificate guarantees no two steps of a wave have
/// conflicting footprints, so commits never collide. Results are
/// bitwise-equal to serial [`crate::plan::execute_plan`] when
/// `opts.dropout_p == 0` (see [`ParallelOptions::seed`] for the
/// stochastic case), at any thread count.
///
/// # Errors
///
/// Returns an error if the certificate does not match the plan or any
/// step fails; on failure the remaining steps of the wave are abandoned.
pub fn execute_plan_parallel(
    graph: &Graph,
    plan: &ExecutionPlan,
    cert: &RaceCertificate,
    state: &mut ExecState,
    opts: &ExecOptions,
    popts: &ParallelOptions,
) -> Result<()> {
    if cert.plan_hash != plan_fingerprint(plan) {
        return Err(TensorError::Unsupported(
            "race certificate does not match this plan — re-certify after editing a schedule"
                .into(),
        ));
    }
    if let Some(arena) = opts.arena {
        let sanitize = match opts.sanitize {
            crate::plan::SanitizeMode::Off => false,
            crate::plan::SanitizeMode::On => true,
            crate::plan::SanitizeMode::Env => crate::arena::env_sanitize_cached(),
        };
        if opts.profiler.is_none()
            && arena.granularity() == crate::analyze::ArenaGranularity::Waves
            && arena.matches(plan)
        {
            let run = crate::arena::ArenaRun {
                dropout_p: opts.dropout_p,
                activation: opts.activation,
                scaler: opts.scaler,
                seed: popts.seed,
                threads: popts.threads.max(1),
                sanitize,
                pos: opts.pos,
            };
            match arena.run_with_state(state, &run)? {
                crate::arena::ArenaOutcome::Ran => return Ok(()),
                crate::arena::ArenaOutcome::Busy => {}
            }
        }
    }
    let threads = popts.threads.max(1);
    let shared = Mutex::new(std::mem::take(state));
    let mut first_err: Option<TensorError> = None;

    'waves: for (w, wave) in cert.waves.iter().enumerate() {
        let workers = threads.min(wave.len());
        let wave_t0 = opts.profiler.map(|_| std::time::Instant::now());
        if workers <= 1 {
            for &si in wave {
                let Some(step) = plan.steps.get(si) else {
                    first_err = Some(TensorError::Unsupported(format!(
                        "certificate wave references step {si} beyond the schedule"
                    )));
                    break 'waves;
                };
                let mut rng = step_rng(popts.seed, si);
                let mut guard = shared.lock().expect("interpreter state poisoned");
                let t0 = opts.profiler.map(|_| std::time::Instant::now());
                if let Err(e) = execute_step(graph, step, &mut guard, opts, &mut rng) {
                    first_err = Some(e);
                    break 'waves;
                }
                drop(guard);
                if let (Some(sink), Some(t0)) = (opts.profiler, t0) {
                    let us = t0.elapsed().as_secs_f64() * 1e6;
                    crate::profile::record_step(sink, graph, step, si, Some(w), us, false);
                }
            }
            if let (Some(sink), Some(t0)) = (opts.profiler, wave_t0) {
                let us = t0.elapsed().as_secs_f64() * 1e6;
                crate::profile::record_wave(sink, w, wave, workers, us);
            }
            continue;
        }

        let counter = AtomicUsize::new(0);
        let failed: Mutex<Option<TensorError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if failed.lock().expect("failure flag poisoned").is_some() {
                        break;
                    }
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    let Some(&si) = wave.get(i) else { break };
                    let Some(step) = plan.steps.get(si) else {
                        *failed.lock().expect("failure flag poisoned") =
                            Some(TensorError::Unsupported(format!(
                                "certificate wave references step {si} beyond the schedule"
                            )));
                        break;
                    };
                    let mut rng = step_rng(popts.seed, si);

                    // snapshot declared operands under the lock
                    let mut local = ExecState::default();
                    {
                        let guard = shared.lock().expect("interpreter state poisoned");
                        for name in step
                            .inputs
                            .iter()
                            .map(|o| &o.name)
                            .chain(step.relayouts.iter().map(|r| &r.name))
                        {
                            if let Some(t) = guard.env.get(name) {
                                local.env.entry(name.clone()).or_insert_with(|| t.clone());
                            }
                        }
                    }

                    let t0 = opts.profiler.map(|_| std::time::Instant::now());
                    match execute_step(graph, step, &mut local, opts, &mut rng) {
                        Ok(()) => {
                            if let (Some(sink), Some(t0)) = (opts.profiler, t0) {
                                let us = t0.elapsed().as_secs_f64() * 1e6;
                                crate::profile::record_step(
                                    sink,
                                    graph,
                                    step,
                                    si,
                                    Some(w),
                                    us,
                                    false,
                                );
                            }
                            let mut guard = shared.lock().expect("interpreter state poisoned");
                            for r in &step.relayouts {
                                if let Some(t) = local.env.remove(&r.name) {
                                    guard.env.insert(r.name.clone(), t);
                                }
                            }
                            for o in &step.outputs {
                                if let Some(t) = local.env.remove(&o.name) {
                                    guard.env.insert(o.name.clone(), t);
                                }
                            }
                            for (k, v) in local.stats.drain() {
                                guard.stats.insert(k, v);
                            }
                        }
                        Err(e) => {
                            let mut f = failed.lock().expect("failure flag poisoned");
                            if f.is_none() {
                                *f = Some(e);
                            }
                            break;
                        }
                    }
                });
            }
        });
        if let (Some(sink), Some(t0)) = (opts.profiler, wave_t0) {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            crate::profile::record_wave(sink, w, wave, workers, us);
        }
        let wave_err = failed.lock().expect("failure flag poisoned").take();
        if let Some(e) = wave_err {
            first_err = Some(e);
            break 'waves;
        }
    }

    *state = shared.into_inner().expect("interpreter state poisoned");
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::plan::random_externals;
    use crate::recipe::forward_ops;
    use xform_dataflow::{build, EncoderDims};
    use xform_tensor::ops::elementwise::ActivationKind;

    fn fused_plan() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
        (g, plan)
    }

    fn unfused_plan() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let plan = ExecutionPlan::natural(&eg.graph, &forward_ops(&eg.graph, eg.dy)).unwrap();
        (eg.graph, plan)
    }

    fn opts() -> ExecOptions<'static> {
        ExecOptions::builder()
            .scaler(1.0 / (3f32).sqrt())
            .activation(ActivationKind::Relu)
            .dropout_p(0.0)
            .build()
    }

    #[test]
    fn sanitize_env_parsing_is_consistent() {
        for off in [
            None,
            Some(""),
            Some("  "),
            Some("0"),
            Some("false"),
            Some("FALSE"),
            Some("off"),
            Some("Off"),
            Some("no"),
            Some(" 0 "),
        ] {
            assert!(!sanitize_value_enables(off), "{off:?} must disable");
        }
        for on in [Some("1"), Some("true"), Some("yes"), Some("on"), Some("2")] {
            assert!(sanitize_value_enables(on), "{on:?} must enable");
        }
    }

    #[test]
    fn fingerprint_is_stable_and_tamper_sensitive() {
        let (_, plan) = unfused_plan();
        let h = plan_fingerprint(&plan);
        assert_eq!(h, plan_fingerprint(&plan.clone()));
        let mut tampered = plan.clone();
        tampered.steps[0].outputs[0].layout =
            tampered.steps[0].outputs[0].layout.chars().rev().collect();
        assert_ne!(h, plan_fingerprint(&tampered));
        let mut shorter = plan.clone();
        shorter.steps.pop();
        assert_ne!(h, plan_fingerprint(&shorter));
    }

    #[test]
    fn canned_plans_certify() {
        for (g, plan) in [unfused_plan(), fused_plan()] {
            let cert = certify(&g, &plan).expect("canned plan must certify");
            assert_eq!(cert.plan_hash, plan_fingerprint(&plan));
            let total: usize = cert.waves.iter().map(Vec::len).sum();
            assert_eq!(total, plan.steps.len());
        }
    }

    #[test]
    fn stacked_carve_footprint_is_a_sub_interval() {
        let (g, plan) = unfused_plan();
        let step = plan
            .steps
            .iter()
            .find(|s| s.name == "Input bias K")
            .expect("unfused plan schedules Input bias K");
        let foot = step_footprint(&g, step);
        let stacked = foot
            .iter()
            .find(|a| a.kind == AccessKind::Read && a.name == "qkv_raw")
            .expect("reads the stacked container");
        let total = g.data(stacked.data).unwrap().shape.num_elements() as u64;
        assert_eq!(stacked.span.words() * 3, total, "one projection's third");
        assert!(
            stacked.span.lo > 0 && stacked.span.hi < total,
            "K is the middle third"
        );
    }

    #[test]
    fn parallel_execution_is_bitwise_equal_to_serial() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for (g, plan) in [unfused_plan(), fused_plan()] {
            let mut serial = random_externals(&g, &plan, 11).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            crate::plan::execute_plan(&g, &plan, &mut serial, &opts(), &mut rng).unwrap();

            let cert = certify(&g, &plan).unwrap();
            for threads in [1, 3, 8] {
                let mut par = random_externals(&g, &plan, 11).unwrap();
                execute_plan_parallel(
                    &g,
                    &plan,
                    &cert,
                    &mut par,
                    &opts(),
                    &ParallelOptions { threads, seed: 7 },
                )
                .unwrap();
                for (name, t) in &serial.env {
                    let p = par.env.get(name).expect("parallel produced the container");
                    assert_eq!(t.data(), p.data(), "`{name}` differs at {threads} threads");
                    assert_eq!(t.layout(), p.layout(), "`{name}` layout differs");
                }
                assert_eq!(serial.stats.len(), par.stats.len());
            }
        }
    }

    #[test]
    fn stale_certificate_is_refused() {
        let (g, plan) = unfused_plan();
        let cert = certify(&g, &plan).unwrap();
        let mut edited = plan.clone();
        edited.steps.pop();
        let mut state = random_externals(&g, &edited, 1).unwrap();
        let err = execute_plan_parallel(
            &g,
            &edited,
            &cert,
            &mut state,
            &opts(),
            &ParallelOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("certificate"), "{err}");
    }

    #[test]
    fn sanitized_execution_matches_plain_execution() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (g, plan) = fused_plan();
        let mut plain = random_externals(&g, &plan, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        crate::plan::execute_plan(&g, &plan, &mut plain, &opts(), &mut rng).unwrap();

        let mut shadow = random_externals(&g, &plan, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        execute_plan_sanitized(&g, &plan, &mut shadow, &opts(), &mut rng, None).unwrap();
        for (name, t) in &plain.env {
            let s = shadow.env.get(name).expect("shadow produced the container");
            assert_eq!(t.data(), s.data(), "`{name}` differs under the sanitizer");
        }
    }
}
