//! Table-III-style reporting: per-operator flop, I/O, time, %peak, MUE and
//! speedup for the baseline (PyTorch model, unfused) vs the optimized
//! implementation (fused + globally selected layouts).

use xform_dataflow::{build, EncoderDims, OpClass, OpKind};
use xform_gpusim::framework::{execute, FrameworkPolicy};
use xform_gpusim::DeviceSpec;
use xform_tensor::Result;

use crate::recipe::{optimize_encoder, OptimizedEncoder, RecipeOptions};

/// Flop expressed in the paper's units (Gi = 2³⁰ flop).
pub const GI: f64 = 1_073_741_824.0;

/// One row of the Table III reproduction: either a lone operator or a
/// group of baseline operators covered by one fused kernel.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Baseline operator names in the group (Table III's left column).
    pub members: Vec<String>,
    /// Fused kernel name, if the group is fused in our implementation.
    pub kernel: String,
    /// Operator class of the kernel.
    pub class: OpClass,
    /// Whether the row is part of forward propagation.
    pub forward: bool,
    /// Flop in Gi (2³⁰).
    pub gflop: f64,
    /// Input words (millions).
    pub input_mw: f64,
    /// Output words (millions).
    pub output_mw: f64,
    /// Baseline (PyTorch-model) time, summed over members (µs).
    pub pytorch_us: f64,
    /// Our kernel time (µs).
    pub ours_us: f64,
    /// Our achieved percentage of the relevant compute peak.
    pub ours_pct_peak: f64,
    /// Our MUE.
    pub mue: f64,
    /// Baseline-over-ours kernel speedup.
    pub speedup: f64,
}

/// The assembled Table III reproduction.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows in execution order (forward then backward).
    pub rows: Vec<Table3Row>,
    /// Totals per class: (class, pytorch µs, ours µs).
    pub class_totals: Vec<(OpClass, f64, f64)>,
    /// Grand totals (pytorch µs, ours µs).
    pub totals: (f64, f64),
    /// Data-movement reduction (%) of the fused graph vs unfused.
    pub movement_reduction_pct: f64,
    /// The optimized plan behind the "Ours" column.
    pub optimized: OptimizedEncoder,
}

/// Builds the Table III reproduction for the given device and dimensions.
///
/// # Errors
///
/// Propagates recipe / framework-model failures.
pub fn table3(device: &DeviceSpec, dims: &EncoderDims, opts: &RecipeOptions) -> Result<Table3> {
    let unfused = build::encoder(dims).graph;
    let pt = execute(&unfused, device, &FrameworkPolicy::pytorch())?;
    let ours = optimize_encoder(device, dims, opts)?;

    let mut rows = Vec::new();
    let mut class_totals: Vec<(OpClass, f64, f64)> = vec![
        (OpClass::TensorContraction, 0.0, 0.0),
        (OpClass::StatisticalNormalization, 0.0, 0.0),
        (OpClass::Elementwise, 0.0, 0.0),
    ];
    for planned in &ours.rows {
        let node = ours.graph.op(planned.op).expect("live op");
        let members: Vec<String> = match &node.kind {
            OpKind::Fused { parts, .. } => parts.clone(),
            _ => vec![node.name.clone()],
        };
        let pytorch_us: f64 = members
            .iter()
            .map(|m| pt.op_time_us(m).unwrap_or(0.0))
            .sum();
        let peak = match planned.class {
            OpClass::TensorContraction => device.tensor_core_tflops,
            _ => device.fp16_tflops,
        };
        let pct = 100.0 * planned.flop as f64 / (planned.time_us * 1e-6) / (peak * 1e12);
        let row = Table3Row {
            members,
            kernel: node.name.clone(),
            class: planned.class,
            forward: planned.forward,
            gflop: planned.flop as f64 / GI,
            input_mw: ours.graph.input_words(planned.op) as f64 / 1e6,
            output_mw: ours.graph.output_words(planned.op) as f64 / 1e6,
            pytorch_us,
            ours_us: planned.time_us,
            ours_pct_peak: pct,
            mue: planned.mue.value,
            speedup: if planned.time_us > 0.0 {
                pytorch_us / planned.time_us
            } else {
                0.0
            },
        };
        for (class, p, o) in class_totals.iter_mut() {
            if *class == planned.class {
                *p += row.pytorch_us;
                *o += row.ours_us;
            }
        }
        rows.push(row);
    }
    let totals = (
        class_totals.iter().map(|(_, p, _)| p).sum(),
        class_totals.iter().map(|(_, _, o)| o).sum(),
    );
    Ok(Table3 {
        rows,
        class_totals,
        totals,
        movement_reduction_pct: ours.movement_reduction_pct,
        optimized: ours,
    })
}

/// One entry of the bottleneck ranking (Sec. VI-C: "we use flop and MUE
/// rates as proxies for which operators require the most attention and
/// their corresponding bottlenecks").
#[derive(Debug, Clone)]
pub struct Bottleneck {
    /// Kernel name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Kernel time (µs).
    pub time_us: f64,
    /// Memory usage efficiency.
    pub mue: f64,
    /// Achieved percentage of the relevant compute peak.
    pub pct_peak: f64,
    /// The paper's classification: memory-bound iff `MUE > % peak`.
    pub memory_bound: bool,
    /// Share of total kernel time.
    pub share_pct: f64,
}

/// Ranks an optimized plan's kernels by time, with the paper's
/// memory-/compute-bound classification attached — the guided-optimization
/// view ("ensures a guided optimization rather than tuning all operators
/// aggressively").
pub fn bottlenecks(device: &DeviceSpec, plan: &OptimizedEncoder) -> Vec<Bottleneck> {
    let total: f64 = plan.rows.iter().map(|r| r.time_us).sum();
    let mut out: Vec<Bottleneck> = plan
        .rows
        .iter()
        .map(|r| {
            let peak = match r.class {
                OpClass::TensorContraction => device.tensor_core_tflops,
                _ => device.fp16_tflops,
            };
            let pct = 100.0 * r.flop as f64 / (r.time_us * 1e-6) / (peak * 1e12);
            Bottleneck {
                name: r.name.clone(),
                class: r.class,
                time_us: r.time_us,
                mue: r.mue.value,
                pct_peak: pct,
                memory_bound: xform_gpusim::mue::is_memory_bound(r.mue.value, pct),
                share_pct: 100.0 * r.time_us / total.max(1e-9),
            }
        })
        .collect();
    out.sort_by(|a, b| b.time_us.total_cmp(&a.time_us));
    out
}

/// Counterfactual totals for an optimized plan: what the same selected
/// configurations would cost on hypothetical hardware. Quantifies the
/// paper's closing point — even after optimization, the remaining time is
/// substantially data movement, so bandwidth (not flop/s) is where future
/// hardware must spend.
#[derive(Debug, Clone, Copy)]
pub struct WhatIf {
    /// The plan's actual total (µs).
    pub current_us: f64,
    /// Total with 10× DRAM bandwidth, same compute (µs).
    pub bandwidth_10x_us: f64,
    /// Total with 10× compute peaks, same bandwidth (µs).
    pub compute_10x_us: f64,
    /// Total with kernel-launch overhead removed (µs).
    pub zero_launch_us: f64,
}

/// Re-prices a plan's selected configurations on modified devices.
///
/// # Errors
///
/// Returns an error if a configuration fails to re-price (should not
/// happen for a plan produced by the recipe).
pub fn whatif(device: &DeviceSpec, plan: &OptimizedEncoder) -> Result<WhatIf> {
    let total = |d: &DeviceSpec| -> Result<f64> {
        let mut t = 0.0;
        for r in &plan.rows {
            t += xform_gpusim::opmodel::op_cost(d, &plan.graph, r.op, &r.config)?.time_us;
        }
        Ok(t)
    };
    let mut bw = device.clone();
    bw.dram_bandwidth_gbs *= 10.0;
    let mut compute = device.clone();
    compute.tensor_core_tflops *= 10.0;
    compute.fp16_tflops *= 10.0;
    compute.fp32_tflops *= 10.0;
    let mut nolaunch = device.clone();
    nolaunch.kernel_launch_us = 0.0;
    Ok(WhatIf {
        current_us: total(device)?,
        bandwidth_10x_us: total(&bw)?,
        compute_10x_us: total(&compute)?,
        zero_launch_us: total(&nolaunch)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepOptions;

    fn quick() -> RecipeOptions {
        RecipeOptions {
            sweep: SweepOptions {
                max_configs: Some(4_000),
                ..SweepOptions::default()
            },
            per_op_overhead_us: 1.0,
        }
    }

    #[test]
    fn table3_overall_speedup_in_band() {
        let t = table3(&DeviceSpec::v100(), &EncoderDims::bert_large(), &quick()).unwrap();
        let speedup = t.totals.0 / t.totals.1;
        // Table III bottom line: 1.20× kernel-level speedup over PyTorch.
        assert!(speedup > 1.05, "kernel speedup {speedup:.2}×");
        assert!(speedup < 2.0, "kernel speedup {speedup:.2}× too large");
    }

    #[test]
    fn contractions_dominate_flop_but_not_runtime_share() {
        let t = table3(&DeviceSpec::v100(), &EncoderDims::bert_large(), &quick()).unwrap();
        let flop_tc: f64 = t
            .rows
            .iter()
            .filter(|r| r.class == OpClass::TensorContraction)
            .map(|r| r.gflop)
            .sum();
        let flop_all: f64 = t.rows.iter().map(|r| r.gflop).sum();
        assert!(flop_tc / flop_all > 0.995);
        let (_, pt_tc, _) = t.class_totals[0];
        assert!(
            pt_tc / t.totals.0 < 0.9,
            "contraction runtime share too high"
        );
    }

    #[test]
    fn fused_rows_group_members() {
        let t = table3(&DeviceSpec::v100(), &EncoderDims::bert_large(), &quick()).unwrap();
        let sm = t.rows.iter().find(|r| r.kernel == "SM").unwrap();
        assert_eq!(sm.members, vec!["Scaled softmax", "Dropout att"]);
        assert!(sm.forward);
        let bdrb = t.rows.iter().find(|r| r.kernel == "BDRB").unwrap();
        assert_eq!(bdrb.members.len(), 4);
        assert!(!bdrb.forward);
    }

    #[test]
    fn bottleneck_ranking_is_consistent() {
        let device = DeviceSpec::v100();
        let plan =
            crate::recipe::optimize_encoder(&device, &EncoderDims::bert_large(), &quick()).unwrap();
        let ranked = bottlenecks(&device, &plan);
        assert_eq!(ranked.len(), plan.rows.len());
        // sorted descending, shares sum to 100
        for w in ranked.windows(2) {
            assert!(w[0].time_us >= w[1].time_us);
        }
        let share: f64 = ranked.iter().map(|b| b.share_pct).sum();
        assert!((share - 100.0).abs() < 1e-6);
        // the paper's classification: fused normalization kernels are
        // memory-bound, big linears are compute-bound
        let sm = ranked.iter().find(|b| b.name == "SM").unwrap();
        assert!(sm.memory_bound, "SM should be memory-bound");
        let lin = ranked.iter().find(|b| b.name == "Linear 1").unwrap();
        assert!(!lin.memory_bound, "Linear 1 should be compute-bound");
    }

    #[test]
    fn whatif_shows_bandwidth_matters_more_than_compute() {
        let device = DeviceSpec::v100();
        let plan =
            crate::recipe::optimize_encoder(&device, &EncoderDims::bert_large(), &quick()).unwrap();
        let w = whatif(&device, &plan).unwrap();
        assert!(w.bandwidth_10x_us < w.current_us);
        assert!(w.compute_10x_us < w.current_us);
        assert!(w.zero_launch_us <= w.current_us);
        // the paper's conclusion: after optimization, compute-scaling alone
        // leaves most of the time on the table compared to its own ideal —
        // the residual is data movement
        let compute_gain = w.current_us / w.compute_10x_us;
        assert!(
            compute_gain < 6.0,
            "10× compute gave {compute_gain:.1}× — model is not memory-limited enough"
        );
        let bw_gain = w.current_us / w.bandwidth_10x_us;
        assert!(bw_gain > 1.1, "bandwidth gain {bw_gain:.2}×");
    }

    #[test]
    fn most_fused_kernels_beat_pytorch() {
        // Table III: in forward propagation every fused operator
        // outperforms PyTorch's; backward has a couple of exceptions
        // (EBSB, BAOB) due to globally-driven layout choices.
        let t = table3(&DeviceSpec::v100(), &EncoderDims::bert_large(), &quick()).unwrap();
        let fused_rows: Vec<_> = t.rows.iter().filter(|r| r.members.len() > 1).collect();
        assert!(!fused_rows.is_empty());
        let wins = fused_rows.iter().filter(|r| r.speedup > 1.0).count();
        assert!(
            wins * 10 >= fused_rows.len() * 7,
            "only {wins}/{} fused kernels beat the baseline",
            fused_rows.len()
        );
    }
}
