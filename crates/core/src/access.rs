//! The access-path certifier: symbolic abstract interpretation over a
//! schedule that proves, per step, where every kernel access lands.
//!
//! For each scheduled step the certifier derives the exact index-affine
//! access path of every operand — base offset, per-loop-dimension
//! `(extent, stride)` pairs, innermost loop last — from the *graph* (shapes,
//! edges, operator kind) and the interpreter's dispatch rules, exactly the
//! way [`crate::sanitize::step_footprint`] derives element spans. It then
//! proves three properties:
//!
//! 1. **in-bounds** — every read/write lands inside the declared operand's
//!    buffer (and, at arena level, inside its slab slot and the slab
//!    itself); a proven escape is a [`PlanLint::UnprovenAccess`] error;
//! 2. **unit-stride** — the innermost loop of every swept operand advances
//!    by one word under the declared (SSSP-selected) layout; an in-bounds
//!    but strided inner loop is a [`PlanLint::StridedInnerLoop`] warning
//!    (correct, just not vectorizable);
//! 3. **alias-freedom** — no two operand paths of one step overlap with
//!    conflicting access kinds beyond what the race certificate already
//!    permits (shared reads).
//!
//! A clean pass yields an [`AccessCertificate`], carried alongside the
//! [`crate::sanitize::RaceCertificate`] and keyed to the plan by
//! [`crate::sanitize::plan_fingerprint`]. The certificate is what
//! *licenses* the bounds-check-free kernel twins of
//! [`xform_tensor::into_ops`]: the arena interpreter dispatches a step's
//! unchecked twin only when [`StepAccessProof::licensed`] holds, and falls
//! back to the checked kernel otherwise. Fallback — not panic — is the
//! failure mode throughout: a step the certifier cannot derive is simply
//! never licensed, so unchecked code is never trusted, only verified.
//!
//! Steps the certifier cannot model exactly (unknown operator kinds,
//! operand lists that disagree with the graph) degrade to conservative
//! whole-buffer paths: still sound for the bounds and aliasing checks, but
//! never licensed.

use std::collections::HashMap;

use xform_dataflow::{Graph, NodeId, OpKind};
use xform_tensor::{Layout, Shape};

use crate::analyze::{ArenaAssignment, ArenaGranularity, PlanLint};
use crate::plan::{classify_fused, stacked_carve_start, ExecutionPlan, FusedClass, PlanStep};
use crate::sanitize::{plan_fingerprint, AccessKind};

/// An index-affine access path: the set of word offsets
/// `base + Σ iᵈ·strideᵈ` for `iᵈ < extentᵈ`, with the kernel's innermost
/// loop dimension last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPath {
    /// Constant word offset into the buffer (nonzero only for the
    /// stacked-Q/K/V carve).
    pub base: u64,
    /// `(extent, stride)` per loop dimension, innermost last.
    pub dims: Vec<(u64, u64)>,
}

impl AccessPath {
    /// A conservative whole-buffer path: one unit-stride dimension over
    /// `words` elements.
    pub fn flat(words: u64) -> AccessPath {
        AccessPath {
            base: 0,
            dims: vec![(words, 1)],
        }
    }

    /// One past the largest word offset the path can touch (`0` for an
    /// empty path).
    pub fn max_end(&self) -> u64 {
        if self.dims.iter().any(|&(n, _)| n == 0) {
            return 0;
        }
        self.base + self.dims.iter().map(|&(n, s)| (n - 1) * s).sum::<u64>() + 1
    }

    /// Stride of the innermost non-singleton loop dimension (`1` when all
    /// dimensions are singletons — a single element is trivially
    /// unit-stride).
    pub fn inner_stride(&self) -> u64 {
        self.dims
            .iter()
            .rev()
            .find(|&&(n, _)| n > 1)
            .map(|&(_, s)| s)
            .unwrap_or(1)
    }

    /// Number of distinct loop iterations (an upper bound on touched
    /// words; exact when strides don't collide).
    pub fn iterations(&self) -> u64 {
        self.dims.iter().map(|&(n, _)| n).product()
    }

    /// Distinct words the path touches: the product of its loop extents
    /// with stride-0 (revisiting) dimensions collapsed, clamped by the
    /// address span — exact for layout-derived sweeps, an upper bound
    /// otherwise. The footprint weight of one reference in the
    /// reuse-distance model ([`crate::cachemodel`]).
    pub fn distinct_words(&self) -> u64 {
        let prod: u64 = self
            .dims
            .iter()
            .map(|&(n, s)| if s == 0 { 1 } else { n.max(1) })
            .product();
        let span = self.max_end().saturating_sub(self.base);
        prod.min(span.max(u64::from(self.dims.is_empty())))
    }
}

/// One derived operand access of a scheduled step.
#[derive(Debug, Clone)]
pub struct OperandAccess {
    /// The declared operand's container.
    pub data: NodeId,
    /// The declared operand name (the environment slot the kernel binds).
    pub name: String,
    /// Access class (same taxonomy as the footprint oracle).
    pub kind: AccessKind,
    /// The derived affine path, in the container's word space.
    pub path: AccessPath,
    /// `true` when the kernel walks this operand with its inner loop —
    /// the operands that carry the unit-stride proof obligation. Gather
    /// operands (broadcast biases, per-lane weights, einsum packs) are
    /// bounds-checked but carry no stride obligation.
    pub swept: bool,
}

/// The derived accesses of one step plus whether the derivation was exact.
#[derive(Debug, Clone)]
pub struct StepAccesses {
    /// Every operand access the step performs.
    pub accesses: Vec<OperandAccess>,
    /// `true` when every path is exact; `false` when any operand degraded
    /// to a conservative whole-buffer path (the step can never be
    /// licensed).
    pub derived: bool,
}

/// The per-step verdict of the certifier.
#[derive(Debug, Clone)]
pub struct StepAccessProof {
    /// Step index in the schedule.
    pub step: usize,
    /// The step's kernel name.
    pub name: String,
    /// Every derived path stays inside its buffer (and slab slot).
    pub in_bounds: bool,
    /// Every swept operand's innermost loop is unit-stride.
    pub unit_stride: bool,
    /// No conflicting intra-step overlap beyond shared reads.
    pub alias_free: bool,
    /// The derivation was exact (no conservative fallback paths).
    pub derived: bool,
}

impl StepAccessProof {
    /// Whether this step's unchecked kernel twin may be dispatched.
    /// Dispatch sites additionally require that a twin exists for the
    /// step's kernel class; everything else falls back to the checked
    /// path.
    pub fn licensed(&self) -> bool {
        self.in_bounds && self.unit_stride && self.alias_free && self.derived
    }
}

/// Proof that every access of a plan is in-bounds and alias-free, with a
/// per-step license for the unchecked kernel twins. Produced only by a
/// clean [`certify_access`] / [`certify_access_arena`] pass and keyed to
/// the plan by [`plan_fingerprint`], so an edited schedule must be
/// re-certified.
#[derive(Debug, Clone)]
pub struct AccessCertificate {
    /// Fingerprint of the certified plan.
    pub plan_hash: u64,
    /// The arena granularity the slab embedding was proven for (`None`
    /// for the logical, buffer-level certificate).
    pub arena: Option<ArenaGranularity>,
    /// One proof per schedule step.
    pub steps: Vec<StepAccessProof>,
    /// Warning-severity lints found along the way (strided inner loops);
    /// error-severity lints abort certification instead.
    pub lints: Vec<PlanLint>,
}

impl AccessCertificate {
    /// Whether step `si` is licensed for unchecked dispatch.
    pub fn licensed(&self, si: usize) -> bool {
        self.steps.get(si).is_some_and(StepAccessProof::licensed)
    }

    /// Number of licensed steps.
    pub fn licensed_steps(&self) -> usize {
        self.steps.iter().filter(|p| p.licensed()).count()
    }
}

/// `true` when two access kinds on overlapping words are a conflict.
/// Mirrors the race certifier's compatibility rule: shared reads are fine,
/// and a re-materialization may overlap concurrent reads of the same
/// values.
fn kinds_conflict(a: AccessKind, b: AccessKind) -> bool {
    !matches!(
        (a, b),
        (AccessKind::Read, AccessKind::Read)
            | (AccessKind::Read, AccessKind::Materialize)
            | (AccessKind::Materialize, AccessKind::Read)
    )
}

/// Exact sweep path of a whole container under a declared layout, with the
/// kernel's inner loop over logical axis `inner` placed last.
fn sweep_path(shape: &Shape, layout: &Layout, inner: usize) -> AccessPath {
    if shape.rank() == 0 {
        return AccessPath::flat(1);
    }
    let strides = layout.strides(shape);
    let mut dims: Vec<(u64, u64)> = shape
        .sizes()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != inner)
        .map(|(i, &n)| (n as u64, strides[i] as u64))
        .collect();
    dims.push((shape.sizes()[inner] as u64, strides[inner] as u64));
    AccessPath { base: 0, dims }
}

/// Gather path of a broadcast bias swept by the output's iteration space:
/// one `(out_extent, bias_stride)` dimension per bias axis. `None` when a
/// bias axis is missing from the output or extents disagree.
fn bias_path(out: &Shape, bias: &Shape) -> Option<AccessPath> {
    let bias_strides = Layout::row_major(bias.rank()).strides(bias);
    let mut dims = Vec::with_capacity(bias.rank());
    for (bi, &ax) in bias.axes().iter().enumerate() {
        let p = out.index_of(ax).ok()?;
        if out.sizes()[p] != bias.sizes()[bi] {
            return None;
        }
        dims.push((out.sizes()[p] as u64, bias_strides[bi] as u64));
    }
    Some(AccessPath { base: 0, dims })
}

/// Derives the operand access paths of one scheduled step from the graph
/// and the interpreter's dispatch rules — deliberately not from the
/// declared operand list alone, so a declaration that disagrees with what
/// the kernel will actually sweep is bounds-checked against the sweep, not
/// against itself.
pub fn step_accesses(graph: &Graph, step: &PlanStep) -> StepAccesses {
    let mut acc: Vec<OperandAccess> = Vec::new();
    let mut derived = true;

    // relayouts: a full value read plus a full materialization, exact as
    // address sets (every word of the container on both sides)
    for r in &step.relayouts {
        let Some(d) = graph.data(r.data) else {
            derived = false;
            continue;
        };
        let words = d.shape.num_elements() as u64;
        for kind in [AccessKind::Read, AccessKind::Materialize] {
            acc.push(OperandAccess {
                data: r.data,
                name: r.name.clone(),
                kind,
                path: AccessPath::flat(words),
                swept: false,
            });
        }
    }

    let in_ids = graph.inputs_of(step.op);
    let out_ids = graph.outputs_of(step.op);
    let node = graph.op(step.op);

    // operand resolution: the sweep geometry comes from the graph edge at
    // the same position; the buffer bound and layout come from the
    // declared operand. A declaration that points at a different
    // container degrades to a conservative whole-sweep path bounded
    // against the declared buffer — which is exactly how an injected
    // out-of-bounds retarget is convicted.
    let decl_shape = |data: NodeId| graph.data(data).map(|d| d.shape.clone());
    let edge_at = |ids: &[NodeId], k: usize| ids.get(k).copied();

    // push one operand access; `inner` is the logical axis (of the edge
    // shape) the kernel's inner loop walks, `None` for gather operands
    #[allow(clippy::too_many_arguments)]
    fn push(
        acc: &mut Vec<OperandAccess>,
        derived: &mut bool,
        graph: &Graph,
        operand: &crate::plan::Operand,
        edge: Option<NodeId>,
        kind: AccessKind,
        inner: Option<usize>,
        explicit: Option<AccessPath>,
    ) {
        let decl = graph.data(operand.data).map(|d| d.shape.clone());
        let edge_shape = edge.and_then(|id| graph.data(id).map(|d| d.shape.clone()));
        let (path, swept) = match explicit {
            Some(p) => (p, false),
            None => {
                let exact = match (&decl, &edge_shape, edge) {
                    (Some(ds), Some(_), Some(id)) if id == operand.data => {
                        Layout::from_axis_order(ds, &operand.layout)
                            .ok()
                            .map(|lay| {
                                let ai = inner.unwrap_or(ds.rank().saturating_sub(1));
                                (
                                    sweep_path(ds, &lay, ai.min(ds.rank().saturating_sub(1))),
                                    inner.is_some() || ds.rank() > 0,
                                )
                            })
                    }
                    _ => None,
                };
                match exact {
                    Some((p, s)) => (p, s),
                    None => {
                        *derived = false;
                        let words = edge_shape
                            .as_ref()
                            .or(decl.as_ref())
                            .map(|s| s.num_elements() as u64)
                            .unwrap_or(0);
                        (AccessPath::flat(words), false)
                    }
                }
            }
        };
        acc.push(OperandAccess {
            data: operand.data,
            name: operand.name.clone(),
            kind,
            path,
            swept,
        });
    }

    // convenience wrappers over the positional operand lists
    macro_rules! read {
        ($k:expr, $inner:expr) => {
            if let Some(o) = step.inputs.get($k) {
                push(
                    &mut acc,
                    &mut derived,
                    graph,
                    o,
                    edge_at(in_ids.as_slice(), $k),
                    AccessKind::Read,
                    $inner,
                    None,
                );
            } else {
                derived = false;
            }
        };
    }
    macro_rules! write {
        ($k:expr, $inner:expr) => {
            if let Some(o) = step.outputs.get($k) {
                push(
                    &mut acc,
                    &mut derived,
                    graph,
                    o,
                    edge_at(out_ids.as_slice(), $k),
                    AccessKind::Write,
                    $inner,
                    None,
                );
            } else {
                derived = false;
            }
        };
    }
    // a gather operand with an explicit path (bias broadcast, carve)
    macro_rules! explicit {
        ($o:expr, $kind:expr, $path:expr) => {
            push(
                &mut acc,
                &mut derived,
                graph,
                $o,
                None,
                $kind,
                None,
                Some($path),
            );
        };
    }
    // broadcast-bias read at input slot `$k`, swept by output slot 0's
    // edge shape
    macro_rules! bias_read {
        ($k:expr, $out_edge:expr) => {
            if let (Some(o), Some(out_s)) = (step.inputs.get($k), $out_edge) {
                let bias_s = edge_at(in_ids.as_slice(), $k).and_then(decl_shape);
                match bias_s.as_ref().and_then(|bs| bias_path(&out_s, bs)) {
                    Some(p) => {
                        explicit!(o, AccessKind::Read, p);
                    }
                    None => {
                        derived = false;
                        let words = bias_s.map(|s| s.num_elements() as u64).unwrap_or(0);
                        explicit!(o, AccessKind::Read, AccessPath::flat(words));
                    }
                }
            } else {
                derived = false;
            }
        };
    }

    let inner_of = |shape: Option<&Shape>, axis: xform_tensor::Axis| -> Option<usize> {
        shape.and_then(|s| s.index_of(axis).ok())
    };
    let in_edge_shape = |k: usize| edge_at(in_ids.as_slice(), k).and_then(decl_shape);
    let out_edge_shape = |k: usize| edge_at(out_ids.as_slice(), k).and_then(decl_shape);

    match node.map(|_| &step.kind) {
        Some(OpKind::Einsum(_)) | Some(OpKind::ContractionEpilogue { .. }) => {
            // the gather/GEMM/scatter (with or without a per-tile epilogue)
            // reads and writes every word of every operand; exact as
            // address sets, but no inner-loop stride claim is made
            for (k, o) in step.inputs.iter().enumerate() {
                let words = edge_at(in_ids.as_slice(), k)
                    .and_then(decl_shape)
                    .or_else(|| decl_shape(o.data))
                    .map(|s| s.num_elements() as u64)
                    .unwrap_or(0);
                explicit!(o, AccessKind::Read, AccessPath::flat(words));
            }
            for (k, o) in step.outputs.iter().enumerate() {
                let words = edge_at(out_ids.as_slice(), k)
                    .and_then(decl_shape)
                    .or_else(|| decl_shape(o.data))
                    .map(|s| s.num_elements() as u64)
                    .unwrap_or(0);
                explicit!(o, AccessKind::Write, AccessPath::flat(words));
            }
        }
        Some(OpKind::Bias { .. }) => {
            let out_s = out_edge_shape(0);
            let x_s = in_edge_shape(0);
            // x may be the stacked-Q/K/V container carved down to the
            // output's rows
            match (step.inputs.first(), &x_s, &out_s) {
                (Some(o), Some(xs), Some(os))
                    if xs.sizes() != os.sizes() || xs.spec() != os.spec() =>
                {
                    let carved =
                        (xs.rank() > 0 && os.rank() > 0 && xs.sizes()[1..] == os.sizes()[1..])
                            .then(|| {
                                let total = xs.sizes()[0];
                                let len = os.sizes()[0];
                                let rest: u64 = xs.sizes()[1..].iter().map(|&n| n as u64).product();
                                let name = node.map(|n| n.name.as_str()).unwrap_or("");
                                stacked_carve_start(name, total, len).map(|start| AccessPath {
                                    base: start as u64 * rest,
                                    dims: vec![(len as u64 * rest, 1)],
                                })
                            })
                            .flatten();
                    match carved {
                        Some(p) => {
                            explicit!(o, AccessKind::Read, p);
                        }
                        None => {
                            derived = false;
                            explicit!(
                                o,
                                AccessKind::Read,
                                AccessPath::flat(xs.num_elements() as u64)
                            );
                        }
                    }
                }
                _ => read!(0, None),
            }
            bias_read!(1, out_s.clone());
            write!(0, None);
        }
        Some(OpKind::Scale) | Some(OpKind::Relu) => {
            read!(0, None);
            write!(0, None);
        }
        Some(OpKind::Residual) => {
            read!(0, None);
            read!(1, None);
            write!(0, None);
        }
        Some(OpKind::Dropout) => {
            read!(0, None);
            write!(0, None);
            write!(1, None);
        }
        Some(OpKind::Softmax { axis }) => {
            let ai = inner_of(in_edge_shape(0).as_ref(), *axis);
            read!(0, ai);
            write!(0, ai);
        }
        Some(OpKind::LayerNorm { axis }) => {
            let ai = inner_of(in_edge_shape(0).as_ref(), *axis);
            read!(0, ai);
            read!(1, None); // gamma: dense 1-D, indexed by lane position
            read!(2, None); // beta
            write!(0, ai);
        }
        Some(OpKind::Fused {
            parts, reduce_axis, ..
        }) => match classify_fused(parts) {
            Some(FusedClass::InputBias) => {
                // stacked projection: one carved read per output
                if step.inputs.len() == step.outputs.len() + 1 && !step.outputs.is_empty() {
                    let x_s = in_edge_shape(0);
                    let mut start = 0u64;
                    for k in 0..step.outputs.len() {
                        let o_s = out_edge_shape(k);
                        let carve = match (&x_s, &o_s, step.inputs.first()) {
                            (Some(xs), Some(os), Some(_))
                                if xs.rank() > 0
                                    && os.rank() > 0
                                    && xs.sizes()[1..] == os.sizes()[1..] =>
                            {
                                let rest: u64 = xs.sizes()[1..].iter().map(|&n| n as u64).product();
                                let len = os.sizes()[0] as u64;
                                let p = AccessPath {
                                    base: start * rest,
                                    dims: vec![(len * rest, 1)],
                                };
                                start += len;
                                Some(p)
                            }
                            _ => None,
                        };
                        if let (Some(o), Some(p)) = (step.inputs.first(), carve) {
                            explicit!(o, AccessKind::Read, p);
                        } else {
                            derived = false;
                        }
                        bias_read!(k + 1, o_s.clone());
                        write!(k, None);
                    }
                } else {
                    derived = false;
                }
            }
            Some(FusedClass::Softmax { .. }) => {
                let ai = reduce_axis.and_then(|ax| inner_of(in_edge_shape(0).as_ref(), ax));
                if ai.is_none() {
                    derived = false;
                }
                read!(0, ai);
                for k in 0..step.outputs.len() {
                    write!(k, ai);
                }
            }
            Some(FusedClass::BiasDropResidualNorm) => {
                let ai = reduce_axis.and_then(|ax| inner_of(in_edge_shape(0).as_ref(), ax));
                if ai.is_none() {
                    derived = false;
                }
                read!(0, ai);
                bias_read!(1, in_edge_shape(0));
                read!(2, ai); // residual
                read!(3, None); // gamma
                read!(4, None); // beta
                for k in 0..step.outputs.len() {
                    write!(k, ai);
                }
            }
            Some(FusedClass::BiasActDrop) => {
                read!(0, None);
                bias_read!(1, in_edge_shape(0));
                for k in 0..step.outputs.len() {
                    write!(k, None);
                }
            }
            Some(FusedClass::BiasDropResidual) => {
                read!(0, None);
                bias_read!(1, in_edge_shape(0));
                read!(2, None);
                for k in 0..step.outputs.len() {
                    write!(k, None);
                }
            }
            Some(FusedClass::Norm) => {
                let ai = reduce_axis.and_then(|ax| inner_of(in_edge_shape(0).as_ref(), ax));
                if ai.is_none() {
                    derived = false;
                }
                read!(0, ai);
                read!(1, None);
                read!(2, None);
                write!(0, ai);
            }
            None => {
                derived = false;
                for o in &step.inputs {
                    let words = decl_shape(o.data)
                        .map(|s| s.num_elements() as u64)
                        .unwrap_or(0);
                    explicit!(o, AccessKind::Read, AccessPath::flat(words));
                }
                for o in &step.outputs {
                    let words = decl_shape(o.data)
                        .map(|s| s.num_elements() as u64)
                        .unwrap_or(0);
                    explicit!(o, AccessKind::Write, AccessPath::flat(words));
                }
            }
        },
        // unknown operator kind or dead node: conservative declared spans
        _ => {
            derived = false;
            for o in &step.inputs {
                let words = decl_shape(o.data)
                    .map(|s| s.num_elements() as u64)
                    .unwrap_or(0);
                explicit!(o, AccessKind::Read, AccessPath::flat(words));
            }
            for o in &step.outputs {
                let words = decl_shape(o.data)
                    .map(|s| s.num_elements() as u64)
                    .unwrap_or(0);
                explicit!(o, AccessKind::Write, AccessPath::flat(words));
            }
        }
    }

    // extra declared operands the positional walk didn't reach (operand
    // lists longer than the graph's edges) force conservative handling
    if step.inputs.len() != in_ids.len() || step.outputs.len() != out_ids.len() {
        derived = false;
    }

    StepAccesses {
        accesses: acc,
        derived,
    }
}

/// Shared certification core: logical bounds always, slab embedding when
/// an assignment is given.
fn certify_inner(
    graph: &Graph,
    plan: &ExecutionPlan,
    assignment: Option<&ArenaAssignment>,
) -> Result<AccessCertificate, Vec<PlanLint>> {
    let slot_of: HashMap<NodeId, (u64, u64)> = assignment
        .map(|a| {
            a.slots
                .iter()
                .map(|s| (s.data, (s.offset, s.words)))
                .collect()
        })
        .unwrap_or_default();
    let slab_words = assignment.map(|a| a.slab_words).unwrap_or(0);

    let mut proofs = Vec::with_capacity(plan.steps.len());
    let mut errors: Vec<PlanLint> = Vec::new();
    let mut warnings: Vec<PlanLint> = Vec::new();

    for (si, step) in plan.steps.iter().enumerate() {
        let sa = step_accesses(graph, step);
        let mut in_bounds = true;
        let mut unit_stride = true;
        let mut alias_free = true;
        let mut strided_seen: Vec<&str> = Vec::new();

        for a in &sa.accesses {
            // logical bound: the path must stay inside the declared
            // operand's buffer
            let buf_words = graph.data(a.data).map(|d| d.shape.num_elements() as u64);
            match buf_words {
                Some(w) if a.path.max_end() <= w => {}
                Some(w) => {
                    in_bounds = false;
                    errors.push(PlanLint::UnprovenAccess {
                        step: si,
                        name: step.name.clone(),
                        container: a.name.clone(),
                        reason: format!(
                            "derived path ends at word {} of a {w}-word buffer",
                            a.path.max_end()
                        ),
                    });
                }
                None => in_bounds = false, // NotAContainer already lints
            }
            // slab embedding: inside the slot, slot inside the slab
            if let Some(asg) = assignment {
                match slot_of.get(&a.data) {
                    Some(&(off, words)) => {
                        if a.path.max_end() > words {
                            in_bounds = false;
                            errors.push(PlanLint::UnprovenAccess {
                                step: si,
                                name: step.name.clone(),
                                container: a.name.clone(),
                                reason: format!(
                                    "derived path ends at word {} of a {words}-word arena slot",
                                    a.path.max_end()
                                ),
                            });
                        }
                        if off + words > asg.slab_words {
                            in_bounds = false;
                            errors.push(PlanLint::UnprovenAccess {
                                step: si,
                                name: step.name.clone(),
                                container: a.name.clone(),
                                reason: format!(
                                    "arena slot [{off}, {}) escapes the {slab_words}-word slab",
                                    off + words
                                ),
                            });
                        }
                    }
                    None => in_bounds = false,
                }
            }
            // unit-stride license for swept operands
            if a.swept && a.path.inner_stride() != 1 && !strided_seen.contains(&a.name.as_str()) {
                strided_seen.push(&a.name);
                unit_stride = false;
                warnings.push(PlanLint::StridedInnerLoop {
                    step: si,
                    name: step.name.clone(),
                    container: a.name.clone(),
                    stride: a.path.inner_stride(),
                });
            }
        }

        // intra-step aliasing beyond shared reads: same buffer at the
        // logical level, overlapping slab ranges across buffers at the
        // arena level
        for (i, a) in sa.accesses.iter().enumerate() {
            for b in &sa.accesses[i + 1..] {
                if !kinds_conflict(a.kind, b.kind) {
                    continue;
                }
                let overlap = if a.data == b.data {
                    a.path.base < b.path.max_end() && b.path.base < a.path.max_end()
                } else if assignment.is_some() {
                    match (slot_of.get(&a.data), slot_of.get(&b.data)) {
                        (Some(&(ao, _)), Some(&(bo, _))) => {
                            ao + a.path.base < bo + b.path.max_end()
                                && bo + b.path.base < ao + a.path.max_end()
                        }
                        _ => false,
                    }
                } else {
                    false
                };
                if overlap {
                    alias_free = false;
                    errors.push(PlanLint::UnprovenAccess {
                        step: si,
                        name: step.name.clone(),
                        container: a.name.clone(),
                        reason: format!(
                            "conflicting overlap with operand `{}` beyond what the race certificate permits",
                            b.name
                        ),
                    });
                }
            }
        }

        proofs.push(StepAccessProof {
            step: si,
            name: step.name.clone(),
            in_bounds,
            unit_stride,
            alias_free,
            derived: sa.derived,
        });
    }

    if !errors.is_empty() {
        errors.extend(warnings);
        errors.sort_by_key(PlanLint::step);
        return Err(errors);
    }
    Ok(AccessCertificate {
        plan_hash: plan_fingerprint(plan),
        arena: assignment.map(|a| a.granularity),
        steps: proofs,
        lints: warnings,
    })
}

/// Certifies a plan's access paths at the logical (per-buffer) level:
/// every derived path must stay inside its declared container, and no
/// intra-step overlap may conflict beyond shared reads.
///
/// # Errors
///
/// Returns every [`PlanLint::UnprovenAccess`] found (plus any
/// [`PlanLint::StridedInnerLoop`] warnings for context) when a proven
/// violation exists.
pub fn certify_access(
    graph: &Graph,
    plan: &ExecutionPlan,
) -> Result<AccessCertificate, Vec<PlanLint>> {
    certify_inner(graph, plan, None)
}

/// Certifies a plan's access paths embedded into an arena coloring: on top
/// of the logical checks, every path must stay inside its slab slot, every
/// slot inside the slab, and no two operands of one step may touch
/// overlapping slab words with conflicting kinds.
///
/// # Errors
///
/// As [`certify_access`], plus slab-escape violations.
pub fn certify_access_arena(
    graph: &Graph,
    plan: &ExecutionPlan,
    assignment: &ArenaAssignment,
) -> Result<AccessCertificate, Vec<PlanLint>> {
    certify_inner(graph, plan, Some(assignment))
}

/// One cache container's geometry as proven by [`certify_decode`].
#[derive(Debug, Clone)]
pub struct CacheGeometry {
    /// Container name (e.g. `k_cache`).
    pub name: String,
    /// Position capacity: the extent of the outermost (position-major)
    /// axis.
    pub capacity: usize,
    /// Words per position column (product of all non-outermost extents).
    pub col_words: usize,
}

/// Proof that a decode plan treats its [`xform_dataflow::DataRole::Cache`] containers as
/// frozen state: no scheduled step (or relayout) writes a single word of
/// any cache container, so an execution can only *read* the resident
/// prefix, never mutate it. Column appends happen outside the plan through
/// the bounds-checked [`column_span`] license, *before* the plan runs —
/// which is exactly how the query's own key becomes visible to its own
/// attention step.
#[derive(Debug, Clone)]
pub struct DecodeCertificate {
    /// Fingerprint of the certified plan.
    pub plan_hash: u64,
    /// Geometry per cache container, in graph declaration order.
    pub caches: Vec<CacheGeometry>,
}

impl DecodeCertificate {
    /// Geometry of the named cache container, if the plan reads one.
    pub fn cache(&self, name: &str) -> Option<&CacheGeometry> {
        self.caches.iter().find(|c| c.name == name)
    }
}

/// Certifies that `plan` never writes a [`xform_dataflow::DataRole::Cache`] container:
/// every step's derived access paths touching a cache container must be
/// reads. The same derivation the unchecked-twin license rests on backs
/// this proof, so an inexactly-derived step touching a cache convicts the
/// plan rather than passing silently.
///
/// # Errors
///
/// Returns a [`PlanLint::UnprovenAccess`] per violation: a write access
/// (or relayout) of a cache container, or a step whose paths could not be
/// derived exactly while touching a cache container.
pub fn certify_decode(
    graph: &Graph,
    plan: &ExecutionPlan,
) -> Result<DecodeCertificate, Vec<PlanLint>> {
    use xform_dataflow::DataRole;
    let cache_ids: HashMap<NodeId, &str> = graph
        .data_nodes()
        .iter()
        .filter_map(|&id| {
            let d = graph.data(id)?;
            (d.role == DataRole::Cache).then_some((id, d.name.as_str()))
        })
        .collect();
    let mut errors: Vec<PlanLint> = Vec::new();
    for (si, step) in plan.steps.iter().enumerate() {
        let sa = step_accesses(graph, step);
        for a in &sa.accesses {
            let Some(&cname) = cache_ids.get(&a.data) else {
                continue;
            };
            if a.kind != AccessKind::Read {
                errors.push(PlanLint::UnprovenAccess {
                    step: si,
                    name: step.name.clone(),
                    container: cname.to_string(),
                    reason: format!("{:?} access to a frozen cache container", a.kind),
                });
            }
            if !sa.derived {
                errors.push(PlanLint::UnprovenAccess {
                    step: si,
                    name: step.name.clone(),
                    container: cname.to_string(),
                    reason: "underived access paths in a step touching a cache container"
                        .to_string(),
                });
            }
        }
    }
    if !errors.is_empty() {
        errors.sort_by_key(PlanLint::step);
        return Err(errors);
    }
    let caches = graph
        .data_nodes()
        .iter()
        .filter_map(|&id| {
            let d = graph.data(id)?;
            if d.role != xform_dataflow::DataRole::Cache {
                return None;
            }
            let sizes = d.shape.sizes();
            let capacity = sizes.first().copied().unwrap_or(1);
            let col_words: usize = sizes.iter().skip(1).product();
            Some(CacheGeometry {
                name: d.name.clone(),
                capacity,
                col_words,
            })
        })
        .collect();
    Ok(DecodeCertificate {
        plan_hash: plan_fingerprint(plan),
        caches,
    })
}

/// Bounds-checked license for a session-side column append: the word range
/// of positions `[pos, pos + width)` in the named cache container, under
/// its position-major layout. `None` when the plan reads no cache of that
/// name or the range escapes the container's capacity — the caller must
/// treat `None` as "do not write".
pub fn column_span(
    cert: &DecodeCertificate,
    name: &str,
    pos: usize,
    width: usize,
) -> Option<std::ops::Range<usize>> {
    let c = cert.cache(name)?;
    let end = pos.checked_add(width)?;
    if end > c.capacity {
        return None;
    }
    Some(pos * c.col_words..end * c.col_words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, assign_arena};
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::recipe::forward_ops;
    use xform_dataflow::{build, EncoderDims};

    fn fused_plan() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
        (g, plan)
    }

    #[test]
    fn canned_fused_plan_certifies_with_licensed_memory_bound_steps() {
        let (g, plan) = fused_plan();
        let cert = certify_access(&g, &plan).expect("canned plan must certify");
        assert_eq!(cert.plan_hash, plan_fingerprint(&plan));
        assert_eq!(cert.steps.len(), plan.steps.len());
        // zero errors: every path in-bounds, alias-free, exactly derived
        for p in &cert.steps {
            assert!(p.in_bounds, "step `{}` in bounds", p.name);
            assert!(p.alias_free, "step `{}` alias free", p.name);
            assert!(p.derived, "step `{}` derived", p.name);
        }
        // the attention softmax sweeps its innermost axis: licensed
        let sm = plan.steps.iter().position(|s| s.name == "SM").unwrap();
        assert!(cert.licensed(sm), "softmax class must be licensed");
        // the encoder's norm containers are embedding-major (`ibj`), so
        // the norm steps genuinely stride in their inner loop — flagged
        // as warnings, never licensed
        for (si, step) in plan.steps.iter().enumerate() {
            if step.name.contains("DRLN") {
                assert!(
                    !cert.licensed(si),
                    "strided `{}` must not be licensed",
                    step.name
                );
                assert!(cert
                    .lints
                    .iter()
                    .any(|l| matches!(l, PlanLint::StridedInnerLoop { step, .. } if *step == si)));
            }
        }
        assert!(cert.licensed_steps() > 0);
    }

    #[test]
    fn arena_embedding_certifies_at_both_granularities() {
        let (g, plan) = fused_plan();
        let analysis = analyze(&g, &plan);
        for gran in [ArenaGranularity::Serial, ArenaGranularity::Waves] {
            let asg = assign_arena(&analysis, gran);
            let cert = certify_access_arena(&g, &plan, &asg).expect("arena embedding certifies");
            assert_eq!(cert.arena, Some(gran));
            assert!(cert.licensed_steps() > 0);
        }
    }

    #[test]
    fn shrunken_arena_slot_is_convicted() {
        let (g, plan) = fused_plan();
        let analysis = analyze(&g, &plan);
        let mut asg = assign_arena(&analysis, ArenaGranularity::Serial);
        // shrink the largest slot so some derived path escapes it
        let victim = asg
            .slots
            .iter_mut()
            .max_by_key(|s| s.words)
            .expect("plan has buffers");
        victim.words /= 2;
        let lints = certify_access_arena(&g, &plan, &asg).expect_err("must reject");
        assert!(lints
            .iter()
            .any(|l| matches!(l, PlanLint::UnprovenAccess { .. })));
    }

    #[test]
    fn overlapping_arena_slots_are_convicted_as_aliasing() {
        let (g, plan) = fused_plan();
        let analysis = analyze(&g, &plan);
        let mut asg = assign_arena(&analysis, ArenaGranularity::Serial);
        // force two operands of step 0 onto the same slab words
        let a = plan.steps[0].inputs[0].data;
        let b = plan.steps[0].outputs[0].data;
        let a_off = asg.slots.iter().find(|s| s.data == a).unwrap().offset;
        if let Some(slot) = asg.slots.iter_mut().find(|s| s.data == b) {
            slot.offset = a_off;
        }
        let lints = certify_access_arena(&g, &plan, &asg).expect_err("must reject");
        assert!(lints.iter().any(|l| matches!(
            l,
            PlanLint::UnprovenAccess { reason, .. } if reason.contains("race certificate")
        )));
    }

    #[test]
    fn strided_inner_loop_is_flagged_but_not_fatal() {
        let (g, mut plan) = fused_plan();
        // rotate the softmax input's layout so the reduce axis `k` is no
        // longer innermost: a licensed step becomes a flagged, unlicensed
        // one — but certification still succeeds (fallback, not failure)
        let si = plan.steps.iter().position(|s| s.name == "SM").unwrap();
        let rotated: String = {
            let mut chars: Vec<char> = plan.steps[si].inputs[0].layout.chars().collect();
            chars.rotate_right(1);
            chars.into_iter().collect()
        };
        plan.steps[si].inputs[0].layout = rotated;
        let cert = certify_access(&g, &plan).expect("strided is a warning, not an error");
        assert!(cert
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::StridedInnerLoop { step, name, .. } if *step == si && name == "SM")));
        assert!(!cert.licensed(si));
    }

    #[test]
    fn path_arithmetic() {
        let p = AccessPath {
            base: 10,
            dims: vec![(2, 12), (3, 4), (4, 1)],
        };
        assert_eq!(p.max_end(), 10 + 12 + 8 + 3 + 1);
        assert_eq!(p.inner_stride(), 1);
        let strided = AccessPath {
            base: 0,
            dims: vec![(4, 1), (3, 4)],
        };
        assert_eq!(strided.inner_stride(), 4);
        let singleton = AccessPath {
            base: 0,
            dims: vec![(5, 1), (1, 7)],
        };
        assert_eq!(singleton.inner_stride(), 1);
    }
}
