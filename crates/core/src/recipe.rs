//! The end-to-end optimization recipe (Sec. III):
//!
//! 1. build the dataflow graph and classify operators (`xform-dataflow`);
//! 2. fuse for data reuse ([`crate::fusion`]);
//! 3. sweep data layouts per operator ([`crate::sweep`]);
//! 4. select a global configuration ([`crate::selection`]) and assemble
//!    the optimized implementation.
//!
//! [`optimize_encoder`] runs all four steps for a BERT encoder layer and
//! returns per-operator timings, MUE, and totals — the "Ours" columns of
//! Tables III, IV and V.

use std::collections::HashMap;

use xform_dataflow::{build, EncoderDims, Graph, NodeId, OpClass};
use xform_gpusim::mue::{mue, Mue};
use xform_gpusim::opmodel::OpConfig;
use xform_gpusim::DeviceSpec;
use xform_tensor::Result;

use crate::fusion::{apply_plan, encoder_fusion_plan};
use crate::selection::{select_forward, Selection};
use crate::sweep::{sweep_all, PerfSource, SimulatorSource, SweepOptions};

/// Operators on the forward half of a training graph, topologically
/// ordered: everything not reachable from the output gradient `dy`.
pub fn forward_ops(graph: &Graph, dy: NodeId) -> Vec<NodeId> {
    let backward = graph.reachable_from(dy);
    graph
        .topo_ops()
        .into_iter()
        .filter(|op| !backward.contains(op))
        .collect()
}

/// Operators on the backward half, topologically ordered.
pub fn backward_ops(graph: &Graph, dy: NodeId) -> Vec<NodeId> {
    let backward = graph.reachable_from(dy);
    graph
        .topo_ops()
        .into_iter()
        .filter(|op| backward.contains(op))
        .collect()
}

/// One operator of the optimized implementation.
#[derive(Debug, Clone)]
pub struct PlannedOp {
    /// Operator id in the fused graph.
    pub op: NodeId,
    /// Kernel name (fused name where fusion applied).
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Whether the op belongs to the forward pass.
    pub forward: bool,
    /// Selected configuration.
    pub config: OpConfig,
    /// Kernel time under the selected configuration (µs).
    pub time_us: f64,
    /// Flop performed.
    pub flop: u64,
    /// MUE analysis under the selected configuration.
    pub mue: Mue,
}

/// The assembled, optimized encoder implementation.
#[derive(Debug, Clone)]
pub struct OptimizedEncoder {
    /// The fused dataflow graph.
    pub graph: Graph,
    /// Per-operator plan, topologically ordered (forward then backward).
    pub rows: Vec<PlannedOp>,
    /// Forward kernel time plus dispatch overheads (µs).
    pub forward_us: f64,
    /// Backward kernel time plus dispatch overheads (µs).
    pub backward_us: f64,
    /// Forward selection details (Fig. 6's shortest path).
    pub selection: Selection,
    /// Data-movement reduction vs the unfused graph (%; the paper's
    /// ~22.91%).
    pub movement_reduction_pct: f64,
}

impl OptimizedEncoder {
    /// Total time (µs) for forward + backward.
    pub fn total_us(&self) -> f64 {
        self.forward_us + self.backward_us
    }

    /// Kernel time of a named operator, if present.
    pub fn op_time_us(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.name == name).map(|r| r.time_us)
    }
}

/// Options for the recipe run.
#[derive(Debug, Clone, Copy)]
pub struct RecipeOptions {
    /// Sweep sampling cap (None = exhaustive; the paper sweeps
    /// exhaustively, which takes a few seconds per contraction here).
    pub sweep: SweepOptions,
    /// Per-op dispatch overhead of the assembled implementation (µs);
    /// the PyTorch-integration overhead in the paper's numbers.
    pub per_op_overhead_us: f64,
}

impl Default for RecipeOptions {
    fn default() -> Self {
        RecipeOptions {
            sweep: SweepOptions {
                max_configs: Some(30_000),
                ..SweepOptions::default()
            },
            per_op_overhead_us: 1.0,
        }
    }
}

/// Runs the full recipe for a BERT encoder layer on the given device.
///
/// # Errors
///
/// Returns an error if any step fails (the encoder graph is well-formed,
/// so failures indicate inconsistent sweeps/configurations).
pub fn optimize_encoder(
    device: &DeviceSpec,
    dims: &EncoderDims,
    opts: &RecipeOptions,
) -> Result<OptimizedEncoder> {
    let source = SimulatorSource {
        device: device.clone(),
    };
    optimize_encoder_with(&source, device, dims, opts)
}

/// Like [`optimize_encoder`] but with a caller-supplied performance source
/// (e.g. real CPU measurements), demonstrating the recipe's hardware
/// independence.
///
/// # Errors
///
/// Returns an error if any step fails.
pub fn optimize_encoder_with(
    source: &dyn PerfSource,
    device: &DeviceSpec,
    dims: &EncoderDims,
    opts: &RecipeOptions,
) -> Result<OptimizedEncoder> {
    optimize_step(
        source,
        device,
        build::encoder(dims),
        &encoder_fusion_plan(),
        opts,
    )
}

/// Runs the recipe for a GPT-2-style decoder block (pre-layer-norm,
/// causally masked self-attention) — Sec. VIII's claim that the recipe
/// transfers to other transformer blocks unchanged, demonstrated.
///
/// # Errors
///
/// Returns an error if any step fails.
pub fn optimize_decoder(
    device: &DeviceSpec,
    dims: &EncoderDims,
    opts: &RecipeOptions,
) -> Result<OptimizedEncoder> {
    let source = SimulatorSource {
        device: device.clone(),
    };
    optimize_step(
        &source,
        device,
        build::decoder(dims),
        &crate::fusion::decoder_fusion_plan(),
        opts,
    )
}

/// The generic recipe driver: fuse an arbitrary training-step graph with
/// the given plan, sweep, select, and assemble the plan rows.
///
/// # Errors
///
/// Returns an error if any step fails.
pub fn optimize_step(
    source: &dyn PerfSource,
    device: &DeviceSpec,
    bundle: build::EncoderGraph,
    plan: &[crate::fusion::FusionGroup],
    opts: &RecipeOptions,
) -> Result<OptimizedEncoder> {
    // Step 1: dataflow graph.
    let baseline = bundle.graph.clone();
    let mut graph = bundle.graph;
    // Step 2: fusion (after validating the plan against the graph).
    let problems = crate::fusion::validate_plan(&graph, plan);
    if !problems.is_empty() {
        return Err(xform_tensor::TensorError::Unsupported(format!(
            "fusion plan rejected: {}",
            problems.join("; ")
        )));
    }
    apply_plan(&mut graph, plan)?;
    let movement_reduction_pct =
        xform_dataflow::analysis::movement_reduction_pct(&baseline, &graph);
    // Step 3: layout sweeps.
    let sweeps = sweep_all(source, &graph, opts.sweep)?;
    // Step 4: global selection (forward), per-op best (backward).
    let dy = graph.data_by_name("dy").expect("encoder graph has dy");
    let fwd = forward_ops(&graph, dy);
    let bwd = backward_ops(&graph, dy);
    let selection = select_forward(&graph, device, &fwd, &sweeps)?;

    let fwd_configs: HashMap<NodeId, &crate::sweep::ConfigTiming> =
        selection.per_op.iter().map(|(op, t)| (*op, t)).collect();

    let mut rows = Vec::new();
    let mut forward_us = 0.0;
    let mut backward_us = 0.0;
    for (ops, is_fwd) in [(&fwd, true), (&bwd, false)] {
        for &op in ops.iter() {
            let node = graph.op(op).expect("live op");
            let timing = match fwd_configs.get(&op) {
                Some(t) => (*t).clone(),
                None => sweeps[&op].best.clone(),
            };
            let cost = source.measure(&graph, op, &timing.cfg)?;
            let m = mue(&graph, op, &cost);
            let flop = xform_dataflow::flops::op_flop(&graph, op).unwrap_or(0);
            if is_fwd {
                forward_us += timing.time_us + opts.per_op_overhead_us;
            } else {
                backward_us += timing.time_us + opts.per_op_overhead_us;
            }
            rows.push(PlannedOp {
                op,
                name: node.name.clone(),
                class: node.kind.class(),
                forward: is_fwd,
                config: timing.cfg.clone(),
                time_us: timing.time_us,
                flop,
                mue: m,
            });
        }
    }
    let _ = device;
    Ok(OptimizedEncoder {
        graph,
        rows,
        forward_us,
        backward_us,
        selection,
        movement_reduction_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> RecipeOptions {
        RecipeOptions {
            sweep: SweepOptions {
                max_configs: Some(4_000),
                ..SweepOptions::default()
            },
            per_op_overhead_us: 1.0,
        }
    }

    #[test]
    fn forward_backward_split_is_clean() {
        let e = build::encoder(&EncoderDims::tiny());
        let dy = e.graph.data_by_name("dy").unwrap();
        let fwd = forward_ops(&e.graph, dy);
        let bwd = backward_ops(&e.graph, dy);
        assert_eq!(fwd.len(), 22);
        assert_eq!(bwd.len(), 28);
        for op in &fwd {
            assert!(!bwd.contains(op));
        }
    }

    #[test]
    fn optimized_encoder_beats_pytorch_model() {
        let device = DeviceSpec::v100();
        let dims = EncoderDims::bert_large();
        let ours = optimize_encoder(&device, &dims, &quick_opts()).unwrap();
        let pt_graph = build::encoder(&dims).graph;
        let pt = xform_gpusim::framework::execute(
            &pt_graph,
            &device,
            &xform_gpusim::framework::FrameworkPolicy::pytorch(),
        )
        .unwrap();
        let speedup = pt.total_us / ours.total_us();
        // Table V: 1.30× over PyTorch. Accept a generous band.
        assert!(speedup > 1.1, "speedup over PyTorch only {speedup:.2}×");
        assert!(speedup < 2.5, "speedup implausibly large: {speedup:.2}×");
    }

    #[test]
    fn optimized_totals_near_table5() {
        let device = DeviceSpec::v100();
        let ours = optimize_encoder(&device, &EncoderDims::bert_large(), &quick_opts()).unwrap();
        let fwd_ms = ours.forward_us / 1000.0;
        let bwd_ms = ours.backward_us / 1000.0;
        // Table V "Ours": 2.63 / 4.38 ms.
        assert!(fwd_ms > 1.5 && fwd_ms < 4.5, "forward {fwd_ms} ms");
        assert!(bwd_ms > 2.5 && bwd_ms < 7.0, "backward {bwd_ms} ms");
        assert!(bwd_ms > fwd_ms);
    }

    #[test]
    fn movement_reduction_matches_paper_band() {
        let device = DeviceSpec::v100();
        let ours = optimize_encoder(&device, &EncoderDims::bert_large(), &quick_opts()).unwrap();
        assert!(
            ours.movement_reduction_pct > 15.0 && ours.movement_reduction_pct < 30.0,
            "reduction {}%",
            ours.movement_reduction_pct
        );
    }

    #[test]
    fn decoder_recipe_runs_and_beats_pytorch_model() {
        let device = DeviceSpec::v100();
        let dims = EncoderDims::bert_large();
        let ours = optimize_decoder(&device, &dims, &quick_opts()).unwrap();
        let pt_graph = build::decoder(&dims).graph;
        let pt = xform_gpusim::framework::execute(
            &pt_graph,
            &device,
            &xform_gpusim::framework::FrameworkPolicy::pytorch(),
        )
        .unwrap();
        let speedup = pt.total_us / ours.total_us();
        assert!(speedup > 1.1, "decoder speedup {speedup:.2}×");
        assert!(ours.op_time_us("SM").is_some());
        assert!(ours.op_time_us("BDR").is_some());
        // decoder totals are in the encoder's ballpark (same contractions)
        let enc = optimize_encoder(&device, &dims, &quick_opts()).unwrap();
        let ratio = ours.total_us() / enc.total_us();
        assert!(
            ratio > 0.7 && ratio < 1.3,
            "decoder/encoder ratio {ratio:.2}"
        );
    }

    #[test]
    fn rows_cover_all_fused_ops() {
        let device = DeviceSpec::v100();
        let ours = optimize_encoder(&device, &EncoderDims::bert_large(), &quick_opts()).unwrap();
        assert_eq!(ours.rows.len(), ours.graph.ops().len());
        assert!(ours.op_time_us("SM").is_some());
        assert!(ours.op_time_us("BDRB").is_some());
        assert!(ours.op_time_us("Q,K,V").is_some());
        for r in &ours.rows {
            assert!(r.time_us > 0.0);
            assert!((0.0..=100.0).contains(&r.mue.value));
        }
    }
}
