//! First-class execution plans: the bridge from the recipe's *selected*
//! configuration to code that actually runs.
//!
//! The selection step ([`crate::selection`]) answers "which layout should
//! each operator use"; this module lowers that answer into an
//! [`ExecutionPlan`] — an ordered schedule of [`PlanStep`]s, each naming
//! the kernel (fused or unfused), the memory layout of every operand, and
//! the explicit relayout (transpose) insertions required wherever adjacent
//! steps disagree. [`execute_plan`] then interprets the schedule against
//! the real CPU kernels in `xform-tensor`, materializing every tensor in
//! the plan's selected strides — closing the paper's loop from Fig. 6's
//! shortest-path selection to a running implementation.
//!
//! Two canned constructors cover the pre-existing executors:
//! [`ExecutionPlan::natural`] over the unfused graph reproduces the
//! reference (PyTorch-style) executor, and the same constructor over the
//! fused graph reproduces the fused-kernel executor. [`ExecutionPlan::lower`]
//! builds the recipe-selected plan from a [`Selection`].

use std::collections::{HashMap, HashSet};

use rand::Rng;

use xform_dataflow::{Graph, NodeId, OpKind};
use xform_gpusim::opmodel::OpConfig;
use xform_tensor::einsum::EinsumSpec;
use xform_tensor::fused;
use xform_tensor::into_ops::{
    contract_epilogue_tiled, epilogue_contract_plan, BiasMap, CausalMap, ContractPlan, TileEpilogue,
};
use xform_tensor::ops::dropout::{dropout, dropout_disabled};
use xform_tensor::ops::elementwise::{add, bias_add, scale, ActivationKind};
use xform_tensor::ops::layernorm::{layernorm, LayerNormStats};
use xform_tensor::ops::softmax::softmax;
use xform_tensor::{Axis, Layout, Result, Shape, Tensor, TensorError};

use crate::selection::{translate_layout, Selection};
use crate::sweep::flowing_input_index;

/// One tensor slot of a [`PlanStep`]: which container it is and the
/// physical axis order (layout spec) the step wants it materialized in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operand {
    /// The data container in the graph.
    pub data: NodeId,
    /// The container's name (the interpreter's environment key).
    pub name: String,
    /// Physical axis-order spec over the container's logical axes,
    /// outermost first (e.g. `"bjhk"` for a logically-`hbjk` tensor).
    pub layout: String,
}

/// An explicit relayout (transpose) the schedule inserts before a step
/// because the producer materialized the container in a different layout
/// than this step selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relayout {
    /// The container to re-materialize.
    pub data: NodeId,
    /// Its name.
    pub name: String,
    /// Layout it currently sits in.
    pub from: String,
    /// Layout this step requires.
    pub to: String,
}

/// One scheduled kernel launch: the operator, its operand layouts, and any
/// relayout insertions that must run first.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Operator id in the graph the plan was lowered from.
    pub op: NodeId,
    /// Kernel name (fused name where fusion applied).
    pub name: String,
    /// The operator kind, cloned out of the graph so the step is
    /// self-describing.
    pub kind: OpKind,
    /// Input operands in the graph's edge order.
    pub inputs: Vec<Operand>,
    /// Output operands in the graph's edge order.
    pub outputs: Vec<Operand>,
    /// Transposes to run before the kernel.
    pub relayouts: Vec<Relayout>,
}

/// An ordered, layout-annotated schedule for (part of) a dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct ExecutionPlan {
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
}

/// `true` when `layout` is a permutation of the logical axis string
/// `logical` (same letters, each exactly once).
fn is_permutation_of(layout: &str, logical: &str) -> bool {
    if layout.len() != logical.len() {
        return false;
    }
    let mut a: Vec<char> = layout.chars().collect();
    let mut b: Vec<char> = logical.chars().collect();
    a.sort_unstable();
    b.sort_unstable();
    a == b && a.windows(2).all(|w| w[0] != w[1])
}

fn data_of(graph: &Graph, id: NodeId) -> Result<&xform_dataflow::DataNode> {
    graph
        .data(id)
        .ok_or_else(|| TensorError::Unsupported(format!("{id} is not a data container")))
}

impl ExecutionPlan {
    /// Builds a single layout-annotated step for `op` from a sweep/selection
    /// configuration. Operands whose shape the configuration's specs cannot
    /// describe (rank or axis mismatch) fall back to their natural layout;
    /// sibling outputs are translated positionally from the primary output's
    /// spec, mirroring the selection's own bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns an error if `op` is not a live operator.
    pub fn single_step(graph: &Graph, op: NodeId, cfg: &OpConfig) -> Result<PlanStep> {
        let node = graph
            .op(op)
            .ok_or_else(|| TensorError::Unsupported(format!("{op} is not an operator")))?;
        let input_ids = graph.inputs_of(op);
        let output_ids = graph.outputs_of(op);
        let flowing = flowing_input_index(graph, op);
        let is_einsum = matches!(node.kind, OpKind::Einsum(_));

        let mut inputs = Vec::with_capacity(input_ids.len());
        for (i, &id) in input_ids.iter().enumerate() {
            let d = data_of(graph, id)?;
            let logical = d.shape.spec();
            let wanted: Option<&str> = if is_einsum {
                match i {
                    0 => Some(cfg.in_spec.as_str()),
                    1 => cfg.in2_spec.as_deref(),
                    _ => None,
                }
            } else if i == flowing {
                Some(cfg.in_spec.as_str())
            } else {
                None
            };
            let layout = match wanted {
                Some(spec) if is_permutation_of(spec, &logical) => spec.to_string(),
                _ => logical,
            };
            inputs.push(Operand {
                data: id,
                name: d.name.clone(),
                layout,
            });
        }

        let mut outputs = Vec::with_capacity(output_ids.len());
        let primary_logical = output_ids
            .first()
            .and_then(|&id| graph.data(id))
            .map(|d| d.shape.spec());
        for (o, &id) in output_ids.iter().enumerate() {
            let d = data_of(graph, id)?;
            let logical = d.shape.spec();
            let layout = if o == 0 && is_permutation_of(&cfg.out_spec, &logical) {
                cfg.out_spec.clone()
            } else if o > 0 {
                // translate the primary output's layout positionally onto
                // same-rank siblings (e.g. a dropout mask shares its
                // output's layout)
                match &primary_logical {
                    Some(pl) if pl.len() == logical.len() => {
                        let t = translate_layout(&cfg.out_spec, pl, &logical);
                        if is_permutation_of(&t, &logical) {
                            t
                        } else {
                            logical
                        }
                    }
                    _ => logical,
                }
            } else {
                logical
            };
            outputs.push(Operand {
                data: id,
                name: d.name.clone(),
                layout,
            });
        }

        Ok(PlanStep {
            op,
            name: node.name.clone(),
            kind: node.kind.clone(),
            inputs,
            outputs,
            relayouts: Vec::new(),
        })
    }

    /// The canned plan: every listed operator in execution order with every
    /// operand in its natural (logical row-major) layout. Over the unfused
    /// graph this reproduces the reference executor; over the fused graph,
    /// the fused-kernel executor.
    ///
    /// # Errors
    ///
    /// Returns an error if any id is not a live operator.
    pub fn natural(graph: &Graph, ops: &[NodeId]) -> Result<ExecutionPlan> {
        let mut steps = Vec::with_capacity(ops.len());
        for &op in ops {
            let node = graph
                .op(op)
                .ok_or_else(|| TensorError::Unsupported(format!("{op} is not an operator")))?;
            let mk = |ids: Vec<NodeId>| -> Result<Vec<Operand>> {
                ids.into_iter()
                    .map(|id| {
                        let d = data_of(graph, id)?;
                        Ok(Operand {
                            data: id,
                            name: d.name.clone(),
                            layout: d.shape.spec(),
                        })
                    })
                    .collect()
            };
            steps.push(PlanStep {
                op,
                name: node.name.clone(),
                kind: node.kind.clone(),
                inputs: mk(graph.inputs_of(op))?,
                outputs: mk(graph.outputs_of(op))?,
                relayouts: Vec::new(),
            });
        }
        let mut plan = ExecutionPlan { steps };
        plan.reflow(graph);
        Ok(plan)
    }

    /// Lowers an SSSP selection into an executable schedule: one step per
    /// selected operator (in the selection's execution order) carrying the
    /// chosen configuration's layouts, with relayout insertions computed by
    /// [`ExecutionPlan::reflow`] wherever adjacent steps disagree.
    ///
    /// # Errors
    ///
    /// Returns an error if the selection references dead operators.
    pub fn lower(graph: &Graph, selection: &Selection) -> Result<ExecutionPlan> {
        let mut steps = Vec::with_capacity(selection.per_op.len());
        for (op, timing) in &selection.per_op {
            steps.push(ExecutionPlan::single_step(graph, *op, &timing.cfg)?);
        }
        let mut plan = ExecutionPlan { steps };
        plan.reflow(graph);
        Ok(plan)
    }

    /// Recomputes every step's relayout insertions by walking the schedule
    /// and tracking the layout each container is currently materialized in
    /// (containers start in their natural layout). Call after editing any
    /// operand layout.
    pub fn reflow(&mut self, graph: &Graph) {
        let mut current: HashMap<NodeId, String> = HashMap::new();
        for step in &mut self.steps {
            step.relayouts.clear();
            for inp in &step.inputs {
                let have = current.entry(inp.data).or_insert_with(|| {
                    graph
                        .data(inp.data)
                        .map(|d| d.shape.spec())
                        .unwrap_or_else(|| inp.layout.clone())
                });
                if *have != inp.layout {
                    step.relayouts.push(Relayout {
                        data: inp.data,
                        name: inp.name.clone(),
                        from: have.clone(),
                        to: inp.layout.clone(),
                    });
                    *have = inp.layout.clone();
                }
            }
            for out in &step.outputs {
                current.insert(out.data, out.layout.clone());
            }
        }
    }

    /// Statically checks the schedule against the graph it was lowered
    /// from, returning typed [`PlanLint`](crate::analyze::PlanLint)
    /// diagnostics: structural coherence (operand lists, layout
    /// permutations, use-before-def, relayout and layout coherence) as
    /// error-severity lints, plus warning-severity findings (dead steps,
    /// redundant/cancelling relayouts, missed fusion chains). A plan is
    /// executable iff no lint has
    /// [`Severity::Error`](crate::analyze::Severity::Error).
    ///
    /// This is a thin wrapper over [`crate::analyze::analyze`]; use that
    /// directly when the dependency DAG or liveness data is also needed.
    pub fn check(&self, graph: &Graph) -> Vec<crate::analyze::PlanLint> {
        crate::analyze::analyze(graph, self).lints
    }

    /// Total number of relayout (transpose) insertions in the schedule.
    pub fn relayout_count(&self) -> usize {
        self.steps.iter().map(|s| s.relayouts.len()).sum()
    }
}

/// Mutable interpreter state: tensors by container name, plus the
/// layer-norm statistics side channel (keyed by the norm's *output*
/// container name) that backward passes consume.
#[derive(Debug, Clone, Default)]
pub struct ExecState {
    /// Materialized containers.
    pub env: HashMap<String, Tensor>,
    /// Forward layer-norm statistics by output container name.
    pub stats: HashMap<String, LayerNormStats>,
}

impl ExecState {
    /// Removes and returns a container, erroring when the plan never
    /// produced it.
    ///
    /// # Errors
    ///
    /// Returns an error if the container is absent.
    pub fn take(&mut self, name: &str) -> Result<Tensor> {
        self.env
            .remove(name)
            .ok_or_else(|| TensorError::Unsupported(format!("container `{name}` was not produced")))
    }

    /// Returns a container by reference.
    ///
    /// # Errors
    ///
    /// Returns an error if the container is absent.
    pub fn get(&self, name: &str) -> Result<&Tensor> {
        self.env
            .get(name)
            .ok_or_else(|| TensorError::Unsupported(format!("container `{name}` was not produced")))
    }
}

/// How an execution routes through the shadow-access sanitizer of
/// [`crate::sanitize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeMode {
    /// Defer to the `XFORM_SANITIZE` environment variable (the default):
    /// unset, empty, `0`, `false`, `off`, or `no` disable; anything else
    /// enables.
    #[default]
    Env,
    /// Never sanitize, regardless of the environment.
    Off,
    /// Always sanitize, regardless of the environment.
    On,
}

impl SanitizeMode {
    /// Resolves the mode against the process environment.
    #[must_use]
    pub fn enabled(self) -> bool {
        match self {
            SanitizeMode::Env => crate::sanitize::sanitize_enabled(),
            SanitizeMode::Off => false,
            SanitizeMode::On => true,
        }
    }
}

/// A caller-supplied schedule for the layer forwards to run instead of the
/// cached canned plan. The interpreter entry points
/// ([`execute_plan`] / [`crate::sanitize::execute_plan_parallel`]) take
/// graph and plan positionally and ignore this field; it exists so the
/// unified `forward(&x, &w, &ExecOptions)` surface can still execute
/// recipe-selected or deliberately perturbed plans.
#[derive(Debug, Clone, Copy)]
pub struct PlanOverride<'p> {
    /// The dataflow graph the plan was lowered against.
    pub graph: &'p Graph,
    /// The schedule to interpret.
    pub plan: &'p ExecutionPlan,
    /// Race certificate for the plan, required when `threads > 1`.
    pub cert: Option<&'p crate::sanitize::RaceCertificate>,
}

/// Everything the graph does not encode about one execution: scalar kernel
/// knobs (dropout probability, the activation behind generic activation
/// nodes, the attention scale), and the run configuration of the unified
/// `forward(&x, &w, &ExecOptions)` surface — worker threads, RNG seed,
/// sanitizer routing, an optional [`crate::profile::PlanProfiler`] sink,
/// and an optional plan override.
/// Construct it with [`ExecOptions::builder`] (or `ExecOptions::default()`
/// and field assignment): the struct is `#[non_exhaustive]`, so literal
/// construction is a compile error outside this crate and new fields
/// (decode position, future knobs) never break downstream callers.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ExecOptions<'p> {
    /// Dropout probability (`0` disables dropout deterministically, drawing
    /// nothing from the RNG).
    pub dropout_p: f32,
    /// Activation applied by `Relu`-kind nodes (real models use GELU).
    pub activation: ActivationKind,
    /// Scale folded into the softmax kernels (`1/√P` for attention).
    pub scaler: f32,
    /// Worker threads for the layer forwards: `1` (or `0`) runs the serial
    /// interpreter; more runs the certificate-gated wave-parallel
    /// interpreter. The interpreter entry points themselves ignore this —
    /// callers pick the entry point.
    pub threads: usize,
    /// Seed for the dropout RNG of the layer forwards (serial runs derive
    /// one stream from it; parallel runs derive one stream per step).
    pub seed: u64,
    /// Whether the layer forwards assemble the saved-activation bundle
    /// after the run (`true` by default; inference-only callers can skip
    /// the clones).
    pub collect_activations: bool,
    /// Shadow-access sanitizer routing (defaults to the environment).
    pub sanitize: SanitizeMode,
    /// Optional profiler sink: when set, every interpreter entry point
    /// records per-step wall-clock time (and, for the parallel
    /// interpreter, per-wave occupancy) into it.
    pub profiler: Option<&'p crate::profile::ProfilerSink>,
    /// Optional plan override for the layer forwards (see
    /// [`PlanOverride`]).
    pub plan: Option<PlanOverride<'p>>,
    /// Optional compiled arena for this plan: when set (and the profiler
    /// is off), the interpreters execute out of the arena's slab instead
    /// of the allocating environment, falling back transparently when the
    /// arena is busy or does not match the plan.
    pub arena: Option<&'p crate::arena::CompiledArena>,
    /// Absolute sequence position of this run's first query column. Zero
    /// for full-sequence forwards; a decode step sets it to the current
    /// token position, shifting every causal softmax's visibility window
    /// (`visible = pos + local_query + 1`) over the cache-capacity key
    /// axis.
    pub pos: usize,
}

impl Default for ExecOptions<'_> {
    fn default() -> Self {
        ExecOptions {
            dropout_p: 0.0,
            activation: ActivationKind::Relu,
            scaler: 1.0,
            threads: 1,
            seed: 0x5eed,
            collect_activations: true,
            sanitize: SanitizeMode::Env,
            profiler: None,
            plan: None,
            arena: None,
            pos: 0,
        }
    }
}

impl<'p> ExecOptions<'p> {
    /// Starts a builder at the defaults. The builder is the supported
    /// construction surface: `ExecOptions` is `#[non_exhaustive]`, so
    /// downstream crates cannot use struct literals (and the repo
    /// convention is to avoid them in-tree too), which lets new execution
    /// knobs land without touching call sites.
    pub fn builder() -> ExecOptionsBuilder<'p> {
        ExecOptionsBuilder {
            opts: ExecOptions::default(),
        }
    }

    /// A builder seeded from this value, for deriving a variant of an
    /// existing configuration (`opts.to_builder().threads(1).build()`).
    pub fn to_builder(&self) -> ExecOptionsBuilder<'p> {
        ExecOptionsBuilder { opts: *self }
    }
}

/// Builder for [`ExecOptions`]; see [`ExecOptions::builder`]. Every setter
/// maps to the field of the same name.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptionsBuilder<'p> {
    opts: ExecOptions<'p>,
}

impl<'p> ExecOptionsBuilder<'p> {
    /// Sets the dropout probability.
    pub fn dropout_p(mut self, p: f32) -> Self {
        self.opts.dropout_p = p;
        self
    }

    /// Sets the activation behind `Relu`-kind nodes.
    pub fn activation(mut self, a: ActivationKind) -> Self {
        self.opts.activation = a;
        self
    }

    /// Sets the softmax scale (attention `1/√P`).
    pub fn scaler(mut self, s: f32) -> Self {
        self.opts.scaler = s;
        self
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.opts.threads = n;
        self
    }

    /// Sets the dropout RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.opts.seed = s;
        self
    }

    /// Sets whether layer forwards assemble the saved-activation bundle.
    pub fn collect_activations(mut self, yes: bool) -> Self {
        self.opts.collect_activations = yes;
        self
    }

    /// Sets the sanitizer routing.
    pub fn sanitize(mut self, mode: SanitizeMode) -> Self {
        self.opts.sanitize = mode;
        self
    }

    /// Sets the profiler sink.
    pub fn profiler(mut self, sink: Option<&'p crate::profile::ProfilerSink>) -> Self {
        self.opts.profiler = sink;
        self
    }

    /// Sets a plan override.
    pub fn plan(mut self, plan: Option<PlanOverride<'p>>) -> Self {
        self.opts.plan = plan;
        self
    }

    /// Sets the compiled arena.
    pub fn arena(mut self, arena: Option<&'p crate::arena::CompiledArena>) -> Self {
        self.opts.arena = arena;
        self
    }

    /// Sets the absolute decode position of the first query column.
    pub fn pos(mut self, pos: usize) -> Self {
        self.opts.pos = pos;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ExecOptions<'p> {
        self.opts
    }
}

/// The classes of fused forward kernels the interpreter can dispatch,
/// recovered from a fused node's member names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedClass {
    /// Q/K/V input biases over the stacked projection (AIB).
    InputBias,
    /// Scaling + softmax + dropout (SM), causal when a member is masked.
    Softmax { causal: bool },
    /// Bias + dropout + residual + layernorm (DRLN/BDRLN).
    BiasDropResidualNorm,
    /// Bias + activation + dropout (BRD).
    BiasActDrop,
    /// Bias + dropout + residual without a norm (the decoder's BDR).
    BiasDropResidual,
    /// A singleton layer-norm group.
    Norm,
}

pub(crate) fn classify_fused(parts: &[String]) -> Option<FusedClass> {
    let any = |f: &dyn Fn(&str) -> bool| parts.iter().any(|p| f(p));
    // gradient members mark a backward fused kernel — not interpretable
    if any(&|p| p.contains(" dX") || p.contains(" dW")) {
        return None;
    }
    if any(&|p| p.contains("softmax")) {
        return Some(FusedClass::Softmax {
            causal: any(&|p| p.contains("Masked")),
        });
    }
    if any(&|p| p.starts_with("LayerNorm")) {
        return Some(if parts.len() == 1 {
            FusedClass::Norm
        } else {
            FusedClass::BiasDropResidualNorm
        });
    }
    if any(&|p| p.contains("ReLU") || p.contains("GELU")) {
        return Some(FusedClass::BiasActDrop);
    }
    if any(&|p| p.starts_with("Residual")) {
        return Some(FusedClass::BiasDropResidual);
    }
    if !parts.is_empty() && parts.iter().all(|p| p.starts_with("Input bias")) {
        return Some(FusedClass::InputBias);
    }
    None
}

/// Whether the interpreter can execute this operator kind standalone (the
/// forward half of the graph). Backward kernels need gradient plumbing the
/// schedule interpreter does not model.
pub fn step_is_interpretable(kind: &OpKind, _name: &str) -> bool {
    match kind {
        OpKind::Einsum(_)
        | OpKind::Bias { .. }
        | OpKind::Scale
        | OpKind::Softmax { .. }
        | OpKind::LayerNorm { .. }
        | OpKind::Dropout
        | OpKind::Relu
        | OpKind::Residual => true,
        OpKind::Fused { parts, .. } | OpKind::ContractionEpilogue { parts, .. } => {
            classify_fused(parts).is_some()
        }
        _ => false,
    }
}

/// Causal-query recovery for a masked softmax along `axis` of `shape`: the
/// query axis immediately precedes the softmax axis, so a lane index maps
/// to its query as `(lane / div) % len`.
pub(crate) fn causal_map_of(shape: &Shape, axis: Axis) -> Option<CausalMap> {
    let ai = shape.index_of(axis).ok()?;
    let q = causal_query_axis(shape, axis).ok()?;
    let qi = shape.index_of(q).ok()?;
    if qi >= ai {
        return None;
    }
    let div: usize = shape.sizes()[qi + 1..ai].iter().product();
    Some(CausalMap {
        div,
        len: shape.sizes()[qi],
        base: 0,
    })
}

/// The compiled tiling geometry of a GEMM-epilogue mega-kernel: the
/// identity-scatter contraction plan (operands possibly swapped so the
/// GEMM's M axis is the epilogue's row axis), the output-tile height, and
/// the epilogue's class and causal map.
#[derive(Debug, Clone)]
pub(crate) struct EpilogueGeom {
    /// Gather/GEMM plan whose scatter is the identity over the output
    /// container (row-major).
    pub plan: ContractPlan,
    /// When set, the step's second input feeds the GEMM's A pack.
    pub swapped: bool,
    /// Output rows per tile. Softmax epilogues take the whole batch slice
    /// (`m`) so every lane is complete inside one tile.
    pub tile_rows: usize,
    /// Causal mask recovery for masked-softmax epilogues.
    pub causal: Option<CausalMap>,
    /// The downstream chain's kernel class.
    pub class: FusedClass,
}

/// Target tile footprint in words for row-blocked (bias-class) epilogues:
/// small enough to stay cache-hot, large enough to amortize the loop.
const EPILOGUE_TILE_WORDS: usize = 4096;

/// Derives the tiling geometry of a [`OpKind::ContractionEpilogue`] step
/// from container shapes, or `None` when the chain is not tileable:
///
/// * the contraction must scatter identically (possibly after swapping
///   GEMM operand roles) into the row-major output container;
/// * a softmax epilogue's reduce axis must be the container's innermost
///   axis and span exactly the GEMM's N extent, with the causal query (if
///   masked) immediately preceding it;
/// * a bias-carrying epilogue must be batch-free with the bias covering
///   exactly the leading M axes, so each output row sees one bias word.
///
/// Shared by the fusion detector, the allocating interpreter, and the
/// arena precompiler, so all three agree on what lowers.
#[allow(clippy::too_many_arguments)] // mirrors the chain's operand inventory
pub(crate) fn epilogue_geometry(
    spec: &EinsumSpec,
    parts: &[String],
    reduce_axis: Option<Axis>,
    a_c: &Shape,
    b_c: &Shape,
    out_c: &Shape,
    bias: Option<&Shape>,
    residual: Option<&Shape>,
) -> Option<EpilogueGeom> {
    let class = classify_fused(parts)?;
    let ops = spec.operands();
    if ops.len() != 2 {
        return None;
    }
    // relabel the operands' container shapes positionally to the spec's
    // letters, as the interpreters do before contracting
    let relabel = |axes: &[Axis], c: &Shape| -> Option<Shape> {
        if axes.len() != c.rank() {
            return None;
        }
        let dims: Vec<(char, usize)> = axes.iter().zip(c.sizes()).map(|(a, &s)| (a.0, s)).collect();
        Shape::new(dims).ok()
    };
    let a_s = relabel(&ops[0], a_c)?;
    let b_s = relabel(&ops[1], b_c)?;
    let size_of = |ax: Axis| -> Option<usize> { a_s.size(ax).or_else(|_| b_s.size(ax)).ok() };
    let lbl_dims: Vec<(char, usize)> = spec
        .output()
        .iter()
        .map(|&ax| size_of(ax).map(|s| (ax.0, s)))
        .collect::<Option<Vec<_>>>()?;
    let lbl = Shape::new(lbl_dims).ok()?;
    if lbl.sizes() != out_c.sizes() {
        return None;
    }
    let rm = |s: &Shape| Layout::row_major(s.rank()).strides(s);
    let ep = epilogue_contract_plan(spec, &a_s, &rm(&a_s), &b_s, &rm(&b_s), &lbl)?;
    let (m, n) = (ep.plan.m, ep.plan.n);
    match class {
        FusedClass::Softmax { causal } => {
            let axis = reduce_axis?;
            if *out_c.axes().last()? != axis || *out_c.sizes().last()? != n {
                return None;
            }
            let cm = if causal {
                let c = causal_map_of(out_c, axis)?;
                // the tile driver indexes lanes tile-locally; anything
                // between the query and softmax axes would break that
                if c.div != 1 {
                    return None;
                }
                Some(c)
            } else {
                None
            };
            Some(EpilogueGeom {
                plan: ep.plan,
                swapped: ep.swapped,
                tile_rows: m,
                causal: cm,
                class,
            })
        }
        FusedClass::BiasActDrop | FusedClass::BiasDropResidual => {
            if ep.plan.batch != 1 {
                return None;
            }
            let bias = bias?;
            let r = bias.rank();
            if r == 0
                || r > out_c.rank()
                || out_c.axes()[..r] != *bias.axes()
                || out_c.sizes()[..r] != *bias.sizes()
                || bias.num_elements() != m
            {
                return None;
            }
            if matches!(class, FusedClass::BiasDropResidual) {
                let res = residual?;
                if res.sizes() != out_c.sizes() {
                    return None;
                }
            }
            let tile_rows = (EPILOGUE_TILE_WORDS / n.max(1)).clamp(1, m.max(1));
            Some(EpilogueGeom {
                plan: ep.plan,
                swapped: ep.swapped,
                tile_rows,
                causal: None,
                class,
            })
        }
        _ => None,
    }
}

fn axes_string(axes: &[Axis]) -> String {
    axes.iter().map(|a| a.name()).collect()
}

/// Relabels `t` to `spec` when the axis letters differ (positional rename,
/// sizes unchanged).
fn relabeled(t: &Tensor, spec: &str) -> Result<Tensor> {
    if t.shape().spec() == spec {
        Ok(t.clone())
    } else {
        t.relabel(spec)
    }
}

/// The causal query axis for a masked softmax: the logical axis immediately
/// preceding the softmax axis (attention scores are `[..., j, k]`).
pub(crate) fn causal_query_axis(shape: &Shape, softmax_axis: Axis) -> Result<Axis> {
    let ai = shape.index_of(softmax_axis)?;
    if ai == 0 {
        return Err(TensorError::Unsupported(
            "masked softmax axis has no preceding query axis".into(),
        ));
    }
    Ok(shape.axes()[ai - 1])
}

/// The slice start row of a stacked-Q/K/V carve for the step named
/// `name` (`"Input bias Q/K/V"`), given the stacked container's outermost
/// extent `total` and the projection's extent `len`: Q sits at the front,
/// K right after the (equal-sized) Q block, V at the tail. `None` when
/// the name ends in none of the three projection letters. Shared between
/// the interpreter's dispatch and the footprint oracle of
/// [`crate::sanitize`], so the certifier checks exactly the interval the
/// kernel slices.
pub(crate) fn stacked_carve_start(name: &str, total: usize, len: usize) -> Option<usize> {
    match name.chars().last() {
        Some('Q') => Some(0),
        Some('K') => Some(len),
        Some('V') => Some(total - len),
        _ => None,
    }
}

/// Carves the `index`-th projection out of a stacked Q/K/V tensor: slice
/// `len` rows starting at `start` along the stacking axis (always the
/// first), then relabel to the destination container's axes.
fn carve_stacked(stacked: &Tensor, start: usize, out_shape: &Shape) -> Result<Tensor> {
    let axis0 = stacked.shape().axes()[0];
    let len = out_shape.sizes()[0];
    stacked
        .slice_range(axis0, start, len)?
        .relabel(&out_shape.spec())
}

/// Runs one scheduled step against the interpreter state: applies the
/// step's relayout insertions, dispatches the kernel, and materializes each
/// output in its declared layout.
///
/// # Errors
///
/// Returns an error if a consumed container is missing, the operator kind
/// is not interpretable (backward kernels), or a kernel rejects its
/// operands.
pub fn execute_step<R: Rng + ?Sized>(
    graph: &Graph,
    step: &PlanStep,
    state: &mut ExecState,
    opts: &ExecOptions,
    rng: &mut R,
) -> Result<()> {
    // explicit transposes first
    for r in &step.relayouts {
        let t = state.get(&r.name)?;
        let lay = Layout::from_axis_order(t.shape(), &r.to)?;
        let moved = t.relayout(&lay);
        state.env.insert(r.name.clone(), moved);
    }

    let ins: Vec<Tensor> = step
        .inputs
        .iter()
        .map(|o| state.get(&o.name).cloned())
        .collect::<Result<Vec<_>>>()?;

    let out_shape =
        |k: usize| -> Result<Shape> { Ok(data_of(graph, step.outputs[k].data)?.shape.clone()) };

    let p = opts.dropout_p;
    let drop = |x: &Tensor, rng: &mut R| -> (Tensor, Tensor) {
        if p > 0.0 {
            dropout(x, p, rng)
        } else {
            dropout_disabled(x)
        }
    };

    // (value, index into step.outputs) pairs, plus any layer-norm stats
    let mut results: Vec<Tensor> = Vec::with_capacity(step.outputs.len());
    let mut ln_stats: Option<(usize, LayerNormStats)> = None;

    match &step.kind {
        OpKind::Einsum(spec) => {
            let operand_axes = spec.operands();
            match ins.len() {
                2 => {
                    let a = relabeled(&ins[0], &axes_string(&operand_axes[0]))?;
                    let b = relabeled(&ins[1], &axes_string(&operand_axes[1]))?;
                    // build the contraction's output shape in einsum labels
                    // and translate the declared (container-letter) layout
                    // onto it positionally
                    let dims: Vec<(Axis, usize)> = spec
                        .output()
                        .iter()
                        .map(|&ax| {
                            let n = a
                                .shape()
                                .index_of(ax)
                                .map(|i| a.shape().sizes()[i])
                                .or_else(|_| b.shape().index_of(ax).map(|i| b.shape().sizes()[i]))?;
                            Ok((ax, n))
                        })
                        .collect::<Result<Vec<_>>>()?;
                    let lbl_shape = Shape::new(dims)?;
                    let container_spec = out_shape(0)?.spec();
                    let declared = translate_layout(
                        &step.outputs[0].layout,
                        &container_spec,
                        &lbl_shape.spec(),
                    );
                    let lay = Layout::from_axis_order(&lbl_shape, &declared)
                        .unwrap_or_else(|_| Layout::row_major(lbl_shape.rank()));
                    let out = xform_tensor::contract::contract(spec, &a, &b, &lay)?;
                    results.push(relabeled(&out, &container_spec)?);
                }
                1 => {
                    let a = relabeled(&ins[0], &axes_string(&operand_axes[0]))?;
                    let out = xform_tensor::einsum(&spec.to_string(), &[&a])?;
                    results.push(relabeled(&out, &out_shape(0)?.spec())?);
                }
                n => {
                    return Err(TensorError::Unsupported(format!(
                        "einsum `{}` with {n} operands",
                        step.name
                    )))
                }
            }
        }
        OpKind::Bias { .. } => {
            let x = &ins[0];
            let shape = out_shape(0)?;
            if x.shape().sizes() != shape.sizes() || x.shape().spec() != shape.spec() {
                // stacked-projection slice (`Input bias Q/K/V`): carve the
                // per-projection rows out of the stacked activation. Q sits
                // at the front, K right after the (equal-sized) Q block, V
                // at the tail.
                let total = x.shape().sizes()[0];
                let len = shape.sizes()[0];
                let start = stacked_carve_start(&step.name, total, len).ok_or_else(|| {
                    TensorError::Unsupported(format!(
                        "bias `{}` has mismatched operand shapes",
                        step.name
                    ))
                })?;
                results.push(bias_add(&carve_stacked(x, start, &shape)?, &ins[1])?);
            } else {
                results.push(bias_add(x, &ins[1])?);
            }
        }
        OpKind::Scale => results.push(scale(&ins[0], opts.scaler)),
        OpKind::Softmax { axis } => {
            if step.name.contains("Masked") {
                let q = causal_query_axis(ins[0].shape(), *axis)?;
                let sm = fused::sm_causal_at(&ins[0], opts.scaler, q, *axis, 0.0, rng, opts.pos)?;
                results.push(sm.softmax);
            } else {
                results.push(softmax(&scale(&ins[0], opts.scaler), *axis)?);
            }
        }
        OpKind::LayerNorm { axis } => {
            let (out, stats) = layernorm(&ins[0], *axis, &ins[1], &ins[2])?;
            ln_stats = Some((0, stats));
            results.push(out);
        }
        OpKind::Dropout => {
            let (out, mask) = drop(&ins[0], rng);
            results.push(out);
            results.push(mask);
        }
        OpKind::Relu => results.push(xform_tensor::ops::elementwise::activate(
            &ins[0],
            opts.activation,
        )),
        OpKind::Residual => results.push(add(&ins[0], &ins[1])?),
        OpKind::Fused {
            parts, reduce_axis, ..
        } => {
            let class = classify_fused(parts).ok_or_else(|| {
                TensorError::Unsupported(format!(
                    "fused kernel `{}` is not a forward kernel the interpreter knows",
                    step.name
                ))
            })?;
            match class {
                FusedClass::InputBias => {
                    // inputs [stacked, bq, bk, bv] → outputs [qq, kk, vv]
                    let mut start = 0usize;
                    for k in 0..step.outputs.len() {
                        let shape = out_shape(k)?;
                        results.push(bias_add(&carve_stacked(&ins[0], start, &shape)?, &ins[k + 1])?);
                        start += shape.sizes()[0];
                    }
                }
                FusedClass::Softmax { causal } => {
                    let axis = reduce_axis.ok_or_else(|| {
                        TensorError::Unsupported("fused softmax lost its reduce axis".into())
                    })?;
                    let sm = if causal {
                        let q = causal_query_axis(ins[0].shape(), axis)?;
                        fused::sm_causal_at(&ins[0], opts.scaler, q, axis, p, rng, opts.pos)?
                    } else {
                        fused::sm(&ins[0], opts.scaler, axis, p, rng)?
                    };
                    // outputs [att (saved softmax), alpha, att_mask]
                    results.push(sm.softmax);
                    results.push(sm.alpha);
                    results.push(sm.mask);
                }
                FusedClass::BiasDropResidualNorm => {
                    let axis = reduce_axis.ok_or_else(|| {
                        TensorError::Unsupported("fused layernorm lost its reduce axis".into())
                    })?;
                    // inputs [x, bias, residual, gamma, beta] →
                    // outputs [mask, ln_input, out]
                    let r = fused::bdrln(&ins[0], &ins[1], &ins[2], &ins[3], &ins[4], axis, p, rng)?;
                    ln_stats = Some((2, r.stats));
                    results.push(r.mask);
                    results.push(r.ln_input);
                    results.push(r.out);
                }
                FusedClass::BiasActDrop => {
                    // inputs [x, bias] → outputs [pre_activation, out, mask]
                    let r = fused::brd_act(&ins[0], &ins[1], opts.activation, p, rng)?;
                    results.push(r.pre_activation);
                    results.push(r.out);
                    results.push(r.mask);
                }
                FusedClass::BiasDropResidual => {
                    // inputs [x, bias, residual] → outputs [mask, out]
                    let biased = bias_add(&ins[0], &ins[1])?;
                    let (dropped, mask) = drop(&biased, rng);
                    results.push(mask);
                    results.push(add(&dropped, &ins[2])?);
                }
                FusedClass::Norm => {
                    let axis = reduce_axis.ok_or_else(|| {
                        TensorError::Unsupported("fused layernorm lost its reduce axis".into())
                    })?;
                    let (out, stats) = layernorm(&ins[0], axis, &ins[1], &ins[2])?;
                    ln_stats = Some((0, stats));
                    results.push(out);
                }
            }
        }
        OpKind::ContractionEpilogue {
            spec,
            parts,
            reduce_axis,
            ..
        } => {
            if ins.len() < 2 {
                return Err(TensorError::Unsupported(format!(
                    "epilogue `{}` needs a two-operand contraction",
                    step.name
                )));
            }
            let a_c = data_of(graph, step.inputs[0].data)?.shape.clone();
            let b_c = data_of(graph, step.inputs[1].data)?.shape.clone();
            let out_c = out_shape(0)?;
            let shape_at = |k: usize| -> Result<Option<Shape>> {
                step.inputs
                    .get(k)
                    .map(|o| Ok(data_of(graph, o.data)?.shape.clone()))
                    .transpose()
            };
            let bias_s = shape_at(2)?;
            let res_s = shape_at(3)?;
            let geom = epilogue_geometry(
                spec,
                parts,
                *reduce_axis,
                &a_c,
                &b_c,
                &out_c,
                bias_s.as_ref(),
                res_s.as_ref(),
            )
            .ok_or_else(|| {
                TensorError::Unsupported(format!(
                    "epilogue `{}` has no tileable lowering",
                    step.name
                ))
            })?;
            // the tile driver walks raw row-major words, so materialize
            // every operand densely first
            let dense = |t: &Tensor| -> Tensor {
                if t.layout().spec(t.shape()) == t.shape().spec() {
                    t.clone()
                } else {
                    t.relayout(&Layout::row_major(t.shape().rank()))
                }
            };
            let ins_d: Vec<Tensor> = ins.iter().map(&dense).collect();
            let (ga, gb) = if geom.swapped {
                (&ins_d[1], &ins_d[0])
            } else {
                (&ins_d[0], &ins_d[1])
            };
            let total = out_c.num_elements();
            let mut a_pack = vec![0.0f32; geom.plan.a_words()];
            let mut b_pack = vec![0.0f32; geom.plan.b_words()];
            let mut c_tile = vec![0.0f32; geom.tile_rows * geom.plan.n];
            let mut run = |epi: &mut TileEpilogue<'_>, rng: &mut R| {
                contract_epilogue_tiled(
                    &geom.plan,
                    geom.tile_rows,
                    ga.data(),
                    gb.data(),
                    &mut a_pack,
                    &mut b_pack,
                    &mut c_tile,
                    p,
                    rng,
                    false,
                    epi,
                );
            };
            match geom.class {
                FusedClass::Softmax { .. } if step.outputs.len() == 3 => {
                    // outputs [softmax, alpha, mask]
                    let (mut sm_o, mut al_o, mut mk_o) =
                        (vec![0.0f32; total], vec![0.0f32; total], vec![0.0f32; total]);
                    run(
                        &mut TileEpilogue::Softmax {
                            scaler: opts.scaler,
                            causal: geom.causal.map(|c| c.at(c.base + opts.pos)),
                            softmax: &mut sm_o,
                            alpha: &mut al_o,
                            mask: &mut mk_o,
                        },
                        rng,
                    );
                    results.push(Tensor::from_vec(out_shape(0)?, sm_o)?);
                    results.push(Tensor::from_vec(out_shape(1)?, al_o)?);
                    results.push(Tensor::from_vec(out_shape(2)?, mk_o)?);
                }
                FusedClass::BiasActDrop if ins.len() == 3 && step.outputs.len() == 3 => {
                    // inputs [a, b, bias] → outputs [pre_activation, out, mask]
                    let bmap = BiasMap {
                        dims: vec![(geom.plan.n, geom.plan.m, 1)],
                    };
                    let (mut pre_o, mut out_o, mut mk_o) =
                        (vec![0.0f32; total], vec![0.0f32; total], vec![0.0f32; total]);
                    run(
                        &mut TileEpilogue::BiasActDrop {
                            bias: ins_d[2].data(),
                            bmap: &bmap,
                            kind: opts.activation,
                            pre_activation: &mut pre_o,
                            out: &mut out_o,
                            mask: &mut mk_o,
                        },
                        rng,
                    );
                    results.push(Tensor::from_vec(out_shape(0)?, pre_o)?);
                    results.push(Tensor::from_vec(out_shape(1)?, out_o)?);
                    results.push(Tensor::from_vec(out_shape(2)?, mk_o)?);
                }
                FusedClass::BiasDropResidual if ins.len() == 4 && step.outputs.len() == 2 => {
                    // inputs [a, b, bias, residual] → outputs [mask, out]
                    let bmap = BiasMap {
                        dims: vec![(geom.plan.n, geom.plan.m, 1)],
                    };
                    let (mut mk_o, mut out_o) = (vec![0.0f32; total], vec![0.0f32; total]);
                    run(
                        &mut TileEpilogue::BiasDropResidual {
                            bias: ins_d[2].data(),
                            bmap: &bmap,
                            residual: ins_d[3].data(),
                            mask: &mut mk_o,
                            out: &mut out_o,
                        },
                        rng,
                    );
                    results.push(Tensor::from_vec(out_shape(0)?, mk_o)?);
                    results.push(Tensor::from_vec(out_shape(1)?, out_o)?);
                }
                _ => {
                    return Err(TensorError::Unsupported(format!(
                        "epilogue `{}` has mismatched operand counts",
                        step.name
                    )))
                }
            }
        }
        other => {
            return Err(TensorError::Unsupported(format!(
                "operator `{}` ({other:?}) is a backward kernel; the schedule interpreter is forward-only",
                step.name
            )))
        }
    }

    if results.len() != step.outputs.len() {
        return Err(TensorError::Unsupported(format!(
            "`{}` produced {} tensors for {} outputs",
            step.name,
            results.len(),
            step.outputs.len()
        )));
    }
    if let Some((k, stats)) = ln_stats {
        state.stats.insert(step.outputs[k].name.clone(), stats);
    }
    for (operand, mut t) in step.outputs.iter().zip(results) {
        // materialize in the declared layout
        let have = t.layout().spec(t.shape());
        if have != operand.layout {
            let lay = Layout::from_axis_order(t.shape(), &operand.layout)?;
            t = t.relayout(&lay);
        }
        state.env.insert(operand.name.clone(), t);
    }
    Ok(())
}

/// Interprets a whole schedule: checks it statically, then executes every
/// step in order against `state`. On success the state's environment holds
/// every container the plan produced, materialized in the plan's layouts.
///
/// Depending on [`ExecOptions::sanitize`] (by default: `XFORM_SANITIZE`
/// set to anything but empty/`0`/`false`/`off`/`no` in the environment),
/// execution routes through the shadow-access sanitizer
/// ([`crate::sanitize::execute_plan_sanitized`]): same kernels, same RNG
/// draws, bitwise-identical results, but every step's actual footprint is
/// checked against its declaration and every wave is checked for
/// conflicting access.
///
/// With [`ExecOptions::profiler`] set, every step's wall-clock time is
/// recorded into the sink (under the sanitizer, timings include tracing
/// overhead and are flagged as such).
///
/// # Errors
///
/// Returns an error if [`ExecutionPlan::check`] reports any
/// error-severity lint or any step fails.
pub fn execute_plan<R: Rng + ?Sized>(
    graph: &Graph,
    plan: &ExecutionPlan,
    state: &mut ExecState,
    opts: &ExecOptions,
    rng: &mut R,
) -> Result<()> {
    let problems: Vec<String> = plan
        .check(graph)
        .into_iter()
        .filter(|l| l.severity() == crate::analyze::Severity::Error)
        .map(|l| l.to_string())
        .collect();
    if !problems.is_empty() {
        return Err(TensorError::Unsupported(format!(
            "invalid execution plan: {}",
            problems.join("; ")
        )));
    }
    if let Some(arena) = opts.arena {
        // resolve the sanitize mode without touching the environment (an
        // env read allocates; Env is cached once per process here)
        let sanitize = match opts.sanitize {
            SanitizeMode::Off => false,
            SanitizeMode::On => true,
            SanitizeMode::Env => crate::arena::env_sanitize_cached(),
        };
        if opts.profiler.is_none() && arena.matches(plan) {
            let run = crate::arena::ArenaRun {
                dropout_p: opts.dropout_p,
                activation: opts.activation,
                scaler: opts.scaler,
                seed: opts.seed,
                threads: 1,
                sanitize,
                pos: opts.pos,
            };
            match arena.run_with_state(state, &run)? {
                crate::arena::ArenaOutcome::Ran => return Ok(()),
                crate::arena::ArenaOutcome::Busy => {}
            }
        }
    }
    if opts.sanitize.enabled() {
        return crate::sanitize::execute_plan_sanitized(graph, plan, state, opts, rng, None);
    }
    for (si, step) in plan.steps.iter().enumerate() {
        let t0 = opts.profiler.map(|_| std::time::Instant::now());
        execute_step(graph, step, state, opts, rng)?;
        if let (Some(sink), Some(t0)) = (opts.profiler, t0) {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            crate::profile::record_step(sink, graph, step, si, None, us, false);
        }
    }
    Ok(())
}

/// Binds a random tensor (seeded, uniform in `[-1, 1]`) for every plan
/// input that no earlier step produces — graph inputs and weights — each
/// materialized in the layout the consuming step declared. This is how the
/// measurement source and tests stand up an environment without a model's
/// real parameters.
///
/// # Errors
///
/// Returns an error if a referenced container is dead or a layout spec is
/// invalid.
pub fn random_externals(graph: &Graph, plan: &ExecutionPlan, seed: u64) -> Result<ExecState> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = rand::distributions::Uniform::new(-1.0f32, 1.0);
    let mut state = ExecState::default();
    let mut produced: HashSet<NodeId> = HashSet::new();
    for step in &plan.steps {
        for inp in &step.inputs {
            if produced.contains(&inp.data) || state.env.contains_key(&inp.name) {
                continue;
            }
            let shape = data_of(graph, inp.data)?.shape.clone();
            let lay = Layout::from_axis_order(&shape, &inp.layout)?;
            let t = Tensor::random(shape, &dist, &mut rng).relayout(&lay);
            state.env.insert(inp.name.clone(), t);
        }
        for out in &step.outputs {
            produced.insert(out.data);
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::recipe::forward_ops;
    use crate::selection::select_forward;
    use crate::sweep::{sweep_all, SimulatorSource, SweepOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xform_dataflow::{build, EncoderDims};
    use xform_gpusim::DeviceSpec;

    fn unfused() -> (xform_dataflow::Graph, NodeId) {
        let eg = build::encoder(&EncoderDims::tiny());
        (eg.graph, eg.dy)
    }

    fn fused() -> (xform_dataflow::Graph, NodeId) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        (g, eg.dy)
    }

    fn error_lints(plan: &ExecutionPlan, g: &xform_dataflow::Graph) -> Vec<String> {
        plan.check(g)
            .into_iter()
            .filter(|l| l.severity() == crate::analyze::Severity::Error)
            .map(|l| l.to_string())
            .collect()
    }

    fn run_forward(graph: &xform_dataflow::Graph, plan: &ExecutionPlan, seed: u64) -> ExecState {
        let mut state = random_externals(graph, plan, seed).unwrap();
        let opts = ExecOptions::builder().scaler(1.0 / (3f32).sqrt()).build();
        let mut rng = StdRng::seed_from_u64(99);
        execute_plan(graph, plan, &mut state, &opts, &mut rng).unwrap();
        state
    }

    #[test]
    fn natural_plan_over_unfused_graph_executes() {
        let (g, dy) = unfused();
        let plan = ExecutionPlan::natural(&g, &forward_ops(&g, dy)).unwrap();
        assert!(error_lints(&plan, &g).is_empty());
        assert_eq!(plan.relayout_count(), 0);
        let state = run_forward(&g, &plan, 7);
        let y = state.get("y").unwrap();
        assert_eq!(y.shape().spec(), "ibj");
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!(state.stats.contains_key("ln1_out"));
        assert!(state.stats.contains_key("y"));
    }

    #[test]
    fn fused_and_unfused_natural_plans_agree() {
        let (gu, dyu) = unfused();
        let (gf, dyf) = fused();
        let pu = ExecutionPlan::natural(&gu, &forward_ops(&gu, dyu)).unwrap();
        let pf = ExecutionPlan::natural(&gf, &forward_ops(&gf, dyf)).unwrap();
        let yu = run_forward(&gu, &pu, 13).take("y").unwrap();
        let yf = run_forward(&gf, &pf, 13).take("y").unwrap();
        assert!(yu.max_abs_diff(&yf).unwrap() < 1e-5);
    }

    #[test]
    fn lowered_selection_executes_and_matches_natural() {
        let (g, dy) = fused();
        let fwd = forward_ops(&g, dy);
        let sweeps = sweep_all(
            &SimulatorSource::default(),
            &g,
            SweepOptions {
                max_configs: Some(500),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let sel = select_forward(&g, &DeviceSpec::v100(), &fwd, &sweeps).unwrap();
        let plan = ExecutionPlan::lower(&g, &sel).unwrap();
        assert!(
            error_lints(&plan, &g).is_empty(),
            "{:?}",
            error_lints(&plan, &g)
        );
        let natural = ExecutionPlan::natural(&g, &fwd).unwrap();
        let y_sel = run_forward(&g, &plan, 21).take("y").unwrap();
        let y_nat = run_forward(&g, &natural, 21).take("y").unwrap();
        assert!(y_sel.max_abs_diff(&y_nat).unwrap() < 1e-4);
    }

    #[test]
    fn check_rejects_layout_tampering_and_missing_producers() {
        use crate::analyze::PlanLint;
        let (g, dy) = unfused();
        let fwd = forward_ops(&g, dy);
        let mut plan = ExecutionPlan::natural(&g, &fwd).unwrap();
        // non-permutation layout
        let idx = plan
            .steps
            .iter()
            .position(|s| s.name == "QKT")
            .expect("QKT scheduled");
        plan.steps[idx].inputs[0].layout = "zzzz".into();
        assert!(plan
            .check(&g)
            .iter()
            .any(|l| matches!(l, PlanLint::BadLayout { .. })));
        // coherent permutation but stale relayouts → layout mismatch
        plan.steps[idx].inputs[0].layout = "kbhp".into();
        assert!(plan
            .check(&g)
            .iter()
            .any(|l| matches!(l, PlanLint::LayoutIncoherent { .. })));
        // reflow repairs it
        plan.reflow(&g);
        assert!(error_lints(&plan, &g).is_empty());
        // dropping a producer step is caught
        let mut broken = ExecutionPlan::natural(&g, &fwd).unwrap();
        broken.steps.retain(|s| s.name != "QKT");
        assert!(broken
            .check(&g)
            .iter()
            .any(|l| matches!(l, PlanLint::UseBeforeDef { .. })));
    }

    #[test]
    fn permuted_layouts_reflow_and_execute_identically() {
        let (g, dy) = unfused();
        let fwd = forward_ops(&g, dy);
        let natural = ExecutionPlan::natural(&g, &fwd).unwrap();
        let mut permuted = natural.clone();
        for step in &mut permuted.steps {
            for operand in step.inputs.iter_mut().chain(step.outputs.iter_mut()) {
                operand.layout = operand.layout.chars().rev().collect();
            }
        }
        permuted.reflow(&g);
        assert!(error_lints(&permuted, &g).is_empty());
        assert!(permuted.relayout_count() > 0);
        let y_nat = run_forward(&g, &natural, 5).take("y").unwrap();
        let y_perm = run_forward(&g, &permuted, 5).take("y").unwrap();
        assert!(y_nat.max_abs_diff(&y_perm).unwrap() < 1e-5);
    }
}
