//! Static cache-hierarchy analysis: reuse-distance abstract
//! interpretation of a schedule's access paths, cache-corrected MUE, and
//! cache lints.
//!
//! The paper's MUE (Sec. III) prices every transferred word equally, but
//! the machine does not: a word re-read while still resident on chip
//! costs nothing at the DRAM interface — which is exactly the effect
//! GEMM-epilogue fusion exploits. This module closes that gap statically:
//!
//! * [`CacheGeometry`] parameterizes an inclusive L1/L2/LLC hierarchy —
//!   detected from the host sysfs ([`CacheGeometry::host`]), derived from
//!   the modelled accelerator ([`CacheGeometry::for_device`]), or pinned
//!   via the `XFORM_CACHE_GEOM` env override for deterministic CI
//!   ([`CacheGeometry::detect`], sharing the unified
//!   [`crate::sanitize::env_setting`] enable semantics with
//!   `XFORM_SANITIZE`);
//! * [`trace_plan`] abstract-interprets each step's index-affine access
//!   paths (from [`crate::access::step_accesses`], with the conservative
//!   flat fallback preserved as an upper bound) into a buffer-granular
//!   LRU stack-distance profile: per-step working sets, a plan-level
//!   stack-distance histogram, per-level hit words, and predicted
//!   DRAM-interface words;
//! * [`cache_audit`] replays [`crate::analyze::audit`]'s accounting with
//!   the predicted hits discounted from each step's modelled traffic
//!   (via [`xform_gpusim::opmodel::cache_discounted`]), yielding a
//!   **cache-corrected static MUE**. `Q` is untouched and `D` only
//!   shrinks (never below `Q`), so the corrected MUE is ≥ the flat one by
//!   construction and equal to it when the geometry has no levels;
//! * [`cache_lints`] surfaces the findings as typed
//!   [`crate::analyze::PlanLint`]s: `TileOverflow` (a
//!   [`ContractionEpilogue`](xform_dataflow::OpKind::ContractionEpilogue)
//!   tile's working set exceeds L1/L2), `CacheThrash` (predicted
//!   capacity-miss ratio on re-referenced words above
//!   [`THRASH_MISS_THRESHOLD`]), and `LayoutConflict` (a strided sweep
//!   whose lead dimension aliases cache sets);
//! * [`op_dram_words`] prices a single operator's layouts by predicted
//!   DRAM words (line-granular overfetch on strided sweeps) — the edge
//!   cost [`crate::selection::CostModel::CacheAware`] feeds into the
//!   SSSP layout selection.
//!
//! The model is deliberately conservative: reuse is tracked at buffer
//! granularity (Mattson's LRU stack over operand footprints), conflict
//! misses are surfaced as lints rather than subtracted from traffic, and
//! any step whose paths cannot be derived exactly falls back to flat
//! whole-buffer accounting. Predicted DRAM words therefore never exceed
//! the flat audit's byte count and are monotone non-increasing in cache
//! capacity — properties the proptests in
//! `crates/core/tests/cachemodel_properties.rs` pin down.

use std::collections::HashMap;

use xform_dataflow::{Graph, NodeId, OpKind};
use xform_gpusim::mue::{mue, Mue, MueAccum};
use xform_gpusim::opmodel::cache_discounted;
use xform_gpusim::{DeviceSpec, KernelCost};

use crate::access::step_accesses;
use crate::analyze::{self, PlanLint};
use crate::plan::{epilogue_geometry, ExecutionPlan, Operand, PlanStep};
use crate::sanitize::env_setting;
use crate::selection::RELAYOUT_BANDWIDTH_FRAC;

/// Environment variable overriding the host-detected cache geometry:
/// a comma-separated list of `SIZE[:LINE[:ASSOC]]` level specs, smallest
/// level first (e.g. `32k:64:8,1m:64:16,8m:64:16`). Unset, empty, `0`,
/// `false`, `off`, and `no` all fall back to host detection — the same
/// enable semantics as `XFORM_SANITIZE` (see
/// [`crate::sanitize::env_setting`]).
pub const CACHE_GEOM_ENV: &str = "XFORM_CACHE_GEOM";

/// Fraction of re-referenced words that must miss the hierarchy before a
/// step is flagged [`PlanLint::CacheThrash`].
pub const THRASH_MISS_THRESHOLD: f64 = 0.5;

/// Minimum re-referenced words before a thrash ratio is meaningful.
pub const THRASH_MIN_REUSE_WORDS: u64 = 1024;

/// One cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLevel {
    /// Report name (`L1`, `L2`, `LLC`, …).
    pub name: String,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Line (fetch granularity) in bytes.
    pub line_bytes: u64,
    /// Set associativity (ways).
    pub assoc: u64,
}

/// An inclusive cache hierarchy, levels ordered smallest-first. An empty
/// hierarchy models a cache-less machine: every reference reaches DRAM,
/// and the cache-corrected audit degenerates to the flat one exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheGeometry {
    /// Levels, ordered by ascending capacity.
    pub levels: Vec<CacheLevel>,
}

impl CacheGeometry {
    /// Builds a hierarchy from `levels`, dropping zero-size entries and
    /// sorting by ascending capacity.
    pub fn new(mut levels: Vec<CacheLevel>) -> CacheGeometry {
        levels.retain(|l| l.size_bytes > 0);
        levels.sort_by_key(|l| l.size_bytes);
        CacheGeometry { levels }
    }

    /// The cache-less hierarchy (no levels).
    pub fn none() -> CacheGeometry {
        CacheGeometry { levels: Vec::new() }
    }

    /// `true` when no level exists (every reference is a DRAM reference).
    pub fn is_zero(&self) -> bool {
        self.levels.is_empty()
    }

    /// Capacity of the largest level in bytes (`0` when cache-less).
    pub fn largest_bytes(&self) -> u64 {
        self.levels.last().map(|l| l.size_bytes).unwrap_or(0)
    }

    /// Smallest line size across levels in bytes (`1` when cache-less) —
    /// the DRAM-interface fetch granularity used for overfetch pricing.
    pub fn line_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.line_bytes.max(1))
            .min()
            .unwrap_or(1)
    }

    /// The geometry to analyze under: the [`CACHE_GEOM_ENV`] override
    /// when set to a parsable spec, host detection otherwise (including
    /// when the variable is disabled via the unified `XFORM_*` parse or
    /// the spec is malformed).
    pub fn detect() -> CacheGeometry {
        match env_setting(CACHE_GEOM_ENV) {
            Some(v) => Self::parse(&v).unwrap_or_else(Self::host),
            None => Self::host(),
        }
    }

    /// The host CPU's hierarchy from sysfs, or a typical desktop
    /// hierarchy (32 KiB / 1 MiB / 8 MiB) when sysfs is unavailable.
    pub fn host() -> CacheGeometry {
        sysfs_geometry().unwrap_or_else(Self::typical_host)
    }

    /// A typical host fallback: 32 KiB L1d, 1 MiB L2, 8 MiB LLC, 64 B
    /// lines.
    pub fn typical_host() -> CacheGeometry {
        CacheGeometry::new(vec![
            CacheLevel {
                name: "L1".to_string(),
                size_bytes: 32 << 10,
                line_bytes: 64,
                assoc: 8,
            },
            CacheLevel {
                name: "L2".to_string(),
                size_bytes: 1 << 20,
                line_bytes: 64,
                assoc: 16,
            },
            CacheLevel {
                name: "LLC".to_string(),
                size_bytes: 8 << 20,
                line_bytes: 64,
                assoc: 16,
            },
        ])
    }

    /// The modelled accelerator's hierarchy: one SM's private L1 (a tile
    /// working set either fits one SM's L1 or spills, regardless of SM
    /// count) and the device-wide L2 that backs DRAM.
    pub fn for_device(device: &DeviceSpec) -> CacheGeometry {
        let line = device.cache_line_bytes.max(1) as u64;
        CacheGeometry::new(vec![
            CacheLevel {
                name: "L1".to_string(),
                size_bytes: (device.l1_kib_per_sm as u64) << 10,
                line_bytes: line,
                assoc: 4,
            },
            CacheLevel {
                name: "L2".to_string(),
                size_bytes: (device.l2_kib as u64) << 10,
                line_bytes: line,
                assoc: 16,
            },
        ])
    }

    /// Parses a geometry spec: comma-separated `SIZE[:LINE[:ASSOC]]`
    /// levels, sizes accepting `k`/`m`/`g` suffixes. Returns `None` on
    /// any malformed field. Levels named `L1..Ln` in ascending-capacity
    /// order; the last is renamed `LLC` when three or more levels exist.
    pub fn parse(spec: &str) -> Option<CacheGeometry> {
        let mut levels = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.split(':');
            let size_bytes = parse_size(fields.next()?)?;
            let line_bytes = match fields.next() {
                Some(f) => parse_size(f)?,
                None => 64,
            };
            let assoc = match fields.next() {
                Some(f) => f.trim().parse::<u64>().ok()?,
                None => 8,
            };
            if fields.next().is_some() || line_bytes == 0 {
                return None;
            }
            levels.push(CacheLevel {
                name: String::new(),
                size_bytes,
                line_bytes,
                assoc: assoc.max(1),
            });
        }
        let mut geom = CacheGeometry::new(levels);
        let n = geom.levels.len();
        for (i, l) in geom.levels.iter_mut().enumerate() {
            l.name = if n >= 3 && i == n - 1 {
                "LLC".to_string()
            } else {
                format!("L{}", i + 1)
            };
        }
        Some(geom)
    }
}

/// Parses `32k`, `1m`, `64`, … into bytes.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    let (num, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(_) => {
            let mult = match s.as_bytes()[s.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (&s[..s.len() - 1], mult)
        }
        None => (s.as_str(), 1),
    };
    num.trim().parse::<u64>().ok().map(|n| n * mult)
}

/// Reads the host hierarchy from
/// `/sys/devices/system/cpu/cpu0/cache/index*`.
fn sysfs_geometry() -> Option<CacheGeometry> {
    let mut levels = Vec::new();
    for idx in 0..8 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let read = |f: &str| -> Option<String> {
            std::fs::read_to_string(format!("{dir}/{f}"))
                .ok()
                .map(|s| s.trim().to_string())
        };
        let Some(ty) = read("type") else { break };
        if ty == "Instruction" {
            continue;
        }
        let (Some(level), Some(size)) = (read("level"), read("size")) else {
            continue;
        };
        let Some(size_bytes) = parse_size(&size) else {
            continue;
        };
        let line_bytes = read("coherency_line_size")
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(64);
        let assoc = read("ways_of_associativity")
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(8);
        levels.push(CacheLevel {
            name: format!("L{level}"),
            size_bytes,
            line_bytes,
            assoc: assoc.max(1),
        });
    }
    if levels.is_empty() {
        None
    } else {
        Some(CacheGeometry::new(levels))
    }
}

/// Per-step result of the reuse-distance trace.
#[derive(Debug, Clone)]
pub struct StepTraffic {
    /// Step index in the schedule.
    pub step: usize,
    /// Kernel name.
    pub name: String,
    /// The step's memlet volume (kernel reads + writes), in words.
    pub q_words: u64,
    /// Explicit relayout traffic (read + materialize per relayout).
    pub relayout_words: u64,
    /// Distinct words the derived kernel paths touch (before memlet
    /// normalization).
    pub touched_words: u64,
    /// Kernel words predicted to hit, per level, normalized to memlet
    /// volume.
    pub kernel_hits: Vec<u64>,
    /// Relayout words predicted to hit, per level.
    pub relayout_hits: Vec<u64>,
    /// Words with a finite stack distance (re-references; the step's
    /// reuse opportunity).
    pub reuse_words: u64,
    /// Re-referenced words whose stack distance exceeds every level.
    pub missed_reuse_words: u64,
}

impl StepTraffic {
    /// Total kernel hit words across levels (≤ `q_words`).
    pub fn kernel_hit_words(&self) -> u64 {
        self.kernel_hits.iter().sum::<u64>().min(self.q_words)
    }

    /// Total relayout hit words across levels (≤ `relayout_words`).
    pub fn relayout_hit_words(&self) -> u64 {
        self.relayout_hits
            .iter()
            .sum::<u64>()
            .min(self.relayout_words)
    }

    /// Predicted DRAM-interface words for the step (kernel + relayouts).
    pub fn dram_words(&self) -> u64 {
        (self.q_words - self.kernel_hit_words()) + (self.relayout_words - self.relayout_hit_words())
    }
}

/// Plan-level result of the reuse-distance trace.
#[derive(Debug, Clone)]
pub struct PlanTraffic {
    /// Per-step traffic in schedule order.
    pub per_step: Vec<StepTraffic>,
    /// Plan-level stack-distance histogram: `(log2(distance_bytes),
    /// words)` buckets, ascending, over re-references only.
    pub stack_hist: Vec<(u32, u64)>,
    /// Words whose first touch is in this plan (compulsory misses).
    pub compulsory_words: u64,
}

impl PlanTraffic {
    /// Predicted DRAM-interface words for the whole plan.
    pub fn dram_words(&self) -> u64 {
        self.per_step.iter().map(|s| s.dram_words()).sum()
    }

    /// Predicted hit words per level, summed over steps.
    pub fn hit_words(&self, levels: usize) -> Vec<u64> {
        let mut out = vec![0u64; levels];
        for s in &self.per_step {
            for (i, o) in out.iter_mut().enumerate() {
                *o += s.kernel_hits.get(i).copied().unwrap_or(0)
                    + s.relayout_hits.get(i).copied().unwrap_or(0);
            }
        }
        out
    }
}

/// One buffer resident in the LRU stack.
struct Resident {
    data: NodeId,
    words: u64,
}

/// Buffer-granular LRU stack (Mattson). `reference` returns the stack
/// distance in words of a re-reference (`None` for a compulsory first
/// touch) and promotes the buffer to MRU.
#[derive(Default)]
struct LruStack {
    entries: Vec<Resident>,
}

impl LruStack {
    fn reference(&mut self, data: NodeId, words: u64) -> Option<u64> {
        match self.entries.iter().position(|e| e.data == data) {
            Some(p) => {
                let above: u64 = self.entries[..p].iter().map(|e| e.words).sum();
                let own = self.entries[p].words.max(words);
                let mut e = self.entries.remove(p);
                e.words = own;
                self.entries.insert(0, e);
                Some(above + own)
            }
            None => {
                self.entries.insert(0, Resident { data, words });
                None
            }
        }
    }
}

/// Runs the reuse-distance abstract interpretation over a schedule.
///
/// Every step's operand accesses (and explicit relayouts, which run
/// first) are replayed as one reference stream against a buffer-granular
/// LRU stack; a reference whose stack distance fits level *i* is an
/// *i*-level hit, compulsory first touches and over-capacity distances
/// reach DRAM. Per-step hit words are normalized to the step's memlet
/// volume, so the predicted DRAM words never exceed — and with no cache
/// levels exactly equal — the flat audit's byte count.
pub fn trace_plan(
    graph: &Graph,
    plan: &ExecutionPlan,
    geometry: &CacheGeometry,
    word_bytes: u64,
) -> PlanTraffic {
    let wb = word_bytes.max(1);
    let caps: Vec<u64> = geometry.levels.iter().map(|l| l.size_bytes).collect();
    let nlev = caps.len();
    let mut stack = LruStack::default();
    let mut hist: HashMap<u32, u64> = HashMap::new();
    let mut compulsory = 0u64;
    let mut per_step = Vec::with_capacity(plan.steps.len());
    for (si, step) in plan.steps.iter().enumerate() {
        let q = graph.io_words(step.op);
        let relayout_words: u64 = step
            .relayouts
            .iter()
            .map(|r| {
                2 * graph
                    .data(r.data)
                    .map(|d| d.shape.num_elements() as u64)
                    .unwrap_or(0)
            })
            .sum();
        // `step_accesses` pushes two flat references (read + materialize)
        // per resolvable relayout ahead of the kernel operands.
        let n_re = 2 * step
            .relayouts
            .iter()
            .filter(|r| graph.data(r.data).is_some())
            .count();
        let sa = step_accesses(graph, step);
        let mut kernel_hits = vec![0u64; nlev];
        let mut relayout_hits = vec![0u64; nlev];
        let mut touched = 0u64;
        let mut reuse = 0u64;
        let mut missed_reuse = 0u64;
        for (ai, a) in sa.accesses.iter().enumerate() {
            let words = a.path.distinct_words();
            if words == 0 {
                continue;
            }
            let is_relayout = ai < n_re;
            if !is_relayout {
                touched += words;
            }
            match stack.reference(a.data, words) {
                Some(dist_words) => {
                    reuse += words;
                    let bytes = dist_words.saturating_mul(wb).max(1);
                    *hist.entry(bytes.ilog2()).or_insert(0) += words;
                    match caps.iter().position(|&c| dist_words * wb <= c) {
                        Some(level) => {
                            if is_relayout {
                                relayout_hits[level] += words;
                            } else {
                                kernel_hits[level] += words;
                            }
                        }
                        None => missed_reuse += words,
                    }
                }
                None => compulsory += words,
            }
        }
        // normalize kernel hits to the memlet volume: when the derived
        // paths over-cover the declared memlets, hits scale down
        // proportionally; when they under-cover (flat fallbacks, carve
        // reads), the residual words simply stay DRAM-bound.
        if touched > q && touched > 0 {
            let f = q as f64 / touched as f64;
            for h in &mut kernel_hits {
                *h = (*h as f64 * f).floor() as u64;
            }
        }
        per_step.push(StepTraffic {
            step: si,
            name: step.name.clone(),
            q_words: q,
            relayout_words,
            touched_words: touched,
            kernel_hits,
            relayout_hits,
            reuse_words: reuse,
            missed_reuse_words: missed_reuse,
        });
    }
    let mut stack_hist: Vec<(u32, u64)> = hist.into_iter().collect();
    stack_hist.sort_unstable();
    PlanTraffic {
        per_step,
        stack_hist,
        compulsory_words: compulsory,
    }
}

/// Predicted DRAM-interface words of a whole plan under `geometry` — the
/// quantity the cache-model proptests and `plan_profile`'s
/// cross-validation consume.
pub fn plan_dram_words(
    graph: &Graph,
    plan: &ExecutionPlan,
    geometry: &CacheGeometry,
    word_bytes: u64,
) -> u64 {
    trace_plan(graph, plan, geometry, word_bytes).dram_words()
}

/// Per-step cache statistics inside a [`CacheAudit`].
#[derive(Debug, Clone)]
pub struct StepCacheStats {
    /// Step index.
    pub step: usize,
    /// Kernel name.
    pub name: String,
    /// Memlet volume in words.
    pub q_words: u64,
    /// Predicted hit words per level (kernel + relayout).
    pub hit_words: Vec<u64>,
    /// Predicted DRAM words (kernel + relayout).
    pub dram_words: u64,
    /// Cache-corrected per-step MUE, when the device model priced the
    /// step.
    pub mue: Option<Mue>,
}

/// The cache-corrected counterpart of
/// [`MovementAudit`](crate::analyze::MovementAudit).
#[derive(Debug, Clone)]
pub struct CacheAudit {
    /// The hierarchy analyzed under.
    pub geometry: CacheGeometry,
    /// Per-step statistics in schedule order.
    pub per_step: Vec<StepCacheStats>,
    /// Predicted hit words per level, plan total.
    pub hit_words: Vec<u64>,
    /// Predicted DRAM-interface words, plan total.
    pub dram_words: u64,
    /// Words first touched in this plan (compulsory misses).
    pub compulsory_words: u64,
    /// Plan-level stack-distance histogram (`log2(distance_bytes)` →
    /// words), re-references only.
    pub stack_hist: Vec<(u32, u64)>,
    /// Cache-corrected plan MUE: same `Q` as the flat audit, predicted
    /// hits discounted from `D`.
    pub plan_mue: Mue,
    /// Cache lints (tile overflow, thrash, set conflicts).
    pub lints: Vec<PlanLint>,
}

/// Prices a plan's data movement with predicted cache hits discounted —
/// the cache-corrected static MUE.
///
/// The accounting replays [`analyze::audit`] step by step (same `Q`,
/// same epilogue-interim split, same relayout pricing) and subtracts each
/// step's predicted hit words from its movement: first from the modelled
/// kernel traffic above the step's algorithmic demand, then from the
/// avoidable-interim movement, then from relayout movement. `D` never
/// drops below `Q`, every bandwidth fraction is unchanged, and a zero
/// hierarchy predicts zero hits — so the corrected MUE is ≥ the flat MUE
/// and equal to it exactly when no cache exists.
pub fn cache_audit(
    graph: &Graph,
    plan: &ExecutionPlan,
    device: &DeviceSpec,
    geometry: &CacheGeometry,
) -> CacheAudit {
    let wb = device.word_bytes as u64;
    let flat = analyze::audit(graph, plan, device);
    let traffic = trace_plan(graph, plan, geometry, wb);
    let chains = crate::fusion::detect_epilogues(graph);
    let mut avoid: HashMap<NodeId, u64> = HashMap::new();
    for c in &chains {
        *avoid.entry(c.head).or_insert(0) += c.interim_words;
        *avoid.entry(c.tail).or_insert(0) += c.interim_words;
    }
    let mut acc = MueAccum::default();
    let mut per_step = Vec::with_capacity(plan.steps.len());
    for (si, step) in plan.steps.iter().enumerate() {
        let s = &flat.per_step[si];
        let t = &traffic.per_step[si];
        let q = s.read_words + s.write_words;
        let avoid_words = avoid.get(&step.op).copied().unwrap_or(0).min(q);
        let q_eff = q - avoid_words;
        let kh = t.kernel_hit_words() as f64;
        let mut step_mue = None;
        match &s.cost {
            Some(c) => {
                let d_flat = c.moved_words.max(q as f64);
                if avoid_words > 0 {
                    // hits first shrink the kernel's traffic down to its
                    // algorithmic demand, the remainder pays down the
                    // avoidable interim movement
                    let kernel_part = d_flat - avoid_words as f64;
                    let k_hit = kh.min((kernel_part - q_eff as f64).max(0.0));
                    let a_hit = (kh - k_hit).min(avoid_words as f64);
                    let adj = cache_discounted(
                        &KernelCost {
                            moved_words: kernel_part,
                            ..*c
                        },
                        k_hit,
                        q_eff as f64,
                    );
                    acc.add_kernel(q_eff as f64, &adj);
                    let a_rem = avoid_words as f64 - a_hit;
                    if a_rem > 0.0 {
                        acc.add_movement(a_rem, c.bandwidth_frac);
                    }
                    step_mue = Some(mue(graph, step.op, &adj));
                } else {
                    let adj = cache_discounted(c, kh, q as f64);
                    acc.add_kernel(q as f64, &adj);
                    step_mue = Some(mue(graph, step.op, &adj));
                }
            }
            None => {
                // unpriceable steps already audit at their memlet volume
                // (a perfect kernel); hits can only pay down the interim
                // movement
                acc.add_kernel(
                    q_eff as f64,
                    &KernelCost {
                        time_us: 0.0,
                        moved_words: q_eff as f64,
                        bandwidth_frac: device.stream_efficiency,
                        flop: s.flop as f64,
                    },
                );
                if avoid_words > 0 {
                    let a_rem = avoid_words as f64 - kh.min(avoid_words as f64);
                    if a_rem > 0.0 {
                        acc.add_movement(a_rem, device.stream_efficiency);
                    }
                }
            }
        }
        let re_rem = t.relayout_words - t.relayout_hit_words();
        if re_rem > 0 {
            acc.add_movement(re_rem as f64, RELAYOUT_BANDWIDTH_FRAC);
        }
        let hit_words: Vec<u64> = (0..geometry.levels.len())
            .map(|i| {
                t.kernel_hits.get(i).copied().unwrap_or(0)
                    + t.relayout_hits.get(i).copied().unwrap_or(0)
            })
            .collect();
        per_step.push(StepCacheStats {
            step: si,
            name: step.name.clone(),
            q_words: q,
            hit_words,
            dram_words: t.dram_words(),
            mue: step_mue,
        });
    }
    CacheAudit {
        geometry: geometry.clone(),
        per_step,
        hit_words: traffic.hit_words(geometry.levels.len()),
        dram_words: traffic.dram_words(),
        compulsory_words: traffic.compulsory_words,
        stack_hist: traffic.stack_hist.clone(),
        plan_mue: acc.total(),
        lints: cache_lints_with(graph, plan, geometry, wb, &traffic),
    }
}

/// Derives the cache lints of a plan under `geometry`:
///
/// * [`PlanLint::TileOverflow`] — a `ContractionEpilogue` tile's hot set
///   (`tile_rows · (n + k)` accumulator + A-panel words) exceeds the
///   smallest level, or the tile plus the streamed `k · n` B panel
///   exceeds the largest;
/// * [`PlanLint::CacheThrash`] — a step re-references at least
///   [`THRASH_MIN_REUSE_WORDS`] words but more than
///   [`THRASH_MISS_THRESHOLD`] of them sit beyond every level's capacity;
/// * [`PlanLint::LayoutConflict`] — a swept operand's inner stride lands
///   every iteration in the same cache sets of some level
///   (`stride_bytes` divisible by `sets × line_bytes`).
pub fn cache_lints(
    graph: &Graph,
    plan: &ExecutionPlan,
    geometry: &CacheGeometry,
    word_bytes: u64,
) -> Vec<PlanLint> {
    let traffic = trace_plan(graph, plan, geometry, word_bytes.max(1));
    cache_lints_with(graph, plan, geometry, word_bytes.max(1), &traffic)
}

fn cache_lints_with(
    graph: &Graph,
    plan: &ExecutionPlan,
    geometry: &CacheGeometry,
    wb: u64,
    traffic: &PlanTraffic,
) -> Vec<PlanLint> {
    let mut lints = Vec::new();
    if geometry.is_zero() {
        return lints;
    }
    let first = &geometry.levels[0];
    let last = geometry.levels.last().unwrap();
    for (si, step) in plan.steps.iter().enumerate() {
        // tile working sets of GEMM-epilogue mega-kernels
        if let OpKind::ContractionEpilogue {
            spec,
            parts,
            reduce_axis,
            ..
        } = &step.kind
        {
            let in_ids = graph.inputs_of(step.op);
            let out_ids = graph.outputs_of(step.op);
            let shape_of = |id: NodeId| graph.data(id).map(|d| d.shape.clone());
            let a_c = in_ids.first().and_then(|&i| shape_of(i));
            let b_c = in_ids.get(1).and_then(|&i| shape_of(i));
            let out_c = out_ids.first().and_then(|&i| shape_of(i));
            let bias = in_ids.get(2).and_then(|&i| shape_of(i));
            let res = in_ids.get(3).and_then(|&i| shape_of(i));
            let geom = match (&a_c, &b_c, &out_c) {
                (Some(a_c), Some(b_c), Some(out_c)) => epilogue_geometry(
                    spec,
                    parts,
                    *reduce_axis,
                    a_c,
                    b_c,
                    out_c,
                    bias.as_ref(),
                    res.as_ref(),
                ),
                _ => None,
            };
            if let Some(g) = geom {
                let (tile, panel) = crate::fusion::epilogue_tile_words(&g);
                if tile * wb > first.size_bytes {
                    lints.push(PlanLint::TileOverflow {
                        step: si,
                        name: step.name.clone(),
                        tile_bytes: tile * wb,
                        level: first.name.clone(),
                        capacity_bytes: first.size_bytes,
                    });
                } else if panel * wb > last.size_bytes {
                    lints.push(PlanLint::TileOverflow {
                        step: si,
                        name: step.name.clone(),
                        tile_bytes: panel * wb,
                        level: last.name.clone(),
                        capacity_bytes: last.size_bytes,
                    });
                }
            }
        }
        // capacity thrash: reuse exists but overwhelmingly misses
        let t = &traffic.per_step[si];
        if t.reuse_words >= THRASH_MIN_REUSE_WORDS {
            let miss = t.missed_reuse_words as f64 / t.reuse_words as f64;
            if miss > THRASH_MISS_THRESHOLD {
                lints.push(PlanLint::CacheThrash {
                    step: si,
                    name: step.name.clone(),
                    miss_pct: miss * 100.0,
                    reuse_bytes: t.reuse_words * wb,
                });
            }
        }
        // set-aliasing strided sweeps
        let sa = step_accesses(graph, step);
        let mut seen: Vec<NodeId> = Vec::new();
        for a in &sa.accesses {
            let s = a.path.inner_stride();
            if !a.swept || s <= 1 || seen.contains(&a.data) {
                continue;
            }
            let stride_bytes = s * wb;
            for l in &geometry.levels {
                let sets = l.size_bytes / (l.line_bytes.max(1) * l.assoc.max(1));
                if sets > 1 && stride_bytes.is_multiple_of(sets * l.line_bytes.max(1)) {
                    seen.push(a.data);
                    lints.push(PlanLint::LayoutConflict {
                        step: si,
                        name: step.name.clone(),
                        container: a.name.clone(),
                        stride_words: s,
                        level: l.name.clone(),
                    });
                    break;
                }
            }
        }
    }
    lints
}

/// Predicted DRAM words of a single operator under candidate layouts —
/// the [`CostModel::CacheAware`](crate::selection::CostModel) edge cost.
///
/// A synthetic single-step schedule is built with `in_layout` on the
/// flowing input, `out_layout` on the primary output, and natural layouts
/// elsewhere; its derived access paths are priced with line-granular
/// overfetch: a sweep at inner stride `s > 1` pays `min(s, line_words)`
/// DRAM words per useful word. Returns `(useful_words, dram_words)`, or
/// `None` when the operator has no data operands.
pub fn op_dram_words(
    graph: &Graph,
    op: NodeId,
    flowing_input: usize,
    in_layout: &str,
    out_layout: &str,
    geometry: &CacheGeometry,
    word_bytes: u64,
) -> Option<(u64, u64)> {
    let node = graph.op(op)?;
    let natural = |id: NodeId| -> Option<String> {
        graph
            .data(id)
            .map(|d| d.shape.axes().iter().map(|a| a.0).collect())
    };
    let operand = |id: NodeId, layout: Option<&str>| -> Option<Operand> {
        let lay = match layout {
            Some(l) => l.to_string(),
            None => natural(id)?,
        };
        Some(Operand {
            data: id,
            name: graph.data(id).map(|d| d.name.clone()).unwrap_or_default(),
            layout: lay,
        })
    };
    let in_ids = graph.inputs_of(op);
    let out_ids = graph.outputs_of(op);
    if in_ids.is_empty() || out_ids.is_empty() {
        return None;
    }
    let inputs: Vec<Operand> = in_ids
        .iter()
        .enumerate()
        .map(|(k, &id)| {
            operand(
                id,
                if k == flowing_input {
                    Some(in_layout)
                } else {
                    None
                },
            )
        })
        .collect::<Option<Vec<_>>>()?;
    let outputs: Vec<Operand> = out_ids
        .iter()
        .enumerate()
        .map(|(k, &id)| operand(id, if k == 0 { Some(out_layout) } else { None }))
        .collect::<Option<Vec<_>>>()?;
    let step = PlanStep {
        op,
        name: node.name.clone(),
        kind: node.kind.clone(),
        inputs,
        outputs,
        relayouts: Vec::new(),
    };
    let line_words = (geometry.line_bytes() / word_bytes.max(1)).max(1);
    let mut useful = 0u64;
    let mut dram = 0u64;
    for a in step_accesses(graph, &step).accesses {
        let words = a.path.distinct_words();
        let s = a.path.inner_stride();
        let inflation = if a.swept && s > 1 {
            s.min(line_words)
        } else {
            1
        };
        useful += words;
        dram += words.saturating_mul(inflation);
    }
    Some((useful, dram))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{apply_epilogues, apply_plan, encoder_fusion_plan};
    use crate::plan::ExecutionPlan;
    use crate::recipe::forward_ops;
    use xform_dataflow::{build, EncoderDims};

    fn fused() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
        (g, plan)
    }

    fn epilogue() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        apply_epilogues(&mut g).unwrap();
        let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
        (g, plan)
    }

    #[test]
    fn parse_geometry_specs() {
        let g = CacheGeometry::parse("32k:64:8,1m:64:16,8m:64:16").unwrap();
        assert_eq!(g.levels.len(), 3);
        assert_eq!(g.levels[0].size_bytes, 32 << 10);
        assert_eq!(g.levels[2].name, "LLC");
        assert_eq!(g.line_bytes(), 64);
        // defaults for omitted fields, sorting, suffixes
        let g = CacheGeometry::parse("8m,32k").unwrap();
        assert_eq!(g.levels[0].size_bytes, 32 << 10);
        assert_eq!(g.levels[1].size_bytes, 8 << 20);
        assert!(CacheGeometry::parse("lol").is_none());
        assert!(CacheGeometry::parse("32k:0").is_none());
    }

    #[test]
    fn env_override_shares_unified_enable_semantics() {
        // the pure halves compose: a disabled value yields host detection
        for off in [None, Some(""), Some("0"), Some("off"), Some("no")] {
            assert!(!crate::sanitize::sanitize_value_enables(off));
        }
        assert!(crate::sanitize::sanitize_value_enables(Some(
            "32k:64:8,1m:64:16"
        )));
    }

    #[test]
    fn zero_geometry_predicts_exactly_the_flat_bytes() {
        for (g, plan) in [fused(), epilogue()] {
            let d = DeviceSpec::v100();
            let flat = analyze::audit(&g, &plan, &d);
            let wb = d.word_bytes as u64;
            let dram = plan_dram_words(&g, &plan, &CacheGeometry::none(), wb);
            assert_eq!(dram * wb, flat.total_bytes());
        }
    }

    #[test]
    fn bigger_caches_never_increase_predicted_dram() {
        let (g, plan) = fused();
        let small = CacheGeometry::parse("4k:64:4").unwrap();
        let big = CacheGeometry::parse("4k:64:4,16m:64:16").unwrap();
        let d0 = plan_dram_words(&g, &plan, &CacheGeometry::none(), 2);
        let d1 = plan_dram_words(&g, &plan, &small, 2);
        let d2 = plan_dram_words(&g, &plan, &big, 2);
        assert!(d1 <= d0);
        assert!(d2 <= d1);
    }

    #[test]
    fn cache_mue_is_at_least_flat_and_equal_when_zero() {
        let d = DeviceSpec::v100();
        for (g, plan) in [fused(), epilogue()] {
            let flat = analyze::audit(&g, &plan, &d);
            let zero = cache_audit(&g, &plan, &d, &CacheGeometry::none());
            assert!((zero.plan_mue.value - flat.plan_mue.value).abs() < 1e-9);
            let host = cache_audit(&g, &plan, &d, &CacheGeometry::typical_host());
            assert!(host.plan_mue.value >= flat.plan_mue.value - 1e-9);
            assert!(host.dram_words <= zero.dram_words);
            assert!((host.plan_mue.q_words - flat.plan_mue.q_words).abs() < 1e-6);
        }
    }

    #[test]
    fn epilogue_plan_stays_strictly_ahead_under_device_geometry() {
        let d = DeviceSpec::v100();
        let geom = CacheGeometry::for_device(&d);
        let (gf, pf) = fused();
        let (ge, pe) = epilogue();
        let cf = cache_audit(&gf, &pf, &d, &geom);
        let ce = cache_audit(&ge, &pe, &d, &geom);
        assert!((cf.plan_mue.q_words - ce.plan_mue.q_words).abs() < 1e-6);
        assert!(ce.plan_mue.value > cf.plan_mue.value);
    }

    #[test]
    fn strided_flowing_layout_prices_more_dram() {
        let (g, plan) = fused();
        let geom = CacheGeometry::typical_host();
        // find a normalization step with a rank≥2 flowing input
        for step in &plan.steps {
            let nat = &step.inputs[0].layout;
            if nat.len() < 2 {
                continue;
            }
            let mut rev: Vec<char> = nat.chars().collect();
            rev.rotate_right(1);
            let rev: String = rev.into_iter().collect();
            let out = &step.outputs[0].layout;
            let Some((u_nat, d_nat)) = op_dram_words(&g, step.op, 0, nat, out, &geom, 4) else {
                continue;
            };
            let Some((u_rev, d_rev)) = op_dram_words(&g, step.op, 0, &rev, out, &geom, 4) else {
                continue;
            };
            assert_eq!(u_nat, u_rev);
            if d_rev > d_nat {
                return; // at least one step shows the strided penalty
            }
        }
        panic!("no step showed a strided-layout DRAM penalty");
    }
}
