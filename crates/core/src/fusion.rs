//! The fusion pass (Sec. IV): detecting fusable operator groups and
//! rewriting the dataflow graph.
//!
//! Detection walks producer→consumer chains of non-contraction operators,
//! extending a chain while iteration spaces stay compatible
//! ([`crate::itspace::fusion_compatible`]) and at most one axis-type
//! normalization (softmax/layer-norm) is absorbed; trailing bias-dW style
//! side reductions are attached per pattern 1/4 of Fig. 3. On the BERT
//! encoder graph this discovers the paper's chains; [`encoder_fusion_plan`]
//! additionally pins down the exact Table III grouping (including the
//! launch-count-driven merge of `Bias 2 dW` into `BDRB`, which the paper
//! chose manually "to perform fewer kernel launches").

use xform_dataflow::{DataRole, Graph, NodeId, OpClass, OpKind};
use xform_tensor::{Result, TensorError};

use crate::itspace::{fusion_compatible, op_iter_space};
use crate::plan::{epilogue_geometry, EpilogueGeom};

/// One planned fused kernel: a name and the member operator names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// Kernel name (e.g. `"SM"`).
    pub name: String,
    /// Names of the member operators, in execution order.
    pub members: Vec<String>,
}

impl FusionGroup {
    fn new(name: &str, members: &[&str]) -> Self {
        FusionGroup {
            name: name.to_string(),
            members: members.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// The paper's exact fusion plan for the BERT encoder layer (Sec. IV-A's
/// kernel list / Table III's braces). The two `BLNRD` instances are
/// suffixed by which layer-norm they serve.
///
/// # Examples
///
/// ```
/// use xform_core::fusion::{apply_plan, encoder_fusion_plan};
/// use xform_dataflow::{build, EncoderDims};
/// let mut graph = build::encoder(&EncoderDims::tiny()).graph;
/// let before = graph.total_io_words();
/// apply_plan(&mut graph, &encoder_fusion_plan()).unwrap();
/// assert!(graph.total_io_words() < before); // fusion saved data movement
/// ```
pub fn encoder_fusion_plan() -> Vec<FusionGroup> {
    vec![
        FusionGroup::new("AIB", &["Input bias Q", "Input bias K", "Input bias V"]),
        FusionGroup::new("SM", &["Scaled softmax", "Dropout att"]),
        FusionGroup::new(
            "DRLN",
            &["Output bias", "Dropout 1", "Residual 1", "LayerNorm 1"],
        ),
        FusionGroup::new("BRD", &["Bias 1", "ReLU", "Dropout 2"]),
        FusionGroup::new(
            "BDRLN",
            &["Bias 2", "Dropout 3", "Residual 2", "LayerNorm 2"],
        ),
        FusionGroup::new("BSB", &["LayerNorm 2 dW"]),
        FusionGroup::new("BLNRD2", &["LayerNorm 2 dX", "Dropout 3 dX"]),
        FusionGroup::new(
            "BDRB",
            &["Bias 2 dW", "Dropout 2 dX", "ReLU dX", "Bias 1 dW"],
        ),
        FusionGroup::new("EBSB", &["Residual 2 dX", "LayerNorm 1 dW"]),
        FusionGroup::new("BLNRD1", &["LayerNorm 1 dX", "Dropout 1 dX"]),
        FusionGroup::new("BAOB", &["Output bias dW"]),
        FusionGroup::new("BS", &["Dropout att dX", "Scaled softmax dX"]),
        FusionGroup::new("BAIB", &["Input bias dW"]),
        FusionGroup::new("BEI", &["Residual 1 dX"]),
    ]
}

/// The fusion plan for a GPT-2-style (pre-layer-norm, causally masked)
/// decoder block, derived with the same rules. Pre-LN hoists the layer
/// norms out of the residual chains, so they fuse with fewer neighbours
/// than in the encoder; everything else maps one-to-one.
pub fn decoder_fusion_plan() -> Vec<FusionGroup> {
    vec![
        FusionGroup::new("AIB", &["Input bias Q", "Input bias K", "Input bias V"]),
        FusionGroup::new("SM", &["Masked softmax", "Dropout att"]),
        FusionGroup::new("BDR", &["Output bias", "Dropout 1", "Residual 1"]),
        FusionGroup::new("BRD", &["Bias 1", "GELU", "Dropout 2"]),
        FusionGroup::new("BDR2", &["Bias 2", "Dropout 3", "Residual 2"]),
        FusionGroup::new("LN1", &["LayerNorm 1"]),
        FusionGroup::new("LN2", &["LayerNorm 2"]),
        FusionGroup::new("BDB", &["Dropout 3 dX", "Bias 2 dW"]),
        FusionGroup::new("BDRB", &["Dropout 2 dX", "GELU dX", "Bias 1 dW"]),
        FusionGroup::new("BSB2", &["LayerNorm 2 dW"]),
        FusionGroup::new("BLNR2", &["LayerNorm 2 dX", "Residual 2 dX"]),
        FusionGroup::new("BDAOB", &["Dropout 1 dX", "Output bias dW"]),
        FusionGroup::new("BS", &["Dropout att dX", "Masked softmax dX"]),
        FusionGroup::new("BAIB", &["Input bias dW"]),
        FusionGroup::new("BSB1", &["LayerNorm 1 dW"]),
        FusionGroup::new("BLNR1", &["LayerNorm 1 dX", "Residual 1 dX"]),
    ]
}

/// The forward half of [`decoder_fusion_plan`], for forward-only decode
/// graphs ([`xform_dataflow::build::decoder_prefill`]). `apply_plan` errors
/// on missing operators, so the training plan (which names backward ops)
/// cannot be applied to an inference graph; this plan keeps the *same*
/// groups and kernel names for the ops that exist, so a prefill pass runs
/// bitwise-identical fused kernels to the full training forward.
pub fn decoder_forward_fusion_plan() -> Vec<FusionGroup> {
    vec![
        FusionGroup::new("AIB", &["Input bias Q", "Input bias K", "Input bias V"]),
        FusionGroup::new("SM", &["Masked softmax", "Dropout att"]),
        FusionGroup::new("BDR", &["Output bias", "Dropout 1", "Residual 1"]),
        FusionGroup::new("BRD", &["Bias 1", "GELU", "Dropout 2"]),
        FusionGroup::new("BDR2", &["Bias 2", "Dropout 3", "Residual 2"]),
        FusionGroup::new("LN1", &["LayerNorm 1"]),
        FusionGroup::new("LN2", &["LayerNorm 2"]),
    ]
}

/// Fusion plan for the decode-step *projection* graph
/// ([`xform_dataflow::build::decoder_step_project`]): layer-norm plus the
/// stacked Q/K/V input-bias carve.
pub fn decoder_project_fusion_plan() -> Vec<FusionGroup> {
    vec![
        FusionGroup::new("LN1", &["LayerNorm 1"]),
        FusionGroup::new("AIB", &["Input bias Q", "Input bias K", "Input bias V"]),
    ]
}

/// Fusion plan for the decode-step *attention+FFN* graph
/// ([`xform_dataflow::build::decoder_step_attend`]): the same groups the
/// full decoder forward uses past the projections.
pub fn decoder_attend_fusion_plan() -> Vec<FusionGroup> {
    vec![
        FusionGroup::new("SM", &["Masked softmax", "Dropout att"]),
        FusionGroup::new("BDR", &["Output bias", "Dropout 1", "Residual 1"]),
        FusionGroup::new("BRD", &["Bias 1", "GELU", "Dropout 2"]),
        FusionGroup::new("BDR2", &["Bias 2", "Dropout 3", "Residual 2"]),
        FusionGroup::new("LN2", &["LayerNorm 2"]),
    ]
}

/// Applies a fusion plan to a graph, returning the fused op ids in plan
/// order. Groups with a single member are renamed (they still become one
/// specialized kernel) rather than rewired.
///
/// # Errors
///
/// Returns an error if a named operator is missing or a group is invalid
/// (e.g. contains a contraction).
pub fn apply_plan(graph: &mut Graph, plan: &[FusionGroup]) -> Result<Vec<NodeId>> {
    let mut out = Vec::new();
    for group in plan {
        let ids: Vec<NodeId> = group
            .members
            .iter()
            .map(|m| {
                graph
                    .op_by_name(m)
                    .ok_or_else(|| TensorError::Unsupported(format!("operator `{m}` not found")))
            })
            .collect::<Result<Vec<_>>>()?;
        out.push(graph.fuse(&ids, &group.name)?);
    }
    Ok(out)
}

/// Validates a fusion plan against a graph *without* mutating it: every
/// member must exist, be a non-contraction operator, appear in exactly one
/// group, and multi-op groups must be iteration-space coherent (every
/// member compatible with at least one other member). Returns
/// human-readable problems; an empty list means the plan is applicable.
pub fn validate_plan(graph: &Graph, plan: &[FusionGroup]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for group in plan {
        for m in &group.members {
            if seen.contains(&m.as_str()) {
                problems.push(format!("`{m}` appears in more than one group"));
            }
            seen.push(m);
            let Some(id) = graph.op_by_name(m) else {
                problems.push(format!("group `{}`: operator `{m}` not found", group.name));
                continue;
            };
            let node = graph.op(id).expect("live op");
            if node.kind.class() == OpClass::TensorContraction {
                problems.push(format!(
                    "group `{}`: `{m}` is a tensor contraction and cannot fuse",
                    group.name
                ));
            }
        }
        if group.members.len() > 1 {
            let ids: Vec<NodeId> = group
                .members
                .iter()
                .filter_map(|m| graph.op_by_name(m))
                .collect();
            for (i, &a) in ids.iter().enumerate() {
                // full reductions (bias dW / layer-norm dW) may be merged
                // into any kernel purely to save a launch (Sec. IV's first
                // benefit case) — the paper's BDRB does exactly this with
                // `Bias 2 dW`, whose iteration space matches no other member
                if matches!(
                    graph.op(a).map(|o| &o.kind),
                    Some(OpKind::BiasGrad { .. } | OpKind::LayerNormGradW { .. })
                ) {
                    continue;
                }
                let Ok(sa) = op_iter_space(graph, a) else {
                    continue;
                };
                let coherent = ids.iter().enumerate().any(|(j, &b)| {
                    if i == j {
                        return false;
                    }
                    op_iter_space(graph, b)
                        .map(|sb| {
                            fusion_compatible(&sa, &sb).is_some()
                                || fusion_compatible(&sb, &sa).is_some()
                                || sizes_match(&sa, &sb)
                        })
                        .unwrap_or(false)
                });
                if !coherent {
                    problems.push(format!(
                        "group `{}`: `{}` shares no compatible iteration space with any member",
                        group.name, group.members[i]
                    ));
                }
            }
        }
    }
    problems
}

/// Whether two iteration spaces match by dimension *sizes* (the sibling
/// criterion: Q/K/V streams use different letters for equal dims).
fn sizes_match(a: &crate::itspace::IterSpace, b: &crate::itspace::IterSpace) -> bool {
    let sz = |sp: &crate::itspace::IterSpace| {
        let mut v: Vec<usize> = sp.independent.iter().map(|&(_, n)| n).collect();
        v.sort_unstable();
        v
    };
    sz(a) == sz(b)
}

/// Detects fusable groups automatically from iteration spaces.
///
/// The walk considers non-contraction operators in execution order:
///
/// 1. start a chain at an unclaimed operator;
/// 2. extend through its unique data consumer while the consumer is an
///    unclaimed non-contraction with a compatible iteration space, fusing
///    until "either a reduction dimension or iteration space changes":
///    after absorbing an axis-type normalization, only same-space maps and
///    side reductions may follow;
/// 3. sibling operators that read distinct slices of one producer with
///    identical iteration spaces are grouped (the AIB pattern — fewer
///    kernel launches).
pub fn detect_groups(graph: &Graph) -> Vec<Vec<NodeId>> {
    let ops = graph.ops();
    let mut claimed: Vec<NodeId> = Vec::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new();

    let fusable = |id: NodeId| -> bool {
        graph
            .op(id)
            .map(|o| o.kind.class() != OpClass::TensorContraction)
            .unwrap_or(false)
    };

    for &start in &ops {
        if claimed.contains(&start) || !fusable(start) {
            continue;
        }
        let mut chain = vec![start];
        let mut reductions_seen = usize::from(is_norm_reduction(graph, start));
        let mut cur = start;
        while let Some(next) = unique_consumer(graph, cur) {
            if claimed.contains(&next) || chain.contains(&next) || !fusable(next) {
                break;
            }
            let (Ok(a), Ok(b)) = (op_iter_space(graph, cur), op_iter_space(graph, next)) else {
                break;
            };
            if fusion_compatible(&a, &b).is_none() {
                break;
            }
            if is_norm_reduction(graph, next) {
                reductions_seen += 1;
                if reductions_seen > 1 {
                    break;
                }
            }
            chain.push(next);
            cur = next;
            // a trailing full reduction (bias dW) ends the chain
            if matches!(
                graph.op(next).map(|o| &o.kind),
                Some(OpKind::BiasGrad { .. } | OpKind::LayerNormGradW { .. })
            ) {
                break;
            }
        }
        // sibling grouping: single-op chains join same-space siblings of a
        // common producer (the AIB pattern)
        if chain.len() == 1 {
            if let Some(sibs) = sibling_group(graph, start, &claimed) {
                claimed.extend(&sibs);
                groups.push(sibs);
                continue;
            }
        }
        claimed.extend(&chain);
        groups.push(chain);
    }
    groups
}

/// Whether the op performs an axis-type normalization reduction (softmax /
/// layer-norm family), as opposed to a bias-style full reduction.
fn is_norm_reduction(graph: &Graph, id: NodeId) -> bool {
    graph
        .op(id)
        .map(|o| o.kind.reduce_axis().is_some())
        .unwrap_or(false)
}

/// The next operator to try chaining into: the earliest (in execution
/// order) consumer of this op's primary output. Saved tensors are also
/// read by backward operators much later in the program; those later
/// readers do not block fusing the immediate consumer — the fused kernel
/// still materializes the saved value.
fn unique_consumer(graph: &Graph, op: NodeId) -> Option<NodeId> {
    let outputs = graph.outputs_of(op);
    let primary = *outputs.first()?;
    graph.consumers_of(primary).into_iter().min()
}

/// Finds same-space sibling ops sharing this op's producer (AIB pattern).
fn sibling_group(graph: &Graph, op: NodeId, claimed: &[NodeId]) -> Option<Vec<NodeId>> {
    let inputs = graph.inputs_of(op);
    let src = *inputs.first()?;
    // producer's other consumers with identical op kind shape
    let space = op_iter_space(graph, op).ok()?;
    // Sibling iteration spaces match by *sizes*: the Q/K/V streams use
    // different axis letters (j vs k, p vs w) for identically-sized dims.
    let sizes = |sp: &crate::itspace::IterSpace| -> Vec<usize> {
        let mut v: Vec<usize> = sp.independent.iter().map(|&(_, n)| n).collect();
        v.sort_unstable();
        v
    };
    let want = sizes(&space);
    let sibs: Vec<NodeId> = graph
        .consumers_of(src)
        .into_iter()
        .filter(|&c| {
            !claimed.contains(&c)
                && graph
                    .op(c)
                    .map(|o| o.kind.class() == OpClass::Elementwise)
                    .unwrap_or(false)
                && op_iter_space(graph, c)
                    .map(|s| sizes(&s) == want)
                    .unwrap_or(false)
        })
        .collect();
    if sibs.len() > 1 {
        Some(sibs)
    } else {
        None
    }
}

/// Fuses a graph with the automatically detected groups, naming each group
/// after its members' initials. Returns the fused op ids.
///
/// # Errors
///
/// Propagates [`Graph::fuse`] errors.
pub fn apply_detected(graph: &mut Graph) -> Result<Vec<NodeId>> {
    let groups = detect_groups(graph);
    let mut out = Vec::new();
    for group in groups {
        if group.len() < 2 {
            continue; // leave singletons unfused
        }
        let name: String = group
            .iter()
            .filter_map(|&id| graph.op(id).and_then(|o| o.name.chars().next()))
            .collect();
        out.push(graph.fuse(&group, &format!("fused-{name}"))?);
    }
    Ok(out)
}

/// Data-role summary after fusion: saved tensors survive, interim
/// activations disappear. Used by tests and reports.
///
/// The diff is taken over graph memlet words, so it covers both
/// element-wise fusion (interim activations between fused members) and
/// epilogue fusion (the contraction output [`apply_epilogues`] eliminates,
/// whose write and read-back both leave the graph).
pub fn interim_words_eliminated(before: &Graph, after: &Graph) -> i64 {
    before.total_io_words() as i64 - after.total_io_words() as i64
}

/// One detected GEMM-epilogue chain: a contraction whose sole consumer is
/// a forward fused element-wise/normalization kernel reading the
/// contraction's output first, with geometry the tile driver can lower.
#[derive(Debug, Clone)]
pub struct EpilogueChain {
    /// The contraction operator.
    pub head: NodeId,
    /// The fused element-wise consumer.
    pub tail: NodeId,
    /// The intermediate container epilogue fusion eliminates.
    pub interim: NodeId,
    /// Words of the eliminated intermediate (its write and read-back both
    /// disappear, so the movement saved is twice this).
    pub interim_words: u64,
    /// The mega-kernel's name (`head+tail`).
    pub name: String,
}

/// Detects GEMM-epilogue chains: contractions whose single output is an
/// interim activation read exactly once, by a forward fused kernel of a
/// class the tiled epilogue driver implements (softmax, bias+act+dropout,
/// bias+dropout+residual), with the contraction scattering identically
/// (possibly via a GEMM operand-role swap) into the intermediate.
///
/// Run this *after* element-wise fusion ([`apply_plan`] /
/// [`apply_detected`]): the chain past the contraction must already be one
/// fused node.
pub fn detect_epilogues(graph: &Graph) -> Vec<EpilogueChain> {
    graph
        .ops()
        .into_iter()
        .filter_map(|op| epilogue_candidate(graph, op))
        .collect()
}

fn epilogue_candidate(graph: &Graph, head: NodeId) -> Option<EpilogueChain> {
    let node = graph.op(head)?;
    let OpKind::Einsum(spec) = &node.kind else {
        return None;
    };
    let inputs = graph.inputs_of(head);
    if inputs.len() != 2 {
        return None;
    }
    let outputs = graph.outputs_of(head);
    let [mid] = outputs[..] else {
        return None;
    };
    let mid_d = graph.data(mid)?;
    // only interim activations may disappear: inputs/weights/outputs/saved
    // tensors have observers outside the chain
    if mid_d.role != DataRole::Activation {
        return None;
    }
    let [tail] = graph.consumers_of(mid)[..] else {
        return None;
    };
    let tail_node = graph.op(tail)?;
    let OpKind::Fused {
        parts, reduce_axis, ..
    } = &tail_node.kind
    else {
        return None;
    };
    let tail_inputs = graph.inputs_of(tail);
    if tail_inputs.first() != Some(&mid) {
        return None;
    }
    let shape_of = |id: NodeId| graph.data(id).map(|d| d.shape.clone());
    let a_c = shape_of(inputs[0])?;
    let b_c = shape_of(inputs[1])?;
    let bias_s = tail_inputs.get(1).and_then(|&id| shape_of(id));
    let res_s = tail_inputs.get(2).and_then(|&id| shape_of(id));
    epilogue_geometry(
        spec,
        parts,
        *reduce_axis,
        &a_c,
        &b_c,
        &mid_d.shape,
        bias_s.as_ref(),
        res_s.as_ref(),
    )?;
    Some(EpilogueChain {
        head,
        tail,
        interim: mid,
        interim_words: mid_d.shape.num_elements() as u64,
        name: format!("{}+{}", node.name, tail_node.name),
    })
}

/// Fuses every detected GEMM-epilogue chain into a
/// [`OpKind::ContractionEpilogue`] mega-kernel, dropping the eliminated
/// intermediates from the graph. Returns the new op ids in detection
/// order.
///
/// # Errors
///
/// Propagates [`Graph::fuse_epilogue`] errors.
pub fn apply_epilogues(graph: &mut Graph) -> Result<Vec<NodeId>> {
    let chains = detect_epilogues(graph);
    let mut out = Vec::with_capacity(chains.len());
    for c in &chains {
        out.push(graph.fuse_epilogue(c.head, c.tail, &c.name)?);
    }
    Ok(out)
}

/// Total words of data movement the detected chains would eliminate: each
/// interim is written once by the contraction and read once by the chain,
/// so fusing removes `2 × interim_words` per chain.
pub fn epilogue_interim_words(chains: &[EpilogueChain]) -> u64 {
    chains.iter().map(|c| 2 * c.interim_words).sum()
}

/// Working-set words of one epilogue tile: `(tile, panel)` where `tile` is
/// the hot set the tile driver keeps live across the reduction — the
/// `tile_rows × n` accumulator strip plus its `tile_rows × k` A-panel
/// slice — and `panel` additionally counts the streamed `k × n` B panel,
/// which stays resident while every tile of a block row reduces over it.
/// The cache analyzer compares `tile` against the innermost level and
/// `panel` against the outermost to flag
/// [`PlanLint::TileOverflow`](crate::analyze::PlanLint::TileOverflow).
pub(crate) fn epilogue_tile_words(geom: &EpilogueGeom) -> (u64, u64) {
    let tile = (geom.tile_rows * (geom.plan.n + geom.plan.k)) as u64;
    (tile, tile + (geom.plan.k * geom.plan.n) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xform_dataflow::{analysis, build, EncoderDims};

    #[test]
    fn plan_applies_and_reduces_movement_near_paper() {
        let e = build::encoder(&EncoderDims::bert_large());
        let baseline = e.graph.clone();
        let mut g = e.graph;
        let fused = apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        assert_eq!(fused.len(), 14);
        let red = analysis::movement_reduction_pct(&baseline, &g);
        // Paper: ~22.91% total data-movement reduction.
        assert!(
            red > 15.0 && red < 30.0,
            "movement reduction {red}% (paper: 22.91%)"
        );
    }

    #[test]
    fn fused_graph_keeps_saved_tensors() {
        let e = build::encoder(&EncoderDims::tiny());
        let mut g = e.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        for name in [
            "att",
            "alpha",
            "att_mask",
            "drop1_mask",
            "ln1_in",
            "ln2_in",
            "ff1_b",
        ] {
            assert!(g.data_by_name(name).is_some(), "{name} was eliminated");
        }
        // beta survives: it is the QKT contraction's output and thus the
        // fused SM kernel's external input. Interim activations are gone:
        assert!(g.data_by_name("beta").is_some());
        for name in ["bo_out", "drop1_out", "ff1_relu", "ff2_b", "ff2_drop"] {
            assert!(
                g.data_by_name(name).is_none(),
                "{name} should be fused away"
            );
        }
    }

    #[test]
    fn plan_is_idempotent_failure() {
        let e = build::encoder(&EncoderDims::tiny());
        let mut g = e.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        // applying again fails: original ops are gone
        assert!(apply_plan(&mut g, &encoder_fusion_plan()).is_err());
    }

    #[test]
    fn both_shipped_plans_validate_cleanly() {
        let enc = build::encoder(&EncoderDims::bert_large());
        let problems = validate_plan(&enc.graph, &encoder_fusion_plan());
        assert!(problems.is_empty(), "encoder plan: {problems:?}");
        let dec = xform_dataflow::build::decoder(&EncoderDims::bert_large());
        let problems = validate_plan(&dec.graph, &decoder_fusion_plan());
        assert!(problems.is_empty(), "decoder plan: {problems:?}");
    }

    #[test]
    fn validate_plan_catches_mistakes() {
        let enc = build::encoder(&EncoderDims::tiny());
        // missing op
        let bad = vec![FusionGroup::new("X", &["No Such Op"])];
        assert!(!validate_plan(&enc.graph, &bad).is_empty());
        // contraction in a group
        let bad = vec![FusionGroup::new("X", &["QKT"])];
        assert!(!validate_plan(&enc.graph, &bad).is_empty());
        // duplicated member across groups
        let bad = vec![
            FusionGroup::new("A", &["Dropout 1"]),
            FusionGroup::new("B", &["Dropout 1"]),
        ];
        assert!(!validate_plan(&enc.graph, &bad).is_empty());
        // incoherent iteration spaces (attention-space + embedding-space)
        let bad = vec![FusionGroup::new("X", &["Dropout att", "Dropout 1"])];
        assert!(!validate_plan(&enc.graph, &bad).is_empty());
    }

    #[test]
    fn decoder_plan_applies_and_reduces_movement() {
        let e = xform_dataflow::build::decoder(&EncoderDims::bert_large());
        let baseline = e.graph.clone();
        let mut g = e.graph;
        let fused = apply_plan(&mut g, &decoder_fusion_plan()).unwrap();
        assert_eq!(fused.len(), 16);
        let red = analysis::movement_reduction_pct(&baseline, &g);
        assert!(red > 8.0 && red < 30.0, "decoder movement reduction {red}%");
        // causal-attention saved tensors survive
        for name in ["att", "alpha", "att_mask", "res1", "ln2_out"] {
            assert!(g.data_by_name(name).is_some(), "{name} eliminated");
        }
    }

    #[test]
    fn detection_finds_paper_chains() {
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let groups = detect_groups(g);
        let names: Vec<Vec<String>> = groups
            .iter()
            .map(|grp| {
                grp.iter()
                    .map(|&id| g.op(id).unwrap().name.clone())
                    .collect()
            })
            .collect();
        let has = |members: &[&str]| {
            names
                .iter()
                .any(|g| g.iter().map(String::as_str).collect::<Vec<_>>() == members)
        };
        assert!(has(&["Scaled softmax", "Dropout att"]), "SM: {names:?}");
        assert!(
            has(&["Output bias", "Dropout 1", "Residual 1", "LayerNorm 1"]),
            "DRLN: {names:?}"
        );
        assert!(has(&["Bias 1", "ReLU", "Dropout 2"]), "BRD: {names:?}");
        assert!(
            has(&["Bias 2", "Dropout 3", "Residual 2", "LayerNorm 2"]),
            "BDRLN: {names:?}"
        );
        assert!(
            has(&["Dropout att dX", "Scaled softmax dX"]),
            "BS: {names:?}"
        );
        assert!(
            has(&["Dropout 2 dX", "ReLU dX", "Bias 1 dW"]),
            "BDRB core chain: {names:?}"
        );
        assert!(
            has(&["Input bias Q", "Input bias K", "Input bias V"]),
            "AIB siblings: {names:?}"
        );
    }

    #[test]
    fn detection_never_claims_contractions_or_duplicates() {
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let groups = detect_groups(g);
        let mut seen = Vec::new();
        for grp in &groups {
            for &id in grp {
                assert!(!seen.contains(&id), "op claimed twice");
                seen.push(id);
                assert_ne!(g.op(id).unwrap().kind.class(), OpClass::TensorContraction);
            }
        }
    }

    #[test]
    fn apply_detected_fuses_multi_op_groups() {
        let e = build::encoder(&EncoderDims::tiny());
        let baseline = e.graph.clone();
        let mut g = e.graph;
        let fused = apply_detected(&mut g).unwrap();
        assert!(fused.len() >= 6);
        assert!(interim_words_eliminated(&baseline, &g) > 0);
    }

    #[test]
    fn epilogue_detection_finds_encoder_chains() {
        let e = build::encoder(&EncoderDims::tiny());
        let mut g = e.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let chains = detect_epilogues(&g);
        let mut names: Vec<&str> = chains.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, ["Linear 1+BRD", "QKT+SM"], "chains: {chains:?}");
        for c in &chains {
            assert!(c.interim_words > 0);
        }
        assert_eq!(
            epilogue_interim_words(&chains),
            chains.iter().map(|c| 2 * c.interim_words).sum::<u64>()
        );
    }

    #[test]
    fn epilogue_detection_finds_decoder_chains() {
        let e = xform_dataflow::build::decoder(&EncoderDims::tiny());
        let mut g = e.graph;
        apply_plan(&mut g, &decoder_fusion_plan()).unwrap();
        let chains = detect_epilogues(&g);
        let mut names: Vec<&str> = chains.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(
            names,
            ["Linear 1+BRD", "Linear 2+BDR2", "Out+BDR", "QKT+SM"],
            "chains: {chains:?}"
        );
    }

    #[test]
    fn epilogue_detection_requires_elementwise_fusion_first() {
        // On the unfused graph no contraction feeds a `Fused` kernel, so
        // there is nothing to collapse yet.
        let e = build::encoder(&EncoderDims::tiny());
        assert!(detect_epilogues(&e.graph).is_empty());
    }

    #[test]
    fn apply_epilogues_eliminates_contraction_outputs() {
        let e = build::encoder(&EncoderDims::tiny());
        let mut g = e.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let fused_only = g.clone();
        let chains = detect_epilogues(&g);
        let expect = epilogue_interim_words(&chains);
        let mega = apply_epilogues(&mut g).unwrap();
        assert_eq!(mega.len(), 2);
        for &id in &mega {
            assert!(matches!(
                g.op(id).unwrap().kind,
                OpKind::ContractionEpilogue { .. }
            ));
        }
        // the contraction outputs are gone...
        for name in ["beta", "ff1"] {
            assert!(g.data_by_name(name).is_none(), "{name} should be gone");
        }
        // ...and `interim_words_eliminated` prices both their write and
        // their read-back (satellite b): the memlet diff equals the
        // detector's avoidable-words total exactly.
        assert_eq!(interim_words_eliminated(&fused_only, &g), expect as i64);
        // idempotent: nothing left to detect
        assert!(detect_epilogues(&g).is_empty());
    }
}
