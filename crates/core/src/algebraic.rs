//! Algebraic fusion of the self-attention input projections (Sec. IV-D,
//! Table II).
//!
//! Because the queries, keys and values of self-attention all project the
//! same tensor `X`, the three projection GEMMs can be stacked:
//!
//! 1. three separate GEMMs (`WᵠX`, `WᵏX`, `WᵛX`);
//! 2. `[Wᵠ Wᵏ]X` stacked, plus `WᵛX`;
//! 3. `[Wᵠ Wᵏ Wᵛ]X` fully stacked.
//!
//! Stacking reuses `X` (read once instead of three times), launches fewer
//! kernels, and presents larger M to the GPU, improving wave utilization —
//! which is why the fully fused variant wins in Table II. The same
//! evaluation covers the backward `dX` GEMMs
//! (`[Wᵠ Wᵏ Wᵛ][dQ̃ dK̃ dṼ]`).

use xform_dataflow::EncoderDims;
use xform_gpusim::contraction::{best_algo_cost, GemmLayout, GemmShape, MathMode};
use xform_gpusim::DeviceSpec;

/// The three algebraic-fusion strategies for the Q/K/V projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QkvVariant {
    /// Three separate GEMMs.
    Unfused,
    /// Q and K stacked; V separate.
    FusedQk,
    /// Q, K and V fully stacked.
    FusedQkv,
}

impl QkvVariant {
    /// All variants, in Table II column order.
    pub fn all() -> [QkvVariant; 3] {
        [
            QkvVariant::Unfused,
            QkvVariant::FusedQk,
            QkvVariant::FusedQkv,
        ]
    }

    /// Table II column label.
    pub fn label(self) -> &'static str {
        match self {
            QkvVariant::Unfused => "Unfused",
            QkvVariant::FusedQk => "QK fused",
            QkvVariant::FusedQkv => "QKV fused",
        }
    }

    /// The GEMM stack heights for this variant (multiples of `P·H`).
    fn stacks(self) -> &'static [usize] {
        match self {
            QkvVariant::Unfused => &[1, 1, 1],
            QkvVariant::FusedQk => &[2, 1],
            QkvVariant::FusedQkv => &[3],
        }
    }
}

/// Modelled timings of one variant (µs), Table II's two rows. The
/// backward row covers both the `dX` and `dW` stacked GEMMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgebraicTiming {
    /// The variant.
    pub variant: QkvVariant,
    /// Forward input-projection time.
    pub forward_us: f64,
    /// Backward `dX` time (the stacked `[Wᵠ Wᵏ Wᵛ][dQ̃ dK̃ dṼ]` GEMMs).
    pub backward_us: f64,
}

/// Prices all three variants on a device (Table II).
///
/// # Examples
///
/// ```
/// use xform_core::algebraic::qkv_variants;
/// use xform_dataflow::EncoderDims;
/// use xform_gpusim::DeviceSpec;
/// let rows = qkv_variants(&DeviceSpec::v100(), &EncoderDims::bert_large());
/// // fully fused is fastest, as in Table II
/// assert!(rows[2].forward_us < rows[0].forward_us);
/// ```
pub fn qkv_variants(device: &DeviceSpec, dims: &EncoderDims) -> Vec<AlgebraicTiming> {
    let i = dims.i;
    let ph = dims.p * dims.h;
    let n = dims.b * dims.j;
    QkvVariant::all()
        .into_iter()
        .map(|variant| {
            let mut forward_us = 0.0;
            let mut backward_us = 0.0;
            let time = |shape: GemmShape| -> f64 {
                best_algo_cost(device, shape, GemmLayout::ideal(), MathMode::TensorCore)
                    .1
                    .time_us
            };
            for &stack in variant.stacks() {
                // forward: [stack·P·H × I] × [I × B·J]
                forward_us += time(GemmShape {
                    batch: 1,
                    m: stack * ph,
                    n,
                    k: i,
                });
                // backward dX: [Wᵠ Wᵏ Wᵛ]ᵀ-style, K is the stacked dim
                backward_us += time(GemmShape {
                    batch: 1,
                    m: i,
                    n,
                    k: stack * ph,
                });
                // backward dW: X [dQ̃ dK̃ dṼ]ᵀ, M is the stacked dim
                backward_us += time(GemmShape {
                    batch: 1,
                    m: stack * ph,
                    n: i,
                    k: n,
                });
            }
            AlgebraicTiming {
                variant,
                forward_us,
                backward_us,
            }
        })
        .collect()
}

/// The two strategies for the K/V projections of *encoder/decoder*
/// attention, where keys and values project the same encoder output
/// (Sec. IV-D: "This specific example can also be adapted to fuse keys and
/// values in encoder/decoder attention").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvVariant {
    /// Separate `WᵏE` and `WᵛE` GEMMs.
    Unfused,
    /// `[Wᵏ Wᵛ]E` stacked.
    FusedKv,
}

impl KvVariant {
    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            KvVariant::Unfused => "Unfused",
            KvVariant::FusedKv => "KV fused",
        }
    }
}

/// Prices the encoder/decoder-attention K/V stacking on a device. The
/// query projection is unaffected (queries come from the decoder side).
pub fn kv_variants(device: &DeviceSpec, dims: &EncoderDims) -> Vec<(KvVariant, f64)> {
    let ph = dims.p * dims.h;
    let n = dims.b * dims.k; // encoder-side sequence length
    let time = |m: usize| -> f64 {
        best_algo_cost(
            device,
            GemmShape {
                batch: 1,
                m,
                n,
                k: dims.i,
            },
            GemmLayout::ideal(),
            MathMode::TensorCore,
        )
        .1
        .time_us
    };
    vec![
        (KvVariant::Unfused, time(ph) + time(ph)),
        (KvVariant::FusedKv, time(2 * ph)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_fused_is_fastest() {
        // Table II: 345 > 294 > 275 µs forward; 342 > 312 > 291 µs backward.
        let rows = qkv_variants(&DeviceSpec::v100(), &EncoderDims::bert_large());
        assert_eq!(rows.len(), 3);
        assert!(rows[0].forward_us > rows[1].forward_us);
        assert!(rows[1].forward_us > rows[2].forward_us);
        assert!(rows[0].backward_us > rows[1].backward_us);
        assert!(rows[1].backward_us > rows[2].backward_us);
    }

    #[test]
    fn magnitudes_match_table2() {
        let rows = qkv_variants(&DeviceSpec::v100(), &EncoderDims::bert_large());
        for r in &rows {
            assert!(
                r.forward_us > 150.0 && r.forward_us < 600.0,
                "{} forward {} µs",
                r.variant.label(),
                r.forward_us
            );
            // backward covers dX + dW, roughly 2× the forward work
            assert!(r.backward_us > 300.0 && r.backward_us < 1200.0);
        }
        // unfused vs fused gap is tens of µs, not orders of magnitude
        let gap = rows[0].forward_us - rows[2].forward_us;
        assert!(gap > 5.0 && gap < 200.0, "gap {gap} µs");
    }

    #[test]
    fn kv_fusion_wins_for_cross_attention() {
        let rows = kv_variants(&DeviceSpec::v100(), &EncoderDims::bert_large());
        assert_eq!(rows.len(), 2);
        assert!(rows[0].1 > rows[1].1, "KV stacking should win: {rows:?}");
        // both are plausible projection times
        for (_, us) in &rows {
            assert!(*us > 100.0 && *us < 800.0);
        }
    }

    #[test]
    fn labels_and_stacks() {
        assert_eq!(QkvVariant::Unfused.label(), "Unfused");
        assert_eq!(QkvVariant::FusedQk.stacks(), &[2, 1]);
        assert_eq!(QkvVariant::FusedQkv.stacks(), &[3]);
    }
}
