//! Runtime plan profiler: measured per-step time, bytes, bandwidth, and
//! MUE, plus profile-guided re-selection.
//!
//! The paper's recipe is *enumerate → measure → select*; the offline half
//! lives in [`crate::sweep`] / [`crate::selection`]. This module closes
//! the loop at runtime: a [`PlanProfiler`] rides along the interpreter
//! entry points ([`crate::plan::execute_plan`],
//! [`crate::sanitize::execute_plan_parallel`]) via
//! [`crate::plan::ExecOptions::profiler`], recording per-step wall-clock
//! time against the *static* movement accounting (the exact word counts
//! [`crate::analyze::audit`] charges, cross-checked against the symbolic
//! footprints of [`crate::sanitize::step_footprint`]). From time and
//! bytes it derives achieved bandwidth and a **measured MUE**
//! (`Q/D · B/B̂ · 100`, Sec. III-C) per step, per operator class, and per
//! plan — the measured mirror of the static audit.
//!
//! On top of the profiler, [`ProfiledSource`] replays recorded step
//! timings through the [`PerfSource`] trait so SSSP configuration
//! selection can re-run from real interpreter measurements instead of
//! sweep microbenches; [`reselect`] is the end-to-end driver: profile the
//! natural plan, re-select against the profiled timings, profile the
//! candidate, and adopt whichever plan measured faster.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;
use xform_dataflow::{flops, Graph, NodeId, OpClass};
use xform_gpusim::mue::{Mue, MueAccum};
use xform_gpusim::opmodel::OpConfig;
use xform_gpusim::{DeviceSpec, KernelCost};
use xform_tensor::{Result, TensorError};

use crate::plan::{
    execute_plan, random_externals, ExecOptions, ExecState, ExecutionPlan, PlanStep, SanitizeMode,
};
use crate::sanitize::{execute_plan_parallel, step_footprint, ParallelOptions, RaceCertificate};
use crate::selection::{select_forward_cost, CostModel, Selection};
use crate::sweep::{sweep_all, PerfSource, SweepOptions};

/// The sink type the interpreters record into: a [`PlanProfiler`] behind a
/// mutex, so the wave-parallel interpreter's scoped workers can all report
/// into one profiler.
pub type ProfilerSink = Mutex<PlanProfiler>;

/// One step's measured profile, merged across repeated runs (times keep
/// the minimum — the least-disturbed observation, like the sweep
/// microbenches).
#[derive(Debug, Clone)]
pub struct StepProfile {
    /// Step index in the schedule.
    pub step: usize,
    /// The operator the step executes.
    pub op: NodeId,
    /// Kernel name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Whether the serial interpreter can run this step standalone.
    pub interpretable: bool,
    /// Wave index, when recorded by the wave-parallel interpreter.
    pub wave: Option<usize>,
    /// Best (minimum) measured wall-clock time across runs, µs.
    pub time_us: f64,
    /// How many executions were merged into this record.
    pub runs: usize,
    /// Whether any merged run executed under the shadow-access sanitizer
    /// (those timings include tracing overhead).
    pub sanitized: bool,
    /// Words the step's graph memlets read (identical to
    /// [`crate::analyze::StepAudit::read_words`]).
    pub read_words: u64,
    /// Words the step's graph memlets write (identical to
    /// [`crate::analyze::StepAudit::write_words`]).
    pub write_words: u64,
    /// Words moved by the step's explicit relayouts (read + write of each
    /// relayouted container; identical to
    /// [`crate::analyze::StepAudit::relayout_words`]).
    pub relayout_words: u64,
    /// The operator's I/O lower bound in words (`Q` of the MUE formula).
    pub q_words: u64,
    /// Words of `q_words` that an un-collapsed GEMM-epilogue chain merely
    /// shuttles through its eliminable interim (the head's write of it
    /// plus the tail's read-back). Like the static audit, the measured
    /// MUE counts these as pure movement, not algorithmic demand, so a
    /// plan that collapses the chain profiles at the same `Q`.
    pub avoid_words: u64,
    /// Words covered by the symbolic footprint oracle
    /// ([`crate::sanitize::step_footprint`]) — the certifier's independent
    /// derivation of the same traffic, for cross-checking.
    pub footprint_words: u64,
    /// Flop the operator performs.
    pub flop: u64,
}

impl StepProfile {
    /// Total words this step moves: kernel memlets plus relayouts.
    #[must_use]
    pub fn moved_words(&self) -> u64 {
        self.read_words + self.write_words + self.relayout_words
    }

    /// Total bytes this step moves (f32 words).
    #[must_use]
    pub fn moved_bytes(&self) -> u64 {
        self.moved_words() * 4
    }

    /// Achieved bandwidth over the best run, bytes/µs.
    #[must_use]
    pub fn achieved_bytes_per_us(&self) -> f64 {
        self.moved_bytes() as f64 / self.time_us.max(1e-3)
    }

    /// Whether the footprint oracle's word count agrees with the audit's
    /// memlet accounting for this step (they derive the same traffic two
    /// different ways; disagreement means an over-declared operand).
    #[must_use]
    pub fn footprint_matches(&self) -> bool {
        self.footprint_words == self.moved_words()
    }
}

/// One wave's measured profile under the wave-parallel interpreter.
#[derive(Debug, Clone)]
pub struct WaveProfile {
    /// Wave index.
    pub wave: usize,
    /// Step indices the wave dispatched.
    pub steps: Vec<usize>,
    /// Worker threads the wave actually used.
    pub workers: usize,
    /// Best (minimum) wall-clock time of the whole wave across runs, µs.
    pub wall_us: f64,
    /// How many executions were merged into this record.
    pub runs: usize,
}

/// Measured totals of one operator class (the measured mirror of
/// [`crate::analyze::ClassMovement`]).
#[derive(Debug, Clone, Copy)]
pub struct ClassProfile {
    /// The class.
    pub class: OpClass,
    /// Number of profiled steps in the class.
    pub steps: usize,
    /// Summed best step times, µs.
    pub time_us: f64,
    /// Summed moved bytes (memlets plus relayouts).
    pub moved_bytes: u64,
    /// Measured class-level MUE (D-weighted across the class's steps).
    pub mue: Mue,
}

/// Accumulates measured per-step records from the interpreters and derives
/// achieved bandwidth and measured MUE per step, per class, and per plan.
///
/// Byte accounting is *static* — the profiler charges each step exactly
/// the words [`crate::analyze::audit`] charges (graph memlets plus
/// relayout traffic), so measured and static MUE differ only in the
/// bandwidth term and are directly comparable. Time is *measured* —
/// wall-clock around each [`crate::plan::execute_step`] dispatch, with
/// repeated runs merged by minimum.
///
/// One profiler instance expects records from one plan: step indices are
/// the merge key, so replaying a *different* plan into the same sink mixes
/// unrelated steps.
#[derive(Debug, Clone)]
pub struct PlanProfiler {
    /// Peak streaming bandwidth of this host, bytes/µs (`B̂` of the MUE
    /// formula) — calibrated at construction by the same contiguous-read
    /// microbench [`crate::cpusource::CpuSource`] uses.
    pub peak_bytes_per_us: f64,
    steps: Vec<Option<StepProfile>>,
    waves: Vec<Option<WaveProfile>>,
}

impl Default for PlanProfiler {
    fn default() -> Self {
        PlanProfiler::new()
    }
}

impl PlanProfiler {
    /// A profiler with the host's calibrated peak streaming rate.
    #[must_use]
    pub fn new() -> Self {
        PlanProfiler::with_peak(crate::cpusource::calibrate_stream_rate())
    }

    /// A profiler normalizing bandwidth against an explicit peak
    /// (bytes/µs) — for tests and cross-host comparisons.
    #[must_use]
    pub fn with_peak(peak_bytes_per_us: f64) -> Self {
        PlanProfiler {
            peak_bytes_per_us: peak_bytes_per_us.max(1e-6),
            steps: Vec::new(),
            waves: Vec::new(),
        }
    }

    /// Records one execution of step `si`, merging into any existing
    /// record (minimum time, run count, latest wave assignment). The
    /// static word accounting is derived once, on first record.
    pub fn record_step(
        &mut self,
        graph: &Graph,
        step: &PlanStep,
        si: usize,
        wave: Option<usize>,
        time_us: f64,
        sanitized: bool,
    ) {
        if self.steps.len() <= si {
            self.steps.resize_with(si + 1, || None);
        }
        match &mut self.steps[si] {
            Some(existing) => {
                existing.runs += 1;
                existing.time_us = existing.time_us.min(time_us);
                existing.sanitized |= sanitized;
                if wave.is_some() {
                    existing.wave = wave;
                }
            }
            slot @ None => {
                let read_words = graph.input_words(step.op);
                let write_words = graph.output_words(step.op);
                let relayout_words: u64 = step
                    .relayouts
                    .iter()
                    .map(|r| {
                        2 * graph
                            .data(r.data)
                            .map(|d| d.shape.num_elements() as u64)
                            .unwrap_or(0)
                    })
                    .sum();
                let footprint_words = step_footprint(graph, step)
                    .iter()
                    .map(|a| a.span.words())
                    .sum();
                *slot = Some(StepProfile {
                    step: si,
                    op: step.op,
                    name: step.name.clone(),
                    class: step.kind.class(),
                    interpretable: crate::plan::step_is_interpretable(&step.kind, &step.name),
                    wave,
                    time_us,
                    runs: 1,
                    sanitized,
                    read_words,
                    write_words,
                    relayout_words,
                    q_words: graph.io_words(step.op),
                    avoid_words: crate::fusion::detect_epilogues(graph)
                        .iter()
                        .filter(|c| c.head == step.op || c.tail == step.op)
                        .map(|c| c.interim_words)
                        .sum::<u64>()
                        .min(graph.io_words(step.op)),
                    footprint_words,
                    flop: flops::op_flop(graph, step.op).unwrap_or(0),
                });
            }
        }
    }

    /// Records one wave dispatch (wave-parallel interpreter), merging into
    /// any existing record by minimum wall time.
    pub fn record_wave(&mut self, wave: usize, steps: &[usize], workers: usize, wall_us: f64) {
        if self.waves.len() <= wave {
            self.waves.resize_with(wave + 1, || None);
        }
        match &mut self.waves[wave] {
            Some(existing) => {
                existing.runs += 1;
                existing.wall_us = existing.wall_us.min(wall_us);
            }
            slot @ None => {
                *slot = Some(WaveProfile {
                    wave,
                    steps: steps.to_vec(),
                    workers: workers.max(1),
                    wall_us,
                    runs: 1,
                });
            }
        }
    }

    /// The recorded step profiles, in schedule order.
    pub fn steps(&self) -> impl Iterator<Item = &StepProfile> {
        self.steps.iter().flatten()
    }

    /// The recorded wave profiles, in wave order (empty for serial runs).
    pub fn waves(&self) -> impl Iterator<Item = &WaveProfile> {
        self.waves.iter().flatten()
    }

    /// The profile of step `si`, when recorded.
    #[must_use]
    pub fn step(&self, si: usize) -> Option<&StepProfile> {
        self.steps.get(si).and_then(Option::as_ref)
    }

    /// Sum of best per-step times, µs — the serial measured plan total.
    #[must_use]
    pub fn total_time_us(&self) -> f64 {
        self.steps().map(|s| s.time_us).sum()
    }

    /// Sum of best per-wave wall times, µs — the parallel measured plan
    /// total. `None` when no wave was recorded.
    #[must_use]
    pub fn parallel_wall_us(&self) -> Option<f64> {
        let mut total = 0.0;
        let mut any = false;
        for w in self.waves() {
            total += w.wall_us;
            any = true;
        }
        any.then_some(total)
    }

    /// Total bytes the plan moved (memlets plus relayouts).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.steps().map(StepProfile::moved_bytes).sum()
    }

    /// Measured MUE of one step: `Q` and `D` from the static accounting,
    /// `B/B̂` from measured time over the calibrated peak.
    #[must_use]
    pub fn measured_mue(&self, s: &StepProfile) -> Mue {
        let q = (s.q_words - s.avoid_words) as f64;
        let d = (s.moved_words() as f64).max(q).max(1.0);
        let bw = (s.achieved_bytes_per_us() / self.peak_bytes_per_us).clamp(0.0, 1.0);
        Mue {
            value: (q / d * bw * 100.0).clamp(0.0, 100.0),
            q_words: q,
            d_words: d,
            bandwidth_frac: bw,
        }
    }

    /// Folds one step into a [`MueAccum`] using its measured bandwidth:
    /// memlet words join as kernel traffic (with `Q`), relayout words as
    /// pure movement (without).
    fn accumulate(&self, acc: &mut MueAccum, s: &StepProfile) {
        let bw = (s.achieved_bytes_per_us() / self.peak_bytes_per_us).clamp(0.0, 1.0);
        let moved = (s.read_words + s.write_words) as f64;
        acc.add_kernel(
            (s.q_words - s.avoid_words) as f64,
            &KernelCost {
                time_us: s.time_us,
                moved_words: moved.max(s.q_words as f64) - s.avoid_words as f64,
                bandwidth_frac: bw,
                flop: s.flop as f64,
            },
        );
        if s.avoid_words > 0 {
            acc.add_movement(s.avoid_words as f64, bw);
        }
        if s.relayout_words > 0 {
            acc.add_movement(s.relayout_words as f64, bw);
        }
    }

    /// Plan-level measured MUE (D-weighted across every recorded step).
    #[must_use]
    pub fn plan_mue(&self) -> Mue {
        let mut acc = MueAccum::default();
        for s in self.steps() {
            self.accumulate(&mut acc, s);
        }
        acc.total()
    }

    /// Measured totals per operator class, in the audit's class order.
    #[must_use]
    pub fn per_class(&self) -> Vec<ClassProfile> {
        [
            OpClass::TensorContraction,
            OpClass::StatisticalNormalization,
            OpClass::Elementwise,
        ]
        .into_iter()
        .map(|class| {
            let mut acc = MueAccum::default();
            let (mut steps, mut time_us, mut moved_bytes) = (0usize, 0.0f64, 0u64);
            for s in self.steps().filter(|s| s.class == class) {
                steps += 1;
                time_us += s.time_us;
                moved_bytes += s.moved_bytes();
                self.accumulate(&mut acc, s);
            }
            ClassProfile {
                class,
                steps,
                time_us,
                moved_bytes,
                mue: acc.total(),
            }
        })
        .collect()
    }

    /// A wave's occupancy: summed busy time of its steps over
    /// `workers × wall` — 1.0 means every worker computed the whole wave.
    #[must_use]
    pub fn wave_occupancy(&self, w: &WaveProfile) -> f64 {
        let busy: f64 = w
            .steps
            .iter()
            .filter_map(|&si| self.step(si))
            .map(|s| s.time_us)
            .sum();
        (busy / (w.workers as f64 * w.wall_us.max(1e-9))).clamp(0.0, 1.0)
    }

    /// A wave's imbalance: slowest step over mean step time (1.0 is
    /// perfectly balanced; large values mean one straggler serializes the
    /// wave).
    #[must_use]
    pub fn wave_imbalance(&self, w: &WaveProfile) -> f64 {
        let times: Vec<f64> = w
            .steps
            .iter()
            .filter_map(|&si| self.step(si))
            .map(|s| s.time_us)
            .collect();
        if times.is_empty() {
            return 1.0;
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        times.iter().cloned().fold(0.0, f64::max) / mean.max(1e-9)
    }
}

/// Locks `sink` and records one step execution; used by the interpreter
/// hooks. A poisoned sink (a panicked worker) still records.
pub(crate) fn record_step(
    sink: &ProfilerSink,
    graph: &Graph,
    step: &PlanStep,
    si: usize,
    wave: Option<usize>,
    time_us: f64,
    sanitized: bool,
) {
    sink.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .record_step(graph, step, si, wave, time_us, sanitized);
}

/// Locks `sink` and records one wave dispatch; used by the wave-parallel
/// interpreter.
pub(crate) fn record_wave(
    sink: &ProfilerSink,
    wave: usize,
    steps: &[usize],
    workers: usize,
    wall_us: f64,
) {
    sink.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .record_wave(wave, steps, workers, wall_us);
}

/// Profiles `reps` serial executions of a plan against clones of `base`,
/// merging per-step times by minimum. The sanitizer is forced off so
/// timings measure the kernels, not the tracing shadow; dropout and the
/// other scalar knobs follow `opts`.
///
/// # Errors
///
/// Returns an error if any execution fails.
pub fn profile_plan(
    graph: &Graph,
    plan: &ExecutionPlan,
    base: &ExecState,
    opts: &ExecOptions,
    reps: usize,
) -> Result<PlanProfiler> {
    let sink: ProfilerSink = Mutex::new(PlanProfiler::new());
    for _ in 0..reps.max(1) {
        let mut state = base.clone();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let run = opts
            .to_builder()
            .profiler(Some(&sink))
            .sanitize(SanitizeMode::Off)
            .build();
        execute_plan(graph, plan, &mut state, &run, &mut rng)?;
        std::hint::black_box(state.env.len());
    }
    Ok(sink
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Profiles `reps` wave-parallel executions of a certified plan,
/// recording per-step times *and* per-wave wall times (occupancy /
/// imbalance). Same merge semantics as [`profile_plan`].
///
/// # Errors
///
/// Returns an error if the certificate is stale or any execution fails.
pub fn profile_plan_parallel(
    graph: &Graph,
    plan: &ExecutionPlan,
    cert: &RaceCertificate,
    base: &ExecState,
    opts: &ExecOptions,
    popts: &ParallelOptions,
    reps: usize,
) -> Result<PlanProfiler> {
    let sink: ProfilerSink = Mutex::new(PlanProfiler::new());
    for _ in 0..reps.max(1) {
        let mut state = base.clone();
        let run = opts
            .to_builder()
            .profiler(Some(&sink))
            .sanitize(SanitizeMode::Off)
            .build();
        execute_plan_parallel(graph, plan, cert, &mut state, &run, popts)?;
        std::hint::black_box(state.env.len());
    }
    Ok(sink
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner))
}

struct Anchor {
    time_us: f64,
    cfg: OpConfig,
}

/// A [`PerfSource`] that replays profiler-measured step timings into
/// configuration selection.
///
/// For each profiled operator the profiler observed exactly one
/// configuration — the one the plan declared (its *anchor*). The source
/// prices that anchor through the fallback once, then rescales every
/// other configuration's fallback estimate by
/// `measured_time / fallback_anchor_time`: the configuration that
/// actually ran reproduces its measured time exactly, and the rest keep
/// the fallback's *relative* cost structure under the measured absolute
/// scale. Operators the profiler never saw fall through to the fallback
/// unscaled.
pub struct ProfiledSource<'a> {
    anchors: HashMap<NodeId, Anchor>,
    anchor_price: Mutex<HashMap<NodeId, f64>>,
    fallback: &'a dyn PerfSource,
    name: String,
}

impl fmt::Debug for ProfiledSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfiledSource")
            .field("anchors", &self.anchors.len())
            .field("fallback", &self.fallback.name())
            .finish()
    }
}

impl<'a> ProfiledSource<'a> {
    /// Builds the source from a profiled run of `plan`: every step with a
    /// recorded time and a derivable anchor configuration (see
    /// `crate::analyze`'s step-config convention) becomes an anchor.
    #[must_use]
    pub fn from_profile(
        graph: &Graph,
        plan: &ExecutionPlan,
        profiler: &PlanProfiler,
        fallback: &'a dyn PerfSource,
    ) -> Self {
        let mut anchors = HashMap::new();
        for (si, step) in plan.steps.iter().enumerate() {
            let Some(sp) = profiler.step(si) else {
                continue;
            };
            let Some(cfg) = crate::analyze::step_config(graph, step) else {
                continue;
            };
            anchors.insert(
                step.op,
                Anchor {
                    time_us: sp.time_us,
                    cfg,
                },
            );
        }
        ProfiledSource {
            anchors,
            anchor_price: Mutex::new(HashMap::new()),
            name: format!("profiled({})", fallback.name()),
            fallback,
        }
    }

    /// How many operators carry a measured anchor.
    #[must_use]
    pub fn anchored_ops(&self) -> usize {
        self.anchors.len()
    }
}

impl PerfSource for ProfiledSource<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn measure(&self, graph: &Graph, op: NodeId, cfg: &OpConfig) -> Result<KernelCost> {
        let base = self.fallback.measure(graph, op, cfg)?;
        let Some(anchor) = self.anchors.get(&op) else {
            return Ok(base);
        };
        let anchor_us = {
            let cached = self
                .anchor_price
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get(&op)
                .copied();
            match cached {
                Some(v) => v,
                None => {
                    let v = self.fallback.measure(graph, op, &anchor.cfg)?.time_us;
                    self.anchor_price
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .insert(op, v);
                    v
                }
            }
        };
        let scale = anchor.time_us / anchor_us.max(1e-9);
        Ok(KernelCost {
            time_us: (base.time_us * scale).max(1e-6),
            ..base
        })
    }
}

/// The outcome of profile-guided re-selection.
#[derive(Debug)]
pub struct Reselection {
    /// The selection computed from profiled timings.
    pub selection: Selection,
    /// The adopted plan: the re-selected plan when it measured no slower
    /// than the natural plan, the natural plan otherwise.
    pub plan: ExecutionPlan,
    /// Profile of the natural plan (the measurement that drove selection).
    pub natural: PlanProfiler,
    /// Profile of the re-selected candidate plan.
    pub reselected: PlanProfiler,
    /// Whether the candidate was adopted.
    pub adopted: bool,
}

impl Reselection {
    /// Measured total of the natural plan, µs.
    #[must_use]
    pub fn natural_us(&self) -> f64 {
        self.natural.total_time_us()
    }

    /// Measured total of the re-selected candidate, µs.
    #[must_use]
    pub fn reselected_us(&self) -> f64 {
        self.reselected.total_time_us()
    }

    /// Measured total of the adopted plan, µs — by construction never
    /// worse than [`Reselection::natural_us`].
    #[must_use]
    pub fn best_us(&self) -> f64 {
        self.natural_us().min(self.reselected_us())
    }

    /// Measured improvement of the adopted plan over the natural plan, %.
    #[must_use]
    pub fn improvement_pct(&self) -> f64 {
        let n = self.natural_us();
        if n <= 0.0 {
            return 0.0;
        }
        (n - self.best_us()) / n * 100.0
    }
}

/// Profile-guided re-selection: profiles the natural plan on this host,
/// re-runs SSSP configuration selection with a [`ProfiledSource`] wrapping
/// `fallback`, lowers and profiles the selected candidate on the same
/// inputs, and adopts whichever plan measured faster (so the result's
/// measured total is never worse than the natural plan's).
///
/// `fwd_ops` are the forward operators to select over (execution order);
/// `reps` runs are merged by minimum per step; `seed` fixes the random
/// externals both plans execute against.
///
/// # Errors
///
/// Returns an error if profiling, the sweep, selection, or lowering fails.
#[allow(clippy::too_many_arguments)]
pub fn reselect(
    graph: &Graph,
    natural_plan: &ExecutionPlan,
    fwd_ops: &[NodeId],
    device: &DeviceSpec,
    fallback: &dyn PerfSource,
    sweep: SweepOptions,
    opts: &ExecOptions,
    reps: usize,
    seed: u64,
) -> Result<Reselection> {
    reselect_cost(
        graph,
        natural_plan,
        fwd_ops,
        device,
        fallback,
        sweep,
        opts,
        reps,
        seed,
        &CostModel::Flat,
    )
}

/// [`reselect`] under an explicit [`CostModel`]: with
/// [`CostModel::CacheAware`] the re-run SSSP prices each layout pair's
/// predicted extra DRAM words into its edge weight, so the candidate plan
/// prefers cache-resident layouts before it is ever profiled. The
/// adoption duel is unchanged — the result is still never worse than the
/// natural plan on this host.
///
/// # Errors
///
/// Same conditions as [`reselect`].
#[allow(clippy::too_many_arguments)]
pub fn reselect_cost(
    graph: &Graph,
    natural_plan: &ExecutionPlan,
    fwd_ops: &[NodeId],
    device: &DeviceSpec,
    fallback: &dyn PerfSource,
    sweep: SweepOptions,
    opts: &ExecOptions,
    reps: usize,
    seed: u64,
    cost_model: &CostModel,
) -> Result<Reselection> {
    let base = random_externals(graph, natural_plan, seed)?;
    let natural = profile_plan(graph, natural_plan, &base, opts, reps)?;
    if natural.steps().count() == 0 {
        return Err(TensorError::Unsupported(
            "profile-guided re-selection needs a non-empty profiled plan".into(),
        ));
    }
    let source = ProfiledSource::from_profile(graph, natural_plan, &natural, fallback);
    let sweeps = sweep_all(&source, graph, sweep)?;
    let selection = select_forward_cost(graph, device, fwd_ops, &sweeps, None, cost_model)?;
    let candidate = ExecutionPlan::lower(graph, &selection)?;
    let cbase = random_externals(graph, &candidate, seed)?;
    let reselected = profile_plan(graph, &candidate, &cbase, opts, reps)?;
    let adopted = reselected.total_time_us() <= natural.total_time_us();
    let plan = if adopted {
        candidate
    } else {
        natural_plan.clone()
    };
    Ok(Reselection {
        selection,
        plan,
        natural,
        reselected,
        adopted,
    })
}

/// A counting wrapper around the system allocator, for certifying the
/// arena interpreter's zero-allocation steady state (`tests/
/// alloc_discipline.rs`, `plan_profile --check`). Install as the global
/// allocator and diff [`CountingAlloc::allocations`] around the region
/// under test:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: CountingAlloc = CountingAlloc::new();
/// let before = ALLOC.allocations();
/// // ... steady-state calls ...
/// assert_eq!(ALLOC.allocations() - before, 0);
/// ```
///
/// Counters are process-wide and relaxed: they order with nothing, so
/// measure single-threaded regions (background threads parked in a
/// condvar wait, as the arena's worker pool keeps them, do not
/// allocate).
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: std::sync::atomic::AtomicU64,
    deallocs: std::sync::atomic::AtomicU64,
    reallocs: std::sync::atomic::AtomicU64,
    bytes: std::sync::atomic::AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter set (usable in `static` position).
    pub const fn new() -> Self {
        use std::sync::atomic::AtomicU64;
        CountingAlloc {
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            reallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Heap acquisitions so far: `alloc` + `alloc_zeroed` calls.
    pub fn allocations(&self) -> u64 {
        self.allocs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// `dealloc` calls so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// `realloc` calls so far (counted separately from acquisitions).
    pub fn reallocations(&self) -> u64 {
        self.reallocs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Bytes acquired so far (alloc + alloc_zeroed + realloc growth).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Every heap event so far — the number that must not move across a
    /// zero-allocation region.
    pub fn events(&self) -> u64 {
        self.allocations() + self.deallocations() + self.reallocations()
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers every operation to `System`, only bumping counters.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        self.allocs.fetch_add(1, Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        self.allocs.fetch_add(1, Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Relaxed);
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        use std::sync::atomic::Ordering::Relaxed;
        self.deallocs.fetch_add(1, Relaxed);
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        self.reallocs.fetch_add(1, Relaxed);
        self.bytes
            .fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::recipe::forward_ops;
    use crate::sanitize::certify;
    use crate::sweep::SimulatorSource;
    use xform_dataflow::{build, EncoderDims};

    fn fused_plan() -> (Graph, ExecutionPlan, Vec<NodeId>) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let fwd = forward_ops(&g, eg.dy);
        let plan = ExecutionPlan::natural(&g, &fwd).unwrap();
        (g, plan, fwd)
    }

    #[test]
    fn profiler_records_every_step_with_positive_time_and_bytes() {
        let (g, plan, _) = fused_plan();
        let base = random_externals(&g, &plan, 3).unwrap();
        let prof = profile_plan(&g, &plan, &base, &ExecOptions::default(), 2).unwrap();
        assert_eq!(prof.steps().count(), plan.steps.len());
        for s in prof.steps() {
            assert!(s.time_us > 0.0, "step {} has no time", s.step);
            assert!(s.moved_bytes() > 0, "step {} moved nothing", s.step);
            assert_eq!(s.runs, 2);
            assert!(!s.sanitized);
            let m = prof.measured_mue(s);
            assert!(
                m.value > 0.0 && m.value <= 100.0,
                "MUE {} out of range",
                m.value
            );
        }
        assert!(prof.total_time_us() > 0.0);
        assert!(prof.plan_mue().value > 0.0);
    }

    #[test]
    fn parallel_profile_records_waves_with_sane_occupancy() {
        let (g, plan, _) = fused_plan();
        let cert = certify(&g, &plan).unwrap();
        let base = random_externals(&g, &plan, 3).unwrap();
        let prof = profile_plan_parallel(
            &g,
            &plan,
            &cert,
            &base,
            &ExecOptions::default(),
            &ParallelOptions::default(),
            2,
        )
        .unwrap();
        assert_eq!(prof.waves().count(), cert.waves.len());
        let covered: usize = prof.waves().map(|w| w.steps.len()).sum();
        assert_eq!(covered, plan.steps.len());
        for w in prof.waves() {
            let occ = prof.wave_occupancy(w);
            assert!((0.0..=1.0).contains(&occ), "occupancy {occ}");
            assert!(prof.wave_imbalance(w) >= 1.0 - 1e-9);
        }
        for s in prof.steps() {
            assert!(s.wave.is_some(), "parallel profile must tag waves");
        }
    }

    #[test]
    fn profiled_source_reproduces_anchor_timings_and_scales_others() {
        let (g, plan, _) = fused_plan();
        let base = random_externals(&g, &plan, 3).unwrap();
        let prof = profile_plan(&g, &plan, &base, &ExecOptions::default(), 2).unwrap();
        let sim = SimulatorSource::default();
        let src = ProfiledSource::from_profile(&g, &plan, &prof, &sim);
        assert!(src.anchored_ops() > 0);
        for (si, step) in plan.steps.iter().enumerate() {
            let Some(cfg) = crate::analyze::step_config(&g, step) else {
                continue;
            };
            let sp = prof.step(si).unwrap();
            let priced = src.measure(&g, step.op, &cfg).unwrap();
            let rel = (priced.time_us - sp.time_us).abs() / sp.time_us.max(1e-9);
            assert!(
                rel < 1e-6,
                "anchor config must reproduce its measured time: {} vs {}",
                priced.time_us,
                sp.time_us
            );
        }
    }

    #[test]
    fn reselection_is_never_worse_than_natural_by_construction() {
        let (g, plan, fwd) = fused_plan();
        let sim = SimulatorSource::default();
        let r = reselect(
            &g,
            &plan,
            &fwd,
            &DeviceSpec::v100(),
            &sim,
            SweepOptions {
                max_configs: Some(16),
                threads: 1,
            },
            &ExecOptions::default(),
            2,
            7,
        )
        .unwrap();
        assert!(r.best_us() <= r.natural_us() + 1e-9);
        assert!(r.improvement_pct() >= -1e-9);
        if r.adopted {
            assert!((r.best_us() - r.reselected_us()).abs() < 1e-9);
        }
    }
}
