//! Iteration spaces and fusion-compatibility rules (Sec. IV).
//!
//! Every operator has *independent* dimensions (parallelizable over GPU
//! blocks/threads) and possibly *reduction* dimensions. Two operators can
//! be fused if their iteration-space implementations are compatible: they
//! are the same, or the only difference is that one performs a reduction.
//! This module derives iteration spaces from dataflow-graph operators and
//! decides compatibility, classifying matches into the paper's four
//! structural patterns (Fig. 3).

use xform_dataflow::{Graph, NodeId, OpKind};
use xform_tensor::{Result, TensorError};

/// The iteration space of one operator: independent and reduction
/// dimensions with sizes, in a canonical (sorted) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterSpace {
    /// Parallelizable dimensions `(axis, size)`.
    pub independent: Vec<(char, usize)>,
    /// Reduced dimensions `(axis, size)`.
    pub reduction: Vec<(char, usize)>,
}

impl IterSpace {
    fn sorted(mut independent: Vec<(char, usize)>, mut reduction: Vec<(char, usize)>) -> Self {
        independent.sort_unstable();
        reduction.sort_unstable();
        IterSpace {
            independent,
            reduction,
        }
    }

    /// Whether this space performs any reduction.
    pub fn has_reduction(&self) -> bool {
        !self.reduction.is_empty()
    }

    /// All dimensions (independent ∪ reduction), sorted.
    pub fn all_dims(&self) -> Vec<(char, usize)> {
        let mut v = self.independent.clone();
        v.extend(self.reduction.iter().copied());
        v.sort_unstable();
        v
    }
}

/// Derives the iteration space of an operator from the graph.
///
/// * element-wise operators iterate their output axes;
/// * softmax/layer-norm style operators iterate all input axes and reduce
///   over the normalized axis (their output keeps the axis, but the
///   implementation reduces along it);
/// * bias-gradient / layer-norm-dW operators iterate their output axes and
///   reduce over the remaining input axes;
/// * tensor contractions are rejected — the paper never fuses them with
///   other operator classes (Sec. IV-C handles them separately).
///
/// # Errors
///
/// Returns an error for contractions or ids that are not operators.
pub fn op_iter_space(graph: &Graph, op: NodeId) -> Result<IterSpace> {
    let node = graph
        .op(op)
        .ok_or_else(|| TensorError::Unsupported(format!("{op} is not an operator")))?;
    if matches!(
        node.kind,
        OpKind::Einsum(_) | OpKind::ContractionEpilogue { .. }
    ) {
        return Err(TensorError::Unsupported(format!(
            "`{}` is a tensor contraction; its iteration space is handled by the GEMM path",
            node.name
        )));
    }
    let first = |ids: Vec<NodeId>| -> Result<Vec<(char, usize)>> {
        let d = ids
            .first()
            .and_then(|&i| graph.data(i))
            .ok_or_else(|| TensorError::Unsupported(format!("`{}` lacks data", node.name)))?;
        Ok(d.shape
            .axes()
            .iter()
            .zip(d.shape.sizes())
            .map(|(a, &n)| (a.name(), n))
            .collect())
    };
    let in_dims = first(graph.inputs_of(op))?;
    let out_dims = first(graph.outputs_of(op))?;
    match &node.kind {
        OpKind::BiasGrad { .. } | OpKind::LayerNormGradW { .. } => {
            // reduce input axes that are absent from the output
            let reduction: Vec<(char, usize)> = in_dims
                .iter()
                .copied()
                .filter(|(a, _)| !out_dims.iter().any(|(o, _)| o == a))
                .collect();
            Ok(IterSpace::sorted(out_dims, reduction))
        }
        kind => {
            if let Some(axis) = kind.reduce_axis() {
                let r = axis.name();
                let reduction: Vec<(char, usize)> =
                    in_dims.iter().copied().filter(|(a, _)| *a == r).collect();
                let independent: Vec<(char, usize)> =
                    in_dims.iter().copied().filter(|(a, _)| *a != r).collect();
                Ok(IterSpace::sorted(independent, reduction))
            } else {
                Ok(IterSpace::sorted(out_dims, Vec::new()))
            }
        }
    }
}

/// The paper's four structural fusion patterns (Fig. 3), from the
/// perspective of fusing a `producer` with a `consumer` of its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusePattern {
    /// Identical iteration spaces with no reductions (pure element-wise
    /// chains, e.g. bias + dropout).
    SameSpace,
    /// The producer reduces, the consumer maps over the same independent
    /// space (e.g. layernorm followed by dropout backward: `BLNRD`).
    ProducerReduces,
    /// The consumer reduces over the producer's space, either along one
    /// axis (softmax after scaling: `SM`) or down to a summary (bias dW
    /// after ReLU dX: `BDRB`).
    ConsumerReduces,
    /// Both reduce over compatible spaces (e.g. the two layer-norm dW
    /// reductions of `BSB`, which share independent dims).
    BothReduce,
}

/// Decides whether two iteration spaces are fusion-compatible, and under
/// which pattern. `None` means the kernels cannot share an iteration space.
pub fn fusion_compatible(producer: &IterSpace, consumer: &IterSpace) -> Option<FusePattern> {
    let same_independent = producer.independent == consumer.independent;
    match (producer.has_reduction(), consumer.has_reduction()) {
        (false, false) => {
            if same_independent {
                Some(FusePattern::SameSpace)
            } else if subsumes(&producer.independent, consumer) {
                // consumer iterates a subset: partial fusion of the shared
                // outermost dimensions (Sec. IV "partial fusion")
                Some(FusePattern::SameSpace)
            } else {
                None
            }
        }
        (true, false) => {
            // Producer's full space (independent + reduced) must cover the
            // consumer's independent space.
            if producer.all_dims() == consumer.independent || same_independent {
                Some(FusePattern::ProducerReduces)
            } else {
                None
            }
        }
        (false, true) => {
            if producer.independent == consumer.all_dims()
                || subsumes(&producer.independent, consumer)
            {
                Some(FusePattern::ConsumerReduces)
            } else {
                None
            }
        }
        (true, true) => {
            if same_independent && producer.reduction == consumer.reduction {
                Some(FusePattern::BothReduce)
            } else {
                None
            }
        }
    }
}

/// Whether `space`'s dimensions (independent + reduction) are exactly the
/// `dims` set — i.e. the consumer re-partitions the producer's iteration
/// space into kept and reduced dimensions.
fn subsumes(dims: &[(char, usize)], space: &IterSpace) -> bool {
    space.all_dims() == dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use xform_dataflow::{build, DataRole, EncoderDims};
    use xform_tensor::{Axis, Shape};

    fn enc() -> xform_dataflow::Graph {
        build::encoder(&EncoderDims::bert_large()).graph
    }

    fn space(g: &xform_dataflow::Graph, name: &str) -> IterSpace {
        op_iter_space(g, g.op_by_name(name).unwrap()).unwrap()
    }

    #[test]
    fn elementwise_space_is_output_axes() {
        let g = enc();
        let s = space(&g, "Dropout 1");
        assert!(!s.has_reduction());
        assert_eq!(s.independent.len(), 3); // i, b, j
    }

    #[test]
    fn softmax_space_reduces_k() {
        let g = enc();
        let s = space(&g, "Scaled softmax");
        assert_eq!(s.reduction, vec![('k', 512)]);
        assert_eq!(s.independent.len(), 3); // h, b, j
    }

    #[test]
    fn bias_grad_space_reduces_non_bias_axes() {
        let g = enc();
        let s = space(&g, "Bias 1 dW");
        assert_eq!(s.independent, vec![('u', 4096)]);
        assert_eq!(s.reduction, vec![('b', 8), ('j', 512)]);
    }

    #[test]
    fn contractions_are_rejected() {
        let g = enc();
        assert!(op_iter_space(&g, g.op_by_name("Linear 1").unwrap()).is_err());
    }

    #[test]
    fn sm_pattern_consumer_maps_after_reduction() {
        // softmax (reduces k) then dropout (maps over h,b,j,k)
        let g = enc();
        let sm = space(&g, "Scaled softmax");
        let drop = space(&g, "Dropout att");
        assert_eq!(
            fusion_compatible(&sm, &drop),
            Some(FusePattern::ProducerReduces)
        );
    }

    #[test]
    fn drln_chain_is_compatible() {
        let g = enc();
        let bias = space(&g, "Output bias");
        let drop = space(&g, "Dropout 1");
        let resid = space(&g, "Residual 1");
        let ln = space(&g, "LayerNorm 1");
        assert_eq!(
            fusion_compatible(&bias, &drop),
            Some(FusePattern::SameSpace)
        );
        assert_eq!(
            fusion_compatible(&drop, &resid),
            Some(FusePattern::SameSpace)
        );
        assert_eq!(
            fusion_compatible(&resid, &ln),
            Some(FusePattern::ConsumerReduces)
        );
    }

    #[test]
    fn bdrb_tail_reduction_is_compatible() {
        let g = enc();
        let relu_dx = space(&g, "ReLU dX");
        let bias_dw = space(&g, "Bias 1 dW");
        assert_eq!(
            fusion_compatible(&relu_dx, &bias_dw),
            Some(FusePattern::ConsumerReduces)
        );
    }

    #[test]
    fn mismatched_spaces_do_not_fuse() {
        // attention-space dropout vs embedding-space dropout
        let g = enc();
        let a = space(&g, "Dropout att");
        let b = space(&g, "Dropout 1");
        assert_eq!(fusion_compatible(&a, &b), None);
    }

    #[test]
    fn both_reduce_requires_matching_reductions() {
        let mut g = xform_dataflow::Graph::new();
        let s = Shape::new([('b', 2), ('i', 4)]).unwrap();
        let si = Shape::new([('i', 4)]).unwrap();
        let x = g.add_data("x", s.clone(), DataRole::Input);
        let y1 = g.add_data("y1", si.clone(), DataRole::Output);
        let o1 = g.add_op(
            "ln dW",
            xform_dataflow::OpKind::LayerNormGradW { axis: Axis('i') },
            &[x],
            &[y1],
        );
        // LayerNormGradW outputs over i, reduces b — self-compatible
        let sp = op_iter_space(&g, o1).unwrap();
        assert_eq!(fusion_compatible(&sp, &sp), Some(FusePattern::BothReduce));
    }
}
