//! Global configuration selection (Sec. VI-A, Fig. 6).
//!
//! A configuration graph is built over the forward pass: for every data
//! container along the flowing-tensor chain there is one node per layout
//! permutation, and each operator contributes edges from its flowing-input
//! layouts to its output layouts, weighted by the best sweep time of any
//! configuration with that layout pair. Explicit transpose edges between
//! layouts of the same container let the optimizer trade a layout change
//! against downstream gains ("one cannot simply pick a single data layout a
//! priori"). A shortest-path pass over this DAG — linear time, since
//! operators are processed in execution order — yields the global
//! configuration.
//!
//! Per the paper's simplifications, residual side inputs are omitted and
//! selection runs on the forward graph only; backward operators take their
//! per-op best configurations.

use std::collections::HashMap;

use xform_dataflow::{Graph, NodeId};
use xform_gpusim::DeviceSpec;
use xform_tensor::Result;

use crate::cachemodel::{op_dram_words, CacheGeometry};
use crate::sweep::{ConfigTiming, SweepResult};

/// How SSSP edges are priced.
#[derive(Debug, Clone, Default)]
pub enum CostModel {
    /// Sweep time only — every transferred word is equally expensive (the
    /// paper's flat accounting).
    #[default]
    Flat,
    /// Sweep time plus a static cache penalty: a layout pair whose swept
    /// operands stride against the line granularity pays the predicted
    /// extra DRAM words (see [`op_dram_words`]) at streaming bandwidth.
    /// Lets [`crate::profile::reselect`] prefer cache-resident layouts
    /// before ever profiling them.
    CacheAware(CacheGeometry),
}

impl CostModel {
    /// Extra edge cost (µs) of running `op` with this layout pair, beyond
    /// its sweep time. Zero for [`CostModel::Flat`].
    fn edge_penalty_us(
        &self,
        graph: &Graph,
        device: &DeviceSpec,
        op: NodeId,
        flowing_input: usize,
        in_layout: &str,
        out_layout: &str,
    ) -> f64 {
        match self {
            CostModel::Flat => 0.0,
            CostModel::CacheAware(geom) => {
                let wb = device.word_bytes as u64;
                match op_dram_words(graph, op, flowing_input, in_layout, out_layout, geom, wb) {
                    Some((useful, dram)) if dram > useful => device
                        .stream_time_us(((dram - useful) * wb) as f64, device.stream_efficiency),
                    _ => 0.0,
                }
            }
        }
    }
}

/// The outcome of configuration selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Chosen configuration per forward operator, in execution order.
    pub per_op: Vec<(NodeId, ConfigTiming)>,
    /// Total forward kernel time of the selected path (µs), including any
    /// transpose insertions.
    pub total_us: f64,
    /// Sum of each op's unconstrained best (the paper compares its
    /// selection against this and lands within 4%).
    pub per_op_best_us: f64,
    /// Number of explicit transposes the path inserts.
    pub transposes: usize,
    /// Chosen (flowing-input layout, output layout) per forward operator,
    /// aligned with `per_op` (for Fig. 6-style path dumps).
    pub layouts: Vec<(NodeId, String, String)>,
}

/// Fraction of peak bandwidth an explicit permutation (relayout) kernel
/// achieves. Shared by path selection's transpose pricing and the static
/// plan audit so both charge relayouts identically.
pub const RELAYOUT_BANDWIDTH_FRAC: f64 = 0.55;

/// Cost (µs) of an explicit relayout of `words` words: a read and a write
/// at the penalized bandwidth a permutation kernel achieves.
pub fn transpose_cost_us(device: &DeviceSpec, words: u64) -> f64 {
    let bytes = 2.0 * words as f64 * device.word_bytes as f64;
    device.kernel_launch_us + device.stream_time_us(bytes, RELAYOUT_BANDWIDTH_FRAC)
}

/// One relaxed label on a data container: cumulative cost, predecessor
/// operator index and that operator's chosen output layout, and whether a
/// transpose was inserted to reach this layout.
#[derive(Debug, Clone)]
struct Label {
    cost: f64,
    pred: Option<(usize, String)>,
    transposed: bool,
}

/// Per-operator transition table: chosen output layout → best cumulative
/// cost with the (input layout, timing) that achieves it.
#[derive(Debug, Clone)]
struct Transition {
    cost: f64,
    in_layout: String,
    transposed: bool,
    pred: Option<(usize, String)>,
    timing: ConfigTiming,
}

/// Runs shortest-path configuration selection over the forward operators
/// (in execution order) using their sweep results.
///
/// This is a dynamic program over (data container, layout) states — the
/// linear-time SSSP of Sec. VI-A, since the forward flow is a DAG
/// processed in topological order. Operators whose flowing input is not
/// produced by an earlier selected operator start a fresh chain (cost 0
/// over all layouts), which covers the encoder input.
///
/// # Errors
///
/// Returns an error if a sweep result is missing for an op or an op has no
/// feasible layout pair.
pub fn select_forward(
    graph: &Graph,
    device: &DeviceSpec,
    fwd_ops: &[NodeId],
    sweeps: &HashMap<NodeId, SweepResult>,
) -> Result<Selection> {
    select_forward_from(graph, device, fwd_ops, sweeps, None)
}

/// [`select_forward`] with an optional *entry layout*: when a chain starts
/// fresh (the graph input), the entry layout is available at zero cost and
/// every other layout at one transpose. This is how stacked layers chain:
/// layer N+1's entry is layer N's selected output layout.
///
/// # Errors
///
/// Same conditions as [`select_forward`].
pub fn select_forward_from(
    graph: &Graph,
    device: &DeviceSpec,
    fwd_ops: &[NodeId],
    sweeps: &HashMap<NodeId, SweepResult>,
    entry_layout: Option<&str>,
) -> Result<Selection> {
    select_forward_cost(
        graph,
        device,
        fwd_ops,
        sweeps,
        entry_layout,
        &CostModel::Flat,
    )
}

/// [`select_forward_from`] under an explicit [`CostModel`]: with
/// [`CostModel::CacheAware`], predicted extra DRAM words of each layout
/// pair are priced into the SSSP edge weights, steering the path toward
/// cache-resident layouts before any measurement exists.
///
/// # Errors
///
/// Same conditions as [`select_forward`].
pub fn select_forward_cost(
    graph: &Graph,
    device: &DeviceSpec,
    fwd_ops: &[NodeId],
    sweeps: &HashMap<NodeId, SweepResult>,
    entry_layout: Option<&str>,
    cost_model: &CostModel,
) -> Result<Selection> {
    let mut states: HashMap<NodeId, HashMap<String, Label>> = HashMap::new();
    let mut transitions: Vec<HashMap<String, Transition>> = Vec::with_capacity(fwd_ops.len());
    let mut per_op_best = 0.0f64;

    for (op_idx, &op) in fwd_ops.iter().enumerate() {
        let sweep = sweeps.get(&op).ok_or_else(|| {
            xform_tensor::TensorError::Unsupported(format!("missing sweep for {op}"))
        })?;
        per_op_best += sweep.best.time_us;
        let inputs = graph.inputs_of(op);
        let flowing = inputs.get(sweep.flowing_input).copied();

        // Build the relaxed incoming frontier: existing labels plus
        // transpose edges to every input layout this op can consume.
        let upstream = flowing.and_then(|d| states.get(&d).cloned());
        let in_frontier: HashMap<String, Label> = match upstream {
            Some(st) if !st.is_empty() => {
                let words = flowing
                    .and_then(|d| graph.data(d))
                    .map(|d| d.shape.num_elements() as u64)
                    .unwrap_or(0);
                let tcost = transpose_cost_us(device, words);
                let cheapest = st
                    .values()
                    .min_by(|a, b| a.cost.total_cmp(&b.cost))
                    .cloned()
                    .expect("non-empty frontier");
                let mut relaxed = st;
                for (in_l, _) in sweep.per_io.keys() {
                    let candidate = Label {
                        cost: cheapest.cost + tcost,
                        pred: cheapest.pred.clone(),
                        transposed: true,
                    };
                    match relaxed.get(in_l) {
                        Some(l) if l.cost <= candidate.cost => {}
                        _ => {
                            relaxed.insert(in_l.clone(), candidate);
                        }
                    }
                }
                relaxed
            }
            _ => HashMap::new(),
        };

        // Relax through this op's (in, out) layout pairs.
        let entry_tcost = flowing
            .and_then(|d| graph.data(d))
            .map(|d| transpose_cost_us(device, d.shape.num_elements() as u64))
            .unwrap_or(0.0);
        let mut table: HashMap<String, Transition> = HashMap::new();
        for ((in_l, out_l), timing) in &sweep.per_io {
            let (in_cost, pred, transposed) = if in_frontier.is_empty() {
                match entry_layout {
                    // a fresh chain with a pinned entry layout: that layout
                    // is free, any other costs one transpose
                    Some(e) if e.len() == in_l.len() => {
                        if *in_l == e {
                            (0.0, None, false)
                        } else {
                            (entry_tcost, None, true)
                        }
                    }
                    _ => (0.0, None, false),
                }
            } else {
                match in_frontier.get(in_l) {
                    Some(l) => (l.cost, l.pred.clone(), l.transposed),
                    None => continue,
                }
            };
            let total = in_cost
                + timing.time_us
                + cost_model.edge_penalty_us(graph, device, op, sweep.flowing_input, in_l, out_l);
            match table.get(out_l) {
                Some(t) if t.cost <= total => {}
                _ => {
                    table.insert(
                        out_l.clone(),
                        Transition {
                            cost: total,
                            in_layout: in_l.clone(),
                            transposed,
                            pred,
                            timing: timing.clone(),
                        },
                    );
                }
            }
        }
        if table.is_empty() {
            return Err(xform_tensor::TensorError::Unsupported(format!(
                "no feasible layout pair for `{}`",
                sweep.name
            )));
        }

        // Propagate labels to every output container; sibling outputs of a
        // fused kernel share the selected layout positionally.
        let outputs = graph.outputs_of(op);
        let primary_out = outputs.first().copied();
        for &o in &outputs {
            let mut st: HashMap<String, Label> = HashMap::new();
            for (out_l, t) in &table {
                let key = match (primary_out.and_then(|p| graph.data(p)), graph.data(o)) {
                    (Some(po_d), Some(o_d))
                        if po_d.shape.rank() == o_d.shape.rank() && po_d.name != o_d.name =>
                    {
                        translate_layout(out_l, &po_d.shape.spec(), &o_d.shape.spec())
                    }
                    _ => out_l.clone(),
                };
                st.insert(
                    key,
                    Label {
                        cost: t.cost,
                        pred: Some((op_idx, out_l.clone())),
                        transposed: false,
                    },
                );
            }
            states.insert(o, st);
        }
        transitions.push(table);
    }

    // Backtrack from the cheapest final label.
    let mut per_op: Vec<Option<ConfigTiming>> = vec![None; fwd_ops.len()];
    let mut chosen_layouts: Vec<Option<(String, String)>> = vec![None; fwd_ops.len()];
    let mut transposes = 0usize;
    let mut total_us = 0.0f64;
    if let Some(last) = transitions.last() {
        let (mut out_l, mut t) = last
            .iter()
            .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
            .map(|(k, v)| (k.clone(), v.clone()))
            .expect("non-empty transition table");
        total_us = t.cost;
        let mut idx = fwd_ops.len() - 1;
        loop {
            per_op[idx] = Some(t.timing.clone());
            chosen_layouts[idx] = Some((t.in_layout.clone(), out_l.clone()));
            if t.transposed {
                transposes += 1;
            }
            match &t.pred {
                Some((p_idx, p_out)) => {
                    idx = *p_idx;
                    out_l = p_out.clone();
                    t = transitions[idx][&out_l].clone();
                }
                None => break,
            }
        }
    }
    // Ops off the backtracked path (side branches whose output joins the
    // main chain as a secondary operand) take their per-op best, and their
    // kernel time is added to the total since they still execute.
    let per_op: Vec<(NodeId, ConfigTiming)> = fwd_ops
        .iter()
        .zip(per_op)
        .map(|(&op, chosen)| {
            let timing = chosen.unwrap_or_else(|| {
                let best = sweeps[&op].best.clone();
                total_us += best.time_us;
                best
            });
            (op, timing)
        })
        .collect();
    let layouts: Vec<(NodeId, String, String)> = fwd_ops
        .iter()
        .zip(chosen_layouts)
        .map(|(&op, l)| {
            let (i, o) = l.unwrap_or_else(|| {
                let b = &sweeps[&op].best.cfg;
                (b.in_spec.clone(), b.out_spec.clone())
            });
            (op, i, o)
        })
        .collect();
    Ok(Selection {
        per_op,
        total_us,
        per_op_best_us: per_op_best,
        transposes,
        layouts,
    })
}

/// Translates a layout spec from one tensor's axis alphabet to another of
/// the same rank, positionally: the permutation pattern is kept, the
/// letters are re-drawn from the target's logical spec.
pub fn translate_layout(layout: &str, from_logical: &str, to_logical: &str) -> String {
    layout
        .chars()
        .map(|c| {
            from_logical
                .find(c)
                .and_then(|i| to_logical.chars().nth(i))
                .unwrap_or(c)
        })
        .collect()
}

/// Selection for a stack of identical layers: layer N+1's entry layout is
/// pinned to layer N's selected output layout (the layers share shapes, so
/// the single-layer sweep tables are reused). Interior layers converge to
/// a steady-state configuration after the first boundary.
#[derive(Debug, Clone)]
pub struct StackedSelection {
    /// Per-layer selected forward cost (µs), boundary transposes included.
    pub per_layer_us: Vec<f64>,
    /// Total across the stack.
    pub total_us: f64,
    /// The layer index from which configurations repeat verbatim.
    pub steady_state_from: usize,
    /// The per-layer selections.
    pub layers: Vec<Selection>,
}

/// Runs chained selection over `n` identical layers.
///
/// # Errors
///
/// Propagates [`select_forward_from`] failures; `n` must be ≥ 1.
///
/// # Examples
///
/// ```
/// use xform_core::fusion::{apply_plan, encoder_fusion_plan};
/// use xform_core::recipe::forward_ops;
/// use xform_core::selection::select_stacked;
/// use xform_core::sweep::{sweep_all, SimulatorSource, SweepOptions};
/// use xform_dataflow::{build, EncoderDims};
/// use xform_gpusim::DeviceSpec;
///
/// let mut g = build::encoder(&EncoderDims::tiny()).graph;
/// apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
/// let device = DeviceSpec::v100();
/// let sweeps = sweep_all(&SimulatorSource { device: device.clone() }, &g,
///                        SweepOptions { max_configs: Some(300), ..SweepOptions::default() }).unwrap();
/// let fwd = forward_ops(&g, g.data_by_name("dy").unwrap());
/// let stack = select_stacked(&g, &device, &fwd, &sweeps, 3).unwrap();
/// assert_eq!(stack.per_layer_us.len(), 3);
/// ```
pub fn select_stacked(
    graph: &Graph,
    device: &DeviceSpec,
    fwd_ops: &[NodeId],
    sweeps: &HashMap<NodeId, SweepResult>,
    n: usize,
) -> Result<StackedSelection> {
    if n == 0 {
        return Err(xform_tensor::TensorError::Unsupported(
            "stack needs at least one layer".into(),
        ));
    }
    let mut layers = Vec::with_capacity(n);
    let mut per_layer = Vec::with_capacity(n);
    let mut entry: Option<String> = None;
    let mut steady_state_from = 0usize;
    for i in 0..n {
        let sel = select_forward_from(graph, device, fwd_ops, sweeps, entry.as_deref())?;
        per_layer.push(sel.total_us);
        entry = sel.layouts.last().map(|(_, _, out)| out.clone());
        if i > 0 {
            let same = layers
                .last()
                .map(|prev: &Selection| prev.layouts == sel.layouts)
                .unwrap_or(false);
            if same && steady_state_from == 0 {
                steady_state_from = i;
            }
        }
        layers.push(sel);
    }
    Ok(StackedSelection {
        total_us: per_layer.iter().sum(),
        per_layer_us: per_layer,
        steady_state_from,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::recipe::forward_ops;
    use crate::sweep::{sweep_all, SimulatorSource, SweepOptions};
    use xform_dataflow::{build, EncoderDims};

    #[test]
    fn translate_layout_is_positional() {
        assert_eq!(translate_layout("jbp", "pbj", "kbq"), "qbk");
        assert_eq!(translate_layout("phbj", "phbj", "whbk"), "whbk");
        assert_eq!(translate_layout("abc", "abc", "abc"), "abc");
    }

    #[test]
    fn transpose_cost_scales_with_volume() {
        let d = DeviceSpec::v100();
        let small = transpose_cost_us(&d, 1 << 10);
        let big = transpose_cost_us(&d, 1 << 24);
        assert!(big > 10.0 * small);
    }

    #[test]
    fn cache_aware_selection_is_well_formed_and_never_cheaper() {
        let e = build::encoder(&EncoderDims::tiny());
        let mut g = e.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let device = DeviceSpec::v100();
        let src = SimulatorSource {
            device: device.clone(),
        };
        let sweeps = sweep_all(
            &src,
            &g,
            SweepOptions {
                max_configs: Some(500),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let fwd = forward_ops(&g, g.data_by_name("dy").unwrap());
        let flat = select_forward(&g, &device, &fwd, &sweeps).unwrap();
        let aware = select_forward_cost(
            &g,
            &device,
            &fwd,
            &sweeps,
            None,
            &CostModel::CacheAware(crate::cachemodel::CacheGeometry::for_device(&device)),
        )
        .unwrap();
        assert_eq!(aware.per_op.len(), flat.per_op.len());
        // penalties are non-negative, so the cache-aware optimum can never
        // undercut the flat one
        assert!(aware.total_us + 1e-9 >= flat.total_us);
    }

    fn selected_encoder() -> (Selection, f64) {
        let e = build::encoder(&EncoderDims::bert_large());
        let mut g = e.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let device = DeviceSpec::v100();
        let src = SimulatorSource {
            device: device.clone(),
        };
        let sweeps = sweep_all(
            &src,
            &g,
            SweepOptions {
                max_configs: Some(20_000),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let fwd = forward_ops(&g, g.data_by_name("dy").unwrap());
        let sel = select_forward(&g, &device, &fwd, &sweeps).unwrap();
        let n_fwd = fwd.len() as f64;
        (sel, n_fwd)
    }

    #[test]
    fn selection_total_close_to_per_op_best() {
        let (sel, n_fwd) = selected_encoder();
        assert_eq!(sel.per_op.len() as f64, n_fwd);
        // Sec. VI-A: the selected configuration is within 4% of the sum of
        // unconstrained per-op bests. Allow slack for sampled sweeps.
        let gap = sel.total_us / sel.per_op_best_us - 1.0;
        assert!(gap >= -1e-9, "selection beat the per-op lower bound: {gap}");
        assert!(gap < 0.15, "selection {}% above per-op best", gap * 100.0);
    }

    #[test]
    fn stacked_selection_converges_and_chains() {
        let e = build::encoder(&EncoderDims::bert_large());
        let mut g = e.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let device = DeviceSpec::v100();
        let src = SimulatorSource {
            device: device.clone(),
        };
        let sweeps = sweep_all(
            &src,
            &g,
            SweepOptions {
                max_configs: Some(8_000),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let fwd = forward_ops(&g, g.data_by_name("dy").unwrap());
        let stack = select_stacked(&g, &device, &fwd, &sweeps, 4).unwrap();
        assert_eq!(stack.per_layer_us.len(), 4);
        // interior layers settle into a steady state
        assert!(stack.steady_state_from >= 1);
        assert_eq!(stack.layers[2].layouts, stack.layers[3].layouts);
        // chaining never beats n independent (unconstrained-entry) layers
        let single = select_forward(&g, &device, &fwd, &sweeps).unwrap();
        assert!(stack.total_us + 1e-6 >= 4.0 * single.total_us * 0.999);
        // and it should be within a transpose or two of them
        assert!(
            stack.total_us < 4.0 * single.total_us * 1.1,
            "stack {} vs 4×single {}",
            stack.total_us,
            4.0 * single.total_us
        );
    }

    #[test]
    fn selection_covers_all_forward_ops_in_order() {
        let (sel, _) = selected_encoder();
        // total is the accumulated path cost at the last op: at least the
        // kernel times along the way
        let sum_kernels: f64 = sel.per_op.iter().map(|(_, t)| t.time_us).sum();
        assert!(sel.total_us >= sum_kernels * 0.99);
    }
}
