//! A real-measurement [`PerfSource`]: prices operator configurations by
//! timing actual kernels on the host CPU instead of querying the V100
//! model.
//!
//! This demonstrates the paper's Sec. VIII claim that the recipe is
//! hardware-agnostic — the fuse → sweep → select pipeline only consumes
//! `(configuration → runtime)` pairs, and this source supplies them from
//! measurements:
//!
//! * **tensor contractions** execute the real einsum engine
//!   ([`xform_tensor::contract`]) with the operands physically stored in
//!   the configuration's layouts;
//! * **forward element-wise / normalization / fused kernels** execute the
//!   *real kernel* through the schedule interpreter of [`crate::plan`]:
//!   the operator is lowered to a single [`crate::plan::PlanStep`] with
//!   the configuration's layouts, its operands are materialized in those
//!   layouts, and [`crate::plan::execute_step`] is timed — so sweeps and
//!   the canned executors price exactly the same code path;
//! * **backward kernels** (which the forward-only interpreter does not
//!   dispatch) execute a *representative strided sweep*: the kernel's
//!   exact tensors are allocated in the configuration's layouts and walked
//!   in the iteration order the configuration implies (reduction lane
//!   innermost when the warp/vector axes say so), reading every input word
//!   and writing every output word. This reproduces on the CPU cache
//!   hierarchy the access-pattern effects the GPU model captures
//!   analytically — a microbenchmark of the kernel's memory behaviour,
//!   which is what dominates these operators (Table I).
//!
//! Timings are medians over `repetitions` runs. Because real measurement
//! is ~10⁶× slower than the analytical model, use small dimensions and
//! capped sweeps (see `SweepOptions::max_configs`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xform_dataflow::{Graph, NodeId, OpKind};
use xform_gpusim::opmodel::OpConfig;
use xform_gpusim::KernelCost;
use xform_tensor::contract::contract;
use xform_tensor::{Layout, Result, Shape, Tensor, TensorError};

use crate::plan::{execute_step, step_is_interpretable, ExecOptions, ExecState, ExecutionPlan};
use crate::sweep::PerfSource;

/// The CPU measurement source.
#[derive(Debug, Clone)]
pub struct CpuSource {
    /// Timed repetitions per configuration (median taken).
    pub repetitions: usize,
    /// Calibrated streaming rate of this machine, bytes per µs, measured
    /// once at construction with a contiguous sweep. Used to report
    /// `bandwidth_frac` relative to the machine's own peak.
    peak_bytes_per_us: f64,
}

impl CpuSource {
    /// Creates a source and calibrates the host's streaming bandwidth.
    pub fn new(repetitions: usize) -> Self {
        let peak = calibrate_stream_rate();
        CpuSource {
            repetitions: repetitions.max(1),
            peak_bytes_per_us: peak,
        }
    }

    fn time_once(&self, f: &mut dyn FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..self.repetitions {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        best
    }

    /// Times the real kernel through the schedule interpreter: lowers `op`
    /// to a single plan step with the configuration's layouts, materializes
    /// random operands in those layouts, and times [`execute_step`] alone
    /// (environment cloning and RNG seeding happen outside the timed
    /// region). Returns `None` for operators the forward-only interpreter
    /// cannot dispatch — the caller falls back to the synthetic sweep.
    fn try_interpreted(&self, graph: &Graph, op: NodeId, cfg: &OpConfig) -> Option<f64> {
        let step = ExecutionPlan::single_step(graph, op, cfg).ok()?;
        if matches!(step.kind, OpKind::Einsum(_)) || !step_is_interpretable(&step.kind, &step.name)
        {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let dist = rand::distributions::Uniform::new(-1.0f32, 1.0);
        let mut base = ExecState::default();
        for operand in &step.inputs {
            let shape = graph.data(operand.data)?.shape.clone();
            let lay = Layout::from_axis_order(&shape, &operand.layout).ok()?;
            let t = Tensor::random(shape, &dist, &mut rng).relayout(&lay);
            base.env.insert(operand.name.clone(), t);
        }
        let opts = ExecOptions::default();
        let mut best = f64::INFINITY;
        for _ in 0..self.repetitions {
            let mut state = base.clone();
            let mut step_rng = StdRng::seed_from_u64(0xD15C);
            let start = Instant::now();
            execute_step(graph, &step, &mut state, &opts, &mut step_rng).ok()?;
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(state.env.len());
        }
        Some(best.max(1e-3))
    }
}

impl Default for CpuSource {
    fn default() -> Self {
        CpuSource::new(3)
    }
}

/// Measures the contiguous read rate of this host (bytes/µs). Shared with
/// [`crate::profile::PlanProfiler`] so sweep microbenches and the runtime
/// profiler normalize achieved bandwidth against the same peak.
pub(crate) fn calibrate_stream_rate() -> f64 {
    let n = 1 << 22; // 4M f32 = 16 MB, larger than L2
    let buf: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let mut sink = 0.0f32;
    let start = Instant::now();
    for &v in &buf {
        sink += v;
    }
    let us = start.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(sink);
    (n as f64 * 4.0) / us.max(1e-3)
}

fn layout_for(shape: &Shape, spec: &str) -> Result<Layout> {
    Layout::from_axis_order(shape, spec)
}

/// Walks every element of `t` in the index order given by `iter_spec`
/// (logical axes, outermost first), accumulating reads. Returns a value to
/// keep the optimizer honest.
fn sweep_read(t: &Tensor, iter_spec: &str) -> f32 {
    let shape = t.shape();
    let order: Vec<usize> = iter_spec
        .chars()
        .filter_map(|c| shape.index_of(xform_tensor::Axis(c)).ok())
        .collect();
    debug_assert_eq!(order.len(), shape.rank());
    let sizes: Vec<usize> = order.iter().map(|&i| shape.sizes()[i]).collect();
    let strides: Vec<usize> = order.iter().map(|&i| t.strides()[i]).collect();
    let mut acc = 0.0f32;
    let mut idx = vec![0usize; order.len()];
    let mut off = 0usize;
    loop {
        acc += t.data()[off];
        // advance odometer in iter order (innermost last)
        let mut d = idx.len();
        loop {
            if d == 0 {
                return acc;
            }
            d -= 1;
            idx[d] += 1;
            off += strides[d];
            if idx[d] < sizes[d] {
                break;
            }
            off -= sizes[d] * strides[d];
            idx[d] = 0;
        }
    }
}

/// Writes every element of `t` in `iter_spec` order.
fn sweep_write(t: &mut Tensor, iter_spec: &str, v: f32) {
    let shape = t.shape().clone();
    let order: Vec<usize> = iter_spec
        .chars()
        .filter_map(|c| shape.index_of(xform_tensor::Axis(c)).ok())
        .collect();
    let sizes: Vec<usize> = order.iter().map(|&i| shape.sizes()[i]).collect();
    let strides: Vec<usize> = order.iter().map(|&i| t.strides()[i]).collect();
    let mut idx = vec![0usize; order.len()];
    let mut off = 0usize;
    loop {
        t.data_mut()[off] = v;
        let mut d = idx.len();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            off += strides[d];
            if idx[d] < sizes[d] {
                break;
            }
            off -= sizes[d] * strides[d];
            idx[d] = 0;
        }
    }
}

/// Iteration order for a tensor under a configuration: the configured
/// layout order, with the vector axis rotated to the innermost position
/// (that is what "vectorize along this axis" means for the sweep).
fn iter_order(layout_spec: &str, vector_axis: Option<char>) -> String {
    match vector_axis {
        Some(v) if layout_spec.contains(v) => {
            let mut s: String = layout_spec.chars().filter(|&c| c != v).collect();
            s.push(v);
            s
        }
        _ => layout_spec.to_string(),
    }
}

impl PerfSource for CpuSource {
    fn name(&self) -> &str {
        "host-cpu"
    }

    fn measure(&self, graph: &Graph, op: NodeId, cfg: &OpConfig) -> Result<KernelCost> {
        let node = graph
            .op(op)
            .ok_or_else(|| TensorError::Unsupported(format!("{op} is not an operator")))?;
        let inputs = graph.inputs_of(op);
        let outputs = graph.outputs_of(op);
        let shape_of = |id: NodeId| -> Result<Shape> {
            graph
                .data(id)
                .map(|d| d.shape.clone())
                .ok_or_else(|| TensorError::Unsupported("endpoint is not data".into()))
        };
        let flop = xform_dataflow::flops::op_flop(graph, op).unwrap_or(0) as f64;
        let io_words = graph.io_words(op) as f64;
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let dist = rand::distributions::Uniform::new(-1.0f32, 1.0);
        let interpreted_time = if step_is_interpretable(&node.kind, &node.name) {
            self.try_interpreted(graph, op, cfg)
        } else {
            None
        };

        let time_us = match &node.kind {
            OpKind::Einsum(spec) => {
                if inputs.len() < 2 {
                    return Err(TensorError::Unsupported(format!(
                        "contraction `{}` has one input",
                        node.name
                    )));
                }
                let a_shape = shape_of(inputs[0])?;
                let b_shape = shape_of(inputs[1])?;
                let a = Tensor::random(a_shape.clone(), &dist, &mut rng)
                    .relayout(&layout_for(&a_shape, &cfg.in_spec)?);
                let in2 = cfg.in2_spec.as_deref().ok_or_else(|| {
                    TensorError::Unsupported("contraction config lacks in2 layout".into())
                })?;
                let b = Tensor::random(b_shape.clone(), &dist, &mut rng)
                    .relayout(&layout_for(&b_shape, in2)?);
                // determine the output layout against the real output shape
                let class = spec.classify()?;
                let out_axes: Vec<(char, usize)> = spec
                    .output()
                    .iter()
                    .map(|&ax| {
                        let n = a_shape.size(ax).or_else(|_| b_shape.size(ax))?;
                        Ok((ax.name(), n))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let out_shape = Shape::new(out_axes)?;
                // Slice writers (e.g. `QKT dX1` filling the stacked Q/K/V
                // gradient) have a data container whose axis letters differ
                // from the einsum's output labels; translate the configured
                // layout positionally.
                let data_out_axes: Vec<char> = shape_of(outputs[0])?
                    .axes()
                    .iter()
                    .map(|a| a.name())
                    .collect();
                let translated: String = cfg
                    .out_spec
                    .chars()
                    .map(|c| {
                        data_out_axes
                            .iter()
                            .position(|&a| a == c)
                            .and_then(|p| spec.output().get(p).map(|ax| ax.name()))
                            .unwrap_or(c)
                    })
                    .collect();
                let out_layout = layout_for(&out_shape, &translated)?;
                let _ = class;
                let spec = spec.clone();
                self.time_once(&mut || {
                    let c = contract(&spec, &a, &b, &out_layout).expect("measured contraction");
                    std::hint::black_box(c.data()[0]);
                })
            }
            // forward kernels: priced by executing the real kernel via the
            // schedule interpreter
            _ if interpreted_time.is_some() => interpreted_time.unwrap_or(1e-3),
            _ => {
                // backward kernel (or an operand set the interpreter cannot
                // stand up): representative strided sweep over the kernel's
                // tensors
                let two_pass = node.kind.has_reduction();
                let in_tensors: Vec<Tensor> = inputs
                    .iter()
                    .map(|&id| {
                        let s = shape_of(id)?;
                        let spec_str: String = if s.rank() == cfg.in_spec.len()
                            && cfg
                                .in_spec
                                .chars()
                                .all(|c| s.contains(xform_tensor::Axis(c)))
                        {
                            cfg.in_spec.clone()
                        } else {
                            s.spec()
                        };
                        Ok(Tensor::random(s.clone(), &dist, &mut rng)
                            .relayout(&layout_for(&s, &spec_str)?))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let mut out_tensors: Vec<Tensor> = outputs
                    .iter()
                    .map(|&id| {
                        let s = shape_of(id)?;
                        let spec_str: String = if s.rank() == cfg.out_spec.len()
                            && cfg
                                .out_spec
                                .chars()
                                .all(|c| s.contains(xform_tensor::Axis(c)))
                        {
                            cfg.out_spec.clone()
                        } else {
                            s.spec()
                        };
                        Ok(Tensor::zeros_with_layout(
                            s.clone(),
                            layout_for(&s, &spec_str)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let vector_axis = cfg.vector_axis;
                self.time_once(&mut || {
                    let mut acc = 0.0f32;
                    for t in &in_tensors {
                        let order = iter_order(&t.layout().spec(t.shape()), vector_axis);
                        acc += sweep_read(t, &order);
                        if two_pass && t.len() == in_tensors[0].len() {
                            // second loop of reduce-then-map kernels
                            acc += sweep_read(t, &order);
                        }
                    }
                    for t in &mut out_tensors {
                        let order = iter_order(&t.layout().spec(t.shape()), vector_axis);
                        sweep_write(t, &order, acc);
                    }
                    std::hint::black_box(acc);
                })
            }
        };
        let bytes = io_words * 4.0; // CPU substrate stores f32
        let achieved = bytes / time_us.max(1e-3);
        Ok(KernelCost {
            time_us,
            moved_words: io_words,
            bandwidth_frac: (achieved / self.peak_bytes_per_us).clamp(0.0, 1.0),
            flop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::sweep::{sweep_op, SweepOptions};
    use xform_dataflow::{build, EncoderDims};
    use xform_gpusim::opmodel::OpConfig;

    fn tiny_fused() -> xform_dataflow::Graph {
        let mut g = build::encoder(&EncoderDims::tiny()).graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        g
    }

    #[test]
    fn calibration_returns_a_sane_rate() {
        let src = CpuSource::new(1);
        // any machine streams somewhere between 0.1 and 1000 GB/s
        assert!(
            src.peak_bytes_per_us > 100.0,
            "rate {}",
            src.peak_bytes_per_us
        );
        assert!(src.peak_bytes_per_us < 1e6);
    }

    #[test]
    fn measures_every_tiny_encoder_op() {
        let g = tiny_fused();
        let src = CpuSource::new(1);
        for op in g.ops() {
            let cfg = OpConfig::natural(&g, op).unwrap();
            let cost = src.measure(&g, op, &cfg).unwrap();
            assert!(cost.time_us > 0.0 && cost.time_us.is_finite());
            assert!((0.0..=1.0).contains(&cost.bandwidth_frac));
        }
    }

    #[test]
    fn cpu_sweep_has_layout_spread() {
        // a real sweep over a normalization kernel shows layout sensitivity
        let g = tiny_fused();
        let sm = g.op_by_name("SM").unwrap();
        let src = CpuSource::new(3);
        let r = sweep_op(
            &src,
            &g,
            sm,
            SweepOptions {
                max_configs: Some(60),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(r.best.time_us > 0.0);
        assert!(r.worst_us >= r.best.time_us);
        assert!(!r.per_io.is_empty());
    }

    #[test]
    fn recipe_runs_end_to_end_on_cpu_measurements() {
        // the headline demonstration: same recipe, real measurements
        let device = xform_gpusim::DeviceSpec::v100(); // used only for transpose-cost bookkeeping
        let src = CpuSource::new(1);
        let plan = crate::recipe::optimize_encoder_with(
            &src,
            &device,
            &EncoderDims::tiny(),
            &crate::recipe::RecipeOptions {
                sweep: SweepOptions {
                    max_configs: Some(40),
                    ..SweepOptions::default()
                },
                per_op_overhead_us: 0.0,
            },
        )
        .unwrap();
        assert_eq!(plan.rows.len(), plan.graph.ops().len());
        assert!(plan.forward_us > 0.0);
        assert!(plan.backward_us > 0.0);
    }

    #[test]
    fn contiguous_iteration_beats_strided_on_real_hardware() {
        // sanity-check the sweep primitive itself at a size with cache
        // pressure: iterating the contiguous axis last is faster
        let shape = Shape::new([('a', 256), ('b', 512)]).unwrap();
        let t = Tensor::zeros(shape); // row-major: 'b' contiguous
        let src = CpuSource::new(5);
        let time = |order: &str| {
            src.clone().time_once(&mut || {
                std::hint::black_box(sweep_read(&t, order));
            })
        };
        let good = time("ab");
        let bad = time("ba");
        assert!(
            bad > good * 0.8,
            "strided {bad} µs vs contiguous {good} µs — expected no large win for strided"
        );
    }
}
