//! The paper's contribution: a recipe for globally optimizing data
//! movement in transformer training.
//!
//! This crate implements Sections III–VI of *Ivanov et al., "Data Movement
//! Is All You Need" (MLSys 2021)* on top of the dataflow IR
//! (`xform-dataflow`) and the device model (`xform-gpusim`):
//!
//! * [`itspace`] — iteration spaces and the fusion-compatibility rules of
//!   Sec. IV, including the four structural patterns of Fig. 3;
//! * [`fusion`] — automatic fusion-group detection plus the paper's exact
//!   encoder fusion plan (AIB, SM, DRLN, BRD, BDRLN, BSB, BLNRD, BDRB,
//!   EBSB, BAOB, BS, BAIB, BEI);
//! * [`algebraic`] — the stacked Q/K/V projection variants of Table II;
//! * [`sweep`] — exhaustive per-operator configuration sweeps behind the
//!   [`sweep::PerfSource`] trait (simulator or real measurements);
//! * [`selection`] — the shortest-path global configuration selection of
//!   Sec. VI-A / Fig. 6;
//! * [`plan`] — lowering a fusion plan plus a layout selection into an
//!   executable, layout-annotated schedule ([`plan::ExecutionPlan`]) and
//!   the schedule interpreter ([`plan::execute_plan`]) that runs it
//!   against the real CPU kernels;
//! * [`arena`] — the static-arena interpreter: certified plans lowered
//!   onto one preallocated slab via the liveness coloring of
//!   [`analyze::assign_arena`], executing through the zero-allocation
//!   `*_into` kernels so steady-state forwards touch the heap not at all;
//! * [`access`] — the access-path certifier: symbolic abstract
//!   interpretation deriving every operand's index-affine access path per
//!   step and proving in-bounds, unit-stride, alias-free access
//!   ([`access::certify_access`]); a clean pass yields an
//!   [`access::AccessCertificate`] that licenses the bounds-check-free
//!   kernel twins in `xform_tensor::into_ops`;
//! * [`sanitize`] — the footprint sanitizer and race certifier: a static
//!   certifier cross-checking declared operands against derived kernel
//!   footprints ([`sanitize::certify`]), a dynamic shadow-access
//!   interpreter ([`sanitize::execute_plan_sanitized`]), and the
//!   certificate-gated wave-parallel interpreter
//!   ([`sanitize::execute_plan_parallel`]);
//! * [`cachemodel`] — the static cache-hierarchy analyzer: reuse-distance
//!   abstract interpretation of each step's access paths through a
//!   parameterized L1/L2/LLC geometry ([`cachemodel::CacheGeometry`]),
//!   predicting per-level hit words and DRAM-interface traffic and
//!   yielding a cache-corrected static MUE ([`cachemodel::cache_audit`])
//!   alongside `analyze::audit`'s flat one, plus the tile-overflow /
//!   cache-thrash / layout-conflict lints;
//! * [`profile`] — the runtime plan profiler ([`profile::PlanProfiler`]):
//!   measured per-step time/bytes/bandwidth and measured MUE riding the
//!   interpreters via [`plan::ExecOptions::profiler`], plus
//!   profile-guided re-selection ([`profile::ProfiledSource`],
//!   [`profile::reselect`]);
//! * [`recipe`] — the end-to-end driver assembling the optimized encoder;
//! * [`report`] — Table-III-style per-operator comparisons.
//!
//! # Examples
//!
//! ```no_run
//! use xform_core::recipe::{optimize_encoder, RecipeOptions};
//! use xform_dataflow::EncoderDims;
//! use xform_gpusim::DeviceSpec;
//! # fn main() -> xform_tensor::Result<()> {
//! let plan = optimize_encoder(
//!     &DeviceSpec::v100(),
//!     &EncoderDims::bert_large(),
//!     &RecipeOptions::default(),
//! )?;
//! println!("forward {:.2} ms", plan.forward_us / 1000.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod access;
pub mod algebraic;
pub mod analyze;
pub mod arena;
pub mod cachemodel;
pub mod cpusource;
pub mod env;
pub mod fusion;
pub mod itspace;
pub mod plan;
pub mod profile;
pub mod recipe;
pub mod report;
pub mod sanitize;
pub mod selection;
pub mod sweep;
