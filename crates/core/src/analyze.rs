//! Static analysis of [`ExecutionPlan`]s: dependency/hazard graph,
//! liveness, and a data-movement audit — without executing anything.
//!
//! The paper's whole argument rests on *static* accounting of data
//! movement (Sec. III: flop vs. byte volume per operator, `MUE = Q/D ·
//! B/B̂`) and on structural analysis of the dataflow graph to find fusion
//! and layout opportunities (Figs. 1–3, 6). This module applies the same
//! discipline to a lowered schedule:
//!
//! * [`analyze`] builds the step-level dependency DAG from operand reads
//!   and writes (a relayout reads its container's value and materializes
//!   it into a distinct physical buffer, so it depends on the value's
//!   writer and is serialized against other relayouts of the same
//!   container, but not against concurrent readers), detecting
//!   RAW/WAR/WAW hazards, use-before-def, double-writes, and dead steps,
//!   and reports everything as typed [`PlanLint`] diagnostics with a
//!   [`Severity`];
//! * [`PlanAnalysis::parallel_waves`] derives topological antichains from
//!   that DAG — the proven-safe parallel schedule a multi-threaded
//!   interpreter must consume;
//! * [`PlanAnalysis::liveness`] gives per-buffer live intervals and the
//!   plan's peak-resident-words high-water mark;
//! * [`audit`] prices every step's data movement under its *selected*
//!   layouts through `xform-gpusim`'s operator model and aggregates
//!   byte volumes per operator class (Table I style) plus a plan-level
//!   static MUE, with explicit relayouts counted as avoidable traffic;
//! * [`lint_selection`] cross-checks a lowered plan against sweep data,
//!   flagging layout choices dominated in the sweep.
//!
//! [`ExecutionPlan::check`] is the thin wrapper the interpreter uses: it
//! returns [`analyze`]'s lints, and execution refuses plans with any
//! [`Severity::Error`] finding.

use std::collections::{HashMap, HashSet};
use std::fmt;

use xform_dataflow::{flops, DataRole, Graph, NodeId, OpClass, OpKind};
use xform_gpusim::contraction::MathMode;
use xform_gpusim::mue::{mue, Mue, MueAccum};
use xform_gpusim::opmodel::{OpConfig, OpModel};
use xform_gpusim::{DeviceSpec, KernelCost};

use crate::plan::{ExecutionPlan, PlanStep};
use crate::selection::RELAYOUT_BANDWIDTH_FRAC;
use crate::sweep::SweepResult;

/// How bad a [`PlanLint`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; no action needed.
    Info,
    /// The plan executes correctly but wastes data movement or misses an
    /// optimization the recipe should have taken.
    Warning,
    /// The plan is incoherent and must not be executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One typed diagnostic from the static plan analyzer.
///
/// Error-severity variants are the coherence violations the old
/// string-based `validate()` reported plus the hazards the dependency
/// analysis catches; warning-severity variants flag wasteful-but-runnable
/// schedules (dead steps, redundant or cancelling relayouts, fusion and
/// layout opportunities the plan missed).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanLint {
    /// A step references an operator id the graph does not contain.
    NotAnOperator {
        /// Step index in the schedule.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The dangling operator id.
        op: NodeId,
    },
    /// A step's name disagrees with the graph operator it references.
    NameMismatch {
        /// Step index.
        step: usize,
        /// Name recorded in the plan.
        planned: String,
        /// Name of the operator in the graph.
        actual: String,
        /// The operator id.
        op: NodeId,
    },
    /// A step's operand list disagrees with the graph's edges.
    OperandMismatch {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
    },
    /// An operand references a data id that is not a live container.
    NotAContainer {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The operand's container name.
        operand: String,
        /// The dangling data id.
        data: NodeId,
    },
    /// An operand's layout spec is not a permutation of its container's
    /// logical axes.
    BadLayout {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The operand's container name.
        operand: String,
        /// The offending layout spec.
        layout: String,
        /// The container's logical axis string.
        logical: String,
    },
    /// A step consumes a produced container before any scheduled step
    /// writes it (a RAW hazard against the schedule order).
    UseBeforeDef {
        /// Step index of the too-early consumer.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The consumed container's name.
        container: String,
    },
    /// Two steps write the same single-producer container (a WAW hazard;
    /// stacked containers with several graph-level slice writers are
    /// exempt).
    DoubleWrite {
        /// Step index of the second writer.
        step: usize,
        /// Step index of the first writer.
        prev_step: usize,
        /// The twice-written container's name.
        container: String,
    },
    /// A relayout's `from` layout disagrees with the layout the container
    /// is actually materialized in at that point of the schedule.
    RelayoutIncoherent {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The relayouted container's name.
        container: String,
        /// Layout the relayout expects.
        expected: String,
        /// Layout the container is actually in.
        have: String,
    },
    /// A step declares an input layout the schedule never materializes.
    LayoutIncoherent {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The container's name.
        container: String,
        /// Layout the step wants.
        want: String,
        /// Layout the container is actually in.
        have: String,
    },
    /// Every output of this step is an activation no later step (and no
    /// unscheduled graph consumer) reads: the step computes dead values.
    DeadStep {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
    },
    /// A relayout whose source and destination layout are identical.
    RedundantRelayout {
        /// Step index.
        step: usize,
        /// The relayouted container's name.
        container: String,
        /// The no-op layout.
        layout: String,
    },
    /// A container is relayouted `A→B` and later straight back `B→A`:
    /// the pair nets to identity, so reordering consumers (or picking a
    /// different producer layout) would save two transposes.
    CancellingRelayouts {
        /// Step carrying the first relayout.
        first_step: usize,
        /// Step carrying the inverse relayout.
        second_step: usize,
        /// The container's name.
        container: String,
    },
    /// A relayout of a container the step does not even consume.
    OrphanRelayout {
        /// Step index.
        step: usize,
        /// The relayouted container's name.
        container: String,
    },
    /// Two adjacent unfused element-wise steps joined by a
    /// single-consumer activation: the fusion plan missed a fusable chain
    /// (Sec. IV's element-wise pattern).
    MissedFusion {
        /// Producer step index.
        first_step: usize,
        /// Consumer step index.
        second_step: usize,
        /// Producer kernel name.
        first: String,
        /// Consumer kernel name.
        second: String,
    },
    /// An operand's environment name disagrees with its container's graph
    /// name: two distinct containers would collide on one interpreter
    /// environment key (layout-aliased buffers).
    NameAlias {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The name the plan declares for the operand.
        operand: String,
        /// The container's actual graph name.
        expected: String,
        /// The container id.
        data: NodeId,
    },
    /// A step's declared memlet volume is smaller than the footprint the
    /// kernel's iteration space derives: the schedule under-declares what
    /// the kernel actually touches (emitted by the
    /// [`sanitize`](crate::sanitize) certifier).
    UnderDeclaredFootprint {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The under-declared container's name.
        container: String,
        /// Words the graph memlet declares.
        declared_words: u64,
        /// Words the derived footprint touches.
        derived_words: u64,
    },
    /// Two steps placed in the same parallel wave have conflicting access
    /// to one container — a data race under concurrent dispatch (emitted
    /// by the [`sanitize`](crate::sanitize) certifier).
    WaveHazard {
        /// The wave both steps were placed in.
        wave: usize,
        /// The earlier step (schedule order).
        from: usize,
        /// The later step (schedule order).
        to: usize,
        /// The contested container's name.
        container: String,
        /// The hazard kind.
        kind: DepKind,
    },
    /// The step's chosen layout pair is dominated in the sweep data: its
    /// output layout is relayouted away before every use, and a strictly
    /// faster pair with the same input layout exists.
    DominatedLayout {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// Sweep time of the chosen layout pair (µs).
        chosen_us: f64,
        /// Best sweep time among same-input alternatives (µs).
        better_us: f64,
        /// The output layout achieving `better_us`.
        better_out: String,
    },
    /// Two buffers with overlapping live intervals were assigned
    /// overlapping word ranges of the arena slab — executing the plan out
    /// of the arena would corrupt data (emitted by the
    /// [`sanitize`](crate::sanitize) arena certifier).
    ArenaOverlap {
        /// Name of the first buffer.
        a: String,
        /// Name of the second buffer.
        b: String,
        /// The first buffer's slab offset in words.
        a_offset: u64,
        /// The second buffer's slab offset in words.
        b_offset: u64,
    },
    /// Interval coloring fragmented the arena: the slab is larger than the
    /// statically predicted peak-resident words, so the arena interpreter
    /// holds more memory than the liveness analysis says it must.
    ArenaFragmentation {
        /// Words the colored slab occupies.
        slab_words: u64,
        /// Peak-resident words the liveness analysis predicts.
        peak_words: u64,
    },
    /// The access-path certifier derived an index-affine access path for an
    /// operand that escapes the operand's buffer (or arena slab range), or
    /// aliases another operand beyond what the race certificate permits —
    /// executing the step would read or write memory it does not own
    /// (emitted by [`access::certify_access`](crate::access::certify_access)).
    UnprovenAccess {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The offending operand's container name.
        container: String,
        /// Why the proof failed.
        reason: String,
    },
    /// The operand's innermost-loop access is in-bounds but not unit-stride
    /// under the selected layout, so the branch-free unchecked inner loop is
    /// not licensed and the step falls back to the checked path (emitted by
    /// [`access::certify_access`](crate::access::certify_access)).
    StridedInnerLoop {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The offending operand's container name.
        container: String,
        /// The innermost-loop stride in words (not 1).
        stride: u64,
    },
    /// A GEMM-epilogue mega-kernel's per-tile working set exceeds a cache
    /// level: the tile the driver keeps hot spills, so the fused kernel
    /// re-fetches what fusion was supposed to keep on chip (emitted by
    /// [`cachemodel::cache_lints`](crate::cachemodel::cache_lints)).
    TileOverflow {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The tile working set in bytes.
        tile_bytes: u64,
        /// The overflowed level's name.
        level: String,
        /// That level's capacity in bytes.
        capacity_bytes: u64,
    },
    /// A step re-references data but the predicted capacity-miss ratio on
    /// those re-references exceeds the threshold: the reuse exists
    /// algorithmically yet the hierarchy cannot capture it (emitted by
    /// [`cachemodel::cache_lints`](crate::cachemodel::cache_lints)).
    CacheThrash {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// Percentage of re-referenced words predicted to miss every
        /// level.
        miss_pct: f64,
        /// Bytes of re-referenced (reusable) data in the step.
        reuse_bytes: u64,
    },
    /// A swept operand's inner stride maps every iteration onto the same
    /// cache sets of some level (stride divisible by `sets × line`), so
    /// the effective capacity collapses to one way per set (emitted by
    /// [`cachemodel::cache_lints`](crate::cachemodel::cache_lints)).
    LayoutConflict {
        /// Step index.
        step: usize,
        /// The step's kernel name.
        name: String,
        /// The strided operand's container name.
        container: String,
        /// The inner-loop stride in words.
        stride_words: u64,
        /// The set-aliased level's name.
        level: String,
    },
}

impl PlanLint {
    /// The lint's severity.
    pub fn severity(&self) -> Severity {
        match self {
            PlanLint::NotAnOperator { .. }
            | PlanLint::NameMismatch { .. }
            | PlanLint::OperandMismatch { .. }
            | PlanLint::NotAContainer { .. }
            | PlanLint::BadLayout { .. }
            | PlanLint::UseBeforeDef { .. }
            | PlanLint::DoubleWrite { .. }
            | PlanLint::RelayoutIncoherent { .. }
            | PlanLint::LayoutIncoherent { .. }
            | PlanLint::NameAlias { .. }
            | PlanLint::UnderDeclaredFootprint { .. }
            | PlanLint::WaveHazard { .. }
            | PlanLint::ArenaOverlap { .. }
            | PlanLint::UnprovenAccess { .. } => Severity::Error,
            PlanLint::DeadStep { .. }
            | PlanLint::RedundantRelayout { .. }
            | PlanLint::CancellingRelayouts { .. }
            | PlanLint::OrphanRelayout { .. }
            | PlanLint::MissedFusion { .. }
            | PlanLint::DominatedLayout { .. }
            | PlanLint::ArenaFragmentation { .. }
            | PlanLint::StridedInnerLoop { .. }
            | PlanLint::TileOverflow { .. }
            | PlanLint::CacheThrash { .. }
            | PlanLint::LayoutConflict { .. } => Severity::Warning,
        }
    }

    /// The schedule position the lint anchors to (the later step for
    /// pair lints).
    pub fn step(&self) -> usize {
        match self {
            PlanLint::NotAnOperator { step, .. }
            | PlanLint::NameMismatch { step, .. }
            | PlanLint::OperandMismatch { step, .. }
            | PlanLint::NotAContainer { step, .. }
            | PlanLint::BadLayout { step, .. }
            | PlanLint::UseBeforeDef { step, .. }
            | PlanLint::DoubleWrite { step, .. }
            | PlanLint::RelayoutIncoherent { step, .. }
            | PlanLint::LayoutIncoherent { step, .. }
            | PlanLint::DeadStep { step, .. }
            | PlanLint::RedundantRelayout { step, .. }
            | PlanLint::OrphanRelayout { step, .. }
            | PlanLint::NameAlias { step, .. }
            | PlanLint::UnderDeclaredFootprint { step, .. }
            | PlanLint::DominatedLayout { step, .. }
            | PlanLint::UnprovenAccess { step, .. }
            | PlanLint::StridedInnerLoop { step, .. }
            | PlanLint::TileOverflow { step, .. }
            | PlanLint::CacheThrash { step, .. }
            | PlanLint::LayoutConflict { step, .. } => *step,
            PlanLint::CancellingRelayouts { second_step, .. } => *second_step,
            PlanLint::MissedFusion { second_step, .. } => *second_step,
            PlanLint::WaveHazard { to, .. } => *to,
            PlanLint::ArenaOverlap { .. } | PlanLint::ArenaFragmentation { .. } => 0,
        }
    }
}

impl fmt::Display for PlanLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanLint::NotAnOperator { step, name, op } => {
                write!(f, "step {step} (`{name}`): {op} is not a live operator")
            }
            PlanLint::NameMismatch {
                step,
                planned,
                actual,
                op,
            } => write!(f, "step {step}: plan names `{planned}` but {op} is `{actual}`"),
            PlanLint::OperandMismatch { step, name } => write!(
                f,
                "step {step} (`{name}`): operand list disagrees with the graph's edges"
            ),
            PlanLint::NotAContainer {
                step,
                name,
                operand,
                data,
            } => write!(
                f,
                "step {step} (`{name}`): operand `{operand}` ({data}) is not a live container"
            ),
            PlanLint::BadLayout {
                step,
                name,
                operand,
                layout,
                logical,
            } => write!(
                f,
                "step {step} (`{name}`): layout `{layout}` is not a permutation of `{operand}`'s axes `{logical}`"
            ),
            PlanLint::UseBeforeDef {
                step,
                name,
                container,
            } => write!(
                f,
                "step {step} (`{name}`): consumes `{container}` before any scheduled step produces it"
            ),
            PlanLint::DoubleWrite {
                step,
                prev_step,
                container,
            } => write!(
                f,
                "step {step}: writes `{container}` already written by step {prev_step}"
            ),
            PlanLint::RelayoutIncoherent {
                step,
                name,
                container,
                expected,
                have,
            } => write!(
                f,
                "step {step} (`{name}`): relayout of `{container}` expects layout `{expected}` but it is materialized in `{have}`"
            ),
            PlanLint::LayoutIncoherent {
                step,
                name,
                container,
                want,
                have,
            } => write!(
                f,
                "step {step} (`{name}`): expects `{container}` in layout `{want}` but it is materialized in `{have}`"
            ),
            PlanLint::DeadStep { step, name } => {
                write!(f, "step {step} (`{name}`): no scheduled or unscheduled consumer reads any of its outputs")
            }
            PlanLint::RedundantRelayout {
                step,
                container,
                layout,
            } => write!(
                f,
                "step {step}: relayout of `{container}` to its current layout `{layout}` is a no-op"
            ),
            PlanLint::CancellingRelayouts {
                first_step,
                second_step,
                container,
            } => write!(
                f,
                "steps {first_step} and {second_step}: relayouts of `{container}` cancel each other"
            ),
            PlanLint::OrphanRelayout { step, container } => write!(
                f,
                "step {step}: relayouts `{container}` without consuming it"
            ),
            PlanLint::MissedFusion {
                first_step,
                second_step,
                first,
                second,
            } => write!(
                f,
                "steps {first_step}/{second_step}: element-wise `{first}` → `{second}` is a fusable chain the fusion plan missed"
            ),
            PlanLint::NameAlias {
                step,
                name,
                operand,
                expected,
                data,
            } => write!(
                f,
                "step {step} (`{name}`): operand named `{operand}` but {data} is `{expected}` — two containers would alias one environment slot"
            ),
            PlanLint::UnderDeclaredFootprint {
                step,
                name,
                container,
                declared_words,
                derived_words,
            } => write!(
                f,
                "step {step} (`{name}`): declares {declared_words} words of `{container}` but its iteration space touches {derived_words}"
            ),
            PlanLint::WaveHazard {
                wave,
                from,
                to,
                container,
                kind,
            } => write!(
                f,
                "wave {wave}: steps {from} and {to} race on `{container}` ({kind:?}) — cannot dispatch concurrently"
            ),
            PlanLint::DominatedLayout {
                step,
                name,
                chosen_us,
                better_us,
                better_out,
            } => write!(
                f,
                "step {step} (`{name}`): chosen layout pair ({chosen_us:.1} µs) is dominated — output is relayouted before every use, and `{better_out}` would take {better_us:.1} µs"
            ),
            PlanLint::ArenaOverlap {
                a,
                b,
                a_offset,
                b_offset,
            } => write!(
                f,
                "arena: live buffers `{a}` (offset {a_offset}) and `{b}` (offset {b_offset}) share slab words"
            ),
            PlanLint::ArenaFragmentation {
                slab_words,
                peak_words,
            } => write!(
                f,
                "arena: coloring fragmented the slab to {slab_words} words, above the {peak_words}-word peak-resident prediction"
            ),
            PlanLint::UnprovenAccess {
                step,
                name,
                container,
                reason,
            } => write!(
                f,
                "step {step} (`{name}`): access path of `{container}` is unproven — {reason}"
            ),
            PlanLint::StridedInnerLoop {
                step,
                name,
                container,
                stride,
            } => write!(
                f,
                "step {step} (`{name}`): innermost loop over `{container}` strides by {stride} words — unchecked inner loop not licensed"
            ),
            PlanLint::TileOverflow {
                step,
                name,
                tile_bytes,
                level,
                capacity_bytes,
            } => write!(
                f,
                "step {step} (`{name}`): epilogue tile working set of {tile_bytes} B exceeds {level} ({capacity_bytes} B) — the fused tile spills"
            ),
            PlanLint::CacheThrash {
                step,
                name,
                miss_pct,
                reuse_bytes,
            } => write!(
                f,
                "step {step} (`{name}`): {miss_pct:.0}% of {reuse_bytes} reusable bytes are predicted capacity misses — the hierarchy cannot hold the working set"
            ),
            PlanLint::LayoutConflict {
                step,
                name,
                container,
                stride_words,
                level,
            } => write!(
                f,
                "step {step} (`{name}`): sweep of `{container}` at stride {stride_words} words aliases {level} cache sets — effective capacity collapses to one way"
            ),
        }
    }
}

/// The kind of a step-level dependency (hazard) edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Read-after-write: the consumer must see the producer's value.
    Raw,
    /// Write-after-read: the reader must finish before the next writer
    /// replaces the value it snapshots.
    War,
    /// Write-after-write: writer order determines the final value.
    Waw,
}

/// One edge of the step-level dependency DAG (`from` must execute before
/// `to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DepEdge {
    /// The earlier step's index.
    pub from: usize,
    /// The later step's index.
    pub to: usize,
    /// The container the hazard is on.
    pub data: NodeId,
    /// The hazard kind.
    pub kind: DepKind,
}

/// Live interval of one container across the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferLiveness {
    /// The container.
    pub data: NodeId,
    /// Its name.
    pub name: String,
    /// Its size in words.
    pub words: u64,
    /// Its role in the graph.
    pub role: DataRole,
    /// First step writing it (`None` = external: bound before execution).
    pub def: Option<usize>,
    /// Last step reading (or relayouting) it, if any.
    pub last_use: Option<usize>,
    /// First step index at which the buffer is resident.
    pub start: usize,
    /// Last step index at which the buffer is resident. Outputs and saved
    /// tensors stay resident to the end of the plan.
    pub end: usize,
}

/// The result of [`analyze`]: hazards, lints, liveness.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// Step-level dependency edges, deduplicated and sorted.
    pub deps: Vec<DepEdge>,
    /// Everything the lint pass found (no sweep-dependent lints; see
    /// [`lint_selection`]).
    pub lints: Vec<PlanLint>,
    /// Live interval per container touched by the plan.
    pub liveness: Vec<BufferLiveness>,
    /// Resident words at each step of the schedule.
    pub resident_words: Vec<u64>,
    /// The high-water mark of [`PlanAnalysis::resident_words`].
    pub peak_resident_words: u64,
    /// Step index where the peak occurs (0 for empty plans).
    pub peak_step: usize,
    n_steps: usize,
}

impl PlanAnalysis {
    /// Lints of [`Severity::Error`] — the findings that make the plan
    /// unexecutable.
    pub fn errors(&self) -> Vec<&PlanLint> {
        self.lints
            .iter()
            .filter(|l| l.severity() == Severity::Error)
            .collect()
    }

    /// `true` when the plan has no error-severity lints.
    pub fn is_clean(&self) -> bool {
        self.lints.iter().all(|l| l.severity() != Severity::Error)
    }

    /// Peak resident bytes at the given word width.
    pub fn peak_resident_bytes(&self, word_bytes: usize) -> u64 {
        self.peak_resident_words * word_bytes as u64
    }

    /// Topological antichains of the dependency DAG: wave `k+1` contains
    /// exactly the steps all of whose hazards point into waves `0..=k`.
    /// Steps within one wave touch no common container with conflicting
    /// access, so a multi-threaded interpreter may run each wave's steps
    /// concurrently and join between waves. The concatenation of all waves
    /// is a permutation of `0..steps`.
    pub fn parallel_waves(&self) -> Vec<Vec<usize>> {
        let n = self.n_steps;
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.deps {
            if e.from < n && e.to < n {
                adj[e.from].push(e.to);
                indeg[e.to] += 1;
            }
        }
        let mut wave: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut waves = Vec::new();
        while !wave.is_empty() {
            let mut next = Vec::new();
            for &i in &wave {
                for &j in &adj[i] {
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        next.push(j);
                    }
                }
            }
            next.sort_unstable();
            waves.push(std::mem::take(&mut wave));
            wave = next;
        }
        waves
    }

    /// Wave index per step (the inverse of [`PlanAnalysis::parallel_waves`]).
    pub fn wave_of(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.n_steps];
        for (w, wave) in self.parallel_waves().into_iter().enumerate() {
            for s in wave {
                out[s] = w;
            }
        }
        out
    }

    /// Resident words during each parallel wave. A buffer is resident from
    /// the wave of its defining step (wave 0 for externals) through the
    /// wave of its last use; outputs and saved tensors stay resident to
    /// the final wave. Parallel execution retires whole waves, not single
    /// steps, so this high-water mark — not
    /// [`PlanAnalysis::peak_resident_words`] — is the one
    /// `execute_plan_parallel` pays.
    pub fn wave_resident_words(&self) -> Vec<u64> {
        let waves = self.parallel_waves();
        if waves.is_empty() {
            return Vec::new();
        }
        let mut wave_of = vec![0usize; self.n_steps];
        for (w, wave) in waves.iter().enumerate() {
            for &s in wave {
                wave_of[s] = w;
            }
        }
        let last = waves.len() - 1;
        let mut out = vec![0u64; waves.len()];
        for b in &self.liveness {
            let ws = b.def.map_or(0, |d| wave_of[d]);
            let pinned = matches!(b.role, DataRole::Output | DataRole::Saved | DataRole::Cache);
            let we = if pinned {
                last
            } else {
                b.last_use.map_or(ws, |u| wave_of[u]).max(ws)
            };
            for w in out.iter_mut().take(we + 1).skip(ws) {
                *w += b.words;
            }
        }
        out
    }

    /// The high-water mark of [`PlanAnalysis::wave_resident_words`] as
    /// `(wave index, words)`; `(0, 0)` for empty plans.
    pub fn peak_wave_resident_words(&self) -> (usize, u64) {
        self.wave_resident_words()
            .iter()
            .enumerate()
            .max_by_key(|&(_, &w)| w)
            .map_or((0, 0), |(i, &w)| (i, w))
    }
}

/// The execution order an arena assignment (and its certificate) is valid
/// for. Serial retirement frees a buffer the step after its last use;
/// wave-parallel retirement frees whole waves at a time, so the two orders
/// produce *different* live intervals and mutually incompatible colorings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArenaGranularity {
    /// Buffers live over step intervals; valid for the serial interpreter.
    Serial,
    /// Buffers live over wave intervals; valid for the wave-parallel
    /// interpreter (and, conservatively, for serial execution in wave
    /// order).
    Waves,
}

impl fmt::Display for ArenaGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArenaGranularity::Serial => "serial",
            ArenaGranularity::Waves => "waves",
        })
    }
}

/// One buffer colored into the arena slab.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaSlot {
    /// The container.
    pub data: NodeId,
    /// Its name.
    pub name: String,
    /// Assigned slab offset in words.
    pub offset: u64,
    /// Size in words.
    pub words: u64,
    /// First time unit (step or wave, per granularity) the buffer is
    /// resident.
    pub start: usize,
    /// Last time unit the buffer is resident.
    pub end: usize,
}

/// The result of [`assign_arena`]: every live buffer colored to a word
/// offset inside one slab whose size the pass tries to hold at exactly the
/// liveness analysis's peak-resident words.
#[derive(Debug, Clone)]
pub struct ArenaAssignment {
    /// The execution order the coloring is valid for.
    pub granularity: ArenaGranularity,
    /// One slot per live buffer, in liveness order.
    pub slots: Vec<ArenaSlot>,
    /// Total slab size in words (the arena's high-water mark).
    pub slab_words: u64,
    /// The statically predicted peak-resident words the slab is measured
    /// against ([`PlanAnalysis::peak_resident_words`] for
    /// [`ArenaGranularity::Serial`], the wave-granularity peak for
    /// [`ArenaGranularity::Waves`]).
    pub target_words: u64,
    /// [`PlanLint::ArenaFragmentation`] when `slab_words > target_words`;
    /// empty otherwise.
    pub lints: Vec<PlanLint>,
}

impl ArenaAssignment {
    /// Slab size in bytes at the given word width.
    pub fn slab_bytes(&self, word_bytes: usize) -> u64 {
        self.slab_words * word_bytes as u64
    }
}

/// Greedy first-fit placement of `order` (indices into `iv`) where
/// `iv[i] = (start, end, words)`. Each buffer goes to the lowest word
/// offset at which it fits below every already-placed buffer whose live
/// interval overlaps its own. Returns per-buffer offsets and the slab
/// high-water mark.
fn color_intervals(iv: &[(usize, usize, u64)], order: &[usize], best_fit: bool) -> (Vec<u64>, u64) {
    let mut offsets = vec![0u64; iv.len()];
    let mut placed: Vec<usize> = Vec::with_capacity(iv.len());
    let mut slab = 0u64;
    for &i in order {
        let (s, e, words) = iv[i];
        // collect placed buffers overlapping [s, e], sorted by offset;
        // two busy ranges may themselves overlap (they need not be live
        // simultaneously), so gap scanning tracks a running high-water
        // cursor rather than assuming disjointness
        let mut busy: Vec<(u64, u64)> = placed
            .iter()
            .filter(|&&j| {
                let (js, je, _) = iv[j];
                s <= je && js <= e
            })
            .map(|&j| (offsets[j], iv[j].2))
            .collect();
        busy.sort_unstable();
        let mut cursor = 0u64;
        // (gap size, gap start) of the tightest fitting hole so far
        let mut best: Option<(u64, u64)> = None;
        for (off, w) in busy {
            if cursor + words <= off {
                if !best_fit {
                    best = Some((off - cursor, cursor));
                    break;
                }
                let gap = off - cursor;
                if best.is_none_or(|(bg, _)| gap < bg) {
                    best = Some((gap, cursor));
                }
            }
            cursor = cursor.max(off + w);
        }
        let at = best.map_or(cursor, |(_, start)| start);
        offsets[i] = at;
        slab = slab.max(at + words);
        placed.push(i);
    }
    (offsets, slab)
}

/// Colors the plan's buffer-liveness intervals into offsets of one shared
/// slab, register-allocation style: buffers whose live intervals overlap
/// never share words; buffers whose intervals are disjoint may. Offsets
/// are in f32 words, which keeps every buffer naturally aligned for f32
/// access (the pass deliberately adds no cache-line padding — padding
/// would push the slab above the peak-resident target the audit pins).
///
/// Several deterministic placement orders are tried and the smallest slab
/// wins; when even the best coloring exceeds the liveness peak, the
/// assignment carries a [`PlanLint::ArenaFragmentation`] warning and the
/// divergence is surfaced by `plan_audit`.
pub fn assign_arena(analysis: &PlanAnalysis, granularity: ArenaGranularity) -> ArenaAssignment {
    let last_wave = analysis.parallel_waves().len().saturating_sub(1);
    let wave_of = match granularity {
        ArenaGranularity::Serial => Vec::new(),
        ArenaGranularity::Waves => analysis.wave_of(),
    };
    let iv: Vec<(usize, usize, u64)> = analysis
        .liveness
        .iter()
        .map(|b| match granularity {
            ArenaGranularity::Serial => (b.start, b.end, b.words),
            ArenaGranularity::Waves => {
                let ws = b.def.map_or(0, |d| wave_of[d]);
                let pinned = matches!(b.role, DataRole::Output | DataRole::Saved | DataRole::Cache);
                let we = if pinned {
                    last_wave
                } else {
                    b.last_use.map_or(ws, |u| wave_of[u]).max(ws)
                };
                (ws, we, b.words)
            }
        })
        .collect();

    let (peak_t, target_words) = match granularity {
        ArenaGranularity::Serial => (analysis.peak_step, analysis.peak_resident_words),
        ArenaGranularity::Waves => analysis.peak_wave_resident_words(),
    };

    // candidate placement orders; ties broken by index for determinism
    let n = iv.len();
    let base: Vec<usize> = (0..n).collect();
    let mut by_start = base.clone();
    by_start.sort_by_key(|&i| (iv[i].0, std::cmp::Reverse(iv[i].2), i));
    let mut by_words = base.clone();
    by_words.sort_by_key(|&i| (std::cmp::Reverse(iv[i].2), iv[i].0, i));
    let mut by_end = base.clone();
    by_end.sort_by_key(|&i| (iv[i].1, std::cmp::Reverse(iv[i].2), i));
    let mut by_span = base.clone();
    by_span.sort_by_key(|&i| {
        (
            std::cmp::Reverse(iv[i].1 - iv[i].0),
            std::cmp::Reverse(iv[i].2),
            i,
        )
    });
    // the peak-resident set is mutually overlapping (every member is live
    // at the peak), so placing it first packs it gap-free into exactly the
    // target; transients then drop into holes left over time
    let mut by_peak = base;
    by_peak.sort_by_key(|&i| {
        let live_at_peak = iv[i].0 <= peak_t && peak_t <= iv[i].1;
        (
            !live_at_peak,
            if live_at_peak { 0 } else { iv[i].0 },
            std::cmp::Reverse(iv[i].2),
            i,
        )
    });

    let mut best: Option<(Vec<u64>, u64)> = None;
    for order in [&by_start, &by_words, &by_end, &by_span, &by_peak] {
        for best_fit in [false, true] {
            let (offsets, slab) = color_intervals(&iv, order, best_fit);
            if best.as_ref().is_none_or(|(_, s)| slab < *s) {
                best = Some((offsets, slab));
            }
        }
    }

    // Optimal dynamic storage allocation is NP-hard, and a handful of
    // deterministic orders occasionally leaves a small gap above the
    // liveness peak. Close it with an iterated randomized best-fit: keep
    // the peak-resident set packed first (gap-free by construction) and
    // shuffle the transient placement order under fixed seeds, stopping
    // as soon as a coloring hits the target. Fixed seeds keep the
    // assignment deterministic across runs.
    if best.as_ref().is_some_and(|(_, s)| *s > target_words) && n > 0 {
        use rand::{Rng, SeedableRng};
        let mut peak_set: Vec<usize> = (0..n)
            .filter(|&i| iv[i].0 <= peak_t && peak_t <= iv[i].1)
            .collect();
        peak_set.sort_by_key(|&i| (iv[i].0, std::cmp::Reverse(iv[i].2), i));
        let mut transients: Vec<usize> = (0..n)
            .filter(|&i| !(iv[i].0 <= peak_t && peak_t <= iv[i].1))
            .collect();
        transients.sort_unstable();
        for attempt in 0u64..256 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x0a7e_4a00 ^ attempt);
            let mut order = peak_set.clone();
            let mut tail = transients.clone();
            for i in (1..tail.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                tail.swap(i, j);
            }
            order.extend(tail);
            let (offsets, slab) = color_intervals(&iv, &order, true);
            if best.as_ref().is_none_or(|(_, s)| slab < *s) {
                let done = slab == target_words;
                best = Some((offsets, slab));
                if done {
                    break;
                }
            }
        }
    }
    let (offsets, slab_words) = best.unwrap_or((Vec::new(), 0));

    let slots: Vec<ArenaSlot> = analysis
        .liveness
        .iter()
        .zip(&iv)
        .zip(&offsets)
        .map(|((b, &(s, e, _)), &off)| ArenaSlot {
            data: b.data,
            name: b.name.clone(),
            offset: off,
            words: b.words,
            start: s,
            end: e,
        })
        .collect();

    let mut lints = Vec::new();
    if slab_words > target_words {
        lints.push(PlanLint::ArenaFragmentation {
            slab_words,
            peak_words: target_words,
        });
    }
    ArenaAssignment {
        granularity,
        slots,
        slab_words,
        target_words,
        lints,
    }
}

/// Cross-call residency audit for a cache-reading plan.
///
/// [`DataRole::Cache`] containers are live-in *and* live-out of every
/// execution, so the memory a decode session actually holds is not the
/// per-call peak but that peak with every cache container scaled from its
/// compiled bucket capacity (the extent of its outermost, position-major
/// axis) up to `max_seq` positions. This is the high-water mark the slab
/// account pays once the session has decoded `max_seq` tokens.
#[derive(Debug, Clone)]
pub struct CrossCallHighWater {
    /// Per-call peak resident words at the compiled bucket capacity.
    pub peak_words: u64,
    /// Cache words at the compiled bucket capacity.
    pub cache_words: u64,
    /// Cache words scaled to `max_seq` positions.
    pub cache_words_at_max_seq: u64,
    /// `peak_words - cache_words + cache_words_at_max_seq`.
    pub high_water_words: u64,
    /// The `max_seq` the scaling was computed for.
    pub max_seq: usize,
}

/// Computes the [`CrossCallHighWater`] for `plan`'s analysis: every
/// [`DataRole::Cache`] container's words are rescaled from the extent of
/// its outermost axis (the position-major cache axis) to `max_seq`.
pub fn cross_call_high_water(
    graph: &Graph,
    analysis: &PlanAnalysis,
    max_seq: usize,
) -> CrossCallHighWater {
    let mut cache_words = 0u64;
    let mut cache_words_at_max_seq = 0u64;
    for b in &analysis.liveness {
        if b.role != DataRole::Cache {
            continue;
        }
        cache_words += b.words;
        if let Some(d) = graph.data(b.data) {
            let cap = d.shape.sizes().first().copied().unwrap_or(1).max(1) as u64;
            let col = b.words / cap;
            cache_words_at_max_seq += col * max_seq as u64;
        }
    }
    let peak_words = analysis.peak_resident_words;
    CrossCallHighWater {
        peak_words,
        cache_words,
        cache_words_at_max_seq,
        high_water_words: peak_words - cache_words + cache_words_at_max_seq,
        max_seq,
    }
}

fn is_permutation_of(layout: &str, logical: &str) -> bool {
    if layout.len() != logical.len() {
        return false;
    }
    let mut a: Vec<char> = layout.chars().collect();
    let mut b: Vec<char> = logical.chars().collect();
    a.sort_unstable();
    b.sort_unstable();
    a == b && a.windows(2).all(|w| w[0] != w[1])
}

/// Statically analyzes a plan against the graph it was lowered from:
/// structural coherence (the checks of the old string-based `validate`),
/// the dependency/hazard DAG, dead-step detection, relayout lints,
/// missed-fusion detection, and buffer liveness.
pub fn analyze(graph: &Graph, plan: &ExecutionPlan) -> PlanAnalysis {
    let n = plan.steps.len();
    let mut lints: Vec<PlanLint> = Vec::new();
    let mut deps: Vec<DepEdge> = Vec::new();

    // per-container schedule state
    let mut last_writer: HashMap<NodeId, usize> = HashMap::new();
    let mut readers_since_write: HashMap<NodeId, Vec<usize>> = HashMap::new();
    let mut last_relayouter: HashMap<NodeId, usize> = HashMap::new();
    let mut current_layout: HashMap<NodeId, String> = HashMap::new();
    let mut produced: HashSet<NodeId> = HashSet::new();
    // relayout event log per container: (step, from, to)
    let mut relayout_log: HashMap<NodeId, Vec<(usize, String, String)>> = HashMap::new();

    for (si, step) in plan.steps.iter().enumerate() {
        let Some(node) = graph.op(step.op) else {
            lints.push(PlanLint::NotAnOperator {
                step: si,
                name: step.name.clone(),
                op: step.op,
            });
            continue;
        };
        if node.name != step.name {
            lints.push(PlanLint::NameMismatch {
                step: si,
                planned: step.name.clone(),
                actual: node.name.clone(),
                op: step.op,
            });
        }
        let in_ids: Vec<NodeId> = step.inputs.iter().map(|o| o.data).collect();
        let out_ids: Vec<NodeId> = step.outputs.iter().map(|o| o.data).collect();
        if in_ids != graph.inputs_of(step.op) || out_ids != graph.outputs_of(step.op) {
            lints.push(PlanLint::OperandMismatch {
                step: si,
                name: step.name.clone(),
            });
        }
        for operand in step.inputs.iter().chain(&step.outputs) {
            match graph.data(operand.data) {
                Some(d) => {
                    if d.name != operand.name {
                        lints.push(PlanLint::NameAlias {
                            step: si,
                            name: step.name.clone(),
                            operand: operand.name.clone(),
                            expected: d.name.clone(),
                            data: operand.data,
                        });
                    }
                    if !is_permutation_of(&operand.layout, &d.shape.spec()) {
                        lints.push(PlanLint::BadLayout {
                            step: si,
                            name: step.name.clone(),
                            operand: operand.name.clone(),
                            layout: operand.layout.clone(),
                            logical: d.shape.spec(),
                        });
                    }
                }
                None => lints.push(PlanLint::NotAContainer {
                    step: si,
                    name: step.name.clone(),
                    operand: operand.name.clone(),
                    data: operand.data,
                }),
            }
        }

        // relayout lints + hazards: a relayout *reads* its container's
        // logical values and re-materializes them into a distinct physical
        // buffer, so it takes a RAW edge from the value's last writer and
        // registers as a reader (a later value-writer takes a WAR edge
        // from it).  It does not kill the value — concurrent readers stay
        // safe because every kernel addresses elements logically and is
        // bitwise layout-invariant.  Materializations of one container
        // are still serialized among themselves (WAW), since the last
        // relayout determines the physical layout later steps declare.
        let mut relayouted: Vec<NodeId> = Vec::new();
        for r in &step.relayouts {
            if !step.inputs.iter().any(|i| i.data == r.data) {
                lints.push(PlanLint::OrphanRelayout {
                    step: si,
                    container: r.name.clone(),
                });
            }
            if r.from == r.to {
                lints.push(PlanLint::RedundantRelayout {
                    step: si,
                    container: r.name.clone(),
                    layout: r.to.clone(),
                });
            }
            relayout_log
                .entry(r.data)
                .or_default()
                .push((si, r.from.clone(), r.to.clone()));
            if !relayouted.contains(&r.data) {
                relayouted.push(r.data);
                if let Some(&w) = last_writer.get(&r.data) {
                    if w != si {
                        deps.push(DepEdge {
                            from: w,
                            to: si,
                            data: r.data,
                            kind: DepKind::Raw,
                        });
                    }
                }
                if let Some(&m) = last_relayouter.get(&r.data) {
                    if m != si {
                        deps.push(DepEdge {
                            from: m,
                            to: si,
                            data: r.data,
                            kind: DepKind::Waw,
                        });
                    }
                }
                readers_since_write.entry(r.data).or_default().push(si);
                last_relayouter.insert(r.data, si);
            }
        }

        // reads: RAW edges + use-before-def
        for inp in &step.inputs {
            if let Some(&w) = last_writer.get(&inp.data) {
                if w != si {
                    deps.push(DepEdge {
                        from: w,
                        to: si,
                        data: inp.data,
                        kind: DepKind::Raw,
                    });
                }
            }
            readers_since_write.entry(inp.data).or_default().push(si);
            if graph.producer_of(inp.data).is_some() && !produced.contains(&inp.data) {
                lints.push(PlanLint::UseBeforeDef {
                    step: si,
                    name: step.name.clone(),
                    container: inp.name.clone(),
                });
            }
        }

        // layout coherence, honouring this step's relayout insertions
        for inp in &step.inputs {
            let mut have = current_layout
                .get(&inp.data)
                .cloned()
                .or_else(|| graph.data(inp.data).map(|d| d.shape.spec()))
                .unwrap_or_else(|| inp.layout.clone());
            for r in step.relayouts.iter().filter(|r| r.data == inp.data) {
                if r.from != have {
                    lints.push(PlanLint::RelayoutIncoherent {
                        step: si,
                        name: step.name.clone(),
                        container: r.name.clone(),
                        expected: r.from.clone(),
                        have: have.clone(),
                    });
                }
                have = r.to.clone();
            }
            if have != inp.layout {
                lints.push(PlanLint::LayoutIncoherent {
                    step: si,
                    name: step.name.clone(),
                    container: inp.name.clone(),
                    want: inp.layout.clone(),
                    have: have.clone(),
                });
            }
            current_layout.insert(inp.data, have);
        }

        // writes: WAW/WAR edges + double-write detection
        for out in &step.outputs {
            if let Some(&w) = last_writer.get(&out.data) {
                if w != si {
                    deps.push(DepEdge {
                        from: w,
                        to: si,
                        data: out.data,
                        kind: DepKind::Waw,
                    });
                    // several slice writers of a stacked container are a
                    // graph-level feature, not a schedule bug
                    if graph.producers_of(out.data).len() <= 1 && !relayouted.contains(&out.data) {
                        lints.push(PlanLint::DoubleWrite {
                            step: si,
                            prev_step: w,
                            container: out.name.clone(),
                        });
                    }
                }
            }
            for &rd in readers_since_write.get(&out.data).into_iter().flatten() {
                if rd != si {
                    deps.push(DepEdge {
                        from: rd,
                        to: si,
                        data: out.data,
                        kind: DepKind::War,
                    });
                }
            }
            last_writer.insert(out.data, si);
            readers_since_write.entry(out.data).or_default().clear();
            produced.insert(out.data);
            current_layout.insert(out.data, out.layout.clone());
        }
    }

    deps.sort_unstable();
    deps.dedup();

    // cancelling relayout pairs: A→B followed by B→A on the same container
    for (data, events) in &relayout_log {
        let name = graph
            .data(*data)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("{data}"));
        for w in events.windows(2) {
            let (s1, ref from1, ref to1) = w[0];
            let (s2, ref from2, ref to2) = w[1];
            if to1 == from2 && to2 == from1 && from1 != to1 {
                lints.push(PlanLint::CancellingRelayouts {
                    first_step: s1,
                    second_step: s2,
                    container: name.clone(),
                });
            }
        }
    }

    // dead steps: every output is an activation nobody (scheduled or
    // unscheduled) will read
    let plan_ops: HashSet<NodeId> = plan.steps.iter().map(|s| s.op).collect();
    for (si, step) in plan.steps.iter().enumerate() {
        if step.outputs.is_empty() || graph.op(step.op).is_none() {
            continue;
        }
        let all_dead = step.outputs.iter().all(|out| {
            let Some(d) = graph.data(out.data) else {
                return false;
            };
            if d.role != DataRole::Activation {
                return false;
            }
            let read_later = plan.steps[si + 1..]
                .iter()
                .any(|s2| s2.inputs.iter().any(|i| i.data == out.data));
            if read_later {
                return false;
            }
            // unscheduled graph consumers (e.g. the backward half) keep
            // the value alive
            let consumers = graph.consumers_of(out.data);
            !consumers.is_empty() && consumers.iter().all(|c| plan_ops.contains(c))
        });
        if all_dead {
            lints.push(PlanLint::DeadStep {
                step: si,
                name: step.name.clone(),
            });
        }
    }

    // missed fusion: element-wise producer whose single-consumer
    // activation feeds an element-wise consumer, neither already fused
    let mut flagged: HashSet<(usize, usize)> = HashSet::new();
    for (si, step) in plan.steps.iter().enumerate() {
        let Some(node) = graph.op(step.op) else {
            continue;
        };
        if node.kind.class() != OpClass::Elementwise || matches!(node.kind, OpKind::Fused { .. }) {
            continue;
        }
        for out in &step.outputs {
            let Some(d) = graph.data(out.data) else {
                continue;
            };
            if d.role != DataRole::Activation || graph.consumers_of(out.data).len() != 1 {
                continue;
            }
            for (sj, later) in plan.steps.iter().enumerate().skip(si + 1) {
                if !later.inputs.iter().any(|i| i.data == out.data) {
                    continue;
                }
                let Some(consumer) = graph.op(later.op) else {
                    break;
                };
                if consumer.kind.class() == OpClass::Elementwise
                    && !matches!(consumer.kind, OpKind::Fused { .. })
                    && flagged.insert((si, sj))
                {
                    lints.push(PlanLint::MissedFusion {
                        first_step: si,
                        second_step: sj,
                        first: step.name.clone(),
                        second: later.name.clone(),
                    });
                }
                break;
            }
        }
    }

    // liveness: def/use intervals and the resident high-water mark
    let mut order: Vec<NodeId> = Vec::new();
    let mut defs: HashMap<NodeId, usize> = HashMap::new();
    let mut uses: HashMap<NodeId, (usize, usize)> = HashMap::new();
    for (si, step) in plan.steps.iter().enumerate() {
        for inp in &step.inputs {
            if !order.contains(&inp.data) {
                order.push(inp.data);
            }
            let e = uses.entry(inp.data).or_insert((si, si));
            e.1 = si;
        }
        for r in &step.relayouts {
            if !order.contains(&r.data) {
                order.push(r.data);
            }
            let e = uses.entry(r.data).or_insert((si, si));
            e.1 = si;
        }
        for out in &step.outputs {
            if !order.contains(&out.data) {
                order.push(out.data);
            }
            defs.entry(out.data).or_insert(si);
        }
    }
    let mut liveness: Vec<BufferLiveness> = Vec::new();
    let mut resident_words = vec![0u64; n];
    for data in order {
        let (name, words, role) = match graph.data(data) {
            Some(d) => (d.name.clone(), d.shape.num_elements() as u64, d.role),
            None => continue, // already reported as NotAContainer
        };
        let def = defs.get(&data).copied();
        let last_use = uses.get(&data).map(|&(_, l)| l);
        let start = def.unwrap_or(0);
        let pinned = matches!(role, DataRole::Output | DataRole::Saved | DataRole::Cache);
        let end = if pinned {
            n.saturating_sub(1)
        } else {
            last_use.unwrap_or(start).max(start)
        };
        for w in resident_words.iter_mut().take(end + 1).skip(start) {
            *w += words;
        }
        liveness.push(BufferLiveness {
            data,
            name,
            words,
            role,
            def,
            last_use,
            start,
            end,
        });
    }
    let (peak_step, peak_resident_words) = resident_words
        .iter()
        .copied()
        .enumerate()
        .max_by_key(|&(_, w)| w)
        .unwrap_or((0, 0));

    PlanAnalysis {
        deps,
        lints,
        liveness,
        resident_words,
        peak_resident_words,
        peak_step,
        n_steps: n,
    }
}

/// Derives the [`OpConfig`] a step's declared operand layouts correspond
/// to, mirroring the operand conventions of `xform-gpusim`'s
/// [`OpModel`]: einsums take their positional operands; other kernels key
/// the access pattern off the largest input/output.
pub(crate) fn step_config(graph: &Graph, step: &PlanStep) -> Option<OpConfig> {
    let elems = |data: NodeId| {
        graph
            .data(data)
            .map(|d| d.shape.num_elements())
            .unwrap_or(0)
    };
    // max_by_key semantics: last among ties, like OpModel's primary pick
    let largest = |ops: &[crate::plan::Operand]| -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (i, o) in ops.iter().enumerate() {
            let n = elems(o.data);
            if best.map(|(_, bn)| n >= bn).unwrap_or(true) {
                best = Some((i, n));
            }
        }
        best.map(|(i, _)| i)
    };
    if matches!(
        step.kind,
        OpKind::Einsum(_) | OpKind::ContractionEpilogue { .. }
    ) {
        let a = step.inputs.first()?;
        let c = step.outputs.first()?;
        Some(OpConfig {
            in_spec: a.layout.clone(),
            in2_spec: step.inputs.get(1).map(|b| b.layout.clone()),
            out_spec: c.layout.clone(),
            vector_axis: None,
            warp_axis: None,
            algo: 3,
            math: MathMode::TensorCore,
        })
    } else {
        let a = &step.inputs[largest(&step.inputs)?];
        let c = &step.outputs[largest(&step.outputs)?];
        Some(OpConfig {
            in_spec: a.layout.clone(),
            in2_spec: None,
            out_spec: c.layout.clone(),
            vector_axis: a.layout.chars().last(),
            warp_axis: step.kind.reduce_axis().map(|ax| ax.name()),
            algo: 3,
            math: MathMode::TensorCore,
        })
    }
}

/// One step's static movement accounting.
#[derive(Debug, Clone)]
pub struct StepAudit {
    /// Step index.
    pub step: usize,
    /// Kernel name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Words the step's graph memlets read.
    pub read_words: u64,
    /// Words the step's graph memlets write.
    pub write_words: u64,
    /// Words moved by this step's explicit relayouts (read + write of
    /// each relayouted container).
    pub relayout_words: u64,
    /// Flop performed.
    pub flop: u64,
    /// Modelled kernel cost under the step's declared layouts (`None`
    /// when the performance model cannot price the configuration; the
    /// movement accounting still counts its memlet words).
    pub cost: Option<KernelCost>,
    /// Static MUE under the modelled cost.
    pub mue: Option<Mue>,
}

/// Byte volumes of one operator class across the plan (Table I style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMovement {
    /// The class.
    pub class: OpClass,
    /// Number of scheduled steps in the class.
    pub steps: usize,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Flop performed.
    pub flop: u64,
}

impl ClassMovement {
    /// Total bytes moved by the class.
    pub fn io_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// The static data-movement audit of a whole plan.
#[derive(Debug, Clone)]
pub struct MovementAudit {
    /// Per-step accounting, in schedule order.
    pub per_step: Vec<StepAudit>,
    /// Aggregation per operator class (contraction, normalization,
    /// element-wise).
    pub per_class: Vec<ClassMovement>,
    /// Bytes moved by explicit relayouts (avoidable traffic).
    pub relayout_bytes: u64,
    /// Total bytes read by kernels (excluding relayouts).
    pub read_bytes: u64,
    /// Total bytes written by kernels (excluding relayouts).
    pub write_bytes: u64,
    /// Plan-level static MUE: `Q` sums every step's memlet volume, `D`
    /// the modelled moved words plus relayout traffic.
    pub plan_mue: Mue,
    /// How many steps the performance model could price.
    pub modelled_steps: usize,
    /// GEMM-epilogue chains still present in the graph (contraction +
    /// sole element-wise consumer the tile driver could collapse).
    pub epilogue_chains: usize,
    /// Bytes of movement those chains would eliminate (each interim's
    /// write plus read-back). Counted as pure movement — not algorithmic
    /// `Q` — so epilogue fusion lowers `D` while `Q` stays constant.
    pub epilogue_avoidable_bytes: u64,
}

impl MovementAudit {
    /// Total bytes the plan moves, kernels plus relayouts.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes + self.relayout_bytes
    }
}

/// Prices every step's data movement under its declared layouts via the
/// device model and aggregates per-class byte volumes plus a plan-level
/// static MUE — the paper's Sec. III accounting applied to a schedule,
/// with no kernel ever run.
///
/// Steps the model cannot price are assumed to move exactly their memlet
/// volume at the device's streaming efficiency (a perfect kernel), so
/// the aggregate errs toward optimism, never double-counting.
///
/// Words an un-collapsed GEMM-epilogue chain merely shuttles through its
/// eliminable intermediate (the contraction's write of it and the
/// consumer's read-back) are *not* algorithmic demand: they are counted
/// into `D` as pure movement instead of into `Q`. A plan that collapses
/// the chain via [`OpKind::ContractionEpilogue`] therefore audits at the
/// same `Q` with strictly lower `D` — a strictly higher static MUE.
pub fn audit(graph: &Graph, plan: &ExecutionPlan, device: &DeviceSpec) -> MovementAudit {
    let wb = device.word_bytes as u64;
    let mut acc = MueAccum::default();
    let mut per_step = Vec::with_capacity(plan.steps.len());
    let mut relayout_words_total = 0u64;
    let mut read_words_total = 0u64;
    let mut write_words_total = 0u64;
    let mut modelled = 0usize;
    let epi_chains = crate::fusion::detect_epilogues(graph);
    let mut avoid: HashMap<NodeId, u64> = HashMap::new();
    for c in &epi_chains {
        // the head writes the interim, the tail reads it back
        *avoid.entry(c.head).or_insert(0) += c.interim_words;
        *avoid.entry(c.tail).or_insert(0) += c.interim_words;
    }
    for (si, step) in plan.steps.iter().enumerate() {
        let read_words = graph.input_words(step.op);
        let write_words = graph.output_words(step.op);
        let relayout_words: u64 = step
            .relayouts
            .iter()
            .map(|r| {
                2 * graph
                    .data(r.data)
                    .map(|d| d.shape.num_elements() as u64)
                    .unwrap_or(0)
            })
            .sum();
        let flop = flops::op_flop(graph, step.op).unwrap_or(0);
        let q = graph.io_words(step.op);
        let avoid_words = avoid.get(&step.op).copied().unwrap_or(0).min(q);
        let q_eff = q - avoid_words;
        let cost = step_config(graph, step)
            .and_then(|cfg| OpModel::new(graph, step.op).ok().map(|m| (m, cfg)))
            .and_then(|(m, cfg)| m.cost(device, &cfg).ok());
        match &cost {
            Some(c) => {
                modelled += 1;
                if avoid_words > 0 {
                    // split the modelled traffic: the avoidable interim
                    // words become pure movement at the kernel's achieved
                    // bandwidth, the rest stays algorithmic. D and the
                    // bandwidth-weighted sum are unchanged; Q shrinks.
                    let adj = KernelCost {
                        moved_words: c.moved_words.max(q as f64) - avoid_words as f64,
                        ..*c
                    };
                    acc.add_kernel(q_eff as f64, &adj);
                    acc.add_movement(avoid_words as f64, c.bandwidth_frac);
                } else {
                    acc.add_kernel(q as f64, c);
                }
            }
            None => {
                acc.add_kernel(
                    q_eff as f64,
                    &KernelCost {
                        time_us: 0.0,
                        moved_words: q_eff as f64,
                        bandwidth_frac: device.stream_efficiency,
                        flop: flop as f64,
                    },
                );
                if avoid_words > 0 {
                    acc.add_movement(avoid_words as f64, device.stream_efficiency);
                }
            }
        }
        if relayout_words > 0 {
            acc.add_movement(relayout_words as f64, RELAYOUT_BANDWIDTH_FRAC);
        }
        relayout_words_total += relayout_words;
        read_words_total += read_words;
        write_words_total += write_words;
        let m = cost.as_ref().map(|c| mue(graph, step.op, c));
        per_step.push(StepAudit {
            step: si,
            name: step.name.clone(),
            class: step.kind.class(),
            read_words,
            write_words,
            relayout_words,
            flop,
            cost,
            mue: m,
        });
    }
    let per_class = [
        OpClass::TensorContraction,
        OpClass::StatisticalNormalization,
        OpClass::Elementwise,
    ]
    .into_iter()
    .map(|class| {
        let rows = per_step.iter().filter(|s| s.class == class);
        let (mut steps, mut r, mut w, mut f) = (0usize, 0u64, 0u64, 0u64);
        for s in rows {
            steps += 1;
            r += s.read_words;
            w += s.write_words;
            f += s.flop;
        }
        ClassMovement {
            class,
            steps,
            read_bytes: r * wb,
            write_bytes: w * wb,
            flop: f,
        }
    })
    .collect();
    MovementAudit {
        per_step,
        per_class,
        relayout_bytes: relayout_words_total * wb,
        read_bytes: read_words_total * wb,
        write_bytes: write_words_total * wb,
        plan_mue: acc.total(),
        modelled_steps: modelled,
        epilogue_chains: epi_chains.len(),
        epilogue_avoidable_bytes: crate::fusion::epilogue_interim_words(&epi_chains) * wb,
    }
}

/// Cross-checks a lowered plan against sweep data: flags steps whose
/// chosen layout pair is *dominated* — the step's primary output layout
/// is relayouted away before every later use (so its choice buys nothing
/// downstream), yet a strictly faster configuration with the same input
/// layout exists in the sweep.
pub fn lint_selection(
    _graph: &Graph,
    plan: &ExecutionPlan,
    sweeps: &HashMap<NodeId, SweepResult>,
) -> Vec<PlanLint> {
    let mut lints = Vec::new();
    for (si, step) in plan.steps.iter().enumerate() {
        let Some(sweep) = sweeps.get(&step.op) else {
            continue;
        };
        let Some(inp) = step.inputs.get(sweep.flowing_input) else {
            continue;
        };
        let Some(out) = step.outputs.first() else {
            continue;
        };
        let Some(chosen) = sweep.per_io.get(&(inp.layout.clone(), out.layout.clone())) else {
            continue;
        };
        // does any later step consume the output in the chosen layout?
        let consumed_as_is = plan.steps[si + 1..].iter().any(|later| {
            later
                .inputs
                .iter()
                .any(|i| i.data == out.data && i.layout == out.layout)
        });
        let read_later = plan.steps[si + 1..]
            .iter()
            .any(|later| later.inputs.iter().any(|i| i.data == out.data));
        if consumed_as_is || !read_later {
            continue;
        }
        let better = sweep
            .per_io
            .iter()
            .filter(|((i, o), _)| *i == inp.layout && *o != out.layout)
            .min_by(|a, b| a.1.time_us.total_cmp(&b.1.time_us));
        if let Some(((_, better_out), timing)) = better {
            if timing.time_us < chosen.time_us * 0.999 {
                lints.push(PlanLint::DominatedLayout {
                    step: si,
                    name: step.name.clone(),
                    chosen_us: chosen.time_us,
                    better_us: timing.time_us,
                    better_out: better_out.clone(),
                });
            }
        }
    }
    lints
}

/// Renders a human-readable audit report for one plan: schedule shape,
/// parallel waves, peak residency, per-class byte volumes, static MUE,
/// and every lint. This is what the `plan_audit` binary prints.
pub fn render_report(
    title: &str,
    analysis: &PlanAnalysis,
    audit: &MovementAudit,
    device: &DeviceSpec,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let waves = analysis.parallel_waves();
    let max_width = waves.iter().map(Vec::len).max().unwrap_or(0);
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "schedule: {} steps, {} hazard edges, {} waves (max width {max_width})",
        analysis.n_steps,
        analysis.deps.len(),
        waves.len(),
    );
    let peak_name = audit
        .per_step
        .get(analysis.peak_step)
        .map(|s| s.name.as_str())
        .unwrap_or("-");
    let _ = writeln!(
        out,
        "peak resident: {:.2} MiB at step {} (`{peak_name}`)",
        mib(analysis.peak_resident_bytes(device.word_bytes)),
        analysis.peak_step,
    );
    let per_wave = analysis.wave_resident_words();
    let (peak_wave, peak_wave_words) = analysis.peak_wave_resident_words();
    let _ = writeln!(
        out,
        "wave resident: peak {:.2} MiB at wave {peak_wave} of {}",
        mib(peak_wave_words * device.word_bytes as u64),
        per_wave.len(),
    );
    let _ = write!(out, "  per wave (MiB):");
    for w in &per_wave {
        let _ = write!(out, " {:.2}", mib(w * device.word_bytes as u64));
    }
    let _ = writeln!(out);
    let total = audit.total_bytes().max(1);
    let _ = writeln!(out, "per-class movement:");
    for c in &audit.per_class {
        let _ = writeln!(
            out,
            "  {} {:<28} {:2} steps  read {:>8.2} MiB  written {:>8.2} MiB  ({:4.1}% of bytes)",
            c.class.glyph(),
            c.class.to_string(),
            c.steps,
            mib(c.read_bytes),
            mib(c.write_bytes),
            100.0 * c.io_bytes() as f64 / total as f64,
        );
    }
    let _ = writeln!(
        out,
        "  ↺ {:<28} {:2} steps  moved {:>8.2} MiB  ({:4.1}% of bytes)",
        "relayouts (avoidable)",
        audit
            .per_step
            .iter()
            .filter(|s| s.relayout_words > 0)
            .count(),
        mib(audit.relayout_bytes),
        100.0 * audit.relayout_bytes as f64 / total as f64,
    );
    if audit.epilogue_chains > 0 {
        let _ = writeln!(
            out,
            "  ⇘ {:<28} {:2} chains moved {:>8.2} MiB  ({:4.1}% of bytes)",
            "gemm-epilogue (avoidable)",
            audit.epilogue_chains,
            mib(audit.epilogue_avoidable_bytes),
            100.0 * audit.epilogue_avoidable_bytes as f64 / total as f64,
        );
    }
    let m = &audit.plan_mue;
    let _ = writeln!(
        out,
        "static MUE: Q {:.2} Mwords, D {:.2} Mwords, B/B̂ {:.2} → {:.1} ({} of {} steps modelled)",
        m.q_words / 1e6,
        m.d_words / 1e6,
        m.bandwidth_frac,
        m.value,
        audit.modelled_steps,
        analysis.n_steps,
    );
    let errors = analysis.errors().len();
    let warnings = analysis
        .lints
        .iter()
        .filter(|l| l.severity() == Severity::Warning)
        .count();
    let _ = writeln!(out, "lints: {errors} errors, {warnings} warnings");
    for lint in &analysis.lints {
        let _ = writeln!(out, "  [{}] {lint}", lint.severity());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{apply_plan, encoder_fusion_plan};
    use crate::plan::Relayout;
    use crate::recipe::forward_ops;
    use xform_dataflow::{build, EncoderDims};

    fn unfused() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let plan = ExecutionPlan::natural(&eg.graph, &forward_ops(&eg.graph, eg.dy)).unwrap();
        (eg.graph, plan)
    }

    fn fused() -> (Graph, ExecutionPlan) {
        let eg = build::encoder(&EncoderDims::tiny());
        let mut g = eg.graph;
        apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
        let plan = ExecutionPlan::natural(&g, &forward_ops(&g, eg.dy)).unwrap();
        (g, plan)
    }

    #[test]
    fn canned_plans_are_error_clean() {
        for (g, plan) in [unfused(), fused()] {
            let a = analyze(&g, &plan);
            assert!(a.is_clean(), "{:?}", a.errors());
        }
    }

    #[test]
    fn reference_plan_reports_missed_fusion_but_fused_does_not() {
        let (g, plan) = unfused();
        let a = analyze(&g, &plan);
        assert!(
            a.lints
                .iter()
                .any(|l| matches!(l, PlanLint::MissedFusion { .. })),
            "the unfused schedule should show fusable element-wise chains"
        );
        let (gf, pf) = fused();
        let af = analyze(&gf, &pf);
        assert!(
            !af.lints
                .iter()
                .any(|l| matches!(l, PlanLint::MissedFusion { .. })),
            "{:?}",
            af.lints
        );
    }

    #[test]
    fn waves_cover_every_step_and_respect_all_hazards() {
        for (g, plan) in [unfused(), fused()] {
            let a = analyze(&g, &plan);
            let waves = a.parallel_waves();
            let mut seen: Vec<usize> = waves.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..plan.steps.len()).collect::<Vec<_>>());
            let wave_of = a.wave_of();
            for e in &a.deps {
                assert!(
                    wave_of[e.from] < wave_of[e.to],
                    "{:?} not respected by waves",
                    e
                );
            }
        }
    }

    #[test]
    fn unfused_plan_has_parallel_width() {
        // the three Q/K/V projections are independent: some wave must hold
        // more than one step
        let (g, plan) = unfused();
        let a = analyze(&g, &plan);
        assert!(a.parallel_waves().iter().any(|w| w.len() >= 2));
    }

    #[test]
    fn liveness_peak_is_at_least_the_largest_buffer() {
        let (g, plan) = unfused();
        let a = analyze(&g, &plan);
        assert_eq!(a.resident_words.len(), plan.steps.len());
        let largest = a.liveness.iter().map(|b| b.words).max().unwrap();
        assert!(a.peak_resident_words >= largest);
        assert_eq!(
            a.resident_words[a.peak_step], a.peak_resident_words,
            "peak step disagrees with the resident curve"
        );
        // saved tensors stay resident to the end
        let saved = a
            .liveness
            .iter()
            .find(|b| b.role == DataRole::Saved)
            .expect("forward plans save tensors for backward");
        assert_eq!(saved.end, plan.steps.len() - 1);
    }

    #[test]
    fn shuffled_schedule_is_caught() {
        let (g, mut plan) = unfused();
        // move the last step first: it consumes activations produced later
        let last = plan.steps.pop().unwrap();
        plan.steps.insert(0, last);
        let a = analyze(&g, &plan);
        assert!(a
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::UseBeforeDef { .. })));
        assert!(!a.is_clean());
    }

    #[test]
    fn duplicated_write_is_caught() {
        let (g, mut plan) = unfused();
        let dup = plan.steps[3].clone();
        plan.steps.insert(4, dup);
        let a = analyze(&g, &plan);
        assert!(
            a.lints
                .iter()
                .any(|l| matches!(l, PlanLint::DoubleWrite { .. })),
            "{:?}",
            a.lints
        );
    }

    #[test]
    fn orphan_and_redundant_relayouts_are_caught() {
        let (g, mut plan) = unfused();
        let foreign = plan.steps[5].outputs[0].clone();
        let own = plan.steps[1].inputs[0].clone();
        plan.steps[1].relayouts.push(Relayout {
            data: foreign.data,
            name: foreign.name.clone(),
            from: foreign.layout.clone(),
            to: foreign.layout.clone(),
        });
        plan.steps[1].relayouts.push(Relayout {
            data: own.data,
            name: own.name.clone(),
            from: own.layout.clone(),
            to: own.layout.clone(),
        });
        let a = analyze(&g, &plan);
        assert!(a
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::OrphanRelayout { .. })));
        assert!(a
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::RedundantRelayout { .. })));
    }

    #[test]
    fn audit_prices_canned_plans_and_fusion_reduces_movement() {
        let device = DeviceSpec::v100();
        let (gu, pu) = unfused();
        let (gf, pf) = fused();
        let au = audit(&gu, &pu, &device);
        let af = audit(&gf, &pf, &device);
        assert!(au.modelled_steps > 0);
        assert!((0.0..=100.0).contains(&au.plan_mue.value));
        assert!((0.0..=100.0).contains(&af.plan_mue.value));
        assert!(
            af.total_bytes() < au.total_bytes(),
            "fusion must reduce plan bytes ({} vs {})",
            af.total_bytes(),
            au.total_bytes()
        );
        // class shares cover all steps
        let counted: usize = au.per_class.iter().map(|c| c.steps).sum();
        assert_eq!(counted, pu.steps.len());
    }

    #[test]
    fn epilogue_fusion_lowers_d_with_q_constant() {
        let device = DeviceSpec::v100();
        let (gf, pf) = fused();
        let af = audit(&gf, &pf, &device);
        assert!(af.epilogue_chains >= 2, "chains: {}", af.epilogue_chains);
        assert!(af.epilogue_avoidable_bytes > 0);
        let mut ge = gf.clone();
        let eg = build::encoder(&EncoderDims::tiny());
        crate::fusion::apply_epilogues(&mut ge).unwrap();
        let pe = ExecutionPlan::natural(&ge, &forward_ops(&ge, eg.dy)).unwrap();
        let ae = audit(&ge, &pe, &device);
        assert_eq!(ae.epilogue_chains, 0);
        assert_eq!(ae.epilogue_avoidable_bytes, 0);
        // collapsing the chains removes pure movement, not algorithmic
        // demand: Q identical, D strictly lower, MUE strictly higher.
        let (mf, me) = (&af.plan_mue, &ae.plan_mue);
        assert!(
            (mf.q_words - me.q_words).abs() < 0.5,
            "Q changed: {} vs {}",
            mf.q_words,
            me.q_words
        );
        assert!(
            me.d_words < mf.d_words,
            "D must drop: {} vs {}",
            me.d_words,
            mf.d_words
        );
        assert!(me.value > mf.value, "MUE: {} vs {}", me.value, mf.value);
        // and the drop covers (at least) the avoidable interim traffic;
        // it may exceed it slightly when the mega-kernel's memlet floor
        // absorbs the GEMM model's excess k-pass traffic
        let wb = device.word_bytes as f64;
        let drop_bytes = (mf.d_words - me.d_words) * wb;
        assert!(
            drop_bytes + wb >= af.epilogue_avoidable_bytes as f64,
            "D drop {} bytes vs avoidable {}",
            drop_bytes,
            af.epilogue_avoidable_bytes
        );
    }

    #[test]
    fn relayouts_lower_static_mue() {
        let device = DeviceSpec::v100();
        let (g, plan) = unfused();
        let base = audit(&g, &plan, &device);
        let mut permuted = plan.clone();
        for step in &mut permuted.steps {
            for operand in step.inputs.iter_mut().chain(step.outputs.iter_mut()) {
                operand.layout = operand.layout.chars().rev().collect();
            }
        }
        permuted.reflow(&g);
        assert!(analyze(&g, &permuted).is_clean());
        let moved = audit(&g, &permuted, &device);
        assert!(moved.relayout_bytes > 0);
        assert!(moved.plan_mue.value < base.plan_mue.value);
        assert!(moved.plan_mue.d_words > base.plan_mue.d_words);
    }

    #[test]
    fn report_renders_all_sections() {
        let device = DeviceSpec::v100();
        let (g, plan) = fused();
        let a = analyze(&g, &plan);
        let m = audit(&g, &plan, &device);
        let r = render_report("Fused", &a, &m, &device);
        for needle in [
            "== Fused ==",
            "peak resident",
            "per-class movement",
            "tensor contraction",
            "static MUE",
            "lints:",
        ] {
            assert!(r.contains(needle), "report lacks `{needle}`:\n{r}");
        }
    }
}
