//! Property-based tests of the tensor substrate's core invariants:
//! einsum-vs-naive equivalence, layout round-trips, normalization
//! properties over arbitrary layouts, fused-vs-unfused equality, and FP16
//! conversion laws.

use proptest::prelude::*;
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xform_tensor::contract::naive_einsum;
use xform_tensor::einsum::EinsumSpec;
use xform_tensor::fused;
use xform_tensor::half::F16;
use xform_tensor::ops::dropout::dropout_backward;
use xform_tensor::ops::elementwise::{add, bias_add, bias_grad, relu, relu_backward, scale};
use xform_tensor::ops::layernorm::layernorm;
use xform_tensor::ops::softmax::softmax;
use xform_tensor::{contract, einsum, Axis, Layout, Shape, Tensor};

fn rand_tensor(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::random(shape, &Uniform::new(-2.0f32, 2.0), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn contract_matches_naive_on_projection(
        p in 1usize..5, h in 1usize..4, i in 1usize..8, b in 1usize..4, j in 1usize..6,
        seed in 0u64..1000,
    ) {
        let sizes = [('p', p), ('h', h), ('i', i), ('b', b), ('j', j)];
        let w = rand_tensor(Shape::from_spec("phi", &sizes).unwrap(), seed);
        let x = rand_tensor(Shape::from_spec("ibj", &sizes).unwrap(), seed + 1);
        let spec: EinsumSpec = "phi,ibj->phbj".parse().unwrap();
        let fast = einsum("phi,ibj->phbj", &[&w, &x]).unwrap();
        let slow = naive_einsum(&spec, &[&w, &x]).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn contract_matches_naive_on_batched(
        p in 1usize..4, h in 1usize..3, b in 1usize..3, j in 1usize..5, k in 1usize..5,
        seed in 0u64..1000,
    ) {
        let sizes = [('p', p), ('h', h), ('b', b), ('j', j), ('k', k)];
        let kk = rand_tensor(Shape::from_spec("phbk", &sizes).unwrap(), seed);
        let qq = rand_tensor(Shape::from_spec("phbj", &sizes).unwrap(), seed + 1);
        let spec: EinsumSpec = "phbk,phbj->hbjk".parse().unwrap();
        let fast = einsum("phbk,phbj->hbjk", &[&kk, &qq]).unwrap();
        let slow = naive_einsum(&spec, &[&kk, &qq]).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn contraction_is_layout_invariant(
        m in 1usize..6, n in 1usize..6, k in 1usize..6,
        la in 0usize..2, lb in 0usize..2, lc in 0usize..2,
        seed in 0u64..1000,
    ) {
        let sizes = [('m', m), ('k', k), ('n', n)];
        let a = rand_tensor(Shape::from_spec("mk", &sizes).unwrap(), seed);
        let b = rand_tensor(Shape::from_spec("kn", &sizes).unwrap(), seed + 1);
        let spec: EinsumSpec = "mk,kn->mn".parse().unwrap();
        let base = einsum("mk,kn->mn", &[&a, &b]).unwrap();
        let ap = a.relayout(&Layout::all(2)[la]);
        let bp = b.relayout(&Layout::all(2)[lb]);
        let out = contract::contract(&spec, &ap, &bp, &Layout::all(2)[lc]).unwrap();
        prop_assert!(out.max_abs_diff(&base).unwrap() < 1e-4);
    }

    #[test]
    fn relayout_roundtrip_preserves_values(
        a in 1usize..4, b in 1usize..5, c in 1usize..4,
        l1 in 0usize..6, l2 in 0usize..6,
        seed in 0u64..1000,
    ) {
        let shape = Shape::new([('a', a), ('b', b), ('c', c)]).unwrap();
        let t = rand_tensor(shape, seed);
        let layouts = Layout::all(3);
        let hop = t.relayout(&layouts[l1]).relayout(&layouts[l2]);
        prop_assert_eq!(hop.max_abs_diff(&t).unwrap(), 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_any_layout(
        b in 1usize..4, j in 1usize..5, k in 2usize..8, layout in 0usize..6,
        seed in 0u64..1000,
    ) {
        let shape = Shape::new([('b', b), ('j', j), ('k', k)]).unwrap();
        let t = rand_tensor(shape, seed).relayout(&Layout::all(3)[layout]);
        let y = softmax(&t, Axis('k')).unwrap();
        for bi in 0..b {
            for ji in 0..j {
                let s: f32 = (0..k).map(|ki| y.at(&[bi, ji, ki])).sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
                for ki in 0..k {
                    prop_assert!(y.at(&[bi, ji, ki]) > 0.0);
                }
            }
        }
    }

    #[test]
    fn layernorm_standardizes_any_layout(
        b in 1usize..4, j in 1usize..4, i in 2usize..10, layout in 0usize..6,
        seed in 0u64..1000,
    ) {
        let shape = Shape::new([('b', b), ('j', j), ('i', i)]).unwrap();
        let t = rand_tensor(shape, seed).relayout(&Layout::all(3)[layout]);
        let mut gamma = Tensor::zeros(Shape::new([('i', i)]).unwrap());
        gamma.fill(1.0);
        let beta = Tensor::zeros(Shape::new([('i', i)]).unwrap());
        let (y, _) = layernorm(&t, Axis('i'), &gamma, &beta).unwrap();
        for bi in 0..b {
            for ji in 0..j {
                let mean: f32 = (0..i).map(|ii| y.at(&[bi, ji, ii])).sum::<f32>() / i as f32;
                prop_assert!(mean.abs() < 1e-3, "mean {} at ({bi},{ji})", mean);
            }
        }
    }

    #[test]
    fn fused_brd_equals_composition(
        b in 1usize..3, j in 1usize..5, u in 1usize..8, seed in 0u64..1000,
    ) {
        let shape = Shape::from_spec("bju", &[('b', b), ('j', j), ('u', u)]).unwrap();
        let x = rand_tensor(shape, seed);
        let bias = rand_tensor(Shape::new([('u', u)]).unwrap(), seed + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = fused::brd(&x, &bias, 0.0, &mut rng).unwrap();
        let expect = relu(&bias_add(&x, &bias).unwrap());
        prop_assert!(f.out.max_abs_diff(&expect).unwrap() < 1e-5);
    }

    #[test]
    fn fused_sm_equals_composition(
        b in 1usize..3, j in 1usize..4, k in 2usize..8, alpha in 0.05f32..2.0,
        seed in 0u64..1000,
    ) {
        let shape = Shape::from_spec("bjk", &[('b', b), ('j', j), ('k', k)]).unwrap();
        let beta = rand_tensor(shape, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = fused::sm(&beta, alpha, Axis('k'), 0.0, &mut rng).unwrap();
        let expect = softmax(&scale(&beta, alpha), Axis('k')).unwrap();
        prop_assert!(f.alpha.max_abs_diff(&expect).unwrap() < 1e-4);
    }

    #[test]
    fn bias_adjoint_identity(
        b in 1usize..4, j in 1usize..5, i in 1usize..6, seed in 0u64..1000,
    ) {
        // <bias_add(x, db) - x, w> == <db, bias_grad(w)> — bias add and
        // bias grad are adjoint linear maps.
        let shape = Shape::from_spec("bji", &[('b', b), ('j', j), ('i', i)]).unwrap();
        let x = rand_tensor(shape.clone(), seed);
        let w = rand_tensor(shape, seed + 1);
        let db = rand_tensor(Shape::new([('i', i)]).unwrap(), seed + 2);
        let lhs: f32 = {
            let y = bias_add(&x, &db).unwrap();
            y.iter().map(|(idx, v)| w.at(&idx) * (v - x.at(&idx))).sum()
        };
        let rhs: f32 = {
            let g = bias_grad(&w, &[Axis('i')]).unwrap();
            g.iter().map(|(idx, v)| db.at(&idx) * v).sum()
        };
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn relu_backward_zeroes_exactly_where_forward_did(
        n in 1usize..50, seed in 0u64..1000,
    ) {
        let shape = Shape::new([('x', n)]).unwrap();
        let x = rand_tensor(shape.clone(), seed);
        let dy = rand_tensor(shape, seed + 1);
        let y = relu(&x);
        let dx = relu_backward(&dy, &x).unwrap();
        for idx in 0..n {
            if y.at(&[idx]) == 0.0 && x.at(&[idx]) != 0.0 {
                prop_assert_eq!(dx.at(&[idx]), 0.0);
            }
        }
    }

    #[test]
    fn dropout_backward_is_mask_multiplication(
        n in 1usize..40, seed in 0u64..1000,
    ) {
        let shape = Shape::new([('x', n)]).unwrap();
        let dy = rand_tensor(shape.clone(), seed);
        let mut mask = Tensor::zeros(shape);
        let mut rng = StdRng::seed_from_u64(seed);
        for m in mask.data_mut() {
            *m = if rng.gen::<f32>() < 0.5 { 0.0 } else { 2.0 };
        }
        let dx = dropout_backward(&dy, &mask).unwrap();
        for idx in 0..n {
            prop_assert_eq!(dx.at(&[idx]), dy.at(&[idx]) * mask.at(&[idx]));
        }
    }

    #[test]
    fn f16_roundtrip_is_idempotent(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        let once = F16::from_f32(x).to_f32();
        let twice = F16::from_f32(once).to_f32();
        if once.is_nan() {
            prop_assert!(twice.is_nan());
        } else {
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }
    }

    #[test]
    fn f16_preserves_sign_and_order(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (ha, hb) = (F16::from_f32(a).to_f32(), F16::from_f32(b).to_f32());
        // conversion is monotone: a ≤ b implies ha ≤ hb
        if a <= b {
            prop_assert!(ha <= hb, "{a} -> {ha}, {b} -> {hb}");
        }
        if a != 0.0 && ha != 0.0 {
            prop_assert_eq!(a.signum(), ha.signum());
        }
    }

    #[test]
    fn residual_add_commutes(n in 1usize..30, seed in 0u64..1000) {
        let shape = Shape::new([('x', n)]).unwrap();
        let a = rand_tensor(shape.clone(), seed);
        let b = rand_tensor(shape, seed + 1);
        let ab = add(&a, &b).unwrap();
        let ba = add(&b, &a).unwrap();
        prop_assert!(ab.max_abs_diff(&ba).unwrap() == 0.0);
    }
}

use rand::Rng;

mod parser_robustness {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn einsum_parser_never_panics(s in "[a-d,>-]{0,12}") {
            // arbitrary strings either parse or error; no panics
            let _ = s.parse::<EinsumSpec>();
        }

        #[test]
        fn parsed_specs_roundtrip_through_display(
            a in "[a-f]{1,4}", b in "[a-f]{1,4}",
        ) {
            let uniq = |s: &str| {
                let mut out = String::new();
                for c in s.chars() {
                    if !out.contains(c) {
                        out.push(c);
                    }
                }
                out
            };
            let (a, b) = (uniq(&a), uniq(&b));
            // output = union of labels (deduped) — always valid
            let mut out = a.clone();
            for c in b.chars() {
                if !out.contains(c) {
                    out.push(c);
                }
            }
            let text = format!("{a},{b}->{out}");
            if let Ok(spec) = text.parse::<EinsumSpec>() {
                let rt: EinsumSpec = spec.to_string().parse().unwrap();
                prop_assert_eq!(spec, rt);
            }
        }

        #[test]
        fn layout_from_order_never_panics(order in proptest::collection::vec(0usize..8, 0..8)) {
            let _ = Layout::from_order(order);
        }

        #[test]
        fn shape_from_spec_never_panics(spec in "[a-z]{0,8}") {
            let sizes: Vec<(char, usize)> = ('a'..='z').map(|c| (c, 3)).collect();
            let _ = Shape::from_spec(&spec, &sizes);
        }
    }
}
