//! Error types for the tensor substrate.

use std::fmt;

use crate::axes::Axis;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction, layout manipulation, einsum
/// parsing, and kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// An axis name appeared twice in a shape or spec.
    DuplicateAxis(Axis),
    /// An axis was requested that the shape does not contain.
    UnknownAxis(Axis),
    /// An axis was declared with size zero.
    ZeroSizedAxis(Axis),
    /// A layout permutation did not match the tensor rank.
    LayoutRankMismatch {
        /// Rank expected by the tensor shape.
        expected: usize,
        /// Rank of the offered layout.
        found: usize,
    },
    /// A layout permutation was not a permutation of `0..rank`.
    InvalidPermutation,
    /// Two tensors that must agree in shape did not.
    ShapeMismatch {
        /// Description of the operation that failed.
        context: &'static str,
    },
    /// An einsum specification could not be parsed.
    ParseError(String),
    /// Sizes bound to the same einsum label disagreed between operands.
    SizeConflict(Axis),
    /// The operation is not supported for the given operands.
    Unsupported(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DuplicateAxis(a) => write!(f, "duplicate axis `{a}` in shape"),
            TensorError::UnknownAxis(a) => write!(f, "unknown axis `{a}`"),
            TensorError::ZeroSizedAxis(a) => write!(f, "axis `{a}` has size zero"),
            TensorError::LayoutRankMismatch { expected, found } => {
                write!(
                    f,
                    "layout rank {found} does not match tensor rank {expected}"
                )
            }
            TensorError::InvalidPermutation => {
                write!(f, "layout order is not a permutation of the axes")
            }
            TensorError::ShapeMismatch { context } => {
                write!(f, "shape mismatch in {context}")
            }
            TensorError::ParseError(msg) => write!(f, "einsum parse error: {msg}"),
            TensorError::SizeConflict(a) => {
                write!(f, "conflicting sizes bound to einsum label `{a}`")
            }
            TensorError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let cases: Vec<TensorError> = vec![
            TensorError::DuplicateAxis(Axis('b')),
            TensorError::UnknownAxis(Axis('q')),
            TensorError::ZeroSizedAxis(Axis('j')),
            TensorError::LayoutRankMismatch {
                expected: 3,
                found: 2,
            },
            TensorError::InvalidPermutation,
            TensorError::ShapeMismatch { context: "add" },
            TensorError::ParseError("bad".into()),
            TensorError::SizeConflict(Axis('k')),
            TensorError::Unsupported("x".into()),
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
