//! Dropout (○ element-wise) forward and backward.
//!
//! Matches the training-time behaviour the paper measures: a Bernoulli mask
//! is generated (cuRAND on the GPU, [`rand`] here), survivors are scaled by
//! `1/(1-p)`, and the mask is saved because backpropagation reuses it
//! (`Dropout dX` nodes in Fig. 2 consume the stored mask, which is why the
//! mask counts toward data movement).

use rand::Rng;

use crate::error::Result;
use crate::tensor::Tensor;

use super::check_same_shape;

/// Applies dropout with drop probability `p`, returning `(output, mask)`.
/// The mask holds `0.0` for dropped elements and `1/(1-p)` for kept ones,
/// so backward is a plain element-wise product with the mask.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
pub fn dropout<R: Rng + ?Sized>(x: &Tensor, p: f32, rng: &mut R) -> (Tensor, Tensor) {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    let keep_scale = 1.0 / (1.0 - p);
    let mut mask = x.clone();
    for m in mask.data_mut() {
        *m = if rng.gen::<f32>() < p {
            0.0
        } else {
            keep_scale
        };
    }
    let mut out = x.clone();
    for (o, &m) in out.data_mut().iter_mut().zip(mask.data()) {
        *o *= m;
    }
    (out, mask)
}

/// Dropout backward: `dx = dy ⊙ mask`.
///
/// # Errors
///
/// Returns [`crate::TensorError::ShapeMismatch`] if shapes differ.
pub fn dropout_backward(dy: &Tensor, mask: &Tensor) -> Result<Tensor> {
    check_same_shape(dy, mask, "dropout_backward")?;
    super::elementwise::mul(dy, mask)
}

/// Identity dropout used for inference or deterministic tests: the returned
/// mask keeps every element with scale 1.
pub fn dropout_disabled(x: &Tensor) -> (Tensor, Tensor) {
    let mut mask = x.clone();
    mask.fill(1.0);
    (x.clone(), mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ones(n: usize) -> Tensor {
        Tensor::from_vec(Shape::new([('x', n)]).unwrap(), vec![1.0; n]).unwrap()
    }

    #[test]
    fn keeps_expected_fraction() {
        let x = ones(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let (_, mask) = dropout(&x, 0.3, &mut rng);
        let kept = mask.data().iter().filter(|&&m| m > 0.0).count();
        let frac = kept as f32 / 10_000.0;
        assert!((frac - 0.7).abs() < 0.02, "kept fraction {frac}");
    }

    #[test]
    fn scales_survivors() {
        let x = ones(100);
        let mut rng = StdRng::seed_from_u64(2);
        let (y, mask) = dropout(&x, 0.5, &mut rng);
        for (yv, mv) in y.data().iter().zip(mask.data()) {
            if *mv > 0.0 {
                assert!((yv - 2.0).abs() < 1e-6);
            } else {
                assert_eq!(*yv, 0.0);
            }
        }
    }

    #[test]
    fn expectation_preserved() {
        let x = ones(100_000);
        let mut rng = StdRng::seed_from_u64(3);
        let (y, _) = dropout(&x, 0.1, &mut rng);
        let mean = y.sum() / 100_000.0;
        assert!((mean - 1.0).abs() < 0.01);
    }

    #[test]
    fn backward_uses_mask() {
        let x = ones(50);
        let mut rng = StdRng::seed_from_u64(4);
        let (_, mask) = dropout(&x, 0.4, &mut rng);
        let dy = ones(50);
        let dx = dropout_backward(&dy, &mask).unwrap();
        assert_eq!(dx.data(), mask.data());
    }

    #[test]
    fn zero_probability_is_identity() {
        let x = ones(10);
        let mut rng = StdRng::seed_from_u64(5);
        let (y, mask) = dropout(&x, 0.0, &mut rng);
        assert_eq!(y.data(), x.data());
        assert!(mask.data().iter().all(|&m| m == 1.0));
    }

    #[test]
    fn disabled_is_identity() {
        let x = ones(10);
        let (y, mask) = dropout_disabled(&x);
        assert_eq!(y.data(), x.data());
        assert!(mask.data().iter().all(|&m| m == 1.0));
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_bad_probability() {
        let x = ones(4);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = dropout(&x, 1.0, &mut rng);
    }
}
