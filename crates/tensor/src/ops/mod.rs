//! Operator kernels for the transformer encoder layer.
//!
//! Split by the paper's operator classes (Sec. III-B):
//!
//! * tensor contractions live in [`crate::contract`] (△),
//! * statistical normalizations here in [`softmax`] and [`layernorm`] (⬜),
//! * element-wise operators in [`elementwise`] and [`dropout`] (○).
//!
//! Every forward kernel has a matching backward kernel, since the paper
//! optimizes the full training step (forward and backpropagation).

pub mod dropout;
pub mod elementwise;
pub mod layernorm;
pub mod softmax;

use crate::axes::Shape;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Calls `f` once per multi-index over all axes of `shape` except the axis
/// at logical position `skip` (which stays 0 in the passed index). The
/// caller turns the index into per-tensor base offsets and sweeps the lane.
pub(crate) fn for_each_outer<F>(shape: &Shape, skip: usize, mut f: F)
where
    F: FnMut(&[usize]),
{
    let rank = shape.rank();
    let mut idx = vec![0usize; rank];
    loop {
        f(&idx);
        // advance, skipping `skip`
        let mut done = true;
        for i in (0..rank).rev() {
            if i == skip {
                continue;
            }
            idx[i] += 1;
            if idx[i] < shape.sizes()[i] {
                done = false;
                break;
            }
            idx[i] = 0;
        }
        if done {
            break;
        }
    }
}

/// Verifies that two tensors share a shape, for kernels that require it.
pub(crate) fn check_same_shape(a: &Tensor, b: &Tensor, context: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch { context });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_outer_visits_all_but_skipped() {
        let s = Shape::new([('a', 2), ('b', 3), ('c', 4)]).unwrap();
        let mut count = 0;
        for_each_outer(&s, 1, |idx| {
            assert_eq!(idx[1], 0);
            count += 1;
        });
        assert_eq!(count, 2 * 4);
    }

    #[test]
    fn for_each_outer_rank_one() {
        let s = Shape::new([('a', 5)]).unwrap();
        let mut count = 0;
        for_each_outer(&s, 0, |_| count += 1);
        assert_eq!(count, 1);
    }
}
