//! Layer normalization (⬜ statistical normalization) forward and backward.
//!
//! The encoder layer normalizes over the embedding axis `i` with learned
//! scale `gamma` and shift `beta`. Backward is split exactly as in Fig. 2:
//! `LayerNorm dX` (gradient w.r.t. the input) and `LayerNorm dW` (gradients
//! w.r.t. `gamma`/`beta`), because the paper fuses those into different
//! kernels (`BLNRD` vs `BSB`/`EBSB`).

use crate::axes::Axis;
use crate::error::Result;
use crate::tensor::Tensor;

use super::{check_same_shape, for_each_outer};

/// Default variance epsilon (matches common BERT configurations).
pub const EPS: f32 = 1e-5;

/// Saved forward statistics needed by the backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormStats {
    /// Per-slice mean of the input, shaped like the input minus the
    /// normalized axis (flattened row-major over the remaining axes).
    pub mean: Vec<f32>,
    /// Per-slice `1/sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
}

/// Layer normalization over `axis` with learned `gamma`/`beta` (1-D tensors
/// over that axis). Returns the output and the statistics consumed by
/// [`layernorm_backward_input`] / [`layernorm_backward_weights`].
///
/// # Errors
///
/// Returns an error if `axis` is missing from `x` or if `gamma`/`beta` do
/// not have shape `[axis]`.
pub fn layernorm(
    x: &Tensor,
    axis: Axis,
    gamma: &Tensor,
    beta: &Tensor,
) -> Result<(Tensor, LayerNormStats)> {
    let ai = x.shape().index_of(axis)?;
    check_weight(gamma, axis, x.shape().sizes()[ai])?;
    check_weight(beta, axis, x.shape().sizes()[ai])?;
    let len = x.shape().sizes()[ai];
    let stride = x.strides()[ai];
    let mut out = x.clone();
    let mut stats = LayerNormStats {
        mean: Vec::new(),
        inv_std: Vec::new(),
    };
    if stride == 1 && x.layout().is_row_major_for(x.shape()) {
        // Locally discharged access certificate: dense physically row-major
        // buffer with a unit-stride reduce axis, so `post == 1` (every axis
        // after `ai` is a singleton) and each lane is an exact contiguous
        // chunk. `for_each_outer` visits outer indices in logical row-major
        // order, which with singleton trailing axes is exactly `pre`-major —
        // the order the twin writes its per-lane statistics.
        let lane = crate::into_ops::LaneGeom::new(x.shape().sizes(), ai);
        debug_assert_eq!(lane.post, 1);
        debug_assert_eq!(lane.elements(), x.data().len());
        stats.mean.resize(lane.lanes(), 0.0);
        stats.inv_std.resize(lane.lanes(), 0.0);
        // SAFETY: in-bounds and unit-stride proven above; `out` is a clone
        // of `x`; `gamma`/`beta` were checked to hold exactly `len` words;
        // the stats vectors were just sized to `lane.lanes()`.
        unsafe {
            crate::into_ops::layernorm_into_unchecked(
                x.data(),
                gamma.data(),
                beta.data(),
                lane,
                out.data_mut(),
                &mut stats.mean,
                &mut stats.inv_std,
            );
        }
        return Ok((out, stats));
    }
    for_each_outer(x.shape(), ai, |idx| {
        let base = x.offset(idx);
        let mut sum = 0.0f32;
        let mut sq = 0.0f32;
        for v in 0..len {
            let val = x.data()[base + v * stride];
            sum += val;
            sq += val * val;
        }
        let mean = sum / len as f32;
        let var = (sq / len as f32 - mean * mean).max(0.0);
        let inv_std = 1.0 / (var + EPS).sqrt();
        for v in 0..len {
            let xhat = (x.data()[base + v * stride] - mean) * inv_std;
            out.data_mut()[base + v * stride] = xhat * gamma.data()[v] + beta.data()[v];
        }
        stats.mean.push(mean);
        stats.inv_std.push(inv_std);
    });
    Ok((out, stats))
}

/// Layer-norm backward w.r.t. the input (`LayerNorm dX` in Fig. 2):
///
/// `dx = inv_std · (dy·γ − mean(dy·γ) − x̂ · mean(dy·γ·x̂))`.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn layernorm_backward_input(
    dy: &Tensor,
    x: &Tensor,
    axis: Axis,
    gamma: &Tensor,
    stats: &LayerNormStats,
) -> Result<Tensor> {
    check_same_shape(dy, x, "layernorm_backward_input")?;
    let ai = x.shape().index_of(axis)?;
    let len = x.shape().sizes()[ai];
    check_weight(gamma, axis, len)?;
    let mut dx = x.clone();
    let mut slice = 0usize;
    for_each_outer(x.shape(), ai, |idx| {
        let x_base = x.offset(idx);
        let x_stride = x.strides()[ai];
        let dy_base = dy.offset(idx);
        let dy_stride = dy.strides()[ai];
        let mean = stats.mean[slice];
        let inv_std = stats.inv_std[slice];
        slice += 1;
        let mut s1 = 0.0f32; // mean of dy*gamma
        let mut s2 = 0.0f32; // mean of dy*gamma*xhat
        for v in 0..len {
            let g = dy.data()[dy_base + v * dy_stride] * gamma.data()[v];
            let xhat = (x.data()[x_base + v * x_stride] - mean) * inv_std;
            s1 += g;
            s2 += g * xhat;
        }
        s1 /= len as f32;
        s2 /= len as f32;
        for v in 0..len {
            let g = dy.data()[dy_base + v * dy_stride] * gamma.data()[v];
            let xhat = (x.data()[x_base + v * x_stride] - mean) * inv_std;
            dx.data_mut()[x_base + v * x_stride] = inv_std * (g - s1 - xhat * s2);
        }
    });
    Ok(dx)
}

/// Layer-norm backward w.r.t. the weights (`LayerNorm dW` in Fig. 2):
/// returns `(dgamma, dbeta)`, each shaped `[axis]`.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn layernorm_backward_weights(
    dy: &Tensor,
    x: &Tensor,
    axis: Axis,
    stats: &LayerNormStats,
) -> Result<(Tensor, Tensor)> {
    check_same_shape(dy, x, "layernorm_backward_weights")?;
    let ai = x.shape().index_of(axis)?;
    let len = x.shape().sizes()[ai];
    let shape = crate::axes::Shape::new([(axis, len)])?;
    let mut dgamma = Tensor::zeros(shape.clone());
    let mut dbeta = Tensor::zeros(shape);
    let mut slice = 0usize;
    for_each_outer(x.shape(), ai, |idx| {
        let x_base = x.offset(idx);
        let x_stride = x.strides()[ai];
        let dy_base = dy.offset(idx);
        let dy_stride = dy.strides()[ai];
        let mean = stats.mean[slice];
        let inv_std = stats.inv_std[slice];
        slice += 1;
        for v in 0..len {
            let g = dy.data()[dy_base + v * dy_stride];
            let xhat = (x.data()[x_base + v * x_stride] - mean) * inv_std;
            dgamma.data_mut()[v] += g * xhat;
            dbeta.data_mut()[v] += g;
        }
    });
    Ok((dgamma, dbeta))
}

fn check_weight(w: &Tensor, axis: Axis, len: usize) -> Result<()> {
    if w.shape().rank() != 1 || !w.shape().contains(axis) || w.shape().sizes()[0] != len {
        return Err(crate::error::TensorError::ShapeMismatch {
            context: "layernorm weight",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::Shape;
    use crate::layout::Layout;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Tensor, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random(
            Shape::new([('b', 2), ('j', 3), ('i', 5)]).unwrap(),
            &Uniform::new(-2.0, 2.0),
            &mut rng,
        );
        let gamma = Tensor::random(
            Shape::new([('i', 5)]).unwrap(),
            &Uniform::new(0.5, 1.5),
            &mut rng,
        );
        let beta = Tensor::random(
            Shape::new([('i', 5)]).unwrap(),
            &Uniform::new(-0.5, 0.5),
            &mut rng,
        );
        (x, gamma, beta)
    }

    #[test]
    fn normalizes_mean_and_variance() {
        let (x, _, _) = setup(1);
        let ones = Tensor::from_vec(Shape::new([('i', 5)]).unwrap(), vec![1.0; 5]).unwrap();
        let zeros = Tensor::zeros(Shape::new([('i', 5)]).unwrap());
        let (y, _) = layernorm(&x, Axis('i'), &ones, &zeros).unwrap();
        for b in 0..2 {
            for j in 0..3 {
                let mut mean = 0.0;
                let mut var = 0.0;
                for i in 0..5 {
                    mean += y.at(&[b, j, i]);
                }
                mean /= 5.0;
                for i in 0..5 {
                    var += (y.at(&[b, j, i]) - mean).powi(2);
                }
                var /= 5.0;
                assert!(mean.abs() < 1e-5);
                assert!((var - 1.0).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gamma_beta_applied() {
        let (x, gamma, beta) = setup(2);
        let (y, _) = layernorm(&x, Axis('i'), &gamma, &beta).unwrap();
        let ones = Tensor::from_vec(Shape::new([('i', 5)]).unwrap(), vec![1.0; 5]).unwrap();
        let zeros = Tensor::zeros(Shape::new([('i', 5)]).unwrap());
        let (yhat, _) = layernorm(&x, Axis('i'), &ones, &zeros).unwrap();
        let mut idx = vec![0usize; 3];
        loop {
            let expect = yhat.at(&idx) * gamma.at(&[idx[2]]) + beta.at(&[idx[2]]);
            assert!((y.at(&idx) - expect).abs() < 1e-5);
            if !x.advance(&mut idx) {
                break;
            }
        }
    }

    #[test]
    fn layout_independent() {
        let (x, gamma, beta) = setup(3);
        let (base, _) = layernorm(&x, Axis('i'), &gamma, &beta).unwrap();
        for layout in Layout::all(3) {
            let xp = x.relayout(&layout);
            let (y, _) = layernorm(&xp, Axis('i'), &gamma, &beta).unwrap();
            assert!(y.max_abs_diff(&base).unwrap() < 1e-5);
        }
    }

    #[test]
    fn backward_input_matches_numerical() {
        let (x, gamma, beta) = setup(4);
        let mut rng = StdRng::seed_from_u64(40);
        let w = Tensor::random(x.shape().clone(), &Uniform::new(-1.0, 1.0), &mut rng);
        let loss = |xx: &Tensor| -> f32 {
            let (y, _) = layernorm(xx, Axis('i'), &gamma, &beta).unwrap();
            y.iter().map(|(i, v)| w.at(&i) * v).sum()
        };
        let (y, stats) = layernorm(&x, Axis('i'), &gamma, &beta).unwrap();
        let _ = y;
        let dx = layernorm_backward_input(&w, &x, Axis('i'), &gamma, &stats).unwrap();
        let eps = 1e-2f32;
        let mut idx = vec![0usize; 3];
        loop {
            let mut xp = x.clone();
            let off = xp.offset(&idx);
            xp.data_mut()[off] += eps;
            let mut xm = x.clone();
            xm.data_mut()[off] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.at(&idx)).abs() < 5e-2,
                "numerical {num} vs analytic {} at {idx:?}",
                dx.at(&idx)
            );
            if !x.advance(&mut idx) {
                break;
            }
        }
    }

    #[test]
    fn backward_weights_matches_numerical() {
        let (x, gamma, beta) = setup(5);
        let mut rng = StdRng::seed_from_u64(50);
        let w = Tensor::random(x.shape().clone(), &Uniform::new(-1.0, 1.0), &mut rng);
        let (_, stats) = layernorm(&x, Axis('i'), &gamma, &beta).unwrap();
        let (dgamma, dbeta) = layernorm_backward_weights(&w, &x, Axis('i'), &stats).unwrap();
        let eps = 1e-2f32;
        for i in 0..5 {
            // dgamma
            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm = gamma.clone();
            gm.data_mut()[i] -= eps;
            let lp: f32 = layernorm(&x, Axis('i'), &gp, &beta)
                .unwrap()
                .0
                .iter()
                .map(|(ix, v)| w.at(&ix) * v)
                .sum();
            let lm: f32 = layernorm(&x, Axis('i'), &gm, &beta)
                .unwrap()
                .0
                .iter()
                .map(|(ix, v)| w.at(&ix) * v)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dgamma.at(&[i])).abs() < 5e-2);
            // dbeta
            let mut bp = beta.clone();
            bp.data_mut()[i] += eps;
            let mut bm = beta.clone();
            bm.data_mut()[i] -= eps;
            let lp: f32 = layernorm(&x, Axis('i'), &gamma, &bp)
                .unwrap()
                .0
                .iter()
                .map(|(ix, v)| w.at(&ix) * v)
                .sum();
            let lm: f32 = layernorm(&x, Axis('i'), &gamma, &bm)
                .unwrap()
                .0
                .iter()
                .map(|(ix, v)| w.at(&ix) * v)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dbeta.at(&[i])).abs() < 5e-2);
        }
    }

    #[test]
    fn rejects_bad_weight_shapes() {
        let (x, _, _) = setup(6);
        let bad = Tensor::zeros(Shape::new([('i', 4)]).unwrap());
        let beta = Tensor::zeros(Shape::new([('i', 5)]).unwrap());
        assert!(layernorm(&x, Axis('i'), &bad, &beta).is_err());
    }
}
