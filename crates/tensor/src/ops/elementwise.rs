//! Element-wise operators (○): bias, activation, residual, scaling, and
//! their backward passes.

use crate::axes::Axis;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

use super::check_same_shape;

/// Applies `f` to every element, producing a tensor with the same shape and
/// layout as `x`.
pub fn map<F>(x: &Tensor, mut f: F) -> Tensor
where
    F: FnMut(f32) -> f32,
{
    let mut out = x.clone();
    for v in out.data_mut() {
        *v = f(*v);
    }
    out
}

/// Combines two same-shape tensors element-wise. The output inherits `a`'s
/// layout. Layouts of `a` and `b` may differ.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn zip_map<F>(a: &Tensor, b: &Tensor, mut f: F) -> Result<Tensor>
where
    F: FnMut(f32, f32) -> f32,
{
    check_same_shape(a, b, "zip_map")?;
    let mut out = a.clone();
    if a.layout() == b.layout() {
        // identical memory mapping — a single fused sweep
        for (o, &bv) in out.data_mut().iter_mut().zip(b.data()) {
            *o = f(*o, bv);
        }
        return Ok(out);
    }
    let mut idx = vec![0usize; a.shape().rank()];
    loop {
        let off = out.offset(&idx);
        let v = f(a.at(&idx), b.at(&idx));
        out.data_mut()[off] = v;
        if !a.advance(&mut idx) {
            break;
        }
    }
    Ok(out)
}

/// Residual connection: `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_map(a, b, |x, y| x + y)
}

/// Element-wise product (used for dropout-mask application).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_map(a, b, |x, y| x * y)
}

/// Multiplies every element by `alpha` (the `1/sqrt(P)` attention scaling —
/// the one operation cuBLAS lets the paper fuse into a contraction).
pub fn scale(x: &Tensor, alpha: f32) -> Tensor {
    map(x, |v| alpha * v)
}

/// Adds a broadcast bias: `out[idx] = x[idx] + bias[idx restricted to bias
/// axes]`. The bias's axes must be a subset of `x`'s (e.g. bias `[p,h]`
/// added to a `[p,h,b,j]` activation — the paper's "bias `[ph]`" nodes).
///
/// # Errors
///
/// Returns [`TensorError::UnknownAxis`] if a bias axis is absent from `x`.
pub fn bias_add(x: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let positions: Vec<usize> = bias
        .shape()
        .axes()
        .iter()
        .map(|&ax| x.shape().index_of(ax))
        .collect::<Result<Vec<_>>>()?;
    for (&p, &n) in positions.iter().zip(bias.shape().sizes()) {
        if x.shape().sizes()[p] != n {
            return Err(TensorError::ShapeMismatch {
                context: "bias_add",
            });
        }
    }
    let mut out = x.clone();
    let mut idx = vec![0usize; x.shape().rank()];
    let mut bidx = vec![0usize; bias.shape().rank()];
    loop {
        for (bi, &p) in bidx.iter_mut().zip(&positions) {
            *bi = idx[p];
        }
        let off = out.offset(&idx);
        out.data_mut()[off] += bias.at(&bidx);
        if !x.advance(&mut idx) {
            break;
        }
    }
    Ok(out)
}

/// Gradient of a broadcast bias: sums `dy` over every axis not in the bias
/// (the `bji->i`-style reduction of Fig. 3).
///
/// # Errors
///
/// Returns [`TensorError::UnknownAxis`] if a bias axis is absent from `dy`.
pub fn bias_grad(dy: &Tensor, bias_axes: &[Axis]) -> Result<Tensor> {
    let positions: Vec<usize> = bias_axes
        .iter()
        .map(|&ax| dy.shape().index_of(ax))
        .collect::<Result<Vec<_>>>()?;
    let out_shape = crate::axes::Shape::new(
        bias_axes
            .iter()
            .zip(&positions)
            .map(|(&ax, &p)| (ax, dy.shape().sizes()[p])),
    )?;
    let mut out = Tensor::zeros(out_shape);
    let mut idx = vec![0usize; dy.shape().rank()];
    let mut bidx = vec![0usize; positions.len()];
    loop {
        for (bi, &p) in bidx.iter_mut().zip(&positions) {
            *bi = idx[p];
        }
        let off = out.offset(&bidx);
        out.data_mut()[off] += dy.at(&idx);
        if !dy.advance(&mut idx) {
            break;
        }
    }
    Ok(out)
}

/// ReLU activation.
pub fn relu(x: &Tensor) -> Tensor {
    map(x, |v| v.max(0.0))
}

/// ReLU backward: `dx = dy · 1[x > 0]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn relu_backward(dy: &Tensor, x: &Tensor) -> Result<Tensor> {
    zip_map(dy, x, |g, v| if v > 0.0 { g } else { 0.0 })
}

/// The feed-forward activation function. The paper's BERT figure uses
/// ReLU; the original BERT (and GPT-2) use GELU — both are supported and
/// the recipe is agnostic (they are element-wise either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivationKind {
    /// `max(0, x)`.
    #[default]
    Relu,
    /// The tanh-approximated Gaussian error linear unit used by BERT/GPT-2.
    Gelu,
}

/// `√(2/π)`, the GELU tanh-approximation constant.
const GELU_C: f32 = 0.797_884_6;

impl ActivationKind {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Gelu => 0.5 * x * (1.0 + (GELU_C * (x + 0.044_715 * x * x * x)).tanh()),
        }
    }

    /// Derivative of the activation with respect to its pre-activation.
    #[inline]
    pub fn grad(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Gelu => {
                let u = GELU_C * (x + 0.044_715 * x * x * x);
                let t = u.tanh();
                let du = GELU_C * (1.0 + 3.0 * 0.044_715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
            }
        }
    }
}

/// Applies an activation element-wise.
pub fn activate(x: &Tensor, kind: ActivationKind) -> Tensor {
    map(x, |v| kind.apply(v))
}

/// Activation backward: `dx = dy · act'(x)` where `x` is the saved
/// pre-activation.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn activate_backward(dy: &Tensor, x: &Tensor, kind: ActivationKind) -> Result<Tensor> {
    zip_map(dy, x, |g, v| g * kind.grad(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::Shape;
    use crate::layout::Layout;

    fn t(vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::new([('b', 2), ('j', 2)]).unwrap(), vals.to_vec()).unwrap()
    }

    #[test]
    fn add_and_mul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn zip_map_handles_mixed_layouts() {
        let a = t(&[1.0, 2.0, 3.0, 4.0]);
        let b_rm = t(&[10.0, 20.0, 30.0, 40.0]);
        let b = b_rm.relayout(&Layout::from_axis_order(b_rm.shape(), "jb").unwrap());
        let out = add(&a, &b).unwrap();
        let expect = add(&a, &b_rm).unwrap();
        assert_eq!(out.max_abs_diff(&expect).unwrap(), 0.0);
        assert_eq!(out.layout(), a.layout());
    }

    #[test]
    fn zip_map_rejects_shape_mismatch() {
        let a = t(&[0.0; 4]);
        let b = Tensor::zeros(Shape::new([('b', 2)]).unwrap());
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn scale_scales() {
        let a = t(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(scale(&a, 0.5).data(), &[0.5, -1.0, 1.5, -2.0]);
    }

    #[test]
    fn bias_add_broadcasts_over_missing_axes() {
        let x = t(&[1.0, 2.0, 3.0, 4.0]); // axes (b, j)
        let bias = Tensor::from_vec(Shape::new([('j', 2)]).unwrap(), vec![10.0, 20.0]).unwrap();
        let out = bias_add(&x, &bias).unwrap();
        assert_eq!(out.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn bias_add_validates_axes() {
        let x = t(&[0.0; 4]);
        let bias = Tensor::zeros(Shape::new([('q', 2)]).unwrap());
        assert!(bias_add(&x, &bias).is_err());
        let bias = Tensor::zeros(Shape::new([('j', 3)]).unwrap());
        assert!(bias_add(&x, &bias).is_err());
    }

    #[test]
    fn bias_grad_reduces_other_axes() {
        let dy = t(&[1.0, 2.0, 3.0, 4.0]);
        let g = bias_grad(&dy, &[Axis('j')]).unwrap();
        assert_eq!(g.data(), &[4.0, 6.0]);
        let g2 = bias_grad(&dy, &[Axis('b'), Axis('j')]).unwrap();
        assert_eq!(g2.data(), dy.data());
    }

    #[test]
    fn gelu_matches_reference_values() {
        // reference values from the tanh approximation
        let cases = [
            (0.0f32, 0.0f32),
            (1.0, 0.841_192),
            (-1.0, -0.158_808),
            (3.0, 2.996_363),
            (-3.0, -0.003_637),
        ];
        for (x, want) in cases {
            let got = ActivationKind::Gelu.apply(x);
            assert!((got - want).abs() < 1e-3, "gelu({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn gelu_grad_matches_numerical() {
        for &x in &[-2.5f32, -1.0, -0.1, 0.0, 0.3, 1.7, 4.0] {
            let eps = 1e-3;
            let num = (ActivationKind::Gelu.apply(x + eps) - ActivationKind::Gelu.apply(x - eps))
                / (2.0 * eps);
            let ana = ActivationKind::Gelu.grad(x);
            assert!(
                (num - ana).abs() < 1e-2,
                "gelu'({x}): {ana} vs numeric {num}"
            );
        }
    }

    #[test]
    fn activate_dispatches_and_backward_agrees_with_relu_path() {
        let x = t(&[1.0, -2.0, 0.5, -0.1]);
        let a = activate(&x, ActivationKind::Relu);
        assert_eq!(a.data(), relu(&x).data());
        let dy = t(&[1.0, 1.0, 1.0, 1.0]);
        let g1 = activate_backward(&dy, &x, ActivationKind::Relu).unwrap();
        let g2 = relu_backward(&dy, &x).unwrap();
        assert_eq!(g1.data(), g2.data());
        // GELU is smooth and nonzero on both sides
        let g3 = activate_backward(&dy, &x, ActivationKind::Gelu).unwrap();
        assert!(g3.data().iter().all(|v| v.is_finite()));
        assert!(g3.at(&[0, 1]) != 0.0);
    }

    #[test]
    fn relu_and_backward() {
        let x = t(&[1.0, -2.0, 0.0, 4.0]);
        assert_eq!(relu(&x).data(), &[1.0, 0.0, 0.0, 4.0]);
        let dy = t(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(
            relu_backward(&dy, &x).unwrap().data(),
            &[5.0, 0.0, 0.0, 5.0]
        );
    }
}
