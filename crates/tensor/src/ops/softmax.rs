//! Softmax (⬜ statistical normalization) forward and backward.
//!
//! In the paper's MHA, softmax runs over the output-sequence axis `k` of the
//! scaled attention scores `beta[h,b,j,k]` and is fused with scaling and
//! dropout into the `SM` kernel; the unfused building block lives here.

use crate::axes::Axis;
use crate::error::Result;
use crate::tensor::Tensor;

use super::{check_same_shape, for_each_outer};

/// Numerically stable softmax along `axis`.
///
/// # Errors
///
/// Returns [`crate::TensorError::UnknownAxis`] if `axis` is not part of the
/// tensor's shape.
///
/// # Examples
///
/// ```
/// use xform_tensor::{ops::softmax::softmax, Axis, Shape, Tensor};
/// let x = Tensor::from_vec(Shape::new([('k', 2)]).unwrap(), vec![0.0, 0.0]).unwrap();
/// let y = softmax(&x, Axis('k')).unwrap();
/// assert!((y.at(&[0]) - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(x: &Tensor, axis: Axis) -> Result<Tensor> {
    let ai = x.shape().index_of(axis)?;
    let len = x.shape().sizes()[ai];
    let stride = x.strides()[ai];
    let mut out = x.clone();
    if stride == 1 && x.layout().is_row_major_for(x.shape()) {
        // Locally discharged access certificate: the buffer is dense
        // (`data().len() == num_elements`, a `Tensor` invariant), physically
        // row-major, and the reduce axis has unit stride — so `post == 1`
        // and every lane is an exact contiguous chunk. `scaler = 1.0` is a
        // bitwise identity under IEEE 754 multiplication.
        let lane = crate::into_ops::LaneGeom::new(x.shape().sizes(), ai);
        debug_assert_eq!(lane.post, 1);
        debug_assert_eq!(lane.elements(), x.data().len());
        // SAFETY: in-bounds and unit-stride proven by the checks above;
        // `out` is a clone of `x`, so it has the same length.
        unsafe {
            crate::into_ops::softmax_scaled_into_unchecked(x.data(), 1.0, lane, out.data_mut());
        }
        return Ok(out);
    }
    for_each_outer(x.shape(), ai, |idx| {
        let base = x.offset(idx);
        // max
        let mut mx = f32::NEG_INFINITY;
        for v in 0..len {
            mx = mx.max(x.data()[base + v * stride]);
        }
        // exp + sum
        let mut sum = 0.0f32;
        for v in 0..len {
            let e = (x.data()[base + v * stride] - mx).exp();
            out.data_mut()[base + v * stride] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for v in 0..len {
            out.data_mut()[base + v * stride] *= inv;
        }
    });
    Ok(out)
}

/// Softmax backward: `dx = y ⊙ (dy − ⟨dy, y⟩_axis)`, where `y` is the
/// forward output.
///
/// # Errors
///
/// Returns an error if shapes differ or `axis` is unknown.
pub fn softmax_backward(dy: &Tensor, y: &Tensor, axis: Axis) -> Result<Tensor> {
    check_same_shape(dy, y, "softmax_backward")?;
    let ai = y.shape().index_of(axis)?;
    let len = y.shape().sizes()[ai];
    let mut dx = y.clone();
    for_each_outer(y.shape(), ai, |idx| {
        let y_base = y.offset(idx);
        let y_stride = y.strides()[ai];
        let dy_base = dy.offset(idx);
        let dy_stride = dy.strides()[ai];
        let mut dot = 0.0f32;
        for v in 0..len {
            dot += dy.data()[dy_base + v * dy_stride] * y.data()[y_base + v * y_stride];
        }
        for v in 0..len {
            let g = dy.data()[dy_base + v * dy_stride] - dot;
            dx.data_mut()[y_base + v * y_stride] = y.data()[y_base + v * y_stride] * g;
        }
    });
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::Shape;
    use crate::layout::Layout;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_t(seed: u64) -> Tensor {
        let shape = Shape::new([('b', 2), ('j', 3), ('k', 4)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::random(shape, &Uniform::new(-2.0, 2.0), &mut rng)
    }

    #[test]
    fn rows_sum_to_one_and_are_positive() {
        let x = rand_t(1);
        let y = softmax(&x, Axis('k')).unwrap();
        for b in 0..2 {
            for j in 0..3 {
                let mut sum = 0.0;
                for k in 0..4 {
                    let v = y.at(&[b, j, k]);
                    assert!(v > 0.0);
                    sum += v;
                }
                assert!((sum - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = rand_t(2);
        let shifted = crate::ops::elementwise::map(&x, |v| v + 100.0);
        let a = softmax(&x, Axis('k')).unwrap();
        let b = softmax(&shifted, Axis('k')).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-5);
    }

    #[test]
    fn softmax_layout_independent() {
        let x = rand_t(3);
        let base = softmax(&x, Axis('k')).unwrap();
        for layout in Layout::all(3) {
            let xp = x.relayout(&layout);
            let yp = softmax(&xp, Axis('k')).unwrap();
            assert!(yp.max_abs_diff(&base).unwrap() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let x = rand_t(4);
        let axis = Axis('k');
        let y = softmax(&x, axis).unwrap();
        // loss = sum(w ⊙ y) for fixed random weights w
        let w = rand_t(5);
        let dy = w.clone();
        let dx = softmax_backward(&dy, &y, axis).unwrap();
        let eps = 1e-3f32;
        let mut idx = vec![0usize; 3];
        loop {
            let mut xp = x.clone();
            let off = xp.offset(&idx);
            xp.data_mut()[off] += eps;
            let yp = softmax(&xp, axis).unwrap();
            let mut xm = x.clone();
            xm.data_mut()[off] -= eps;
            let ym = softmax(&xm, axis).unwrap();
            let mut lp = 0.0f32;
            let mut lm = 0.0f32;
            for (i, v) in yp.iter() {
                lp += w.at(&i) * v;
            }
            for (i, v) in ym.iter() {
                lm += w.at(&i) * v;
            }
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.at(&idx)).abs() < 2e-2,
                "numerical {num} vs analytic {} at {idx:?}",
                dx.at(&idx)
            );
            if !x.advance(&mut idx) {
                break;
            }
        }
    }

    #[test]
    fn unknown_axis_errors() {
        let x = rand_t(6);
        assert!(softmax(&x, Axis('q')).is_err());
    }
}
