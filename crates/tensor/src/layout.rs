//! Data layouts: permutations of logical axes into memory order.
//!
//! A [`Layout`] records which logical axis is stored at each memory
//! position, outermost (slowest-varying) first. Layout selection is the
//! central experimental knob of the paper (Sec. V): the same logical tensor
//! stored `bji` vs `ijb` has very different access efficiency, and the best
//! layout per operator is found by exhaustive benchmarking.

use std::fmt;

use crate::axes::{Axis, Shape};
use crate::error::{Result, TensorError};

/// A permutation mapping memory positions to logical axis indices.
///
/// `order()[m]` is the logical axis index stored at memory position `m`,
/// where position `0` is the outermost (largest-stride) dimension and the
/// last position is innermost (stride 1, the contiguous dimension).
///
/// # Examples
///
/// ```
/// use xform_tensor::{Layout, Shape};
/// let shape = Shape::new([('b', 2), ('j', 3), ('i', 4)]).unwrap();
/// // Store as (i, b, j): `i` outermost, `j` contiguous.
/// let layout = Layout::from_axis_order(&shape, "ibj").unwrap();
/// let strides = layout.strides(&shape);
/// // logical order is (b, j, i): b stride 3, j stride 1, i stride 6
/// assert_eq!(strides, vec![3, 1, 6]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    order: Vec<usize>,
}

impl Layout {
    /// The identity layout: memory order equals logical order (row-major).
    pub fn row_major(rank: usize) -> Self {
        Layout {
            order: (0..rank).collect(),
        }
    }

    /// Creates a layout from an explicit memory-order permutation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] unless `order` is a
    /// permutation of `0..order.len()`.
    pub fn from_order(order: Vec<usize>) -> Result<Self> {
        let mut seen = vec![false; order.len()];
        for &i in &order {
            if i >= order.len() || seen[i] {
                return Err(TensorError::InvalidPermutation);
            }
            seen[i] = true;
        }
        Ok(Layout { order })
    }

    /// Creates a layout by naming axes in memory order, outermost first.
    ///
    /// # Errors
    ///
    /// Returns an error if `spec` is not a permutation of the shape's axes.
    pub fn from_axis_order(shape: &Shape, spec: &str) -> Result<Self> {
        if spec.chars().count() != shape.rank() {
            return Err(TensorError::LayoutRankMismatch {
                expected: shape.rank(),
                found: spec.chars().count(),
            });
        }
        let order = spec
            .chars()
            .map(|c| shape.index_of(Axis(c)))
            .collect::<Result<Vec<_>>>()?;
        Layout::from_order(order)
    }

    /// The permutation: logical axis index at each memory position.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// `true` when memory order equals logical order — the identity
    /// permutation. Allocation-free, unlike comparing against a fresh
    /// [`Layout::row_major`].
    pub fn is_row_major(&self) -> bool {
        self.order.iter().enumerate().all(|(i, &o)| i == o)
    }

    /// `true` when the layout is *physically* row-major for `shape`: its
    /// strides equal the row-major strides, i.e. the non-singleton axes
    /// appear in increasing logical order. Singleton axes carry no stride
    /// information, so a permutation that only moves size-1 axes still
    /// walks memory identically to the identity — [`Layout::is_row_major`]
    /// is purely syntactic and rejects those. A rank mismatch returns
    /// `false` rather than panicking.
    pub fn is_row_major_for(&self, shape: &Shape) -> bool {
        if self.order.len() != shape.rank() {
            return false;
        }
        let mut last = None;
        for &ax in &self.order {
            if shape.sizes()[ax] <= 1 {
                continue;
            }
            if last.is_some_and(|prev| ax < prev) {
                return false;
            }
            last = Some(ax);
        }
        true
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.order.len()
    }

    /// Logical axis index of the innermost (contiguous) memory dimension.
    ///
    /// # Panics
    ///
    /// Panics if the layout has rank zero.
    pub fn innermost(&self) -> usize {
        *self
            .order
            .last()
            .expect("rank-zero layout has no innermost axis")
    }

    /// Per-logical-axis strides (in elements) for the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape rank differs from the layout rank.
    pub fn strides(&self, shape: &Shape) -> Vec<usize> {
        assert_eq!(
            shape.rank(),
            self.rank(),
            "shape rank must match layout rank"
        );
        let mut strides = vec![0usize; self.rank()];
        let mut acc = 1usize;
        for &axis_idx in self.order.iter().rev() {
            strides[axis_idx] = acc;
            acc *= shape.sizes()[axis_idx];
        }
        strides
    }

    /// The axis string of this layout in memory order, e.g. `"ibj"`.
    pub fn spec(&self, shape: &Shape) -> String {
        self.order.iter().map(|&i| shape.axes()[i].0).collect()
    }

    /// Whether the named axis is the innermost (contiguous) dimension —
    /// the precondition for vectorized access in the paper's kernels.
    pub fn is_innermost(&self, shape: &Shape, axis: Axis) -> bool {
        shape
            .index_of(axis)
            .map(|i| self.innermost() == i)
            .unwrap_or(false)
    }

    /// Enumerates all `rank!` layouts, in lexicographic order of the
    /// permutation. This is the configuration space swept in Sec. V.
    ///
    /// # Examples
    ///
    /// ```
    /// use xform_tensor::Layout;
    /// assert_eq!(Layout::all(3).len(), 6);
    /// ```
    pub fn all(rank: usize) -> Vec<Layout> {
        let mut out = Vec::new();
        let mut cur: Vec<usize> = Vec::with_capacity(rank);
        let mut used = vec![false; rank];
        fn rec(rank: usize, cur: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Layout>) {
            if cur.len() == rank {
                out.push(Layout { order: cur.clone() });
                return;
            }
            for i in 0..rank {
                if !used[i] {
                    used[i] = true;
                    cur.push(i);
                    rec(rank, cur, used, out);
                    cur.pop();
                    used[i] = false;
                }
            }
        }
        rec(rank, &mut cur, &mut used, &mut out);
        out
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &p) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_bji() -> Shape {
        Shape::new([('b', 2), ('j', 3), ('i', 4)]).unwrap()
    }

    #[test]
    fn row_major_strides() {
        let s = shape_bji();
        let l = Layout::row_major(3);
        assert_eq!(l.strides(&s), vec![12, 4, 1]);
        assert_eq!(l.spec(&s), "bji");
    }

    #[test]
    fn permuted_strides() {
        let s = shape_bji();
        let l = Layout::from_axis_order(&s, "ijb").unwrap();
        // memory order (i, j, b): b stride 1, j stride 2, i stride 6
        assert_eq!(l.strides(&s), vec![1, 2, 6]);
        assert!(l.is_innermost(&s, Axis('b')));
        assert!(!l.is_innermost(&s, Axis('i')));
    }

    #[test]
    fn from_order_validates() {
        assert!(Layout::from_order(vec![0, 1, 1]).is_err());
        assert!(Layout::from_order(vec![0, 3, 1]).is_err());
        assert!(Layout::from_order(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn from_axis_order_validates_rank_and_names() {
        let s = shape_bji();
        assert!(Layout::from_axis_order(&s, "bj").is_err());
        assert!(Layout::from_axis_order(&s, "bjq").is_err());
    }

    #[test]
    fn all_enumerates_factorial_many() {
        assert_eq!(Layout::all(0).len(), 1);
        assert_eq!(Layout::all(1).len(), 1);
        assert_eq!(Layout::all(4).len(), 24);
        // all distinct
        let all = Layout::all(3);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn physical_row_major_tolerates_singleton_permutations() {
        // ('u', 1) permuted anywhere leaves the walk order unchanged
        let s = Shape::new([('b', 2), ('u', 1), ('i', 4)]).unwrap();
        let rm = Layout::row_major(3);
        // Ground truth: the walk is row-major iff the strides of every
        // non-singleton axis match the identity's (a size-1 axis never
        // steps, so its stride is irrelevant to the address sequence).
        let effective = |l: &Layout| -> Vec<usize> {
            l.strides(&s)
                .into_iter()
                .zip(s.sizes())
                .map(|(st, &n)| if n > 1 { st } else { 0 })
                .collect()
        };
        for l in Layout::all(3) {
            let physical = effective(&l) == effective(&rm);
            assert_eq!(
                l.is_row_major_for(&s),
                physical,
                "layout {l} of {s:?}: stride check and is_row_major_for disagree"
            );
        }
        // "uib" is syntactically permuted but physically row-major... no:
        // u(1) first, then i before b — i/b swapped, so strided
        assert!(!Layout::from_axis_order(&s, "uib")
            .unwrap()
            .is_row_major_for(&s));
        // "bui" is the identity; "ubi" and "bui" only move the singleton
        assert!(Layout::from_axis_order(&s, "ubi")
            .unwrap()
            .is_row_major_for(&s));
        assert!(Layout::from_axis_order(&s, "biu")
            .unwrap()
            .is_row_major_for(&s));
        assert!(!Layout::from_axis_order(&s, "ibu")
            .unwrap()
            .is_row_major_for(&s));
    }

    #[test]
    fn physical_row_major_degenerate_ranks() {
        // rank 0: trivially row-major
        let s0 = Shape::new(std::iter::empty::<(char, usize)>()).unwrap();
        assert!(Layout::row_major(0).is_row_major_for(&s0));
        // all-singleton shape: every permutation is physically row-major
        let s1 = Shape::new([('a', 1), ('b', 1)]).unwrap();
        for l in Layout::all(2) {
            assert!(l.is_row_major_for(&s1));
        }
        // rank mismatch is false, not a panic
        let s = Shape::new([('b', 2), ('i', 4)]).unwrap();
        assert!(!Layout::row_major(3).is_row_major_for(&s));
    }

    #[test]
    fn display_shows_permutation() {
        let l = Layout::from_order(vec![2, 0, 1]).unwrap();
        assert_eq!(l.to_string(), "(2 0 1)");
    }
}
