//! Software IEEE 754 binary16 ("half") storage type.
//!
//! The paper trains in mixed precision: FP16 storage with FP32
//! accumulation. Our compute stays `f32`, but data-movement *volumes* are
//! accounted at [`F16::BYTES`] per word exactly as the paper's, and [`F16`]
//! lets tests exercise storage-precision round-trips.

use std::fmt;

/// An IEEE 754 binary16 value stored as its bit pattern.
///
/// # Examples
///
/// ```
/// use xform_tensor::half::F16;
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Size of one half-precision word in bytes — the unit of the paper's
    /// data-movement accounting ("words" in Fig. 2 are 2-byte FP16 words).
    pub const BYTES: usize = 2;

    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);

    /// Creates a half from its raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, saturating NaN/Inf
    /// semantics matching hardware conversion instructions.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // NaN or infinity
            let payload = if frac != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }
        // Re-bias: f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7C00); // overflow to infinity
        }
        if unbiased >= -14 {
            // normal half
            let half_exp = (unbiased + 15) as u16;
            let mut half_frac = (frac >> 13) as u16;
            // round to nearest even on the 13 dropped bits
            let dropped = frac & 0x1FFF;
            if dropped > 0x1000 || (dropped == 0x1000 && (half_frac & 1) == 1) {
                half_frac += 1;
                if half_frac == 0x400 {
                    // fraction overflowed into the exponent
                    return F16(sign | ((half_exp + 1) << 10));
                }
            }
            F16(sign | (half_exp << 10) | half_frac)
        } else if unbiased >= -24 {
            // subnormal half
            let shift = (-14 - unbiased) as u32; // 1..=10
            let mant = 0x80_0000 | frac; // implicit leading 1
            let total_shift = 13 + shift;
            let mut half_frac = (mant >> total_shift) as u16;
            let dropped = mant & ((1 << total_shift) - 1);
            let half_point = 1u32 << (total_shift - 1);
            if dropped > half_point || (dropped == half_point && (half_frac & 1) == 1) {
                half_frac += 1;
            }
            F16(sign | half_frac)
        } else {
            F16(sign) // underflow to signed zero
        }
    }

    /// Converts to `f32` (exact: every half is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let frac = (self.0 & 0x3FF) as u32;
        let bits = if exp == 0 {
            if frac == 0 {
                sign // signed zero
            } else {
                // subnormal: normalize (value = frac · 2⁻²⁴ = 1.m · 2⁻¹⁴⁻ˢ)
                let mut e = -14i32;
                let mut f = frac;
                while f & 0x400 == 0 {
                    f <<= 1;
                    e -= 1;
                }
                f &= 0x3FF;
                sign | (((e + 127) as u32) << 23) | (f << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (frac << 13) // inf/NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (frac << 13)
        };
        f32::from_bits(bits)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Quantizes an `f32` slice through half precision in place, modelling a
/// store-to-FP16 / load-from-FP16 round trip.
pub fn quantize_roundtrip(xs: &mut [f32]) {
    for x in xs {
        *x = F16::from_f32(*x).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "failed at {i}");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let x = (2.0f32).powi(e);
            assert_eq!(F16::from_f32(x).to_f32(), x);
        }
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert!(F16::INFINITY.to_f32().is_infinite());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e6).to_f32().is_infinite());
        assert!(F16::from_f32(-1e6).to_f32().is_infinite());
        assert!(F16::from_f32(-1e6).to_f32() < 0.0);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(F16::from_f32(1e-10).to_f32(), 0.0);
    }

    #[test]
    fn subnormals_roundtrip() {
        let smallest_subnormal = (2.0f32).powi(-24);
        assert_eq!(
            F16::from_f32(smallest_subnormal).to_f32(),
            smallest_subnormal
        );
        let sub = 3.0 * (2.0f32).powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        assert!(!F16::from_f32(1.0).is_nan());
        assert!(!F16::INFINITY.is_nan());
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and the next half; ties to
        // even keeps 1.0.
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // slightly above the halfway point rounds up
        let above = 1.0 + (2.0f32).powi(-11) + (2.0f32).powi(-13);
        assert!(F16::from_f32(above).to_f32() > 1.0);
    }

    #[test]
    fn relative_error_bounded_for_normals() {
        let mut x = 6.1e-5f32;
        while x < 6.0e4 {
            let r = F16::from_f32(x).to_f32();
            let rel = ((r - x) / x).abs();
            assert!(rel <= 1.0 / 1024.0, "rel error {rel} at {x}");
            x *= 1.37;
        }
    }

    #[test]
    fn quantize_roundtrip_slice() {
        let mut xs = vec![0.1, 1.0, -3.25, 100.0];
        quantize_roundtrip(&mut xs);
        assert_eq!(xs[1], 1.0);
        assert_eq!(xs[2], -3.25);
        assert!((xs[0] - 0.1).abs() < 1e-4);
    }
}
