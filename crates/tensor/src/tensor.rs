//! The strided CPU tensor type.

use rand::distributions::Distribution;
use rand::Rng;

use crate::axes::{Axis, Shape};
use crate::error::{Result, TensorError};
use crate::layout::Layout;

/// A dense tensor of `f32` values with named logical axes and a permutable
/// memory layout.
///
/// Logical addressing (via multi-indices in the shape's logical axis order)
/// is independent of the physical layout, so relayouting a tensor never
/// changes the value at any logical index — only the stride pattern and thus
/// the access efficiency. This mirrors the paper's separation of computation
/// from data movement.
///
/// # Examples
///
/// ```
/// use xform_tensor::{Layout, Shape, Tensor};
/// let shape = Shape::new([('b', 2), ('j', 3)]).unwrap();
/// let mut t = Tensor::zeros(shape.clone());
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.at(&[1, 2]), 5.0);
/// let p = t.relayout(&Layout::from_axis_order(&shape, "jb").unwrap());
/// assert_eq!(p.at(&[1, 2]), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    layout: Layout,
    /// Strides per logical axis, in elements.
    strides: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor in row-major layout.
    pub fn zeros(shape: Shape) -> Self {
        let layout = Layout::row_major(shape.rank());
        Tensor::zeros_with_layout(shape, layout)
    }

    /// Creates a zero-filled tensor with an explicit layout.
    ///
    /// # Panics
    ///
    /// Panics if the layout rank does not match the shape rank.
    pub fn zeros_with_layout(shape: Shape, layout: Layout) -> Self {
        let strides = layout.strides(&shape);
        let data = vec![0.0; shape.num_elements()];
        Tensor {
            shape,
            layout,
            strides,
            data,
        }
    }

    /// Creates a tensor by evaluating `f` at every logical multi-index.
    pub fn from_fn<F>(shape: Shape, mut f: F) -> Self
    where
        F: FnMut(&[usize]) -> f32,
    {
        let mut t = Tensor::zeros(shape);
        let mut idx = vec![0usize; t.shape.rank()];
        loop {
            let off = t.offset(&idx);
            t.data[off] = f(&idx);
            if !t.advance(&mut idx) {
                break;
            }
        }
        t
    }

    /// Creates a tensor with i.i.d. samples from `dist`.
    pub fn random<D, R>(shape: Shape, dist: &D, rng: &mut R) -> Self
    where
        D: Distribution<f32>,
        R: Rng + ?Sized,
    {
        let layout = Layout::row_major(shape.rank());
        let strides = layout.strides(&shape);
        let data = (0..shape.num_elements())
            .map(|_| dist.sample(rng))
            .collect();
        Tensor {
            shape,
            layout,
            strides,
            data,
        }
    }

    /// Creates a tensor that owns the given buffer, interpreted row-major.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the buffer length differs
    /// from the shape's element count.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.num_elements() {
            return Err(TensorError::ShapeMismatch {
                context: "Tensor::from_vec",
            });
        }
        let layout = Layout::row_major(shape.rank());
        let strides = layout.strides(&shape);
        Ok(Tensor {
            shape,
            layout,
            strides,
            data,
        })
    }

    /// The logical shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The current memory layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Per-logical-axis strides in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// The raw backing buffer, in memory order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (impossible for valid shapes,
    /// provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat buffer offset of a logical multi-index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.rank());
        let mut off = 0usize;
        for (i, &x) in idx.iter().enumerate() {
            debug_assert!(x < self.shape.sizes()[i], "index out of bounds");
            off += x * self.strides[i];
        }
        off
    }

    /// Value at a logical multi-index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index is out of bounds.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the value at a logical multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Advances a logical multi-index in row-major (logical) order.
    /// Returns `false` once the index wraps past the end.
    #[inline]
    pub fn advance(&self, idx: &mut [usize]) -> bool {
        for i in (0..idx.len()).rev() {
            idx[i] += 1;
            if idx[i] < self.shape.sizes()[i] {
                return true;
            }
            idx[i] = 0;
        }
        false
    }

    /// Copies the tensor into a new memory layout, preserving all logical
    /// values. This is the explicit "transpose" operator that the
    /// configuration-selection step may insert between operators.
    pub fn relayout(&self, layout: &Layout) -> Tensor {
        assert_eq!(layout.rank(), self.shape.rank());
        let mut out = Tensor::zeros_with_layout(self.shape.clone(), layout.clone());
        // Iterate in the *destination's* memory order for write locality.
        let rank = self.shape.rank();
        if rank == 0 {
            out.data[0] = self.data[0];
            return out;
        }
        let mut idx = vec![0usize; rank];
        loop {
            let v = self.data[self.offset(&idx)];
            let off = out.offset(&idx);
            out.data[off] = v;
            if !self.advance(&mut idx) {
                break;
            }
        }
        out
    }

    /// Iterates `(logical multi-index, value)` pairs in logical order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            tensor: self,
            idx: vec![0; self.shape.rank()],
            done: self.data.is_empty(),
        }
    }

    /// Elementwise maximum absolute difference against another tensor of the
    /// same shape (layouts may differ).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: "max_abs_diff",
            });
        }
        let mut idx = vec![0usize; self.shape.rank()];
        let mut max = 0f32;
        loop {
            let d = (self.at(&idx) - other.at(&idx)).abs();
            if d > max {
                max = d;
            }
            if !self.advance(&mut idx) {
                break;
            }
        }
        Ok(max)
    }

    /// Returns a copy of the tensor with its axes renamed positionally
    /// according to `spec` (sizes and data are unchanged). Useful when the
    /// same buffer plays two roles, e.g. the self-attention input `X`
    /// viewed as `ibj` for queries and `ibk` for keys.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LayoutRankMismatch`] if `spec` has the wrong
    /// length and [`TensorError::DuplicateAxis`] if names repeat.
    pub fn relabel(&self, spec: &str) -> Result<Tensor> {
        if spec.chars().count() != self.shape.rank() {
            return Err(TensorError::LayoutRankMismatch {
                expected: self.shape.rank(),
                found: spec.chars().count(),
            });
        }
        let shape = Shape::new(spec.chars().zip(self.shape.sizes().iter().copied()))?;
        Ok(Tensor {
            shape,
            layout: self.layout.clone(),
            strides: self.strides.clone(),
            data: self.data.clone(),
        })
    }

    /// Stacks tensors along a fresh axis `axis` placed first, producing
    /// shape `[axis=n, ...common]`. All inputs must share a shape; the
    /// output is row-major. This is the algebraic-fusion primitive: the
    /// stacked `[Wᵠ Wᵏ Wᵛ]` weight of Sec. IV-D.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty, shapes differ, or `axis`
    /// already exists in the parts.
    pub fn stack(axis: Axis, parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::ShapeMismatch {
            context: "stack of zero tensors",
        })?;
        if first.shape().contains(axis) {
            return Err(TensorError::DuplicateAxis(axis));
        }
        for p in parts {
            if p.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch { context: "stack" });
            }
        }
        let mut dims = vec![(axis, parts.len())];
        dims.extend(
            first
                .shape()
                .axes()
                .iter()
                .zip(first.shape().sizes())
                .map(|(&a, &n)| (a, n)),
        );
        let shape = Shape::new(dims)?;
        let mut out = Tensor::zeros(shape);
        let inner = first.shape().num_elements();
        for (slot, p) in parts.iter().enumerate() {
            let rm = if p.layout() == &Layout::row_major(p.shape().rank()) {
                None
            } else {
                Some(p.relayout(&Layout::row_major(p.shape().rank())))
            };
            let src = rm.as_ref().unwrap_or(p);
            out.data_mut()[slot * inner..(slot + 1) * inner].copy_from_slice(src.data());
        }
        Ok(out)
    }

    /// Extracts the `index`-th slice along `axis`, dropping that axis.
    /// The result is row-major.
    ///
    /// # Errors
    ///
    /// Returns an error if `axis` is missing or `index` is out of range.
    pub fn slice_axis(&self, axis: Axis, index: usize) -> Result<Tensor> {
        let ai = self.shape.index_of(axis)?;
        if index >= self.shape.sizes()[ai] {
            return Err(TensorError::ShapeMismatch {
                context: "slice index out of range",
            });
        }
        let dims: Vec<(Axis, usize)> = self
            .shape
            .axes()
            .iter()
            .zip(self.shape.sizes())
            .enumerate()
            .filter(|&(i, _)| i != ai)
            .map(|(_, (&a, &n))| (a, n))
            .collect();
        let out_shape = Shape::new(dims)?;
        let mut out = Tensor::zeros(out_shape);
        let rank = self.shape.rank();
        let mut idx = vec![0usize; rank];
        idx[ai] = index;
        let mut out_idx = vec![0usize; rank - 1];
        loop {
            let mut k = 0;
            for (i, &v) in idx.iter().enumerate() {
                if i != ai {
                    out_idx[k] = v;
                    k += 1;
                }
            }
            let off = out.offset(&out_idx);
            out.data_mut()[off] = self.at(&idx);
            // advance all axes except `ai`
            let mut done = true;
            for i in (0..rank).rev() {
                if i == ai {
                    continue;
                }
                idx[i] += 1;
                if idx[i] < self.shape.sizes()[i] {
                    done = false;
                    break;
                }
                idx[i] = 0;
            }
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// Extracts `len` consecutive slices starting at `start` along `axis`,
    /// keeping the axis (with size `len`). The result is row-major. This is
    /// the un-stacking primitive for algebraically fused tensors, e.g.
    /// carving the `Q` rows out of the stacked `[Wᵠ Wᵏ Wᵛ]` product.
    ///
    /// # Errors
    ///
    /// Returns an error if `axis` is missing, `len` is zero, or the range
    /// runs past the end of the axis.
    pub fn slice_range(&self, axis: Axis, start: usize, len: usize) -> Result<Tensor> {
        let ai = self.shape.index_of(axis)?;
        if len == 0 || start + len > self.shape.sizes()[ai] {
            return Err(TensorError::ShapeMismatch {
                context: "slice_range out of range",
            });
        }
        crate::trace::record_slice(self, ai, start, len);
        let dims: Vec<(Axis, usize)> = self
            .shape
            .axes()
            .iter()
            .zip(self.shape.sizes())
            .enumerate()
            .map(|(i, (&a, &n))| (a, if i == ai { len } else { n }))
            .collect();
        let mut out = Tensor::zeros(Shape::new(dims)?);
        let mut out_idx = vec![0usize; self.shape.rank()];
        let mut src_idx = vec![0usize; self.shape.rank()];
        loop {
            src_idx.copy_from_slice(&out_idx);
            src_idx[ai] += start;
            let off = out.offset(&out_idx);
            out.data[off] = self.at(&src_idx);
            if !out.advance(&mut out_idx) {
                break;
            }
        }
        Ok(out)
    }

    /// Concatenates tensors along an existing axis `axis`. All inputs must
    /// agree on every other axis; the output is row-major. Inverse of
    /// splitting with [`Tensor::slice_range`].
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty, `axis` is missing from any
    /// part, or the non-concatenated axes disagree.
    pub fn concat(axis: Axis, parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::ShapeMismatch {
            context: "concat of zero tensors",
        })?;
        let ai = first.shape.index_of(axis)?;
        let mut total = 0usize;
        for p in parts {
            let pi = p.shape.index_of(axis)?;
            if pi != ai
                || p.shape.axes() != first.shape.axes()
                || p.shape
                    .sizes()
                    .iter()
                    .zip(first.shape.sizes())
                    .enumerate()
                    .any(|(i, (a, b))| i != ai && a != b)
            {
                return Err(TensorError::ShapeMismatch { context: "concat" });
            }
            total += p.shape.sizes()[pi];
        }
        let dims: Vec<(Axis, usize)> = first
            .shape
            .axes()
            .iter()
            .zip(first.shape.sizes())
            .enumerate()
            .map(|(i, (&a, &n))| (a, if i == ai { total } else { n }))
            .collect();
        let mut out = Tensor::zeros(Shape::new(dims)?);
        let mut base = 0usize;
        for p in parts {
            let mut idx = vec![0usize; p.shape.rank()];
            let mut out_idx = vec![0usize; p.shape.rank()];
            loop {
                out_idx.copy_from_slice(&idx);
                out_idx[ai] += base;
                let off = out.offset(&out_idx);
                out.data[off] = p.at(&idx);
                if !p.advance(&mut idx) {
                    break;
                }
            }
            base += p.shape.sizes()[ai];
        }
        Ok(out)
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, v: f32) {
        for x in &mut self.data {
            *x = v;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

/// Iterator over `(multi-index, value)` pairs of a [`Tensor`] in logical
/// order, created by [`Tensor::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    tensor: &'a Tensor,
    idx: Vec<usize>,
    done: bool,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (Vec<usize>, f32);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item = (self.idx.clone(), self.tensor.at(&self.idx));
        if !self.tensor.advance(&mut self.idx) {
            self.done = true;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_bj() -> Shape {
        Shape::new([('b', 2), ('j', 3)]).unwrap()
    }

    #[test]
    fn zeros_and_set_get() {
        let mut t = Tensor::zeros(shape_bj());
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        t.set(&[1, 2], 7.5);
        assert_eq!(t.at(&[1, 2]), 7.5);
        assert_eq!(t.at(&[0, 0]), 0.0);
    }

    #[test]
    fn from_fn_addresses_logically() {
        let t = Tensor::from_fn(shape_bj(), |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 12.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(shape_bj(), vec![0.0; 5]).is_err());
        let t = Tensor::from_vec(shape_bj(), (0..6).map(|i| i as f32).collect()).unwrap();
        assert_eq!(t.at(&[1, 0]), 3.0); // row-major
    }

    #[test]
    fn relayout_preserves_logical_values() {
        let s = Shape::new([('b', 2), ('j', 3), ('i', 4)]).unwrap();
        let t = Tensor::from_fn(s.clone(), |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f32
        });
        for layout in Layout::all(3) {
            let p = t.relayout(&layout);
            assert_eq!(p.max_abs_diff(&t).unwrap(), 0.0);
            // physical buffer differs unless layout is row-major
            if layout == Layout::row_major(3) {
                assert_eq!(p.data(), t.data());
            }
        }
    }

    #[test]
    fn relayout_changes_physical_order() {
        let s = shape_bj();
        let t = Tensor::from_fn(s.clone(), |idx| (idx[0] * 10 + idx[1]) as f32);
        let p = t.relayout(&Layout::from_axis_order(&s, "jb").unwrap());
        // memory order (j, b): [00, 10, 01, 11, 02, 12]
        assert_eq!(p.data(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn iter_visits_all_in_logical_order() {
        let t = Tensor::from_fn(shape_bj(), |idx| (idx[0] * 3 + idx[1]) as f32);
        let items: Vec<_> = t.iter().collect();
        assert_eq!(items.len(), 6);
        assert_eq!(items[0], (vec![0, 0], 0.0));
        assert_eq!(items[5], (vec![1, 2], 5.0));
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Tensor::zeros(shape_bj());
        let mut b = Tensor::zeros(shape_bj());
        b.set(&[0, 1], -2.0);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 2.0);
        let c = Tensor::zeros(Shape::new([('b', 2)]).unwrap());
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn stack_and_slice_roundtrip() {
        let s = Shape::new([('b', 2), ('j', 3)]).unwrap();
        let a = Tensor::from_fn(s.clone(), |i| (i[0] * 3 + i[1]) as f32);
        let b = Tensor::from_fn(s.clone(), |i| 100.0 + (i[0] * 3 + i[1]) as f32);
        let stacked = Tensor::stack(Axis('s'), &[&a, &b]).unwrap();
        assert_eq!(stacked.shape().spec(), "sbj");
        assert_eq!(stacked.shape().sizes(), &[2, 2, 3]);
        let a2 = stacked.slice_axis(Axis('s'), 0).unwrap();
        let b2 = stacked.slice_axis(Axis('s'), 1).unwrap();
        assert_eq!(a2.max_abs_diff(&a).unwrap(), 0.0);
        assert_eq!(b2.max_abs_diff(&b).unwrap(), 0.0);
    }

    #[test]
    fn stack_handles_permuted_inputs() {
        let s = Shape::new([('b', 2), ('j', 3)]).unwrap();
        let a = Tensor::from_fn(s.clone(), |i| (i[0] * 3 + i[1]) as f32);
        let ap = a.relayout(&Layout::from_axis_order(&s, "jb").unwrap());
        let stacked = Tensor::stack(Axis('s'), &[&ap, &a]).unwrap();
        let back = stacked.slice_axis(Axis('s'), 0).unwrap();
        assert_eq!(back.max_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn stack_and_slice_validate() {
        let s = Shape::new([('b', 2)]).unwrap();
        let a = Tensor::zeros(s.clone());
        assert!(Tensor::stack(Axis('s'), &[]).is_err());
        assert!(Tensor::stack(Axis('b'), &[&a]).is_err());
        let other = Tensor::zeros(Shape::new([('b', 3)]).unwrap());
        assert!(Tensor::stack(Axis('s'), &[&a, &other]).is_err());
        assert!(a.slice_axis(Axis('q'), 0).is_err());
        assert!(a.slice_axis(Axis('b'), 5).is_err());
    }

    #[test]
    fn slice_of_middle_axis() {
        let s = Shape::new([('a', 2), ('b', 3), ('c', 2)]).unwrap();
        let t = Tensor::from_fn(s, |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let m = t.slice_axis(Axis('b'), 1).unwrap();
        assert_eq!(m.shape().spec(), "ac");
        assert_eq!(m.at(&[1, 0]), 110.0);
        assert_eq!(m.at(&[0, 1]), 11.0);
    }

    #[test]
    fn slice_range_and_concat_roundtrip() {
        let s = Shape::new([('s', 6), ('b', 2)]).unwrap();
        let t = Tensor::from_fn(s, |i| (i[0] * 10 + i[1]) as f32);
        let lo = t.slice_range(Axis('s'), 0, 2).unwrap();
        let mid = t.slice_range(Axis('s'), 2, 3).unwrap();
        let hi = t.slice_range(Axis('s'), 5, 1).unwrap();
        assert_eq!(lo.shape().sizes(), &[2, 2]);
        assert_eq!(mid.at(&[0, 1]), 21.0);
        assert_eq!(hi.at(&[0, 0]), 50.0);
        let back = Tensor::concat(Axis('s'), &[&lo, &mid, &hi]).unwrap();
        assert_eq!(back.max_abs_diff(&t).unwrap(), 0.0);
    }

    #[test]
    fn slice_range_respects_permuted_layout() {
        let s = Shape::new([('s', 4), ('b', 3)]).unwrap();
        let t = Tensor::from_fn(s.clone(), |i| (i[0] * 10 + i[1]) as f32);
        let tp = t.relayout(&Layout::from_axis_order(&s, "bs").unwrap());
        let a = t.slice_range(Axis('s'), 1, 2).unwrap();
        let b = tp.slice_range(Axis('s'), 1, 2).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
    }

    #[test]
    fn slice_range_and_concat_validate() {
        let s = Shape::new([('s', 4), ('b', 3)]).unwrap();
        let t = Tensor::zeros(s);
        assert!(t.slice_range(Axis('q'), 0, 1).is_err());
        assert!(t.slice_range(Axis('s'), 2, 3).is_err());
        assert!(t.slice_range(Axis('s'), 0, 0).is_err());
        assert!(Tensor::concat(Axis('s'), &[]).is_err());
        let other = Tensor::zeros(Shape::new([('s', 2), ('b', 2)]).unwrap());
        assert!(Tensor::concat(Axis('s'), &[&t, &other]).is_err());
    }

    #[test]
    fn sum_and_fill() {
        let mut t = Tensor::zeros(shape_bj());
        t.fill(1.5);
        assert_eq!(t.sum(), 9.0);
    }
}
