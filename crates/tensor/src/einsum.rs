//! Einsum specification parsing and classification.
//!
//! The paper expresses every tensor contraction as an Einstein-notation sum
//! (e.g. `phi,ibj->phbj` for the query projection) and maps each onto a
//! cuBLAS (batched) matrix-matrix multiplication. This module parses specs
//! and classifies each label into the iteration-space roles of Sec. IV:
//! batch, left-independent (M), right-independent (N), and reduction (K)
//! dimensions.

use std::fmt;

use crate::axes::{Axis, Shape};
use crate::error::{Result, TensorError};

/// A parsed einsum specification with one or two operands.
///
/// # Examples
///
/// ```
/// use xform_tensor::einsum::EinsumSpec;
/// let spec: EinsumSpec = "phi,ibj->phbj".parse().unwrap();
/// assert_eq!(spec.operands().len(), 2);
/// assert_eq!(spec.output().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EinsumSpec {
    operands: Vec<Vec<Axis>>,
    output: Vec<Axis>,
}

impl EinsumSpec {
    /// Parses a spec like `"phi,ibj->phbj"` or `"bji->i"`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ParseError`] for malformed specs (missing
    /// arrow, empty operands, more than two operands, repeated labels within
    /// one operand, or output labels absent from every input).
    pub fn parse(s: &str) -> Result<Self> {
        let (lhs, rhs) = s
            .split_once("->")
            .ok_or_else(|| TensorError::ParseError(format!("missing `->` in `{s}`")))?;
        let operands: Vec<Vec<Axis>> = lhs
            .split(',')
            .map(|op| op.trim().chars().map(Axis).collect::<Vec<_>>())
            .collect();
        if operands.is_empty() || operands.len() > 2 {
            return Err(TensorError::ParseError(format!(
                "expected 1 or 2 operands, got {} in `{s}`",
                operands.len()
            )));
        }
        for op in &operands {
            if op.is_empty() {
                return Err(TensorError::ParseError(format!("empty operand in `{s}`")));
            }
            for (i, a) in op.iter().enumerate() {
                if op[..i].contains(a) {
                    return Err(TensorError::ParseError(format!(
                        "label `{a}` repeated within one operand in `{s}`"
                    )));
                }
            }
        }
        let output: Vec<Axis> = rhs.trim().chars().map(Axis).collect();
        for (i, a) in output.iter().enumerate() {
            if output[..i].contains(a) {
                return Err(TensorError::ParseError(format!(
                    "label `{a}` repeated in output of `{s}`"
                )));
            }
            if !operands.iter().any(|op| op.contains(a)) {
                return Err(TensorError::ParseError(format!(
                    "output label `{a}` not present in any input of `{s}`"
                )));
            }
        }
        Ok(EinsumSpec { operands, output })
    }

    /// The operand label lists, in order.
    pub fn operands(&self) -> &[Vec<Axis>] {
        &self.operands
    }

    /// The output label list.
    pub fn output(&self) -> &[Axis] {
        &self.output
    }

    /// Classifies the labels of a two-operand spec into GEMM roles.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Unsupported`] for one-operand specs or when a
    /// label appears in exactly one input and not in the output (a
    /// single-sided reduction, which does not map onto a GEMM).
    pub fn classify(&self) -> Result<GemmClassification> {
        if self.operands.len() != 2 {
            return Err(TensorError::Unsupported(
                "classify requires a two-operand spec".into(),
            ));
        }
        let (a, b) = (&self.operands[0], &self.operands[1]);
        let mut batch = Vec::new();
        let mut m = Vec::new();
        let mut n = Vec::new();
        let mut k = Vec::new();
        for &ax in a {
            let in_b = b.contains(&ax);
            let in_out = self.output.contains(&ax);
            match (in_b, in_out) {
                (true, true) => batch.push(ax),
                (false, true) => m.push(ax),
                (true, false) => k.push(ax),
                (false, false) => {
                    return Err(TensorError::Unsupported(format!(
                        "label `{ax}` reduced over a single operand"
                    )))
                }
            }
        }
        for &ax in b {
            if !a.contains(&ax) {
                if self.output.contains(&ax) {
                    n.push(ax);
                } else {
                    return Err(TensorError::Unsupported(format!(
                        "label `{ax}` reduced over a single operand"
                    )));
                }
            }
        }
        Ok(GemmClassification { batch, m, n, k })
    }

    /// GEMM problem sizes `(batch, M, N, K)` for the given operand shapes.
    ///
    /// # Errors
    ///
    /// Propagates classification errors; returns [`TensorError::SizeConflict`]
    /// if a shared label has different sizes in the two shapes, and
    /// [`TensorError::ShapeMismatch`] if a shape does not match its labels.
    pub fn gemm_sizes(&self, a: &Shape, b: &Shape) -> Result<GemmSizes> {
        let class = self.classify()?;
        check_operand(&self.operands[0], a)?;
        check_operand(&self.operands[1], b)?;
        for &ax in class.batch.iter().chain(&class.k) {
            if a.size(ax)? != b.size(ax)? {
                return Err(TensorError::SizeConflict(ax));
            }
        }
        let prod = |axes: &[Axis], s: &Shape| -> Result<usize> {
            axes.iter().map(|&ax| s.size(ax)).product()
        };
        Ok(GemmSizes {
            batch: prod(&class.batch, a)?,
            m: prod(&class.m, a)?,
            n: prod(&class.n, b)?,
            k: prod(&class.k, a)?,
        })
    }

    /// Number of fused multiply-adds performed by this contraction on the
    /// given shapes, counted as `2·B·M·N·K` flop (the paper's convention).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EinsumSpec::gemm_sizes`].
    pub fn flop(&self, a: &Shape, b: &Shape) -> Result<u64> {
        let s = self.gemm_sizes(a, b)?;
        Ok(2 * (s.batch as u64) * (s.m as u64) * (s.n as u64) * (s.k as u64))
    }
}

impl std::str::FromStr for EinsumSpec {
    type Err = TensorError;

    fn from_str(s: &str) -> Result<Self> {
        EinsumSpec::parse(s)
    }
}

impl fmt::Display for EinsumSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            for a in op {
                write!(f, "{a}")?;
            }
        }
        write!(f, "->")?;
        for a in &self.output {
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

fn check_operand(labels: &[Axis], shape: &Shape) -> Result<()> {
    if labels.len() != shape.rank() {
        return Err(TensorError::ShapeMismatch {
            context: "einsum operand rank",
        });
    }
    for &ax in labels {
        shape.size(ax)?;
    }
    Ok(())
}

/// The GEMM-role classification of a two-operand einsum's labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmClassification {
    /// Labels shared by both inputs and the output (batched dimensions).
    pub batch: Vec<Axis>,
    /// Labels exclusive to the first input and the output (GEMM M).
    pub m: Vec<Axis>,
    /// Labels exclusive to the second input and the output (GEMM N).
    pub n: Vec<Axis>,
    /// Labels shared by the inputs but absent from the output (GEMM K,
    /// the reduction dimensions).
    pub k: Vec<Axis>,
}

/// Collapsed GEMM problem sizes for a contraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmSizes {
    /// Product of batch-dimension sizes.
    pub batch: usize,
    /// Product of M-dimension sizes.
    pub m: usize,
    /// Product of N-dimension sizes.
    pub n: usize,
    /// Product of K-dimension sizes.
    pub k: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_two_operand() {
        let spec = EinsumSpec::parse("phi,ibj->phbj").unwrap();
        assert_eq!(spec.operands().len(), 2);
        assert_eq!(spec.output().len(), 4);
        assert_eq!(spec.to_string(), "phi,ibj->phbj");
    }

    #[test]
    fn parse_one_operand_reduce() {
        let spec = EinsumSpec::parse("bji->i").unwrap();
        assert_eq!(spec.operands().len(), 1);
        assert_eq!(spec.output(), &[Axis('i')]);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(EinsumSpec::parse("abc").is_err());
        assert!(EinsumSpec::parse("a,b,c->a").is_err());
        assert!(EinsumSpec::parse("aa->a").is_err());
        assert!(EinsumSpec::parse("ab->aa").is_err());
        assert!(EinsumSpec::parse("ab->q").is_err());
        assert!(EinsumSpec::parse(",ab->a").is_err());
    }

    #[test]
    fn classify_projection() {
        // query projection: batch none, m = {p,h}, n = {b,j}, k = {i}
        let spec = EinsumSpec::parse("phi,ibj->phbj").unwrap();
        let c = spec.classify().unwrap();
        assert!(c.batch.is_empty());
        assert_eq!(c.m, vec![Axis('p'), Axis('h')]);
        assert_eq!(c.n, vec![Axis('b'), Axis('j')]);
        assert_eq!(c.k, vec![Axis('i')]);
    }

    #[test]
    fn classify_attention_scores() {
        // beta: batched over {h, b}
        let spec =
            EinsumSpec::parse("phbk,phbj->hbjk".parse::<String>().unwrap().as_str()).unwrap();
        let c = spec.classify().unwrap();
        assert_eq!(c.batch, vec![Axis('h'), Axis('b')]);
        assert_eq!(c.k, vec![Axis('p')]);
        assert_eq!(c.m, vec![Axis('k')]);
        assert_eq!(c.n, vec![Axis('j')]);
    }

    #[test]
    fn classify_rejects_single_sided_reduction() {
        let spec = EinsumSpec::parse("abk,bc->ac").unwrap();
        assert!(spec.classify().is_err());
    }

    #[test]
    fn gemm_sizes_and_flop() {
        let spec = EinsumSpec::parse("phi,ibj->phbj").unwrap();
        let wq = Shape::from_spec("phi", &[('p', 64), ('h', 16), ('i', 1024)]).unwrap();
        let x = Shape::from_spec("ibj", &[('i', 1024), ('b', 8), ('j', 512)]).unwrap();
        let s = spec.gemm_sizes(&wq, &x).unwrap();
        assert_eq!((s.batch, s.m, s.n, s.k), (1, 1024, 4096, 1024));
        // 2 * 1024 * 4096 * 1024 = 8.59G — one third of the paper's 24G for
        // all three Q,K,V projections (Table III row 1 is Q+K+V together).
        assert_eq!(spec.flop(&wq, &x).unwrap(), 8_589_934_592);
    }

    #[test]
    fn gemm_sizes_detects_conflicts() {
        let spec = EinsumSpec::parse("ik,kj->ij").unwrap();
        let a = Shape::from_spec("ik", &[('i', 4), ('k', 5)]).unwrap();
        let b = Shape::from_spec("kj", &[('k', 6), ('j', 3)]).unwrap();
        assert!(matches!(
            spec.gemm_sizes(&a, &b),
            Err(TensorError::SizeConflict(Axis('k')))
        ));
    }
}
