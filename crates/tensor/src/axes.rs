//! Named logical dimensions ([`Axis`]) and shapes ([`Shape`]).
//!
//! The paper describes tensors by single-letter dimension names
//! (`B` batch, `J`/`K` sequence, `H` heads, `P`/`W` projection, `I`
//! embedding, `U` feed-forward). We keep the same convention: an [`Axis`] is
//! a single character, a [`Shape`] is an ordered list of `(Axis, size)`
//! pairs in *logical* order. The memory order of a tensor is a separate
//! concern handled by [`crate::layout::Layout`], which is the whole point of
//! the data-layout experiments in the paper.

use std::fmt;

use crate::error::{Result, TensorError};

/// A named logical dimension of a tensor, identified by a single character.
///
/// # Examples
///
/// ```
/// use xform_tensor::Axis;
/// let b = Axis('b');
/// assert_eq!(b.name(), 'b');
/// assert_eq!(b.to_string(), "b");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Axis(pub char);

impl Axis {
    /// The character naming this axis.
    pub fn name(self) -> char {
        self.0
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<char> for Axis {
    fn from(c: char) -> Self {
        Axis(c)
    }
}

/// An ordered list of named dimensions with sizes, in logical order.
///
/// The logical order is the order used to address elements; it never changes
/// when the data layout is permuted. Axis names within a shape are unique.
///
/// # Examples
///
/// ```
/// use xform_tensor::{Axis, Shape};
/// let s = Shape::new([('b', 8), ('j', 512), ('i', 1024)]).unwrap();
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.size(Axis('j')).unwrap(), 512);
/// assert_eq!(s.num_elements(), 8 * 512 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    axes: Vec<Axis>,
    sizes: Vec<usize>,
}

impl Shape {
    /// Creates a shape from `(name, size)` pairs in logical order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DuplicateAxis`] if an axis name repeats and
    /// [`TensorError::ZeroSizedAxis`] if any size is zero.
    pub fn new<I, A>(dims: I) -> Result<Self>
    where
        I: IntoIterator<Item = (A, usize)>,
        A: Into<Axis>,
    {
        let mut axes = Vec::new();
        let mut sizes = Vec::new();
        for (a, n) in dims {
            let a = a.into();
            if axes.contains(&a) {
                return Err(TensorError::DuplicateAxis(a));
            }
            if n == 0 {
                return Err(TensorError::ZeroSizedAxis(a));
            }
            axes.push(a);
            sizes.push(n);
        }
        Ok(Shape { axes, sizes })
    }

    /// Builds a shape from an einsum-style axis string and a size lookup.
    ///
    /// # Errors
    ///
    /// Returns an error if `sizes` lacks an axis named in `spec`, or the
    /// spec repeats an axis.
    ///
    /// # Examples
    ///
    /// ```
    /// use xform_tensor::Shape;
    /// let s = Shape::from_spec("bji", &[('b', 8), ('j', 64), ('i', 32)]).unwrap();
    /// assert_eq!(s.num_elements(), 8 * 64 * 32);
    /// ```
    pub fn from_spec(spec: &str, sizes: &[(char, usize)]) -> Result<Self> {
        let mut dims = Vec::new();
        for c in spec.chars() {
            let n = sizes
                .iter()
                .find(|(a, _)| *a == c)
                .map(|(_, n)| *n)
                .ok_or(TensorError::UnknownAxis(Axis(c)))?;
            dims.push((Axis(c), n));
        }
        Shape::new(dims)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.axes.len()
    }

    /// The axes in logical order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The sizes in logical order.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the named axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownAxis`] if the axis is not part of this
    /// shape.
    pub fn size(&self, axis: Axis) -> Result<usize> {
        self.index_of(axis).map(|i| self.sizes[i])
    }

    /// Logical position of the named axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownAxis`] if the axis is not part of this
    /// shape.
    pub fn index_of(&self, axis: Axis) -> Result<usize> {
        self.axes
            .iter()
            .position(|a| *a == axis)
            .ok_or(TensorError::UnknownAxis(axis))
    }

    /// Whether the named axis is part of this shape.
    pub fn contains(&self, axis: Axis) -> bool {
        self.axes.contains(&axis)
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.sizes.iter().product()
    }

    /// The axis string in logical order, e.g. `"bji"`.
    pub fn spec(&self) -> String {
        self.axes.iter().map(|a| a.0).collect()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (a, n)) in self.axes.iter().zip(&self.sizes).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basic_accessors() {
        let s = Shape::new([('b', 2), ('j', 3)]).unwrap();
        assert_eq!(s.rank(), 2);
        assert_eq!(s.num_elements(), 6);
        assert_eq!(s.size(Axis('b')).unwrap(), 2);
        assert_eq!(s.index_of(Axis('j')).unwrap(), 1);
        assert!(s.contains(Axis('b')));
        assert!(!s.contains(Axis('z')));
        assert_eq!(s.spec(), "bj");
    }

    #[test]
    fn shape_rejects_duplicates_and_zero() {
        assert!(matches!(
            Shape::new([('b', 2), ('b', 3)]),
            Err(TensorError::DuplicateAxis(Axis('b')))
        ));
        assert!(matches!(
            Shape::new([('b', 0)]),
            Err(TensorError::ZeroSizedAxis(Axis('b')))
        ));
    }

    #[test]
    fn shape_unknown_axis_errors() {
        let s = Shape::new([('b', 2)]).unwrap();
        assert!(matches!(
            s.size(Axis('q')),
            Err(TensorError::UnknownAxis(Axis('q')))
        ));
    }

    #[test]
    fn shape_from_spec_respects_order() {
        let s = Shape::from_spec("jib", &[('b', 2), ('i', 4), ('j', 3)]).unwrap();
        assert_eq!(s.axes(), &[Axis('j'), Axis('i'), Axis('b')]);
        assert_eq!(s.sizes(), &[3, 4, 2]);
    }

    #[test]
    fn shape_from_spec_missing_size_errors() {
        assert!(Shape::from_spec("jq", &[('j', 3)]).is_err());
    }

    #[test]
    fn shape_display() {
        let s = Shape::new([('b', 2), ('j', 3)]).unwrap();
        assert_eq!(s.to_string(), "[b=2, j=3]");
    }
}
