//! Single-sweep CPU implementations of the paper's fused operators
//! (Sec. IV-A).
//!
//! Each function corresponds to one fused CUDA kernel from Table III and
//! performs the work of several unfused operators in a single pass over the
//! data, saving the intermediate loads/stores between them — exactly the
//! data-movement saving the paper quantifies (∼22.91% overall). The fused
//! operators are:
//!
//! | Name | Fuses |
//! |---|---|
//! | [`aib`] | attention input bias (Q, K, V biases, one kernel) |
//! | [`sm`] | scaling + softmax + dropout |
//! | [`brd`] | bias + ReLU + dropout |
//! | [`bdrln`] | bias + dropout + residual + layernorm |
//! | [`bsb`] | backward layernorm scale & bias (dW) |
//! | [`blnrd`] | backward layernorm dX + dropout dX |
//! | [`bdrb`] | backward dropout + ReLU + bias dW |
//! | [`ebsb`] | backward residual + layernorm scale & bias |
//! | [`bs`] | backward dropout + softmax + scaling |
//! | [`baob`] | backward attention output bias (dW) |
//! | [`baib`] | backward attention input bias (three dWs, one kernel) |
//! | [`bei`] | backward encoder-input residual |
//!
//! Equivalence with the unfused composition is covered by unit and property
//! tests; the Criterion benches measure the actual CPU memory-traffic
//! saving.

use rand::Rng;

use crate::axes::Axis;
use crate::error::Result;
use crate::ops::elementwise::ActivationKind;
use crate::ops::layernorm::{LayerNormStats, EPS};
use crate::ops::{check_same_shape, for_each_outer};
use crate::tensor::Tensor;

/// AIB — attention input bias. Adds the Q/K/V projection biases in one
/// fused kernel: `out_t = in_t + bias_t` for each of the three streams.
///
/// # Errors
///
/// Propagates bias-shape errors from [`crate::ops::elementwise::bias_add`].
pub fn aib(
    qq: &Tensor,
    bq: &Tensor,
    kk: &Tensor,
    bk: &Tensor,
    vv: &Tensor,
    bv: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    Ok((
        crate::ops::elementwise::bias_add(qq, bq)?,
        crate::ops::elementwise::bias_add(kk, bk)?,
        crate::ops::elementwise::bias_add(vv, bv)?,
    ))
}

/// Output of the fused [`sm`] kernel.
#[derive(Debug, Clone)]
pub struct SmOutput {
    /// Dropped-out attention weights `alpha` (input to the `gamma`
    /// contraction).
    pub alpha: Tensor,
    /// Softmax output before dropout, saved for the backward pass.
    pub softmax: Tensor,
    /// Dropout mask, saved for the backward pass.
    pub mask: Tensor,
}

/// SM — softmax with scaling and dropout, fused into one lane sweep:
/// `alpha = dropout(softmax(scaler · beta))` along `axis`.
///
/// # Errors
///
/// Returns an error if `axis` is missing.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
pub fn sm<R: Rng + ?Sized>(
    beta: &Tensor,
    scaler: f32,
    axis: Axis,
    p: f32,
    rng: &mut R,
) -> Result<SmOutput> {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    let ai = beta.shape().index_of(axis)?;
    let len = beta.shape().sizes()[ai];
    let stride = beta.strides()[ai];
    let keep_scale = 1.0 / (1.0 - p);
    let fresh = || Tensor::zeros_with_layout(beta.shape().clone(), beta.layout().clone());
    let mut softmax = fresh();
    let mut alpha = fresh();
    let mut mask = fresh();
    for_each_outer(beta.shape(), ai, |idx| {
        let base = beta.offset(idx);
        let mut mx = f32::NEG_INFINITY;
        for v in 0..len {
            mx = mx.max(scaler * beta.data()[base + v * stride]);
        }
        let mut sum = 0.0f32;
        for v in 0..len {
            let e = (scaler * beta.data()[base + v * stride] - mx).exp();
            softmax.data_mut()[base + v * stride] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for v in 0..len {
            let off = base + v * stride;
            let y = softmax.data()[off] * inv;
            softmax.data_mut()[off] = y;
            let m = if p > 0.0 && rng.gen::<f32>() < p {
                0.0
            } else {
                keep_scale
            };
            mask.data_mut()[off] = m;
            alpha.data_mut()[off] = y * m;
        }
    });
    Ok(SmOutput {
        alpha,
        softmax,
        mask,
    })
}

/// SM with causal masking — the decoder ("masked") self-attention variant
/// (Sec. II-B-1: masking prevents a model from "seeing the future"). The
/// kernel is the same lane sweep as [`sm`], but positions with key index
/// greater than the query index are excluded from the softmax (their
/// attention weight, saved softmax, and mask entries are zero).
///
/// `query_axis` names the query-sequence axis in `beta` (the `j` of
/// `hbjk`); the reduction runs over `axis` (the `k`).
///
/// # Errors
///
/// Returns an error if either axis is missing.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
pub fn sm_causal<R: Rng + ?Sized>(
    beta: &Tensor,
    scaler: f32,
    query_axis: Axis,
    axis: Axis,
    p: f32,
    rng: &mut R,
) -> Result<SmOutput> {
    sm_causal_at(beta, scaler, query_axis, axis, p, rng, 0)
}

/// [`sm_causal`] with the query axis shifted to absolute position
/// `query_base`: local query index `q` masks keys past `query_base + q`.
/// A decode step runs this with a single-column query (`len(j) == 1`) at
/// `query_base = pos` over a cache-capacity key axis, so exactly
/// `pos + 1` cache slots are visible — bitwise-identical to the
/// full-sequence kernel's row `pos`.
#[allow(clippy::too_many_arguments)]
pub fn sm_causal_at<R: Rng + ?Sized>(
    beta: &Tensor,
    scaler: f32,
    query_axis: Axis,
    axis: Axis,
    p: f32,
    rng: &mut R,
    query_base: usize,
) -> Result<SmOutput> {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    let ai = beta.shape().index_of(axis)?;
    let qi = beta.shape().index_of(query_axis)?;
    let len = beta.shape().sizes()[ai];
    let stride = beta.strides()[ai];
    let keep_scale = 1.0 / (1.0 - p);
    let mut softmax = beta.clone();
    let mut alpha = beta.clone();
    let mut mask = beta.clone();
    for_each_outer(beta.shape(), ai, |idx| {
        let base = beta.offset(idx);
        let q = query_base + idx[qi];
        let visible = (q + 1).min(len);
        let mut mx = f32::NEG_INFINITY;
        for v in 0..visible {
            mx = mx.max(scaler * beta.data()[base + v * stride]);
        }
        let mut sum = 0.0f32;
        for v in 0..visible {
            let e = (scaler * beta.data()[base + v * stride] - mx).exp();
            softmax.data_mut()[base + v * stride] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for v in 0..len {
            let off = base + v * stride;
            if v < visible {
                let y = softmax.data()[off] * inv;
                softmax.data_mut()[off] = y;
                let m = if p > 0.0 && rng.gen::<f32>() < p {
                    0.0
                } else {
                    keep_scale
                };
                mask.data_mut()[off] = m;
                alpha.data_mut()[off] = y * m;
            } else {
                softmax.data_mut()[off] = 0.0;
                mask.data_mut()[off] = 0.0;
                alpha.data_mut()[off] = 0.0;
            }
        }
    });
    Ok(SmOutput {
        alpha,
        softmax,
        mask,
    })
}

/// Output of the fused [`brd`] kernel.
#[derive(Debug, Clone)]
pub struct BrdOutput {
    /// `dropout(relu(x + bias))`.
    pub out: Tensor,
    /// `x + bias` (pre-activation), saved for the ReLU backward.
    pub pre_activation: Tensor,
    /// Dropout mask.
    pub mask: Tensor,
}

/// BRD — bias + ReLU + dropout in one element-wise sweep (the feed-forward
/// activation path).
///
/// # Errors
///
/// Returns an error if the bias axes are not a subset of `x`'s.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
pub fn brd<R: Rng + ?Sized>(x: &Tensor, bias: &Tensor, p: f32, rng: &mut R) -> Result<BrdOutput> {
    brd_act(x, bias, ActivationKind::Relu, p, rng)
}

/// [`brd`] with a selectable activation (ReLU for the paper's figures,
/// GELU for faithful BERT/GPT-2 blocks). The fused sweep is identical —
/// activations are element-wise either way.
///
/// # Errors
///
/// Returns an error if the bias axes are not a subset of `x`'s.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
pub fn brd_act<R: Rng + ?Sized>(
    x: &Tensor,
    bias: &Tensor,
    activation: ActivationKind,
    p: f32,
    rng: &mut R,
) -> Result<BrdOutput> {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    let positions: Vec<usize> = bias
        .shape()
        .axes()
        .iter()
        .map(|&ax| x.shape().index_of(ax))
        .collect::<Result<Vec<_>>>()?;
    let keep_scale = 1.0 / (1.0 - p);
    let fresh = || Tensor::zeros_with_layout(x.shape().clone(), x.layout().clone());
    let mut out = fresh();
    let mut pre = fresh();
    let mut mask = fresh();
    // fast path: rank-1 bias — index it directly instead of through a
    // multi-index (this is the common `bias[u]` feed-forward case)
    let flat_bias_pos = if positions.len() == 1 {
        Some(positions[0])
    } else {
        None
    };
    let mut idx = vec![0usize; x.shape().rank()];
    let mut bidx = vec![0usize; positions.len()];
    loop {
        let b = match flat_bias_pos {
            Some(pp) => bias.data()[idx[pp]],
            None => {
                for (bi, &pp) in bidx.iter_mut().zip(&positions) {
                    *bi = idx[pp];
                }
                bias.at(&bidx)
            }
        };
        let off = x.offset(&idx);
        let z = x.data()[off] + b;
        let r = activation.apply(z);
        let m = if p > 0.0 && rng.gen::<f32>() < p {
            0.0
        } else {
            keep_scale
        };
        pre.data_mut()[off] = z;
        mask.data_mut()[off] = m;
        out.data_mut()[off] = r * m;
        if !x.advance(&mut idx) {
            break;
        }
    }
    Ok(BrdOutput {
        out,
        pre_activation: pre,
        mask,
    })
}

/// Output of the fused [`bdrln`] kernel.
#[derive(Debug, Clone)]
pub struct BdrlnOutput {
    /// `layernorm(dropout(x + bias) + residual)`.
    pub out: Tensor,
    /// The layernorm input (`dropout(x + bias) + residual`), saved because
    /// both backward layernorm kernels consume it.
    pub ln_input: Tensor,
    /// Dropout mask.
    pub mask: Tensor,
    /// Forward statistics for the backward pass.
    pub stats: LayerNormStats,
}

/// BDRLN — bias + dropout + residual + layernorm fused into one lane sweep
/// (also used, with a zero bias, as the paper's `DRLN`).
///
/// # Errors
///
/// Returns an error on axis/shape disagreements.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
#[allow(clippy::too_many_arguments)]
pub fn bdrln<R: Rng + ?Sized>(
    x: &Tensor,
    bias: &Tensor,
    residual: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    axis: Axis,
    p: f32,
    rng: &mut R,
) -> Result<BdrlnOutput> {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    check_same_shape(x, residual, "bdrln residual")?;
    let ai = x.shape().index_of(axis)?;
    let len = x.shape().sizes()[ai];
    let positions: Vec<usize> = bias
        .shape()
        .axes()
        .iter()
        .map(|&ax| x.shape().index_of(ax))
        .collect::<Result<Vec<_>>>()?;
    let keep_scale = 1.0 / (1.0 - p);
    let fresh = || Tensor::zeros_with_layout(x.shape().clone(), x.layout().clone());
    let mut out = fresh();
    let mut ln_input = fresh();
    let mut mask = fresh();
    let mut stats = LayerNormStats {
        mean: Vec::new(),
        inv_std: Vec::new(),
    };
    let x_stride = x.strides()[ai];
    // fast path: a rank-1 bias over the normalized axis itself (the
    // common `bias[i]` case) is indexed by the lane position directly
    let bias_on_lane = positions.as_slice() == [ai];
    let mut bidx = vec![0usize; positions.len()];
    for_each_outer(x.shape(), ai, |idx| {
        let base = x.offset(idx);
        let r_base = residual.offset(idx);
        let r_stride = residual.strides()[ai];
        let mut lane_idx = idx.to_vec();
        // first pass: bias + dropout + residual, accumulate moments
        let mut sum = 0.0f32;
        let mut sq = 0.0f32;
        for v in 0..len {
            let b = if bias_on_lane {
                bias.data()[v]
            } else {
                lane_idx[ai] = v;
                for (bi, &pp) in bidx.iter_mut().zip(&positions) {
                    *bi = lane_idx[pp];
                }
                bias.at(&bidx)
            };
            let off = base + v * x_stride;
            let z = x.data()[off] + b;
            let m = if p > 0.0 && rng.gen::<f32>() < p {
                0.0
            } else {
                keep_scale
            };
            let li = z * m + residual.data()[r_base + v * r_stride];
            mask.data_mut()[off] = m;
            ln_input.data_mut()[off] = li;
            sum += li;
            sq += li * li;
        }
        let mean = sum / len as f32;
        let var = (sq / len as f32 - mean * mean).max(0.0);
        let inv_std = 1.0 / (var + EPS).sqrt();
        stats.mean.push(mean);
        stats.inv_std.push(inv_std);
        // second pass: normalize
        for v in 0..len {
            let off = base + v * x_stride;
            let xhat = (ln_input.data()[off] - mean) * inv_std;
            out.data_mut()[off] = xhat * gamma.data()[v] + beta.data()[v];
        }
    });
    Ok(BdrlnOutput {
        out,
        ln_input,
        mask,
        stats,
    })
}

/// BSB — backward layernorm scale & bias: `(dgamma, dbeta)`.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn bsb(
    dy: &Tensor,
    ln_input: &Tensor,
    axis: Axis,
    stats: &LayerNormStats,
) -> Result<(Tensor, Tensor)> {
    crate::ops::layernorm::layernorm_backward_weights(dy, ln_input, axis, stats)
}

/// BLNRD — backward layernorm dX fused with backward dropout, returning
/// both the post-dropout gradient (continuing down the main branch) and the
/// layernorm input gradient itself (`dx_ln`), which the residual connection
/// also consumes (the "saving the intermediate result" note in Sec. IV-A).
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn blnrd(
    dy: &Tensor,
    ln_input: &Tensor,
    gamma: &Tensor,
    mask: &Tensor,
    axis: Axis,
    stats: &LayerNormStats,
) -> Result<(Tensor, Tensor)> {
    let dx_ln = crate::ops::layernorm::layernorm_backward_input(dy, ln_input, axis, gamma, stats)?;
    let dx = crate::ops::dropout::dropout_backward(&dx_ln, mask)?;
    Ok((dx, dx_ln))
}

/// BDRB — backward dropout + ReLU + bias dW in one sweep. Returns
/// `(dx, dbias)` where `dx = relu'(pre) ⊙ (dy ⊙ mask)` and `dbias` reduces
/// `dx` over every non-bias axis.
///
/// # Errors
///
/// Returns an error on shape/axis disagreements.
pub fn bdrb(
    dy: &Tensor,
    mask: &Tensor,
    pre_activation: &Tensor,
    bias_axes: &[Axis],
) -> Result<(Tensor, Tensor)> {
    bdrb_act(dy, mask, pre_activation, ActivationKind::Relu, bias_axes)
}

/// [`bdrb`] with a selectable activation derivative.
///
/// # Errors
///
/// Returns an error on shape/axis disagreements.
pub fn bdrb_act(
    dy: &Tensor,
    mask: &Tensor,
    pre_activation: &Tensor,
    activation: ActivationKind,
    bias_axes: &[Axis],
) -> Result<(Tensor, Tensor)> {
    check_same_shape(dy, mask, "bdrb mask")?;
    check_same_shape(dy, pre_activation, "bdrb pre-activation")?;
    let positions: Vec<usize> = bias_axes
        .iter()
        .map(|&ax| dy.shape().index_of(ax))
        .collect::<Result<Vec<_>>>()?;
    let bias_shape = crate::axes::Shape::new(
        bias_axes
            .iter()
            .zip(&positions)
            .map(|(&ax, &p)| (ax, dy.shape().sizes()[p])),
    )?;
    let mut dbias = Tensor::zeros(bias_shape);
    let mut dx = dy.clone();
    let mut idx = vec![0usize; dy.shape().rank()];
    let mut bidx = vec![0usize; positions.len()];
    loop {
        let off = dx.offset(&idx);
        let g = dy.at(&idx) * mask.at(&idx) * activation.grad(pre_activation.at(&idx));
        dx.data_mut()[off] = g;
        for (bi, &p) in bidx.iter_mut().zip(&positions) {
            *bi = idx[p];
        }
        let boff = dbias.offset(&bidx);
        dbias.data_mut()[boff] += g;
        if !dy.advance(&mut idx) {
            break;
        }
    }
    Ok((dx, dbias))
}

/// EBSB — backward residual add fused with backward layernorm scale & bias.
/// Returns `(dsum, dgamma, dbeta)` where `dsum = dy_main + dy_residual` and
/// the weight gradients are computed from `dsum`.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn ebsb(
    dy_main: &Tensor,
    dy_residual: &Tensor,
    ln_input: &Tensor,
    axis: Axis,
    stats: &LayerNormStats,
) -> Result<(Tensor, Tensor, Tensor)> {
    let dsum = crate::ops::elementwise::add(dy_main, dy_residual)?;
    let (dgamma, dbeta) =
        crate::ops::layernorm::layernorm_backward_weights(&dsum, ln_input, axis, stats)?;
    Ok((dsum, dgamma, dbeta))
}

/// BS — backward dropout + softmax + scaling in one lane sweep:
/// `dbeta = scaler · softmax_bwd(dalpha ⊙ mask, y)`.
///
/// # Errors
///
/// Returns an error on shape/axis disagreements.
pub fn bs(
    dalpha: &Tensor,
    mask: &Tensor,
    softmax_out: &Tensor,
    axis: Axis,
    scaler: f32,
) -> Result<Tensor> {
    check_same_shape(dalpha, mask, "bs mask")?;
    check_same_shape(dalpha, softmax_out, "bs softmax output")?;
    let ai = softmax_out.shape().index_of(axis)?;
    let len = softmax_out.shape().sizes()[ai];
    let mut dbeta = softmax_out.clone();
    for_each_outer(softmax_out.shape(), ai, |idx| {
        let y_base = softmax_out.offset(idx);
        let y_stride = softmax_out.strides()[ai];
        let g_base = dalpha.offset(idx);
        let g_stride = dalpha.strides()[ai];
        let m_base = mask.offset(idx);
        let m_stride = mask.strides()[ai];
        let mut dot = 0.0f32;
        for v in 0..len {
            let g = dalpha.data()[g_base + v * g_stride] * mask.data()[m_base + v * m_stride];
            dot += g * softmax_out.data()[y_base + v * y_stride];
        }
        for v in 0..len {
            let g = dalpha.data()[g_base + v * g_stride] * mask.data()[m_base + v * m_stride];
            let y = softmax_out.data()[y_base + v * y_stride];
            dbeta.data_mut()[y_base + v * y_stride] = scaler * (y * (g - dot));
        }
    });
    Ok(dbeta)
}

/// BAOB — backward attention output bias: the bias dW reduction.
///
/// # Errors
///
/// Returns an error if a bias axis is missing from `dy`.
pub fn baob(dy: &Tensor, bias_axes: &[Axis]) -> Result<Tensor> {
    crate::ops::elementwise::bias_grad(dy, bias_axes)
}

/// BAIB — backward attention input bias: the three Q/K/V bias dW reductions
/// in one kernel. Each stream names its own bias axes (the value stream
/// uses the `w` projection axis where queries/keys use `p`).
///
/// # Errors
///
/// Returns an error if a bias axis is missing from the corresponding input.
pub fn baib(
    dqq: &Tensor,
    dkk: &Tensor,
    dvv: &Tensor,
    axes: [&[Axis]; 3],
) -> Result<(Tensor, Tensor, Tensor)> {
    Ok((
        crate::ops::elementwise::bias_grad(dqq, axes[0])?,
        crate::ops::elementwise::bias_grad(dkk, axes[1])?,
        crate::ops::elementwise::bias_grad(dvv, axes[2])?,
    ))
}

/// BEI — backward encoder-input residual connection: `da + db`.
///
/// # Errors
///
/// Returns an error if shapes differ.
pub fn bei(da: &Tensor, db: &Tensor) -> Result<Tensor> {
    crate::ops::elementwise::add(da, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::Shape;
    use crate::ops::dropout::dropout_disabled;
    use crate::ops::elementwise::scale;
    use crate::ops::elementwise::{add, bias_add, bias_grad, relu, relu_backward};
    use crate::ops::layernorm::{layernorm, layernorm_backward_input};
    use crate::ops::softmax::{softmax, softmax_backward};
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_t(spec: &str, sizes: &[(char, usize)], seed: u64) -> Tensor {
        let shape = Shape::from_spec(spec, sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::random(shape, &Uniform::new(-1.0, 1.0), &mut rng)
    }

    const SIZES: [(char, usize); 5] = [('b', 2), ('j', 3), ('k', 4), ('i', 5), ('u', 6)];

    #[test]
    fn sm_matches_unfused_without_dropout() {
        let beta = rand_t("bjk", &SIZES, 1);
        let mut rng = StdRng::seed_from_u64(10);
        let fused = sm(&beta, 0.5, Axis('k'), 0.0, &mut rng).unwrap();
        let unfused = softmax(&scale(&beta, 0.5), Axis('k')).unwrap();
        assert!(fused.alpha.max_abs_diff(&unfused).unwrap() < 1e-6);
        assert!(fused.softmax.max_abs_diff(&unfused).unwrap() < 1e-6);
        assert!(fused.mask.data().iter().all(|&m| m == 1.0));
    }

    #[test]
    fn sm_dropout_zeroes_and_scales() {
        let beta = rand_t("bjk", &SIZES, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let fused = sm(&beta, 1.0, Axis('k'), 0.5, &mut rng).unwrap();
        let mut idx = vec![0usize; 3];
        loop {
            let m = fused.mask.at(&idx);
            assert!(m == 0.0 || (m - 2.0).abs() < 1e-6);
            let expect = fused.softmax.at(&idx) * m;
            assert!((fused.alpha.at(&idx) - expect).abs() < 1e-6);
            if !beta.advance(&mut idx) {
                break;
            }
        }
    }

    #[test]
    fn brd_matches_unfused() {
        let x = rand_t("bju", &SIZES, 3);
        let bias = rand_t("u", &SIZES, 4);
        let mut rng = StdRng::seed_from_u64(12);
        let fused = brd(&x, &bias, 0.0, &mut rng).unwrap();
        let pre = bias_add(&x, &bias).unwrap();
        let (expect, _) = dropout_disabled(&relu(&pre));
        assert!(fused.out.max_abs_diff(&expect).unwrap() < 1e-6);
        assert!(fused.pre_activation.max_abs_diff(&pre).unwrap() < 1e-6);
    }

    #[test]
    fn bdrln_matches_unfused() {
        let x = rand_t("bji", &SIZES, 5);
        let bias = rand_t("i", &SIZES, 6);
        let residual = rand_t("bji", &SIZES, 7);
        let gamma = rand_t("i", &SIZES, 8);
        let beta_w = rand_t("i", &SIZES, 9);
        let mut rng = StdRng::seed_from_u64(13);
        let fused = bdrln(
            &x,
            &bias,
            &residual,
            &gamma,
            &beta_w,
            Axis('i'),
            0.0,
            &mut rng,
        )
        .unwrap();
        let z = bias_add(&x, &bias).unwrap();
        let ln_in = add(&z, &residual).unwrap();
        let (expect, stats) = layernorm(&ln_in, Axis('i'), &gamma, &beta_w).unwrap();
        assert!(fused.out.max_abs_diff(&expect).unwrap() < 1e-5);
        assert!(fused.ln_input.max_abs_diff(&ln_in).unwrap() < 1e-6);
        for (a, b) in fused.stats.mean.iter().zip(&stats.mean) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn blnrd_matches_unfused() {
        let dy = rand_t("bji", &SIZES, 14);
        let ln_input = rand_t("bji", &SIZES, 15);
        let gamma = rand_t("i", &SIZES, 16);
        let beta_w = rand_t("i", &SIZES, 17);
        let (_, stats) = layernorm(&ln_input, Axis('i'), &gamma, &beta_w).unwrap();
        let mut mask = dy.clone();
        let mut rng = StdRng::seed_from_u64(18);
        for m in mask.data_mut() {
            *m = if rng.gen::<f32>() < 0.5 { 0.0 } else { 2.0 };
        }
        let (dx, dx_ln) = blnrd(&dy, &ln_input, &gamma, &mask, Axis('i'), &stats).unwrap();
        let expect_ln =
            layernorm_backward_input(&dy, &ln_input, Axis('i'), &gamma, &stats).unwrap();
        let expect_dx = crate::ops::dropout::dropout_backward(&expect_ln, &mask).unwrap();
        assert!(dx_ln.max_abs_diff(&expect_ln).unwrap() < 1e-6);
        assert!(dx.max_abs_diff(&expect_dx).unwrap() < 1e-6);
    }

    #[test]
    fn bdrb_matches_unfused() {
        let dy = rand_t("bju", &SIZES, 19);
        let pre = rand_t("bju", &SIZES, 20);
        let mut mask = dy.clone();
        let mut rng = StdRng::seed_from_u64(21);
        for m in mask.data_mut() {
            *m = if rng.gen::<f32>() < 0.3 {
                0.0
            } else {
                1.0 / 0.7
            };
        }
        let (dx, dbias) = bdrb(&dy, &mask, &pre, &[Axis('u')]).unwrap();
        let after_drop = crate::ops::dropout::dropout_backward(&dy, &mask).unwrap();
        let expect_dx = relu_backward(&after_drop, &pre).unwrap();
        let expect_db = bias_grad(&expect_dx, &[Axis('u')]).unwrap();
        assert!(dx.max_abs_diff(&expect_dx).unwrap() < 1e-6);
        assert!(dbias.max_abs_diff(&expect_db).unwrap() < 1e-5);
    }

    #[test]
    fn ebsb_matches_unfused() {
        let dy1 = rand_t("bji", &SIZES, 22);
        let dy2 = rand_t("bji", &SIZES, 23);
        let ln_input = rand_t("bji", &SIZES, 24);
        let gamma = rand_t("i", &SIZES, 25);
        let beta_w = rand_t("i", &SIZES, 26);
        let (_, stats) = layernorm(&ln_input, Axis('i'), &gamma, &beta_w).unwrap();
        let (dsum, dgamma, dbeta) = ebsb(&dy1, &dy2, &ln_input, Axis('i'), &stats).unwrap();
        let expect_sum = add(&dy1, &dy2).unwrap();
        let (eg, eb) = crate::ops::layernorm::layernorm_backward_weights(
            &expect_sum,
            &ln_input,
            Axis('i'),
            &stats,
        )
        .unwrap();
        assert!(dsum.max_abs_diff(&expect_sum).unwrap() < 1e-6);
        assert!(dgamma.max_abs_diff(&eg).unwrap() < 1e-5);
        assert!(dbeta.max_abs_diff(&eb).unwrap() < 1e-5);
    }

    #[test]
    fn bs_matches_unfused() {
        let beta = rand_t("bjk", &SIZES, 27);
        let scaler = 0.25f32;
        let y = softmax(&scale(&beta, scaler), Axis('k')).unwrap();
        let dalpha = rand_t("bjk", &SIZES, 28);
        let mut mask = dalpha.clone();
        let mut rng = StdRng::seed_from_u64(29);
        for m in mask.data_mut() {
            *m = if rng.gen::<f32>() < 0.4 {
                0.0
            } else {
                1.0 / 0.6
            };
        }
        let got = bs(&dalpha, &mask, &y, Axis('k'), scaler).unwrap();
        let after_drop = crate::ops::dropout::dropout_backward(&dalpha, &mask).unwrap();
        let dsm = softmax_backward(&after_drop, &y, Axis('k')).unwrap();
        let expect = scale(&dsm, scaler);
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-5);
    }

    #[test]
    fn sm_causal_masks_the_future() {
        let sizes = [('b', 2), ('j', 4), ('k', 4)];
        let beta = rand_t("bjk", &sizes, 40);
        let mut rng = StdRng::seed_from_u64(41);
        let out = sm_causal(&beta, 0.5, Axis('j'), Axis('k'), 0.0, &mut rng).unwrap();
        for b in 0..2 {
            for j in 0..4 {
                let mut sum = 0.0f32;
                for k in 0..4 {
                    let v = out.softmax.at(&[b, j, k]);
                    if k > j {
                        assert_eq!(v, 0.0, "future position ({j},{k}) visible");
                        assert_eq!(out.alpha.at(&[b, j, k]), 0.0);
                    } else {
                        assert!(v > 0.0);
                    }
                    sum += v;
                }
                assert!((sum - 1.0).abs() < 1e-5, "row ({b},{j}) sums to {sum}");
            }
        }
    }

    #[test]
    fn sm_causal_full_visibility_matches_sm_on_last_row() {
        // the last query sees everything: its weights equal unmasked sm's
        let sizes = [('b', 1), ('j', 5), ('k', 5)];
        let beta = rand_t("bjk", &sizes, 42);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let causal = sm_causal(&beta, 1.0, Axis('j'), Axis('k'), 0.0, &mut r1).unwrap();
        let full = sm(&beta, 1.0, Axis('k'), 0.0, &mut r2).unwrap();
        for k in 0..5 {
            let a = causal.softmax.at(&[0, 4, k]);
            let b = full.softmax.at(&[0, 4, k]);
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn brd_act_gelu_matches_unfused() {
        use crate::ops::elementwise::{activate, ActivationKind};
        let x = rand_t("bju", &SIZES, 43);
        let bias = rand_t("u", &SIZES, 44);
        let mut rng = StdRng::seed_from_u64(45);
        let fused = brd_act(&x, &bias, ActivationKind::Gelu, 0.0, &mut rng).unwrap();
        let pre = bias_add(&x, &bias).unwrap();
        let expect = activate(&pre, ActivationKind::Gelu);
        assert!(fused.out.max_abs_diff(&expect).unwrap() < 1e-5);
    }

    #[test]
    fn bdrb_act_gelu_matches_unfused() {
        use crate::ops::elementwise::{activate_backward, ActivationKind};
        let dy = rand_t("bju", &SIZES, 46);
        let pre = rand_t("bju", &SIZES, 47);
        let mut mask = dy.clone();
        mask.fill(1.0);
        let (dx, dbias) = bdrb_act(&dy, &mask, &pre, ActivationKind::Gelu, &[Axis('u')]).unwrap();
        let expect_dx = activate_backward(&dy, &pre, ActivationKind::Gelu).unwrap();
        let expect_db = bias_grad(&expect_dx, &[Axis('u')]).unwrap();
        assert!(dx.max_abs_diff(&expect_dx).unwrap() < 1e-6);
        assert!(dbias.max_abs_diff(&expect_db).unwrap() < 1e-5);
    }

    #[test]
    fn aib_baib_bei_compose() {
        let qq = rand_t("bjk", &SIZES, 30);
        let bq = rand_t("k", &SIZES, 31);
        let (q, k, v) = aib(&qq, &bq, &qq, &bq, &qq, &bq).unwrap();
        let expect = bias_add(&qq, &bq).unwrap();
        assert!(q.max_abs_diff(&expect).unwrap() < 1e-6);
        assert!(k.max_abs_diff(&expect).unwrap() < 1e-6);
        assert!(v.max_abs_diff(&expect).unwrap() < 1e-6);
        let ax: &[Axis] = &[Axis('k')];
        let (dq, dk, dv) = baib(&q, &k, &v, [ax, ax, ax]).unwrap();
        let eb = bias_grad(&expect, &[Axis('k')]).unwrap();
        assert!(dq.max_abs_diff(&eb).unwrap() < 1e-5);
        assert!(dk.max_abs_diff(&eb).unwrap() < 1e-5);
        assert!(dv.max_abs_diff(&eb).unwrap() < 1e-5);
        let s = bei(&q, &k).unwrap();
        let es = add(&expect, &expect).unwrap();
        assert!(s.max_abs_diff(&es).unwrap() < 1e-6);
        let ob = baob(&q, &[Axis('k')]).unwrap();
        assert!(ob.max_abs_diff(&eb).unwrap() < 1e-5);
    }
}
