//! Zero-allocation kernel variants that execute into caller-provided
//! buffers.
//!
//! Every forward kernel the schedule interpreter dispatches has a `*_into`
//! twin here that reads dense **row-major** slices and writes dense
//! row-major slices, allocating nothing. They are the execution layer of
//! the arena interpreter (`core::arena`): the planner colors each logical
//! container into an offset of one preallocated slab, and these kernels
//! run directly on the slab views.
//!
//! Arithmetic is mirrored statement-for-statement from the allocating
//! kernels in [`crate::fused`], [`crate::ops`] and [`crate::contract`], so
//! with dropout disabled the results are **bitwise identical** to the
//! tensor-returning path — the property the arena equivalence tests pin.
//!
//! All geometry (lane decompositions, bias broadcast maps, einsum pack
//! descriptors) is precomputed by the caller; the kernels only walk flat
//! offsets. Helpers:
//!
//! * [`LaneGeom`] — decomposition of a row-major tensor into lanes along
//!   one axis (the sweep order of `for_each_outer`),
//! * [`BiasMap`] — broadcast map from a flat output offset to a bias
//!   offset,
//! * [`CausalMap`] — recovery of the query index from a lane number for
//!   masked softmax,
//! * [`ContractPlan`] — precompiled gather/GEMM/scatter descriptor for a
//!   two-operand einsum.

use rand::Rng;

use crate::axes::{Axis, Shape};
use crate::contract::copy_strided;
use crate::einsum::EinsumSpec;
use crate::matmul::sgemm;
use crate::ops::elementwise::ActivationKind;
use crate::ops::layernorm::EPS;
use crate::tensor::Tensor;

/// Lane decomposition of a dense row-major buffer along the axis at
/// logical position `ai` of a shape with sizes `s`: `pre = Π s[..ai]`,
/// `len = s[ai]`, `post = Π s[ai+1..]`.
///
/// Lanes are visited `pre`-major / `post`-minor — exactly the order
/// `for_each_outer` visits them on a row-major tensor — so per-lane
/// statistics land in the same order as the allocating kernels push them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneGeom {
    /// Product of the axis sizes before the swept axis.
    pub pre: usize,
    /// Extent of the swept axis.
    pub len: usize,
    /// Product of the axis sizes after the swept axis (also the element
    /// stride of the swept axis in a row-major buffer).
    pub post: usize,
}

impl LaneGeom {
    /// Builds the decomposition for logical axis position `ai` of a shape
    /// with the given sizes.
    pub fn new(sizes: &[usize], ai: usize) -> LaneGeom {
        LaneGeom {
            pre: sizes[..ai].iter().product(),
            len: sizes[ai],
            post: sizes[ai + 1..].iter().product(),
        }
    }

    /// Number of lanes.
    pub fn lanes(self) -> usize {
        self.pre * self.post
    }

    /// Total number of elements.
    pub fn elements(self) -> usize {
        self.pre * self.len * self.post
    }
}

/// Broadcast map from a flat row-major offset in the output to a flat
/// offset in a (smaller) bias buffer. One entry per bias axis:
/// `(x_stride, x_size, bias_stride)`, where `x_stride`/`x_size` describe
/// the axis in the output's row-major geometry and `bias_stride` is the
/// axis's row-major stride within the bias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiasMap {
    /// `(x_stride, x_size, bias_stride)` triples, one per bias axis.
    pub dims: Vec<(usize, usize, usize)>,
}

impl BiasMap {
    /// Bias offset for the element at flat output offset `f`.
    #[inline]
    pub fn offset(&self, f: usize) -> usize {
        let mut off = 0usize;
        for &(xs, xn, bs) in &self.dims {
            off += ((f / xs) % xn) * bs;
        }
        off
    }
}

/// Recovers the causal query index from the `pre` part of a lane number:
/// `q = (pre / div) % len`. The query axis always precedes the softmax
/// axis logically, so it is always a `pre` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalMap {
    /// Product of the pre-axis sizes strictly between the query axis and
    /// the softmax axis.
    pub div: usize,
    /// Extent of the query axis.
    pub len: usize,
    /// Absolute position of local query index 0. Zero for full-sequence
    /// plans; a decode step sets it to the current sequence position so a
    /// single-column query attends over `base + 1` cache slots.
    pub base: usize,
}

impl CausalMap {
    /// Query index for the lane with pre-part `pre`.
    #[inline]
    pub fn query(self, pre: usize) -> usize {
        self.base + (pre / self.div) % self.len
    }

    /// This map shifted to absolute position `base` (decode-step use).
    #[inline]
    pub fn at(self, base: usize) -> Self {
        CausalMap { base, ..self }
    }
}

/// Precompiled two-operand einsum: strided gather descriptors for both
/// operands, collapsed GEMM sizes, and the scatter descriptor for the
/// output. Dims are `(len, src_stride, dst_stride)` triples outermost
/// first, as consumed by the recursive strided copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractPlan {
    /// Gather dims for operand A: `(len, a_stride, pack_stride)`.
    pub a_dims: Vec<(usize, usize, usize)>,
    /// Gather dims for operand B: `(len, b_stride, pack_stride)`.
    pub b_dims: Vec<(usize, usize, usize)>,
    /// Scatter dims for the output: `(len, pack_stride, out_stride)`.
    pub c_dims: Vec<(usize, usize, usize)>,
    /// Collapsed batch extent.
    pub batch: usize,
    /// Collapsed GEMM M.
    pub m: usize,
    /// Collapsed GEMM N.
    pub n: usize,
    /// Collapsed GEMM K.
    pub k: usize,
}

impl ContractPlan {
    /// Pack-buffer words needed for operand A.
    pub fn a_words(&self) -> usize {
        self.batch * self.m * self.k
    }

    /// Pack-buffer words needed for operand B.
    pub fn b_words(&self) -> usize {
        self.batch * self.k * self.n
    }

    /// Pack-buffer words needed for the output.
    pub fn c_words(&self) -> usize {
        self.batch * self.m * self.n
    }
}

/// Executes a precompiled contraction: gathers `a`/`b` into the pack
/// scratch, runs one serial GEMM per batch slice, and scatters the result
/// into `out`. The batch loop is intentionally serial — arena steps are
/// already parallelized across waves, and per-slice GEMMs are bitwise
/// identical to the threaded `batched_sgemm` either way.
///
/// # Panics
///
/// Panics if a scratch slice is smaller than the plan requires.
pub fn contract_into(
    plan: &ContractPlan,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    a_pack: &mut [f32],
    b_pack: &mut [f32],
    c_pack: &mut [f32],
) {
    let (aw, bw, cw) = (plan.a_words(), plan.b_words(), plan.c_words());
    let a_pack = &mut a_pack[..aw];
    let b_pack = &mut b_pack[..bw];
    let c_pack = &mut c_pack[..cw];
    copy_strided(&plan.a_dims, a, 0, a_pack, 0);
    copy_strided(&plan.b_dims, b, 0, b_pack, 0);
    for v in c_pack.iter_mut() {
        *v = 0.0;
    }
    let (m, n, k) = (plan.m, plan.n, plan.k);
    for g in 0..plan.batch {
        sgemm(
            m,
            n,
            k,
            &a_pack[g * m * k..(g + 1) * m * k],
            &b_pack[g * k * n..(g + 1) * k * n],
            &mut c_pack[g * m * n..(g + 1) * m * n],
        );
    }
    copy_strided(&plan.c_dims, c_pack, 0, out, 0);
}

/// A [`ContractPlan`] proven to write its output in container order — the
/// scatter is the identity, so a GEMM row block can be handed straight to
/// an epilogue callback and written at its flat container offset without
/// ever materializing the full contraction output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpiloguePlan {
    /// The gather/GEMM descriptor. `c_dims` is the (identity) scatter,
    /// kept for diagnostics; the tiled driver never runs it.
    pub plan: ContractPlan,
    /// Whether the GEMM roles were swapped relative to the einsum's
    /// operand order: when `true`, the einsum's *second* operand supplies
    /// the GEMM's A pack (M rows) and the first supplies B.
    pub swapped: bool,
}

/// Row-major strides of a shape's own axis order.
fn row_major_strides(shape: &Shape) -> Vec<usize> {
    let sizes = shape.sizes();
    let mut strides = vec![1usize; sizes.len()];
    for i in (0..sizes.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * sizes[i + 1];
    }
    strides
}

/// Compiles one operand order into a [`ContractPlan`], returning it only
/// when the output scatter is the identity over `out_shape`'s row-major
/// container order.
fn identity_scatter_plan(
    spec: &EinsumSpec,
    a_shape: &Shape,
    a_strides: &[usize],
    b_shape: &Shape,
    b_strides: &[usize],
    out_shape: &Shape,
) -> Option<ContractPlan> {
    let class = spec.classify().ok()?;
    let gs = spec.gemm_sizes(a_shape, b_shape).ok()?;
    let size_of = |ax: Axis| -> usize {
        a_shape
            .size(ax)
            .or_else(|_| b_shape.size(ax))
            .expect("classified axis has a size")
    };
    let gather =
        |groups: &[Axis], shape: &Shape, strides: &[usize]| -> Vec<(usize, usize, usize)> {
            let total: usize = groups.iter().map(|&ax| size_of(ax)).product();
            let mut dims = Vec::new();
            let mut ps = total;
            for &ax in groups {
                let len = size_of(ax);
                ps /= len;
                dims.push((len, strides[shape.index_of(ax).expect("operand axis")], ps));
            }
            dims
        };
    let a_groups: Vec<Axis> = class
        .batch
        .iter()
        .chain(&class.m)
        .chain(&class.k)
        .copied()
        .collect();
    let b_groups: Vec<Axis> = class
        .batch
        .iter()
        .chain(&class.k)
        .chain(&class.n)
        .copied()
        .collect();
    let c_groups: Vec<Axis> = class
        .batch
        .iter()
        .chain(&class.m)
        .chain(&class.n)
        .copied()
        .collect();
    if c_groups.len() != out_shape.rank() {
        return None;
    }
    let out_strides = row_major_strides(out_shape);
    let c_total: usize = c_groups.iter().map(|&ax| size_of(ax)).product();
    if c_total != out_shape.num_elements() {
        return None;
    }
    let mut c_dims = Vec::new();
    let mut ps = c_total;
    for &ax in &c_groups {
        let len = size_of(ax);
        ps /= len;
        let os = out_strides[out_shape.index_of(ax).ok()?];
        if len > 1 && os != ps {
            return None; // a real scatter — this order cannot stream tiles
        }
        c_dims.push((len, ps, os));
    }
    Some(ContractPlan {
        a_dims: gather(&a_groups, a_shape, a_strides),
        b_dims: gather(&b_groups, b_shape, b_strides),
        c_dims,
        batch: gs.batch,
        m: gs.m,
        n: gs.n,
        k: gs.k,
    })
}

/// Compiles a contraction for the tiled epilogue driver
/// ([`contract_epilogue_tiled`]): the gather descriptors and collapsed
/// GEMM sizes of [`contract_into`]'s plan, with the output scatter
/// required to be the *identity* so GEMM row blocks stream straight into
/// the epilogue. The operand order as written is tried first, then the
/// swapped order (GEMM roles M and N exchange operands — IEEE multiply
/// commutes and the per-element reduction order over K is unchanged, so
/// the result is bitwise identical): the attention `QKT` einsum
/// `phbk,phbj->hbjk` scatters under its natural order but is identity
/// once the query operand supplies M. Returns `None` when neither order
/// writes in container order.
pub fn epilogue_contract_plan(
    spec: &EinsumSpec,
    a_shape: &Shape,
    a_strides: &[usize],
    b_shape: &Shape,
    b_strides: &[usize],
    out_shape: &Shape,
) -> Option<EpiloguePlan> {
    if let Some(plan) =
        identity_scatter_plan(spec, a_shape, a_strides, b_shape, b_strides, out_shape)
    {
        return Some(EpiloguePlan {
            plan,
            swapped: false,
        });
    }
    let ops = spec.operands();
    if ops.len() != 2 {
        return None;
    }
    let label = |axes: &[Axis]| axes.iter().map(|a| a.0).collect::<String>();
    let swapped: EinsumSpec = format!(
        "{},{}->{}",
        label(&ops[1]),
        label(&ops[0]),
        label(spec.output())
    )
    .parse()
    .ok()?;
    identity_scatter_plan(&swapped, b_shape, b_strides, a_shape, a_strides, out_shape).map(|plan| {
        EpiloguePlan {
            plan,
            swapped: true,
        }
    })
}

/// The per-tile epilogue a [`contract_epilogue_tiled`] call applies to
/// each GEMM row block, with the full-size output slices it streams into.
/// Mirrors the fused-kernel classes whose sole input is a contraction
/// output: `SM` ([`sm_into`]), `BRD` ([`brd_act_into`]), and `BDR`
/// ([`bdr_into`]).
#[derive(Debug)]
pub enum TileEpilogue<'a> {
    /// Scaled (optionally causal) softmax + dropout over each GEMM output
    /// row (the row *is* the softmax lane: the epilogue plan puts the
    /// normalized axis in N). Requires whole-batch-slice tiles
    /// (`tile_rows == m`) so the causal query index is the local row.
    Softmax {
        /// The `1/√P` attention scaling.
        scaler: f32,
        /// Causal mask over the local row index, when masked.
        causal: Option<CausalMap>,
        /// Saved pre-dropout softmax (full container).
        softmax: &'a mut [f32],
        /// Dropped-out attention weights (full container).
        alpha: &'a mut [f32],
        /// Saved dropout mask (full container).
        mask: &'a mut [f32],
    },
    /// Bias + activation + dropout, bias indexed by the GEMM row
    /// (the epilogue plan proves the bias axes are exactly M).
    BiasActDrop {
        /// Bias vector, one entry per GEMM row (M words).
        bias: &'a [f32],
        /// Tile-local bias map, `[(n, m, 1)]` with `m` at least the
        /// tallest tile — built once by the caller so the hot loop never
        /// allocates. `epilogue_tile` asserts this exact shape.
        bmap: &'a BiasMap,
        /// The activation between bias and dropout.
        kind: ActivationKind,
        /// Saved pre-activation (full container).
        pre_activation: &'a mut [f32],
        /// Kernel output (full container).
        out: &'a mut [f32],
        /// Saved dropout mask (full container).
        mask: &'a mut [f32],
    },
    /// Bias + dropout + residual add, bias indexed by the GEMM row.
    BiasDropResidual {
        /// Bias vector, one entry per GEMM row (M words).
        bias: &'a [f32],
        /// Tile-local bias map, as in [`TileEpilogue::BiasActDrop`].
        bmap: &'a BiasMap,
        /// Residual input (full container).
        residual: &'a [f32],
        /// Saved dropout mask (full container).
        mask: &'a mut [f32],
        /// Kernel output (full container).
        out: &'a mut [f32],
    },
}

impl TileEpilogue<'_> {
    /// Whether this epilogue requires whole-batch-slice tiles
    /// (`tile_rows == m`): the causal softmax recovers the query index
    /// from the tile-local row, which is only the query when the tile
    /// starts a batch slice.
    pub fn needs_full_slice(&self) -> bool {
        matches!(self, TileEpilogue::Softmax { .. })
    }
}

/// Applies the epilogue to one GEMM row block. `row0` is the global row
/// index (over `batch · m`), `rows` the block height, `n` the row width;
/// `tile` holds the block's contraction output. Checked and licensed
/// paths are bitwise identical; every slice handed to the unchecked twins
/// is cut to its exact extent here, which discharges their safety
/// obligations locally (the plan-level access certificate additionally
/// proves the *container* bounds these cuts come from).
#[allow(clippy::too_many_arguments)]
fn epilogue_tile<R: Rng + ?Sized>(
    epi: &mut TileEpilogue<'_>,
    row0: usize,
    rows: usize,
    n: usize,
    tile: &[f32],
    p: f32,
    rng: &mut R,
    licensed: bool,
) {
    let span = row0 * n..row0 * n + rows * n;
    match epi {
        TileEpilogue::Softmax {
            scaler,
            causal,
            softmax,
            alpha,
            mask,
        } => {
            let lane = LaneGeom {
                pre: rows,
                len: n,
                post: 1,
            };
            let (sm, al, mk) = (
                &mut softmax[span.clone()],
                &mut alpha[span.clone()],
                &mut mask[span],
            );
            if licensed {
                // SAFETY: post == 1 and all four slices hold exactly
                // `lane.elements()` = rows·n words, cut just above.
                unsafe { sm_into_unchecked(tile, *scaler, lane, *causal, p, rng, sm, al, mk) };
            } else {
                sm_into(tile, *scaler, lane, *causal, p, rng, sm, al, mk);
            }
        }
        TileEpilogue::BiasActDrop {
            bias,
            bmap,
            kind,
            pre_activation,
            out,
            mask,
        } => {
            check_tile_bmap(bmap, n, rows);
            let bias = &bias[row0..row0 + rows];
            let (pre, o, mk) = (
                &mut pre_activation[span.clone()],
                &mut out[span.clone()],
                &mut mask[span],
            );
            if licensed {
                // SAFETY: slices are exactly rows·n words and the map
                // shape checked above gives `bmap.offset(f) = (f/n) % m
                // = f/n < rows = bias.len()` for every `f < rows·n`.
                unsafe { brd_act_into_unchecked(tile, bias, bmap, *kind, p, rng, pre, o, mk) };
            } else {
                brd_act_into(tile, bias, bmap, *kind, p, rng, pre, o, mk);
            }
        }
        TileEpilogue::BiasDropResidual {
            bias,
            bmap,
            residual,
            mask,
            out,
        } => {
            check_tile_bmap(bmap, n, rows);
            let bias = &bias[row0..row0 + rows];
            let res = &residual[span.clone()];
            let (mk, o) = (&mut mask[span.clone()], &mut out[span]);
            if licensed {
                // SAFETY: as BiasActDrop, plus the residual cut to the
                // same exact extent.
                unsafe { bdr_into_unchecked(tile, bias, bmap, res, p, rng, mk, o) };
            } else {
                bdr_into(tile, bias, bmap, res, p, rng, mk, o);
            }
        }
    }
}

/// Asserts the caller-built epilogue bias map has the `[(n, m, 1)]` shape
/// with `m >= rows`, which makes the modulo a no-op on tile-local offsets:
/// `offset(f) = (f/n) % m = f/n < rows` for all `f < rows·n` — the bound
/// the unchecked twins' bias indexing relies on.
fn check_tile_bmap(bmap: &BiasMap, n: usize, rows: usize) {
    assert!(
        bmap.dims.len() == 1
            && bmap.dims[0].0 == n
            && bmap.dims[0].1 >= rows
            && bmap.dims[0].2 == 1,
        "epilogue bias map must be [(n, >=tile rows, 1)], got {:?}",
        bmap.dims
    );
}

/// The GEMM-epilogue mega-kernel: gathers both operand packs like
/// [`contract_into`], then streams the GEMM over row blocks of at most
/// `tile_rows` rows, applying `epi` to each block while it is hot — the
/// contraction output exists only as the `tile_rows · n` scratch tile and
/// is never materialized. Tiles are visited in container order (batch
/// ascending, rows ascending), so the dropout RNG draw order — and hence
/// every saved mask and output — is bitwise identical to running the
/// unfused contraction followed by the whole-container fused kernel.
///
/// # Panics
///
/// Panics if a scratch slice is smaller than the plan requires, an
/// epilogue slice is smaller than the output container, or a
/// [`TileEpilogue::needs_full_slice`] epilogue is driven with
/// `tile_rows < m`.
#[allow(clippy::too_many_arguments)]
pub fn contract_epilogue_tiled<R: Rng + ?Sized>(
    plan: &ContractPlan,
    tile_rows: usize,
    a: &[f32],
    b: &[f32],
    a_pack: &mut [f32],
    b_pack: &mut [f32],
    c_tile: &mut [f32],
    p: f32,
    rng: &mut R,
    licensed: bool,
    epi: &mut TileEpilogue<'_>,
) {
    let (m, n, k) = (plan.m, plan.n, plan.k);
    let tile_rows = tile_rows.clamp(1, m.max(1));
    assert!(
        !epi.needs_full_slice() || tile_rows == m,
        "softmax epilogues need whole-batch-slice tiles (tile_rows == m)"
    );
    let (aw, bw) = (plan.a_words(), plan.b_words());
    let a_pack = &mut a_pack[..aw];
    let b_pack = &mut b_pack[..bw];
    copy_strided(&plan.a_dims, a, 0, a_pack, 0);
    copy_strided(&plan.b_dims, b, 0, b_pack, 0);
    for g in 0..plan.batch {
        let mut r0 = 0;
        while r0 < m {
            let rows = tile_rows.min(m - r0);
            let c_tile = &mut c_tile[..rows * n];
            for v in c_tile.iter_mut() {
                *v = 0.0;
            }
            sgemm(
                rows,
                n,
                k,
                &a_pack[(g * m + r0) * k..(g * m + r0 + rows) * k],
                &b_pack[g * k * n..(g + 1) * k * n],
                c_tile,
            );
            epilogue_tile(epi, g * m + r0, rows, n, c_tile, p, rng, licensed);
            r0 += rows;
        }
    }
}

/// Copies a tensor's logical contents into a dense row-major destination.
/// Row-major sources are a single `memcpy`; other layouts are walked in
/// logical order.
///
/// # Panics
///
/// Panics if `dst` is shorter than the tensor or the tensor's rank
/// exceeds 16.
pub fn copy_tensor_into(t: &Tensor, dst: &mut [f32]) {
    let n = t.len();
    let dst = &mut dst[..n];
    // physically row-major covers permutations that only move singleton
    // axes — `is_row_major` alone would reject them and fall into the
    // rank-limited walk
    if t.layout().is_row_major_for(t.shape()) {
        dst.copy_from_slice(t.data());
        return;
    }
    let rank = t.shape().rank();
    assert!(rank <= 16, "copy_tensor_into supports rank <= 16");
    let mut idx = [0usize; 16];
    let idx = &mut idx[..rank];
    for d in dst.iter_mut() {
        *d = t.data()[t.offset(idx)];
        t.advance(idx);
    }
}

/// `out = alpha · x`.
pub fn scale_into(x: &[f32], alpha: f32, out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = alpha * v;
    }
}

/// `out = a + b` (the residual connection).
pub fn add_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `out = activation(x)`.
pub fn activate_into(x: &[f32], kind: ActivationKind, out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = kind.apply(v);
    }
}

/// `out = x + bias` with the bias broadcast through `map`.
pub fn bias_add_into(x: &[f32], bias: &[f32], map: &BiasMap, out: &mut [f32]) {
    for (f, (o, &v)) in out.iter_mut().zip(x).enumerate() {
        *o = v + bias[map.offset(f)];
    }
}

/// Dropout with `p > 0`: one mask draw per element, survivors scaled by
/// `1/(1-p)`. Mirrors the allocating kernel's draw order (flat, every
/// element).
pub fn dropout_into<R: Rng + ?Sized>(
    x: &[f32],
    p: f32,
    rng: &mut R,
    out: &mut [f32],
    mask: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    for ((o, m), &v) in out.iter_mut().zip(mask.iter_mut()).zip(x) {
        let mv = if rng.gen::<f32>() < p {
            0.0
        } else {
            keep_scale
        };
        *m = mv;
        *o = v * mv;
    }
}

/// Identity dropout (`p == 0`): copies the input and fills the mask with
/// ones, drawing nothing.
pub fn dropout_disabled_into(x: &[f32], out: &mut [f32], mask: &mut [f32]) {
    out[..x.len()].copy_from_slice(x);
    for m in mask[..x.len()].iter_mut() {
        *m = 1.0;
    }
}

/// `out = softmax(scaler · x)` along the lane axis — the unfused
/// scale-then-softmax pair in one sweep, numerically identical to scaling
/// into a temporary first (a single f32 multiply either way).
pub fn softmax_scaled_into(x: &[f32], scaler: f32, lane: LaneGeom, out: &mut [f32]) {
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let mut mx = f32::NEG_INFINITY;
            for v in 0..len {
                mx = mx.max(scaler * x[base + v * stride]);
            }
            let mut sum = 0.0f32;
            for v in 0..len {
                let e = (scaler * x[base + v * stride] - mx).exp();
                out[base + v * stride] = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for v in 0..len {
                out[base + v * stride] *= inv;
            }
        }
    }
}

/// Fused SM: `alpha = dropout(softmax(scaler · x))` along the lane axis,
/// with the pre-dropout softmax and the mask saved. `causal` masks key
/// positions beyond the lane's query index (the decoder variant); masked
/// positions get zero softmax/alpha/mask entries, exactly like the
/// allocating kernel.
#[allow(clippy::too_many_arguments)]
pub fn sm_into<R: Rng + ?Sized>(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    causal: Option<CausalMap>,
    p: f32,
    rng: &mut R,
    softmax: &mut [f32],
    alpha: &mut [f32],
    mask: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let visible = match causal {
                Some(c) => (c.query(pre) + 1).min(len),
                None => len,
            };
            let mut mx = f32::NEG_INFINITY;
            for v in 0..visible {
                mx = mx.max(scaler * x[base + v * stride]);
            }
            let mut sum = 0.0f32;
            for v in 0..visible {
                let e = (scaler * x[base + v * stride] - mx).exp();
                softmax[base + v * stride] = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for v in 0..len {
                let off = base + v * stride;
                if v < visible {
                    let y = softmax[off] * inv;
                    softmax[off] = y;
                    let m = if p > 0.0 && rng.gen::<f32>() < p {
                        0.0
                    } else {
                        keep_scale
                    };
                    mask[off] = m;
                    alpha[off] = y * m;
                } else {
                    softmax[off] = 0.0;
                    mask[off] = 0.0;
                    alpha[off] = 0.0;
                }
            }
        }
    }
}

/// The unfused masked softmax: the causal softmax alone (the allocating
/// interpreter runs the causal SM kernel with dropout pinned off and keeps
/// only its softmax output).
pub fn softmax_causal_into(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    causal: CausalMap,
    out: &mut [f32],
) {
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let visible = (causal.query(pre) + 1).min(len);
            let mut mx = f32::NEG_INFINITY;
            for v in 0..visible {
                mx = mx.max(scaler * x[base + v * stride]);
            }
            let mut sum = 0.0f32;
            for v in 0..visible {
                let e = (scaler * x[base + v * stride] - mx).exp();
                out[base + v * stride] = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for v in 0..len {
                let off = base + v * stride;
                if v < visible {
                    out[off] *= inv;
                } else {
                    out[off] = 0.0;
                }
            }
        }
    }
}

/// Layer normalization along the lane axis with learned `gamma`/`beta`
/// (dense 1-D, indexed by the lane position). Per-lane `mean`/`inv_std`
/// are written in lane order, matching the allocating kernel's stats
/// vectors.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_into(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    lane: LaneGeom,
    out: &mut [f32],
    mean_out: &mut [f32],
    inv_std_out: &mut [f32],
) {
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let l = pre * lane.post + post;
            let mut sum = 0.0f32;
            let mut sq = 0.0f32;
            for v in 0..len {
                let val = x[base + v * stride];
                sum += val;
                sq += val * val;
            }
            let mean = sum / len as f32;
            let var = (sq / len as f32 - mean * mean).max(0.0);
            let inv_std = 1.0 / (var + EPS).sqrt();
            mean_out[l] = mean;
            inv_std_out[l] = inv_std;
            for v in 0..len {
                let xhat = (x[base + v * stride] - mean) * inv_std;
                out[base + v * stride] = xhat * gamma[v] + beta[v];
            }
        }
    }
}

/// Fused BDRLN: `out = layernorm(dropout(x + bias) + residual)` along the
/// lane axis, saving the mask, the layer-norm input, and per-lane stats.
#[allow(clippy::too_many_arguments)]
pub fn bdrln_into<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    residual: &[f32],
    gamma: &[f32],
    beta: &[f32],
    lane: LaneGeom,
    p: f32,
    rng: &mut R,
    mask: &mut [f32],
    ln_input: &mut [f32],
    out: &mut [f32],
    mean_out: &mut [f32],
    inv_std_out: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let l = pre * lane.post + post;
            let mut sum = 0.0f32;
            let mut sq = 0.0f32;
            for v in 0..len {
                let off = base + v * stride;
                let z = x[off] + bias[bmap.offset(off)];
                let m = if p > 0.0 && rng.gen::<f32>() < p {
                    0.0
                } else {
                    keep_scale
                };
                let li = z * m + residual[off];
                mask[off] = m;
                ln_input[off] = li;
                sum += li;
                sq += li * li;
            }
            let mean = sum / len as f32;
            let var = (sq / len as f32 - mean * mean).max(0.0);
            let inv_std = 1.0 / (var + EPS).sqrt();
            mean_out[l] = mean;
            inv_std_out[l] = inv_std;
            for v in 0..len {
                let off = base + v * stride;
                let xhat = (ln_input[off] - mean) * inv_std;
                out[off] = xhat * gamma[v] + beta[v];
            }
        }
    }
}

/// Fused BRD: `out = dropout(activation(x + bias))`, saving the
/// pre-activation and the mask.
#[allow(clippy::too_many_arguments)]
pub fn brd_act_into<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    kind: ActivationKind,
    p: f32,
    rng: &mut R,
    pre_activation: &mut [f32],
    out: &mut [f32],
    mask: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    for (f, &v) in x.iter().enumerate() {
        let z = v + bias[bmap.offset(f)];
        let r = kind.apply(z);
        let m = if p > 0.0 && rng.gen::<f32>() < p {
            0.0
        } else {
            keep_scale
        };
        pre_activation[f] = z;
        mask[f] = m;
        out[f] = r * m;
    }
}

/// Fused BDR (no norm): `out = dropout(x + bias) + residual`, saving the
/// mask. With `p == 0` the mask multiply is skipped entirely, matching
/// the allocating path's identity dropout.
#[allow(clippy::too_many_arguments)]
pub fn bdr_into<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    residual: &[f32],
    p: f32,
    rng: &mut R,
    mask: &mut [f32],
    out: &mut [f32],
) {
    if p > 0.0 {
        let keep_scale = 1.0 / (1.0 - p);
        for (f, &v) in x.iter().enumerate() {
            let m = if rng.gen::<f32>() < p {
                0.0
            } else {
                keep_scale
            };
            mask[f] = m;
            out[f] = (v + bias[bmap.offset(f)]) * m + residual[f];
        }
    } else {
        for (f, &v) in x.iter().enumerate() {
            mask[f] = 1.0;
            out[f] = (v + bias[bmap.offset(f)]) + residual[f];
        }
    }
}

// ---------------------------------------------------------------------
// Certificate-licensed unchecked twins.
//
// Each kernel above that indexes through precomputed geometry (lane
// decompositions, bias maps, causal maps) has an `unsafe` twin here with
// the per-element bounds checks removed (`get_unchecked`, exact-chunk
// lanes) and the dropout/causal selects made branch-free, so the inner
// loops autovectorize. The zip-iterator kernels (`scale_into`,
// `add_into`, `activate_into`, `dropout_into`) already compile without
// bounds checks and need no twins.
//
// Arithmetic is mirrored statement-for-statement from the checked
// kernels — same operation order, same RNG draw count and order — so the
// results are bitwise identical (pinned by `tests/unchecked_equivalence`).
// These functions are dispatched only for steps licensed by an
// `AccessCertificate` (see `xform_core::access`); every other step takes
// the checked kernel. The dropout select `((draw >= p) as u32 as f32) *
// keep_scale` is exact: `1.0 * keep_scale` is an identity and `0.0 *
// keep_scale` is `+0.0`, matching the checked branches bit for bit.
// ---------------------------------------------------------------------

/// Draws the dropout mask value branch-free. Must be called only when
/// `p > 0` (the checked kernels skip the draw entirely at `p == 0`).
#[inline(always)]
fn mask_select<R: Rng + ?Sized>(p: f32, keep_scale: f32, rng: &mut R) -> f32 {
    ((rng.gen::<f32>() >= p) as u32 as f32) * keep_scale
}

/// [`bias_add_into`] without per-element bounds checks.
///
/// # Safety
///
/// `x.len() >= out.len()` and `map.offset(f) < bias.len()` for every
/// `f < out.len()` — proven by the access certificate before dispatch.
pub unsafe fn bias_add_into_unchecked(x: &[f32], bias: &[f32], map: &BiasMap, out: &mut [f32]) {
    unsafe {
        for f in 0..out.len() {
            *out.get_unchecked_mut(f) = *x.get_unchecked(f) + *bias.get_unchecked(map.offset(f));
        }
    }
}

/// [`softmax_scaled_into`] specialized to unit-stride lanes
/// (`lane.post == 1`) with exact-chunk iteration and no bounds checks.
///
/// # Safety
///
/// `lane.post == 1` and `x.len() >= lane.elements()`,
/// `out.len() >= lane.elements()` — proven by the access certificate
/// (in-bounds + unit-stride) before dispatch.
pub unsafe fn softmax_scaled_into_unchecked(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    out: &mut [f32],
) {
    debug_assert_eq!(lane.post, 1);
    let len = lane.len;
    unsafe {
        for pre in 0..lane.pre {
            let base = pre * len;
            let xl = x.get_unchecked(base..base + len);
            let ol = out.get_unchecked_mut(base..base + len);
            let mut mx = f32::NEG_INFINITY;
            for &v in xl {
                mx = mx.max(scaler * v);
            }
            let mut sum = 0.0f32;
            for (o, &v) in ol.iter_mut().zip(xl) {
                let e = (scaler * v - mx).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in ol.iter_mut() {
                *o *= inv;
            }
        }
    }
}

/// [`softmax_causal_into`] specialized to unit-stride lanes: the visible
/// prefix is an exact chunk, the masked tail a plain fill — no
/// per-element `if v < visible` branch.
///
/// # Safety
///
/// As [`softmax_scaled_into_unchecked`].
pub unsafe fn softmax_causal_into_unchecked(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    causal: CausalMap,
    out: &mut [f32],
) {
    debug_assert_eq!(lane.post, 1);
    let len = lane.len;
    unsafe {
        for pre in 0..lane.pre {
            let base = pre * len;
            let visible = (causal.query(pre) + 1).min(len);
            let xl = x.get_unchecked(base..base + visible);
            let ol = out.get_unchecked_mut(base..base + len);
            let mut mx = f32::NEG_INFINITY;
            for &v in xl {
                mx = mx.max(scaler * v);
            }
            let mut sum = 0.0f32;
            for (o, &v) in ol.get_unchecked_mut(..visible).iter_mut().zip(xl) {
                let e = (scaler * v - mx).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in ol.get_unchecked_mut(..visible).iter_mut() {
                *o *= inv;
            }
            for o in ol.get_unchecked_mut(visible..).iter_mut() {
                *o = 0.0;
            }
        }
    }
}

/// [`sm_into`] specialized to unit-stride lanes: exact-chunk visible
/// prefix, select-based dropout, plain-fill masked tail. The RNG draw
/// count and order match the checked kernel exactly — one draw per
/// visible element when `p > 0`, none otherwise.
///
/// # Safety
///
/// `lane.post == 1` and every output slice holds at least
/// `lane.elements()` words — proven by the access certificate.
#[allow(clippy::too_many_arguments)]
pub unsafe fn sm_into_unchecked<R: Rng + ?Sized>(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    causal: Option<CausalMap>,
    p: f32,
    rng: &mut R,
    softmax: &mut [f32],
    alpha: &mut [f32],
    mask: &mut [f32],
) {
    debug_assert_eq!(lane.post, 1);
    let keep_scale = 1.0 / (1.0 - p);
    let len = lane.len;
    unsafe {
        for pre in 0..lane.pre {
            let base = pre * len;
            let visible = match causal {
                Some(c) => (c.query(pre) + 1).min(len),
                None => len,
            };
            let xl = x.get_unchecked(base..base + visible);
            let sl = softmax.get_unchecked_mut(base..base + len);
            let al = alpha.get_unchecked_mut(base..base + len);
            let ml = mask.get_unchecked_mut(base..base + len);
            let mut mx = f32::NEG_INFINITY;
            for &v in xl {
                mx = mx.max(scaler * v);
            }
            let mut sum = 0.0f32;
            for (s, &v) in sl.get_unchecked_mut(..visible).iter_mut().zip(xl) {
                let e = (scaler * v - mx).exp();
                *s = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for v in 0..visible {
                let y = *sl.get_unchecked(v) * inv;
                *sl.get_unchecked_mut(v) = y;
                let m = if p > 0.0 {
                    mask_select(p, keep_scale, rng)
                } else {
                    keep_scale
                };
                *ml.get_unchecked_mut(v) = m;
                *al.get_unchecked_mut(v) = y * m;
            }
            for v in visible..len {
                *sl.get_unchecked_mut(v) = 0.0;
                *ml.get_unchecked_mut(v) = 0.0;
                *al.get_unchecked_mut(v) = 0.0;
            }
        }
    }
}

/// [`layernorm_into`] specialized to unit-stride lanes with exact-chunk
/// iteration and no bounds checks.
///
/// # Safety
///
/// `lane.post == 1`, `x.len() >= lane.elements()`,
/// `out.len() >= lane.elements()`, `gamma.len() >= lane.len`,
/// `beta.len() >= lane.len`, and both stats slices hold at least
/// `lane.lanes()` words — proven by the access certificate.
#[allow(clippy::too_many_arguments)]
pub unsafe fn layernorm_into_unchecked(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    lane: LaneGeom,
    out: &mut [f32],
    mean_out: &mut [f32],
    inv_std_out: &mut [f32],
) {
    debug_assert_eq!(lane.post, 1);
    let len = lane.len;
    unsafe {
        let g = gamma.get_unchecked(..len);
        let b = beta.get_unchecked(..len);
        for pre in 0..lane.pre {
            let base = pre * len;
            let xl = x.get_unchecked(base..base + len);
            let ol = out.get_unchecked_mut(base..base + len);
            let mut sum = 0.0f32;
            let mut sq = 0.0f32;
            for &val in xl {
                sum += val;
                sq += val * val;
            }
            let mean = sum / len as f32;
            let var = (sq / len as f32 - mean * mean).max(0.0);
            let inv_std = 1.0 / (var + EPS).sqrt();
            *mean_out.get_unchecked_mut(pre) = mean;
            *inv_std_out.get_unchecked_mut(pre) = inv_std;
            for (v, (o, &val)) in ol.iter_mut().zip(xl).enumerate() {
                let xhat = (val - mean) * inv_std;
                *o = xhat * *g.get_unchecked(v) + *b.get_unchecked(v);
            }
        }
    }
}

/// [`bdrln_into`] specialized to unit-stride lanes with select-based
/// dropout. RNG draw count and order match the checked kernel (one draw
/// per element when `p > 0`, none otherwise).
///
/// # Safety
///
/// As [`layernorm_into_unchecked`], plus `bmap.offset(f) < bias.len()`
/// and `residual`/`mask`/`ln_input` at least `lane.elements()` words —
/// proven by the access certificate.
#[allow(clippy::too_many_arguments)]
pub unsafe fn bdrln_into_unchecked<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    residual: &[f32],
    gamma: &[f32],
    beta: &[f32],
    lane: LaneGeom,
    p: f32,
    rng: &mut R,
    mask: &mut [f32],
    ln_input: &mut [f32],
    out: &mut [f32],
    mean_out: &mut [f32],
    inv_std_out: &mut [f32],
) {
    debug_assert_eq!(lane.post, 1);
    let keep_scale = 1.0 / (1.0 - p);
    let len = lane.len;
    unsafe {
        let g = gamma.get_unchecked(..len);
        let b = beta.get_unchecked(..len);
        for pre in 0..lane.pre {
            let base = pre * len;
            let mut sum = 0.0f32;
            let mut sq = 0.0f32;
            for v in 0..len {
                let off = base + v;
                let z = *x.get_unchecked(off) + *bias.get_unchecked(bmap.offset(off));
                let m = if p > 0.0 {
                    mask_select(p, keep_scale, rng)
                } else {
                    keep_scale
                };
                let li = z * m + *residual.get_unchecked(off);
                *mask.get_unchecked_mut(off) = m;
                *ln_input.get_unchecked_mut(off) = li;
                sum += li;
                sq += li * li;
            }
            let mean = sum / len as f32;
            let var = (sq / len as f32 - mean * mean).max(0.0);
            let inv_std = 1.0 / (var + EPS).sqrt();
            *mean_out.get_unchecked_mut(pre) = mean;
            *inv_std_out.get_unchecked_mut(pre) = inv_std;
            let li = ln_input.get_unchecked(base..base + len);
            let ol = out.get_unchecked_mut(base..base + len);
            for (v, (o, &val)) in ol.iter_mut().zip(li).enumerate() {
                let xhat = (val - mean) * inv_std;
                *o = xhat * *g.get_unchecked(v) + *b.get_unchecked(v);
            }
        }
    }
}

/// [`brd_act_into`] without per-element bounds checks and with
/// select-based dropout.
///
/// # Safety
///
/// Every output slice holds at least `x.len()` words and
/// `bmap.offset(f) < bias.len()` for every `f < x.len()` — proven by the
/// access certificate.
#[allow(clippy::too_many_arguments)]
pub unsafe fn brd_act_into_unchecked<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    kind: ActivationKind,
    p: f32,
    rng: &mut R,
    pre_activation: &mut [f32],
    out: &mut [f32],
    mask: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    unsafe {
        for (f, &v) in x.iter().enumerate() {
            let z = v + *bias.get_unchecked(bmap.offset(f));
            let r = kind.apply(z);
            let m = if p > 0.0 {
                mask_select(p, keep_scale, rng)
            } else {
                keep_scale
            };
            *pre_activation.get_unchecked_mut(f) = z;
            *mask.get_unchecked_mut(f) = m;
            *out.get_unchecked_mut(f) = r * m;
        }
    }
}

/// [`bdr_into`] without per-element bounds checks and with select-based
/// dropout. The `p == 0` arm mirrors the checked kernel's identity
/// dropout exactly (no mask multiply, no draws).
///
/// # Safety
///
/// As [`brd_act_into_unchecked`], plus `residual.len() >= x.len()`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn bdr_into_unchecked<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    residual: &[f32],
    p: f32,
    rng: &mut R,
    mask: &mut [f32],
    out: &mut [f32],
) {
    unsafe {
        if p > 0.0 {
            let keep_scale = 1.0 / (1.0 - p);
            for (f, &v) in x.iter().enumerate() {
                let m = mask_select(p, keep_scale, rng);
                *mask.get_unchecked_mut(f) = m;
                *out.get_unchecked_mut(f) =
                    (v + *bias.get_unchecked(bmap.offset(f))) * m + *residual.get_unchecked(f);
            }
        } else {
            for (f, &v) in x.iter().enumerate() {
                *mask.get_unchecked_mut(f) = 1.0;
                *out.get_unchecked_mut(f) =
                    (v + *bias.get_unchecked(bmap.offset(f))) + *residual.get_unchecked(f);
            }
        }
    }
}

/// Locally-certified dispatcher for [`softmax_scaled_into_unchecked`]:
/// runs the unchecked twin when the lane geometry discharges its safety
/// obligations right here (`post == 1`, buffers at least
/// `lane.elements()` words), the checked kernel otherwise. Returns `true`
/// when the licensed path ran — callers without a plan-level access
/// certificate (e.g. benchmarks) use this to exercise the unchecked
/// loops from safe code.
pub fn softmax_scaled_into_dispatch(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    out: &mut [f32],
) -> bool {
    if lane.post == 1 && x.len() >= lane.elements() && out.len() >= lane.elements() {
        // SAFETY: every obligation of the twin was checked just above.
        unsafe { softmax_scaled_into_unchecked(x, scaler, lane, out) };
        true
    } else {
        softmax_scaled_into(x, scaler, lane, out);
        false
    }
}

/// Locally-certified dispatcher for [`layernorm_into_unchecked`]; see
/// [`softmax_scaled_into_dispatch`]. Returns `true` when the licensed
/// path ran.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_into_dispatch(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    lane: LaneGeom,
    out: &mut [f32],
    mean_out: &mut [f32],
    inv_std_out: &mut [f32],
) -> bool {
    if lane.post == 1
        && x.len() >= lane.elements()
        && out.len() >= lane.elements()
        && gamma.len() >= lane.len
        && beta.len() >= lane.len
        && mean_out.len() >= lane.lanes()
        && inv_std_out.len() >= lane.lanes()
    {
        // SAFETY: every obligation of the twin was checked just above.
        unsafe { layernorm_into_unchecked(x, gamma, beta, lane, out, mean_out, inv_std_out) };
        true
    } else {
        layernorm_into(x, gamma, beta, lane, out, mean_out, inv_std_out);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{Axis, Shape};
    use crate::einsum::EinsumSpec;
    use crate::fused;
    use crate::layout::Layout;
    use crate::ops::elementwise::{bias_add, scale};
    use crate::ops::layernorm::layernorm;
    use crate::ops::softmax::softmax;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// The vendored `StdRng` has no `PartialEq`; equal next draws prove
    /// equal state for its counter-based stream.
    fn assert_same_rng_state(a: &mut StdRng, b: &mut StdRng, what: &str) {
        assert_eq!(a.next_u64(), b.next_u64(), "RNG streams diverged: {what}");
    }

    fn rand_t(spec: &str, sizes: &[(char, usize)], seed: u64) -> Tensor {
        let shape = Shape::from_spec(spec, sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::random(shape, &Uniform::new(-1.0, 1.0), &mut rng)
    }

    const SIZES: [(char, usize); 5] = [('b', 2), ('j', 3), ('k', 4), ('i', 5), ('u', 6)];

    fn lane_of(t: &Tensor, axis: char) -> LaneGeom {
        LaneGeom::new(t.shape().sizes(), t.shape().index_of(Axis(axis)).unwrap())
    }

    fn bmap_of(out: &Tensor, bias: &Tensor) -> BiasMap {
        let sizes = out.shape().sizes();
        let rm = Layout::row_major(sizes.len()).strides(out.shape());
        let brm = Layout::row_major(bias.shape().rank()).strides(bias.shape());
        let dims = bias
            .shape()
            .axes()
            .iter()
            .enumerate()
            .map(|(bi, &ax)| {
                let p = out.shape().index_of(ax).unwrap();
                (rm[p], sizes[p], brm[bi])
            })
            .collect();
        BiasMap { dims }
    }

    #[test]
    fn softmax_scaled_into_is_bitwise_equal() {
        let x = rand_t("bjk", &SIZES, 1);
        let expect = softmax(&scale(&x, 0.25), Axis('k')).unwrap();
        let mut out = vec![0.0f32; x.len()];
        softmax_scaled_into(x.data(), 0.25, lane_of(&x, 'k'), &mut out);
        assert_eq!(out.as_slice(), expect.data());
    }

    #[test]
    fn sm_into_matches_fused_sm_without_dropout() {
        let x = rand_t("bjk", &SIZES, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let want = fused::sm(&x, 0.5, Axis('k'), 0.0, &mut rng).unwrap();
        let n = x.len();
        let (mut s, mut a, mut m) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut rng2 = StdRng::seed_from_u64(9);
        sm_into(
            x.data(),
            0.5,
            lane_of(&x, 'k'),
            None,
            0.0,
            &mut rng2,
            &mut s,
            &mut a,
            &mut m,
        );
        assert_eq!(s.as_slice(), want.softmax.data());
        assert_eq!(a.as_slice(), want.alpha.data());
        assert_eq!(m.as_slice(), want.mask.data());
    }

    #[test]
    fn sm_into_causal_matches_fused_sm_causal() {
        let sizes = [('b', 2), ('j', 4), ('k', 4)];
        let x = rand_t("bjk", &sizes, 3);
        let mut rng = StdRng::seed_from_u64(10);
        let want = fused::sm_causal(&x, 0.7, Axis('j'), Axis('k'), 0.3, &mut rng).unwrap();
        let n = x.len();
        let (mut s, mut a, mut m) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut rng2 = StdRng::seed_from_u64(10);
        // query axis j sits immediately before k: div = 1, len = 4
        sm_into(
            x.data(),
            0.7,
            lane_of(&x, 'k'),
            Some(CausalMap {
                div: 1,
                len: 4,
                base: 0,
            }),
            0.3,
            &mut rng2,
            &mut s,
            &mut a,
            &mut m,
        );
        assert_eq!(s.as_slice(), want.softmax.data());
        assert_eq!(a.as_slice(), want.alpha.data());
        assert_eq!(m.as_slice(), want.mask.data());
    }

    #[test]
    fn softmax_causal_into_matches_sm_causal_softmax() {
        let sizes = [('b', 2), ('j', 4), ('k', 4)];
        let x = rand_t("bjk", &sizes, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let want = fused::sm_causal(&x, 1.0, Axis('j'), Axis('k'), 0.0, &mut rng).unwrap();
        let mut out = vec![0.0f32; x.len()];
        softmax_causal_into(
            x.data(),
            1.0,
            lane_of(&x, 'k'),
            CausalMap {
                div: 1,
                len: 4,
                base: 0,
            },
            &mut out,
        );
        assert_eq!(out.as_slice(), want.softmax.data());
    }

    #[test]
    fn layernorm_into_matches_with_stats() {
        let x = rand_t("bji", &SIZES, 5);
        let gamma = rand_t("i", &SIZES, 6);
        let beta = rand_t("i", &SIZES, 7);
        let (want, stats) = layernorm(&x, Axis('i'), &gamma, &beta).unwrap();
        let lane = lane_of(&x, 'i');
        let mut out = vec![0.0f32; x.len()];
        let mut mean = vec![0.0f32; lane.lanes()];
        let mut inv = vec![0.0f32; lane.lanes()];
        layernorm_into(
            x.data(),
            gamma.data(),
            beta.data(),
            lane,
            &mut out,
            &mut mean,
            &mut inv,
        );
        assert_eq!(out.as_slice(), want.data());
        assert_eq!(mean.as_slice(), stats.mean.as_slice());
        assert_eq!(inv.as_slice(), stats.inv_std.as_slice());
    }

    #[test]
    fn bdrln_into_matches_fused() {
        let x = rand_t("bji", &SIZES, 8);
        let bias = rand_t("i", &SIZES, 9);
        let res = rand_t("bji", &SIZES, 10);
        let gamma = rand_t("i", &SIZES, 11);
        let beta = rand_t("i", &SIZES, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let want = fused::bdrln(&x, &bias, &res, &gamma, &beta, Axis('i'), 0.4, &mut rng).unwrap();
        let lane = lane_of(&x, 'i');
        let n = x.len();
        let (mut m, mut li, mut out) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut mean = vec![0.0f32; lane.lanes()];
        let mut inv = vec![0.0f32; lane.lanes()];
        let mut rng2 = StdRng::seed_from_u64(13);
        bdrln_into(
            x.data(),
            bias.data(),
            &bmap_of(&x, &bias),
            res.data(),
            gamma.data(),
            beta.data(),
            lane,
            0.4,
            &mut rng2,
            &mut m,
            &mut li,
            &mut out,
            &mut mean,
            &mut inv,
        );
        assert_eq!(m.as_slice(), want.mask.data());
        assert_eq!(li.as_slice(), want.ln_input.data());
        assert_eq!(out.as_slice(), want.out.data());
        assert_eq!(mean.as_slice(), want.stats.mean.as_slice());
        assert_eq!(inv.as_slice(), want.stats.inv_std.as_slice());
    }

    #[test]
    fn brd_act_into_matches_fused() {
        let x = rand_t("bju", &SIZES, 14);
        let bias = rand_t("u", &SIZES, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let want = fused::brd_act(&x, &bias, ActivationKind::Gelu, 0.2, &mut rng).unwrap();
        let n = x.len();
        let (mut pre, mut out, mut m) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut rng2 = StdRng::seed_from_u64(16);
        brd_act_into(
            x.data(),
            bias.data(),
            &bmap_of(&x, &bias),
            ActivationKind::Gelu,
            0.2,
            &mut rng2,
            &mut pre,
            &mut out,
            &mut m,
        );
        assert_eq!(pre.as_slice(), want.pre_activation.data());
        assert_eq!(out.as_slice(), want.out.data());
        assert_eq!(m.as_slice(), want.mask.data());
    }

    #[test]
    fn bias_add_into_matches_broadcast() {
        let x = rand_t("bjk", &SIZES, 17);
        let bias = rand_t("k", &SIZES, 18);
        let want = bias_add(&x, &bias).unwrap();
        let mut out = vec![0.0f32; x.len()];
        bias_add_into(x.data(), bias.data(), &bmap_of(&x, &bias), &mut out);
        assert_eq!(out.as_slice(), want.data());
        // multi-axis bias
        let bias2 = rand_t("jk", &SIZES, 19);
        let want2 = bias_add(&x, &bias2).unwrap();
        bias_add_into(x.data(), bias2.data(), &bmap_of(&x, &bias2), &mut out);
        assert_eq!(out.as_slice(), want2.data());
    }

    #[test]
    fn contract_into_matches_contract() {
        let sizes = [('p', 3), ('h', 2), ('b', 2), ('j', 4), ('k', 5)];
        let a = rand_t("phbk", &sizes, 20);
        let b = rand_t("phbj", &sizes, 21);
        let spec: EinsumSpec = "phbk,phbj->hbjk".parse().unwrap();
        let want = crate::contract::contract(&spec, &a, &b, &Layout::row_major(4)).unwrap();
        // compile the plan by hand the way core::arena does
        let class = spec.classify().unwrap();
        let gs = spec.gemm_sizes(a.shape(), b.shape()).unwrap();
        let size_of =
            |ax: Axis| -> usize { a.shape().size(ax).or_else(|_| b.shape().size(ax)).unwrap() };
        let gather_dims = |groups: &[Axis], t: &Tensor| {
            let total: usize = groups.iter().map(|&ax| size_of(ax)).product();
            let mut dims = Vec::new();
            let mut ps = total;
            for &ax in groups {
                let len = size_of(ax);
                ps /= len;
                dims.push((len, t.strides()[t.shape().index_of(ax).unwrap()], ps));
            }
            dims
        };
        let a_groups: Vec<Axis> = class
            .batch
            .iter()
            .chain(&class.m)
            .chain(&class.k)
            .copied()
            .collect();
        let b_groups: Vec<Axis> = class
            .batch
            .iter()
            .chain(&class.k)
            .chain(&class.n)
            .copied()
            .collect();
        let c_groups: Vec<Axis> = class
            .batch
            .iter()
            .chain(&class.m)
            .chain(&class.n)
            .copied()
            .collect();
        let c_total: usize = c_groups.iter().map(|&ax| size_of(ax)).product();
        let mut c_dims = Vec::new();
        let mut ps = c_total;
        for &ax in &c_groups {
            let len = size_of(ax);
            ps /= len;
            let os = want.strides()[want.shape().index_of(ax).unwrap()];
            c_dims.push((len, ps, os));
        }
        let plan = ContractPlan {
            a_dims: gather_dims(&a_groups, &a),
            b_dims: gather_dims(&b_groups, &b),
            c_dims,
            batch: gs.batch,
            m: gs.m,
            n: gs.n,
            k: gs.k,
        };
        let mut out = vec![0.0f32; want.len()];
        let mut ap = vec![0.0f32; plan.a_words()];
        let mut bp = vec![0.0f32; plan.b_words()];
        let mut cp = vec![0.0f32; plan.c_words()];
        contract_into(
            &plan,
            a.data(),
            b.data(),
            &mut out,
            &mut ap,
            &mut bp,
            &mut cp,
        );
        assert_eq!(out.as_slice(), want.data());
    }

    #[test]
    fn epilogue_plan_swaps_the_attention_contraction_into_identity() {
        let sizes = [('p', 3), ('h', 2), ('b', 2), ('j', 4), ('k', 5)];
        let kk = rand_t("phbk", &sizes, 30);
        let qq = rand_t("phbj", &sizes, 31);
        let out = Shape::from_spec("hbjk", &sizes).unwrap();
        let spec: EinsumSpec = "phbk,phbj->hbjk".parse().unwrap();
        // natural order scatters (j and k transpose); the swap is identity
        let ep = epilogue_contract_plan(
            &spec,
            kk.shape(),
            kk.strides(),
            qq.shape(),
            qq.strides(),
            &out,
        )
        .expect("QKT must compile via the swapped order");
        assert!(ep.swapped);
        assert_eq!(ep.plan.m, 4); // j — the query axis becomes M
        assert_eq!(ep.plan.n, 5); // k — the softmax axis becomes N
        assert_eq!(ep.plan.batch, 4); // h·b
        assert_eq!(ep.plan.k, 3);
        // a genuinely scattered output order compiles under neither order
        let bad = Shape::from_spec("kjbh", &sizes).unwrap();
        assert!(epilogue_contract_plan(
            &spec,
            kk.shape(),
            kk.strides(),
            qq.shape(),
            qq.strides(),
            &bad,
        )
        .is_none());
    }

    /// The tiled mega-kernel against the unfused contract-then-fused-
    /// kernel sequence, bitwise, including the dropout RNG stream.
    #[test]
    fn contract_epilogue_tiled_matches_unfused_bitwise() {
        let sizes = [('p', 3), ('h', 2), ('b', 2), ('j', 4), ('k', 5)];
        let kk = rand_t("phbk", &sizes, 32);
        let qq = rand_t("phbj", &sizes, 33);
        let spec: EinsumSpec = "phbk,phbj->hbjk".parse().unwrap();
        let out_shape = Shape::from_spec("hbjk", &sizes).unwrap();
        let ep = epilogue_contract_plan(
            &spec,
            kk.shape(),
            kk.strides(),
            qq.shape(),
            qq.strides(),
            &out_shape,
        )
        .unwrap();
        let total = out_shape.num_elements();
        let (p, scaler) = (0.3f32, 0.5f32);
        let causal = Some(CausalMap {
            div: 1,
            len: 4,
            base: 0,
        });

        // unfused: full contraction, then the SM kernel over the container
        let beta = crate::contract::contract(&spec, &kk, &qq, &Layout::row_major(4)).unwrap();
        let lane = LaneGeom {
            pre: total / 5,
            len: 5,
            post: 1,
        };
        let mut rng_a = StdRng::seed_from_u64(9);
        let (mut sm_a, mut al_a, mut mk_a) = (vec![0.0; total], vec![0.0; total], vec![0.0; total]);
        sm_into(
            beta.data(),
            scaler,
            lane,
            causal,
            p,
            &mut rng_a,
            &mut sm_a,
            &mut al_a,
            &mut mk_a,
        );

        for licensed in [false, true] {
            let mut rng_b = StdRng::seed_from_u64(9);
            let (mut sm_b, mut al_b, mut mk_b) =
                (vec![0.0; total], vec![0.0; total], vec![0.0; total]);
            let mut ap = vec![0.0; ep.plan.a_words()];
            let mut bp = vec![0.0; ep.plan.b_words()];
            let mut ct = vec![0.0; ep.plan.m * ep.plan.n];
            let mut epi = TileEpilogue::Softmax {
                scaler,
                causal,
                softmax: &mut sm_b,
                alpha: &mut al_b,
                mask: &mut mk_b,
            };
            // swapped: the query operand feeds the A pack
            contract_epilogue_tiled(
                &ep.plan,
                ep.plan.m,
                qq.data(),
                kk.data(),
                &mut ap,
                &mut bp,
                &mut ct,
                p,
                &mut rng_b,
                licensed,
                &mut epi,
            );
            assert_bits("softmax", &sm_a, &sm_b);
            assert_bits("alpha", &al_a, &al_b);
            assert_bits("mask", &mk_a, &mk_b);
            assert_same_rng_state(&mut rng_a.clone(), &mut rng_b, &format!("sm {licensed}"));
        }
    }

    /// Row-tiled bias epilogues (BRD / BDR shape: batch-free, bias on M)
    /// against the unfused sequence, bitwise, at several tile heights.
    #[test]
    fn row_tiled_bias_epilogues_match_unfused_bitwise() {
        let sizes = [('u', 6), ('i', 4), ('b', 2), ('j', 5)];
        let w = rand_t("ui", &sizes, 40);
        let x = rand_t("ibj", &sizes, 41);
        let bias = rand_t("u", &sizes, 42);
        let spec: EinsumSpec = "ui,ibj->ubj".parse().unwrap();
        let out_shape = Shape::from_spec("ubj", &sizes).unwrap();
        let ep = epilogue_contract_plan(
            &spec,
            w.shape(),
            w.strides(),
            x.shape(),
            x.strides(),
            &out_shape,
        )
        .unwrap();
        assert!(!ep.swapped);
        assert_eq!((ep.plan.batch, ep.plan.m), (1, 6));
        let total = out_shape.num_elements();
        let n = ep.plan.n;
        let p = 0.25f32;
        let residual = rand_t("ubj", &sizes, 43);

        // unfused reference: full contraction, then the fused kernel
        let mm = crate::contract::contract(&spec, &w, &x, &Layout::row_major(3)).unwrap();
        let bmap = BiasMap {
            dims: vec![(n, 6, 1)],
        };
        let mut rng_a = StdRng::seed_from_u64(11);
        let (mut pre_a, mut out_a, mut mk_a) =
            (vec![0.0; total], vec![0.0; total], vec![0.0; total]);
        brd_act_into(
            mm.data(),
            bias.data(),
            &bmap,
            ActivationKind::Gelu,
            p,
            &mut rng_a,
            &mut pre_a,
            &mut out_a,
            &mut mk_a,
        );
        let mut rng_ar = StdRng::seed_from_u64(13);
        let (mut mkr_a, mut outr_a) = (vec![0.0; total], vec![0.0; total]);
        bdr_into(
            mm.data(),
            bias.data(),
            &bmap,
            residual.data(),
            p,
            &mut rng_ar,
            &mut mkr_a,
            &mut outr_a,
        );

        for tile_rows in [1usize, 2, 4, 6] {
            for licensed in [false, true] {
                let mut ap = vec![0.0; ep.plan.a_words()];
                let mut bp = vec![0.0; ep.plan.b_words()];
                let mut ct = vec![0.0; tile_rows * n];
                let mut rng_b = StdRng::seed_from_u64(11);
                let (mut pre_b, mut out_b, mut mk_b) =
                    (vec![0.0; total], vec![0.0; total], vec![0.0; total]);
                let mut epi = TileEpilogue::BiasActDrop {
                    bias: bias.data(),
                    bmap: &bmap,
                    kind: ActivationKind::Gelu,
                    pre_activation: &mut pre_b,
                    out: &mut out_b,
                    mask: &mut mk_b,
                };
                contract_epilogue_tiled(
                    &ep.plan,
                    tile_rows,
                    w.data(),
                    x.data(),
                    &mut ap,
                    &mut bp,
                    &mut ct,
                    p,
                    &mut rng_b,
                    licensed,
                    &mut epi,
                );
                assert_bits("pre_activation", &pre_a, &pre_b);
                assert_bits("brd out", &out_a, &out_b);
                assert_bits("brd mask", &mk_a, &mk_b);
                assert_same_rng_state(&mut rng_a.clone(), &mut rng_b, "brd");

                let mut rng_br = StdRng::seed_from_u64(13);
                let (mut mkr_b, mut outr_b) = (vec![0.0; total], vec![0.0; total]);
                let mut epi = TileEpilogue::BiasDropResidual {
                    bias: bias.data(),
                    bmap: &bmap,
                    residual: residual.data(),
                    mask: &mut mkr_b,
                    out: &mut outr_b,
                };
                contract_epilogue_tiled(
                    &ep.plan,
                    tile_rows,
                    w.data(),
                    x.data(),
                    &mut ap,
                    &mut bp,
                    &mut ct,
                    p,
                    &mut rng_br,
                    licensed,
                    &mut epi,
                );
                assert_bits("bdr mask", &mkr_a, &mkr_b);
                assert_bits("bdr out", &outr_a, &outr_b);
                assert_same_rng_state(&mut rng_ar.clone(), &mut rng_br, "bdr");
            }
        }
    }

    #[test]
    fn copy_tensor_into_handles_permuted_layouts() {
        let t = rand_t("bjk", &SIZES, 22);
        let tp = t.relayout(&Layout::from_axis_order(t.shape(), "kbj").unwrap());
        let mut dst = vec![0.0f32; t.len()];
        copy_tensor_into(&tp, &mut dst);
        assert_eq!(dst.as_slice(), t.data());
        copy_tensor_into(&t, &mut dst);
        assert_eq!(dst.as_slice(), t.data());
    }

    fn assert_bits(name: &str, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len(), "{name}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}: word {i}: {x} vs {y}");
        }
    }

    /// Every unchecked twin against its checked original, bitwise, at
    /// dims small enough for Miri — this is the test CI interprets under
    /// `cargo miri test` to prove the `get_unchecked` paths UB-free.
    /// Broad randomized coverage lives in `tests/unchecked_equivalence`.
    #[test]
    fn unchecked_twins_match_checked_bitwise() {
        let lane = LaneGeom {
            pre: 3,
            len: 4,
            post: 1,
        };
        let n = lane.elements();
        let mut rng = StdRng::seed_from_u64(77);
        let dist = Uniform::new(-2.0f32, 2.0);
        let draw = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            use rand::distributions::Distribution;
            (0..n).map(|_| dist.sample(rng)).collect()
        };
        let x = draw(&mut rng, n);
        let bias = draw(&mut rng, lane.len);
        let residual = draw(&mut rng, n);
        let gamma = draw(&mut rng, lane.len);
        let beta = draw(&mut rng, lane.len);
        let map = BiasMap {
            dims: vec![(1, lane.len, 1)],
        };
        let causal = CausalMap {
            div: 1,
            len: 3,
            base: 0,
        };

        for p in [0.0f32, 0.4] {
            let mut c = vec![vec![0.0f32; n]; 5];
            let mut u = vec![vec![7.0f32; n]; 5];

            bias_add_into(&x, &bias, &map, &mut c[0]);
            unsafe { bias_add_into_unchecked(&x, &bias, &map, &mut u[0]) };
            assert_bits("bias_add", &c[0], &u[0]);

            softmax_scaled_into(&x, 0.5, lane, &mut c[0]);
            unsafe { softmax_scaled_into_unchecked(&x, 0.5, lane, &mut u[0]) };
            assert_bits("softmax_scaled", &c[0], &u[0]);

            softmax_causal_into(&x, 0.5, lane, causal, &mut c[0]);
            unsafe { softmax_causal_into_unchecked(&x, 0.5, lane, causal, &mut u[0]) };
            assert_bits("softmax_causal", &c[0], &u[0]);

            let mut r1 = StdRng::seed_from_u64(5);
            let mut r2 = StdRng::seed_from_u64(5);
            #[allow(clippy::indexing_slicing)]
            {
                let [s1, a1, m1, ..] = &mut c[..] else {
                    unreachable!()
                };
                sm_into(&x, 0.5, lane, Some(causal), p, &mut r1, s1, a1, m1);
                let [s2, a2, m2, ..] = &mut u[..] else {
                    unreachable!()
                };
                unsafe { sm_into_unchecked(&x, 0.5, lane, Some(causal), p, &mut r2, s2, a2, m2) };
            }
            assert_bits("sm softmax", &c[0], &u[0]);
            assert_bits("sm alpha", &c[1], &u[1]);
            assert_bits("sm mask", &c[2], &u[2]);

            let (mut mu1, mut is1) = (vec![0.0f32; lane.pre], vec![0.0f32; lane.pre]);
            let (mut mu2, mut is2) = (vec![7.0f32; lane.pre], vec![7.0f32; lane.pre]);
            layernorm_into(&x, &gamma, &beta, lane, &mut c[0], &mut mu1, &mut is1);
            unsafe {
                layernorm_into_unchecked(&x, &gamma, &beta, lane, &mut u[0], &mut mu2, &mut is2)
            };
            assert_bits("layernorm out", &c[0], &u[0]);
            assert_bits("layernorm mean", &mu1, &mu2);
            assert_bits("layernorm inv_std", &is1, &is2);

            let mut r1 = StdRng::seed_from_u64(6);
            let mut r2 = StdRng::seed_from_u64(6);
            {
                let [m1, li1, o1, ..] = &mut c[..] else {
                    unreachable!()
                };
                bdrln_into(
                    &x, &bias, &map, &residual, &gamma, &beta, lane, p, &mut r1, m1, li1, o1,
                    &mut mu1, &mut is1,
                );
                let [m2, li2, o2, ..] = &mut u[..] else {
                    unreachable!()
                };
                unsafe {
                    bdrln_into_unchecked(
                        &x, &bias, &map, &residual, &gamma, &beta, lane, p, &mut r2, m2, li2, o2,
                        &mut mu2, &mut is2,
                    )
                };
            }
            for (tag, i) in [("mask", 0), ("ln_input", 1), ("out", 2)] {
                assert_bits(&format!("bdrln {tag}"), &c[i], &u[i]);
            }
            assert_bits("bdrln mean", &mu1, &mu2);
            assert_bits("bdrln inv_std", &is1, &is2);

            let mut r1 = StdRng::seed_from_u64(7);
            let mut r2 = StdRng::seed_from_u64(7);
            {
                let [z1, o1, m1, ..] = &mut c[..] else {
                    unreachable!()
                };
                brd_act_into(
                    &x,
                    &bias,
                    &map,
                    ActivationKind::Gelu,
                    p,
                    &mut r1,
                    z1,
                    o1,
                    m1,
                );
                let [z2, o2, m2, ..] = &mut u[..] else {
                    unreachable!()
                };
                unsafe {
                    brd_act_into_unchecked(
                        &x,
                        &bias,
                        &map,
                        ActivationKind::Gelu,
                        p,
                        &mut r2,
                        z2,
                        o2,
                        m2,
                    )
                };
            }
            for (tag, i) in [("pre_activation", 0), ("out", 1), ("mask", 2)] {
                assert_bits(&format!("brd {tag}"), &c[i], &u[i]);
            }

            let mut r1 = StdRng::seed_from_u64(8);
            let mut r2 = StdRng::seed_from_u64(8);
            {
                let [m1, o1, ..] = &mut c[..] else {
                    unreachable!()
                };
                bdr_into(&x, &bias, &map, &residual, p, &mut r1, m1, o1);
                let [m2, o2, ..] = &mut u[..] else {
                    unreachable!()
                };
                unsafe { bdr_into_unchecked(&x, &bias, &map, &residual, p, &mut r2, m2, o2) };
            }
            assert_bits("bdr mask", &c[0], &u[0]);
            assert_bits("bdr out", &c[1], &u[1]);
        }
    }

    /// The locally-certified dispatchers run the licensed path exactly
    /// when the lane geometry discharges the twin's obligations.
    #[test]
    fn dispatchers_license_only_unit_stride_lanes() {
        let unit = LaneGeom {
            pre: 2,
            len: 3,
            post: 1,
        };
        let strided = LaneGeom {
            pre: 2,
            len: 3,
            post: 2,
        };
        let x = vec![0.5f32; strided.elements()];
        let mut out = vec![0.0f32; strided.elements()];
        assert!(softmax_scaled_into_dispatch(
            &x[..unit.elements()],
            1.0,
            unit,
            &mut out[..unit.elements()]
        ));
        assert!(!softmax_scaled_into_dispatch(&x, 1.0, strided, &mut out));
        let (gamma, beta) = (vec![1.0f32; 3], vec![0.0f32; 3]);
        let (mut mu, mut is) = (vec![0.0f32; 4], vec![0.0f32; 4]);
        assert!(layernorm_into_dispatch(
            &x[..unit.elements()],
            &gamma,
            &beta,
            unit,
            &mut out[..unit.elements()],
            &mut mu,
            &mut is
        ));
        assert!(!layernorm_into_dispatch(
            &x, &gamma, &beta, strided, &mut out, &mut mu, &mut is
        ));
    }
}
