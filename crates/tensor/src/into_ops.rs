//! Zero-allocation kernel variants that execute into caller-provided
//! buffers.
//!
//! Every forward kernel the schedule interpreter dispatches has a `*_into`
//! twin here that reads dense **row-major** slices and writes dense
//! row-major slices, allocating nothing. They are the execution layer of
//! the arena interpreter (`core::arena`): the planner colors each logical
//! container into an offset of one preallocated slab, and these kernels
//! run directly on the slab views.
//!
//! Arithmetic is mirrored statement-for-statement from the allocating
//! kernels in [`crate::fused`], [`crate::ops`] and [`crate::contract`], so
//! with dropout disabled the results are **bitwise identical** to the
//! tensor-returning path — the property the arena equivalence tests pin.
//!
//! All geometry (lane decompositions, bias broadcast maps, einsum pack
//! descriptors) is precomputed by the caller; the kernels only walk flat
//! offsets. Helpers:
//!
//! * [`LaneGeom`] — decomposition of a row-major tensor into lanes along
//!   one axis (the sweep order of `for_each_outer`),
//! * [`BiasMap`] — broadcast map from a flat output offset to a bias
//!   offset,
//! * [`CausalMap`] — recovery of the query index from a lane number for
//!   masked softmax,
//! * [`ContractPlan`] — precompiled gather/GEMM/scatter descriptor for a
//!   two-operand einsum.

use rand::Rng;

use crate::contract::copy_strided;
use crate::matmul::sgemm;
use crate::ops::elementwise::ActivationKind;
use crate::ops::layernorm::EPS;
use crate::tensor::Tensor;

/// Lane decomposition of a dense row-major buffer along the axis at
/// logical position `ai` of a shape with sizes `s`: `pre = Π s[..ai]`,
/// `len = s[ai]`, `post = Π s[ai+1..]`.
///
/// Lanes are visited `pre`-major / `post`-minor — exactly the order
/// `for_each_outer` visits them on a row-major tensor — so per-lane
/// statistics land in the same order as the allocating kernels push them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneGeom {
    /// Product of the axis sizes before the swept axis.
    pub pre: usize,
    /// Extent of the swept axis.
    pub len: usize,
    /// Product of the axis sizes after the swept axis (also the element
    /// stride of the swept axis in a row-major buffer).
    pub post: usize,
}

impl LaneGeom {
    /// Builds the decomposition for logical axis position `ai` of a shape
    /// with the given sizes.
    pub fn new(sizes: &[usize], ai: usize) -> LaneGeom {
        LaneGeom {
            pre: sizes[..ai].iter().product(),
            len: sizes[ai],
            post: sizes[ai + 1..].iter().product(),
        }
    }

    /// Number of lanes.
    pub fn lanes(self) -> usize {
        self.pre * self.post
    }

    /// Total number of elements.
    pub fn elements(self) -> usize {
        self.pre * self.len * self.post
    }
}

/// Broadcast map from a flat row-major offset in the output to a flat
/// offset in a (smaller) bias buffer. One entry per bias axis:
/// `(x_stride, x_size, bias_stride)`, where `x_stride`/`x_size` describe
/// the axis in the output's row-major geometry and `bias_stride` is the
/// axis's row-major stride within the bias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiasMap {
    /// `(x_stride, x_size, bias_stride)` triples, one per bias axis.
    pub dims: Vec<(usize, usize, usize)>,
}

impl BiasMap {
    /// Bias offset for the element at flat output offset `f`.
    #[inline]
    pub fn offset(&self, f: usize) -> usize {
        let mut off = 0usize;
        for &(xs, xn, bs) in &self.dims {
            off += ((f / xs) % xn) * bs;
        }
        off
    }
}

/// Recovers the causal query index from the `pre` part of a lane number:
/// `q = (pre / div) % len`. The query axis always precedes the softmax
/// axis logically, so it is always a `pre` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalMap {
    /// Product of the pre-axis sizes strictly between the query axis and
    /// the softmax axis.
    pub div: usize,
    /// Extent of the query axis.
    pub len: usize,
}

impl CausalMap {
    /// Query index for the lane with pre-part `pre`.
    #[inline]
    pub fn query(self, pre: usize) -> usize {
        (pre / self.div) % self.len
    }
}

/// Precompiled two-operand einsum: strided gather descriptors for both
/// operands, collapsed GEMM sizes, and the scatter descriptor for the
/// output. Dims are `(len, src_stride, dst_stride)` triples outermost
/// first, as consumed by the recursive strided copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractPlan {
    /// Gather dims for operand A: `(len, a_stride, pack_stride)`.
    pub a_dims: Vec<(usize, usize, usize)>,
    /// Gather dims for operand B: `(len, b_stride, pack_stride)`.
    pub b_dims: Vec<(usize, usize, usize)>,
    /// Scatter dims for the output: `(len, pack_stride, out_stride)`.
    pub c_dims: Vec<(usize, usize, usize)>,
    /// Collapsed batch extent.
    pub batch: usize,
    /// Collapsed GEMM M.
    pub m: usize,
    /// Collapsed GEMM N.
    pub n: usize,
    /// Collapsed GEMM K.
    pub k: usize,
}

impl ContractPlan {
    /// Pack-buffer words needed for operand A.
    pub fn a_words(&self) -> usize {
        self.batch * self.m * self.k
    }

    /// Pack-buffer words needed for operand B.
    pub fn b_words(&self) -> usize {
        self.batch * self.k * self.n
    }

    /// Pack-buffer words needed for the output.
    pub fn c_words(&self) -> usize {
        self.batch * self.m * self.n
    }
}

/// Executes a precompiled contraction: gathers `a`/`b` into the pack
/// scratch, runs one serial GEMM per batch slice, and scatters the result
/// into `out`. The batch loop is intentionally serial — arena steps are
/// already parallelized across waves, and per-slice GEMMs are bitwise
/// identical to the threaded `batched_sgemm` either way.
///
/// # Panics
///
/// Panics if a scratch slice is smaller than the plan requires.
pub fn contract_into(
    plan: &ContractPlan,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    a_pack: &mut [f32],
    b_pack: &mut [f32],
    c_pack: &mut [f32],
) {
    let (aw, bw, cw) = (plan.a_words(), plan.b_words(), plan.c_words());
    let a_pack = &mut a_pack[..aw];
    let b_pack = &mut b_pack[..bw];
    let c_pack = &mut c_pack[..cw];
    copy_strided(&plan.a_dims, a, 0, a_pack, 0);
    copy_strided(&plan.b_dims, b, 0, b_pack, 0);
    for v in c_pack.iter_mut() {
        *v = 0.0;
    }
    let (m, n, k) = (plan.m, plan.n, plan.k);
    for g in 0..plan.batch {
        sgemm(
            m,
            n,
            k,
            &a_pack[g * m * k..(g + 1) * m * k],
            &b_pack[g * k * n..(g + 1) * k * n],
            &mut c_pack[g * m * n..(g + 1) * m * n],
        );
    }
    copy_strided(&plan.c_dims, c_pack, 0, out, 0);
}

/// Copies a tensor's logical contents into a dense row-major destination.
/// Row-major sources are a single `memcpy`; other layouts are walked in
/// logical order.
///
/// # Panics
///
/// Panics if `dst` is shorter than the tensor or the tensor's rank
/// exceeds 16.
pub fn copy_tensor_into(t: &Tensor, dst: &mut [f32]) {
    let n = t.len();
    let dst = &mut dst[..n];
    if t.layout().is_row_major() {
        dst.copy_from_slice(t.data());
        return;
    }
    let rank = t.shape().rank();
    assert!(rank <= 16, "copy_tensor_into supports rank <= 16");
    let mut idx = [0usize; 16];
    let idx = &mut idx[..rank];
    for d in dst.iter_mut() {
        *d = t.data()[t.offset(idx)];
        t.advance(idx);
    }
}

/// `out = alpha · x`.
pub fn scale_into(x: &[f32], alpha: f32, out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = alpha * v;
    }
}

/// `out = a + b` (the residual connection).
pub fn add_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `out = activation(x)`.
pub fn activate_into(x: &[f32], kind: ActivationKind, out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = kind.apply(v);
    }
}

/// `out = x + bias` with the bias broadcast through `map`.
pub fn bias_add_into(x: &[f32], bias: &[f32], map: &BiasMap, out: &mut [f32]) {
    for (f, (o, &v)) in out.iter_mut().zip(x).enumerate() {
        *o = v + bias[map.offset(f)];
    }
}

/// Dropout with `p > 0`: one mask draw per element, survivors scaled by
/// `1/(1-p)`. Mirrors the allocating kernel's draw order (flat, every
/// element).
pub fn dropout_into<R: Rng + ?Sized>(
    x: &[f32],
    p: f32,
    rng: &mut R,
    out: &mut [f32],
    mask: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    for ((o, m), &v) in out.iter_mut().zip(mask.iter_mut()).zip(x) {
        let mv = if rng.gen::<f32>() < p {
            0.0
        } else {
            keep_scale
        };
        *m = mv;
        *o = v * mv;
    }
}

/// Identity dropout (`p == 0`): copies the input and fills the mask with
/// ones, drawing nothing.
pub fn dropout_disabled_into(x: &[f32], out: &mut [f32], mask: &mut [f32]) {
    out[..x.len()].copy_from_slice(x);
    for m in mask[..x.len()].iter_mut() {
        *m = 1.0;
    }
}

/// `out = softmax(scaler · x)` along the lane axis — the unfused
/// scale-then-softmax pair in one sweep, numerically identical to scaling
/// into a temporary first (a single f32 multiply either way).
pub fn softmax_scaled_into(x: &[f32], scaler: f32, lane: LaneGeom, out: &mut [f32]) {
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let mut mx = f32::NEG_INFINITY;
            for v in 0..len {
                mx = mx.max(scaler * x[base + v * stride]);
            }
            let mut sum = 0.0f32;
            for v in 0..len {
                let e = (scaler * x[base + v * stride] - mx).exp();
                out[base + v * stride] = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for v in 0..len {
                out[base + v * stride] *= inv;
            }
        }
    }
}

/// Fused SM: `alpha = dropout(softmax(scaler · x))` along the lane axis,
/// with the pre-dropout softmax and the mask saved. `causal` masks key
/// positions beyond the lane's query index (the decoder variant); masked
/// positions get zero softmax/alpha/mask entries, exactly like the
/// allocating kernel.
#[allow(clippy::too_many_arguments)]
pub fn sm_into<R: Rng + ?Sized>(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    causal: Option<CausalMap>,
    p: f32,
    rng: &mut R,
    softmax: &mut [f32],
    alpha: &mut [f32],
    mask: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let visible = match causal {
                Some(c) => (c.query(pre) + 1).min(len),
                None => len,
            };
            let mut mx = f32::NEG_INFINITY;
            for v in 0..visible {
                mx = mx.max(scaler * x[base + v * stride]);
            }
            let mut sum = 0.0f32;
            for v in 0..visible {
                let e = (scaler * x[base + v * stride] - mx).exp();
                softmax[base + v * stride] = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for v in 0..len {
                let off = base + v * stride;
                if v < visible {
                    let y = softmax[off] * inv;
                    softmax[off] = y;
                    let m = if p > 0.0 && rng.gen::<f32>() < p {
                        0.0
                    } else {
                        keep_scale
                    };
                    mask[off] = m;
                    alpha[off] = y * m;
                } else {
                    softmax[off] = 0.0;
                    mask[off] = 0.0;
                    alpha[off] = 0.0;
                }
            }
        }
    }
}

/// The unfused masked softmax: the causal softmax alone (the allocating
/// interpreter runs the causal SM kernel with dropout pinned off and keeps
/// only its softmax output).
pub fn softmax_causal_into(
    x: &[f32],
    scaler: f32,
    lane: LaneGeom,
    causal: CausalMap,
    out: &mut [f32],
) {
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let visible = (causal.query(pre) + 1).min(len);
            let mut mx = f32::NEG_INFINITY;
            for v in 0..visible {
                mx = mx.max(scaler * x[base + v * stride]);
            }
            let mut sum = 0.0f32;
            for v in 0..visible {
                let e = (scaler * x[base + v * stride] - mx).exp();
                out[base + v * stride] = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for v in 0..len {
                let off = base + v * stride;
                if v < visible {
                    out[off] *= inv;
                } else {
                    out[off] = 0.0;
                }
            }
        }
    }
}

/// Layer normalization along the lane axis with learned `gamma`/`beta`
/// (dense 1-D, indexed by the lane position). Per-lane `mean`/`inv_std`
/// are written in lane order, matching the allocating kernel's stats
/// vectors.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_into(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    lane: LaneGeom,
    out: &mut [f32],
    mean_out: &mut [f32],
    inv_std_out: &mut [f32],
) {
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let l = pre * lane.post + post;
            let mut sum = 0.0f32;
            let mut sq = 0.0f32;
            for v in 0..len {
                let val = x[base + v * stride];
                sum += val;
                sq += val * val;
            }
            let mean = sum / len as f32;
            let var = (sq / len as f32 - mean * mean).max(0.0);
            let inv_std = 1.0 / (var + EPS).sqrt();
            mean_out[l] = mean;
            inv_std_out[l] = inv_std;
            for v in 0..len {
                let xhat = (x[base + v * stride] - mean) * inv_std;
                out[base + v * stride] = xhat * gamma[v] + beta[v];
            }
        }
    }
}

/// Fused BDRLN: `out = layernorm(dropout(x + bias) + residual)` along the
/// lane axis, saving the mask, the layer-norm input, and per-lane stats.
#[allow(clippy::too_many_arguments)]
pub fn bdrln_into<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    residual: &[f32],
    gamma: &[f32],
    beta: &[f32],
    lane: LaneGeom,
    p: f32,
    rng: &mut R,
    mask: &mut [f32],
    ln_input: &mut [f32],
    out: &mut [f32],
    mean_out: &mut [f32],
    inv_std_out: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    let (len, stride) = (lane.len, lane.post);
    for pre in 0..lane.pre {
        for post in 0..lane.post {
            let base = pre * len * stride + post;
            let l = pre * lane.post + post;
            let mut sum = 0.0f32;
            let mut sq = 0.0f32;
            for v in 0..len {
                let off = base + v * stride;
                let z = x[off] + bias[bmap.offset(off)];
                let m = if p > 0.0 && rng.gen::<f32>() < p {
                    0.0
                } else {
                    keep_scale
                };
                let li = z * m + residual[off];
                mask[off] = m;
                ln_input[off] = li;
                sum += li;
                sq += li * li;
            }
            let mean = sum / len as f32;
            let var = (sq / len as f32 - mean * mean).max(0.0);
            let inv_std = 1.0 / (var + EPS).sqrt();
            mean_out[l] = mean;
            inv_std_out[l] = inv_std;
            for v in 0..len {
                let off = base + v * stride;
                let xhat = (ln_input[off] - mean) * inv_std;
                out[off] = xhat * gamma[v] + beta[v];
            }
        }
    }
}

/// Fused BRD: `out = dropout(activation(x + bias))`, saving the
/// pre-activation and the mask.
#[allow(clippy::too_many_arguments)]
pub fn brd_act_into<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    kind: ActivationKind,
    p: f32,
    rng: &mut R,
    pre_activation: &mut [f32],
    out: &mut [f32],
    mask: &mut [f32],
) {
    let keep_scale = 1.0 / (1.0 - p);
    for (f, &v) in x.iter().enumerate() {
        let z = v + bias[bmap.offset(f)];
        let r = kind.apply(z);
        let m = if p > 0.0 && rng.gen::<f32>() < p {
            0.0
        } else {
            keep_scale
        };
        pre_activation[f] = z;
        mask[f] = m;
        out[f] = r * m;
    }
}

/// Fused BDR (no norm): `out = dropout(x + bias) + residual`, saving the
/// mask. With `p == 0` the mask multiply is skipped entirely, matching
/// the allocating path's identity dropout.
#[allow(clippy::too_many_arguments)]
pub fn bdr_into<R: Rng + ?Sized>(
    x: &[f32],
    bias: &[f32],
    bmap: &BiasMap,
    residual: &[f32],
    p: f32,
    rng: &mut R,
    mask: &mut [f32],
    out: &mut [f32],
) {
    if p > 0.0 {
        let keep_scale = 1.0 / (1.0 - p);
        for (f, &v) in x.iter().enumerate() {
            let m = if rng.gen::<f32>() < p {
                0.0
            } else {
                keep_scale
            };
            mask[f] = m;
            out[f] = (v + bias[bmap.offset(f)]) * m + residual[f];
        }
    } else {
        for (f, &v) in x.iter().enumerate() {
            mask[f] = 1.0;
            out[f] = (v + bias[bmap.offset(f)]) + residual[f];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{Axis, Shape};
    use crate::einsum::EinsumSpec;
    use crate::fused;
    use crate::layout::Layout;
    use crate::ops::elementwise::{bias_add, scale};
    use crate::ops::layernorm::layernorm;
    use crate::ops::softmax::softmax;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_t(spec: &str, sizes: &[(char, usize)], seed: u64) -> Tensor {
        let shape = Shape::from_spec(spec, sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::random(shape, &Uniform::new(-1.0, 1.0), &mut rng)
    }

    const SIZES: [(char, usize); 5] = [('b', 2), ('j', 3), ('k', 4), ('i', 5), ('u', 6)];

    fn lane_of(t: &Tensor, axis: char) -> LaneGeom {
        LaneGeom::new(t.shape().sizes(), t.shape().index_of(Axis(axis)).unwrap())
    }

    fn bmap_of(out: &Tensor, bias: &Tensor) -> BiasMap {
        let sizes = out.shape().sizes();
        let rm = Layout::row_major(sizes.len()).strides(out.shape());
        let brm = Layout::row_major(bias.shape().rank()).strides(bias.shape());
        let dims = bias
            .shape()
            .axes()
            .iter()
            .enumerate()
            .map(|(bi, &ax)| {
                let p = out.shape().index_of(ax).unwrap();
                (rm[p], sizes[p], brm[bi])
            })
            .collect();
        BiasMap { dims }
    }

    #[test]
    fn softmax_scaled_into_is_bitwise_equal() {
        let x = rand_t("bjk", &SIZES, 1);
        let expect = softmax(&scale(&x, 0.25), Axis('k')).unwrap();
        let mut out = vec![0.0f32; x.len()];
        softmax_scaled_into(x.data(), 0.25, lane_of(&x, 'k'), &mut out);
        assert_eq!(out.as_slice(), expect.data());
    }

    #[test]
    fn sm_into_matches_fused_sm_without_dropout() {
        let x = rand_t("bjk", &SIZES, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let want = fused::sm(&x, 0.5, Axis('k'), 0.0, &mut rng).unwrap();
        let n = x.len();
        let (mut s, mut a, mut m) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut rng2 = StdRng::seed_from_u64(9);
        sm_into(
            x.data(),
            0.5,
            lane_of(&x, 'k'),
            None,
            0.0,
            &mut rng2,
            &mut s,
            &mut a,
            &mut m,
        );
        assert_eq!(s.as_slice(), want.softmax.data());
        assert_eq!(a.as_slice(), want.alpha.data());
        assert_eq!(m.as_slice(), want.mask.data());
    }

    #[test]
    fn sm_into_causal_matches_fused_sm_causal() {
        let sizes = [('b', 2), ('j', 4), ('k', 4)];
        let x = rand_t("bjk", &sizes, 3);
        let mut rng = StdRng::seed_from_u64(10);
        let want = fused::sm_causal(&x, 0.7, Axis('j'), Axis('k'), 0.3, &mut rng).unwrap();
        let n = x.len();
        let (mut s, mut a, mut m) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut rng2 = StdRng::seed_from_u64(10);
        // query axis j sits immediately before k: div = 1, len = 4
        sm_into(
            x.data(),
            0.7,
            lane_of(&x, 'k'),
            Some(CausalMap { div: 1, len: 4 }),
            0.3,
            &mut rng2,
            &mut s,
            &mut a,
            &mut m,
        );
        assert_eq!(s.as_slice(), want.softmax.data());
        assert_eq!(a.as_slice(), want.alpha.data());
        assert_eq!(m.as_slice(), want.mask.data());
    }

    #[test]
    fn softmax_causal_into_matches_sm_causal_softmax() {
        let sizes = [('b', 2), ('j', 4), ('k', 4)];
        let x = rand_t("bjk", &sizes, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let want = fused::sm_causal(&x, 1.0, Axis('j'), Axis('k'), 0.0, &mut rng).unwrap();
        let mut out = vec![0.0f32; x.len()];
        softmax_causal_into(
            x.data(),
            1.0,
            lane_of(&x, 'k'),
            CausalMap { div: 1, len: 4 },
            &mut out,
        );
        assert_eq!(out.as_slice(), want.softmax.data());
    }

    #[test]
    fn layernorm_into_matches_with_stats() {
        let x = rand_t("bji", &SIZES, 5);
        let gamma = rand_t("i", &SIZES, 6);
        let beta = rand_t("i", &SIZES, 7);
        let (want, stats) = layernorm(&x, Axis('i'), &gamma, &beta).unwrap();
        let lane = lane_of(&x, 'i');
        let mut out = vec![0.0f32; x.len()];
        let mut mean = vec![0.0f32; lane.lanes()];
        let mut inv = vec![0.0f32; lane.lanes()];
        layernorm_into(
            x.data(),
            gamma.data(),
            beta.data(),
            lane,
            &mut out,
            &mut mean,
            &mut inv,
        );
        assert_eq!(out.as_slice(), want.data());
        assert_eq!(mean.as_slice(), stats.mean.as_slice());
        assert_eq!(inv.as_slice(), stats.inv_std.as_slice());
    }

    #[test]
    fn bdrln_into_matches_fused() {
        let x = rand_t("bji", &SIZES, 8);
        let bias = rand_t("i", &SIZES, 9);
        let res = rand_t("bji", &SIZES, 10);
        let gamma = rand_t("i", &SIZES, 11);
        let beta = rand_t("i", &SIZES, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let want = fused::bdrln(&x, &bias, &res, &gamma, &beta, Axis('i'), 0.4, &mut rng).unwrap();
        let lane = lane_of(&x, 'i');
        let n = x.len();
        let (mut m, mut li, mut out) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut mean = vec![0.0f32; lane.lanes()];
        let mut inv = vec![0.0f32; lane.lanes()];
        let mut rng2 = StdRng::seed_from_u64(13);
        bdrln_into(
            x.data(),
            bias.data(),
            &bmap_of(&x, &bias),
            res.data(),
            gamma.data(),
            beta.data(),
            lane,
            0.4,
            &mut rng2,
            &mut m,
            &mut li,
            &mut out,
            &mut mean,
            &mut inv,
        );
        assert_eq!(m.as_slice(), want.mask.data());
        assert_eq!(li.as_slice(), want.ln_input.data());
        assert_eq!(out.as_slice(), want.out.data());
        assert_eq!(mean.as_slice(), want.stats.mean.as_slice());
        assert_eq!(inv.as_slice(), want.stats.inv_std.as_slice());
    }

    #[test]
    fn brd_act_into_matches_fused() {
        let x = rand_t("bju", &SIZES, 14);
        let bias = rand_t("u", &SIZES, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let want = fused::brd_act(&x, &bias, ActivationKind::Gelu, 0.2, &mut rng).unwrap();
        let n = x.len();
        let (mut pre, mut out, mut m) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut rng2 = StdRng::seed_from_u64(16);
        brd_act_into(
            x.data(),
            bias.data(),
            &bmap_of(&x, &bias),
            ActivationKind::Gelu,
            0.2,
            &mut rng2,
            &mut pre,
            &mut out,
            &mut m,
        );
        assert_eq!(pre.as_slice(), want.pre_activation.data());
        assert_eq!(out.as_slice(), want.out.data());
        assert_eq!(m.as_slice(), want.mask.data());
    }

    #[test]
    fn bias_add_into_matches_broadcast() {
        let x = rand_t("bjk", &SIZES, 17);
        let bias = rand_t("k", &SIZES, 18);
        let want = bias_add(&x, &bias).unwrap();
        let mut out = vec![0.0f32; x.len()];
        bias_add_into(x.data(), bias.data(), &bmap_of(&x, &bias), &mut out);
        assert_eq!(out.as_slice(), want.data());
        // multi-axis bias
        let bias2 = rand_t("jk", &SIZES, 19);
        let want2 = bias_add(&x, &bias2).unwrap();
        bias_add_into(x.data(), bias2.data(), &bmap_of(&x, &bias2), &mut out);
        assert_eq!(out.as_slice(), want2.data());
    }

    #[test]
    fn contract_into_matches_contract() {
        let sizes = [('p', 3), ('h', 2), ('b', 2), ('j', 4), ('k', 5)];
        let a = rand_t("phbk", &sizes, 20);
        let b = rand_t("phbj", &sizes, 21);
        let spec: EinsumSpec = "phbk,phbj->hbjk".parse().unwrap();
        let want = crate::contract::contract(&spec, &a, &b, &Layout::row_major(4)).unwrap();
        // compile the plan by hand the way core::arena does
        let class = spec.classify().unwrap();
        let gs = spec.gemm_sizes(a.shape(), b.shape()).unwrap();
        let size_of =
            |ax: Axis| -> usize { a.shape().size(ax).or_else(|_| b.shape().size(ax)).unwrap() };
        let gather_dims = |groups: &[Axis], t: &Tensor| {
            let total: usize = groups.iter().map(|&ax| size_of(ax)).product();
            let mut dims = Vec::new();
            let mut ps = total;
            for &ax in groups {
                let len = size_of(ax);
                ps /= len;
                dims.push((len, t.strides()[t.shape().index_of(ax).unwrap()], ps));
            }
            dims
        };
        let a_groups: Vec<Axis> = class
            .batch
            .iter()
            .chain(&class.m)
            .chain(&class.k)
            .copied()
            .collect();
        let b_groups: Vec<Axis> = class
            .batch
            .iter()
            .chain(&class.k)
            .chain(&class.n)
            .copied()
            .collect();
        let c_groups: Vec<Axis> = class
            .batch
            .iter()
            .chain(&class.m)
            .chain(&class.n)
            .copied()
            .collect();
        let c_total: usize = c_groups.iter().map(|&ax| size_of(ax)).product();
        let mut c_dims = Vec::new();
        let mut ps = c_total;
        for &ax in &c_groups {
            let len = size_of(ax);
            ps /= len;
            let os = want.strides()[want.shape().index_of(ax).unwrap()];
            c_dims.push((len, ps, os));
        }
        let plan = ContractPlan {
            a_dims: gather_dims(&a_groups, &a),
            b_dims: gather_dims(&b_groups, &b),
            c_dims,
            batch: gs.batch,
            m: gs.m,
            n: gs.n,
            k: gs.k,
        };
        let mut out = vec![0.0f32; want.len()];
        let mut ap = vec![0.0f32; plan.a_words()];
        let mut bp = vec![0.0f32; plan.b_words()];
        let mut cp = vec![0.0f32; plan.c_words()];
        contract_into(
            &plan,
            a.data(),
            b.data(),
            &mut out,
            &mut ap,
            &mut bp,
            &mut cp,
        );
        assert_eq!(out.as_slice(), want.data());
    }

    #[test]
    fn copy_tensor_into_handles_permuted_layouts() {
        let t = rand_t("bjk", &SIZES, 22);
        let tp = t.relayout(&Layout::from_axis_order(t.shape(), "kbj").unwrap());
        let mut dst = vec![0.0f32; t.len()];
        copy_tensor_into(&tp, &mut dst);
        assert_eq!(dst.as_slice(), t.data());
        copy_tensor_into(&t, &mut dst);
        assert_eq!(dst.as_slice(), t.data());
    }
}
