//! Einsum execution: pack → batched GEMM → unpack.
//!
//! Mirrors how the paper lowers every tensor contraction onto a cuBLAS
//! (batched) MMM call: operands are gathered into canonical `[batch, M, K]`
//! / `[batch, K, N]` buffers (this is where the input layout's access
//! pattern matters), multiplied with the tiled kernel from
//! [`crate::matmul`], and scattered into the requested output layout.

use crate::axes::{Axis, Shape};
use crate::einsum::EinsumSpec;
use crate::error::{Result, TensorError};
use crate::layout::Layout;
use crate::matmul::batched_sgemm;
use crate::tensor::Tensor;

/// Executes a one- or two-operand einsum, producing a row-major output.
///
/// # Errors
///
/// Returns an error if the spec fails to parse, the operand count does not
/// match the spec, shapes conflict, or the contraction does not map onto a
/// GEMM (see [`EinsumSpec::classify`]).
///
/// # Examples
///
/// ```
/// use xform_tensor::{einsum, Shape, Tensor};
/// let a = Tensor::from_fn(Shape::new([('i', 2), ('k', 3)]).unwrap(), |x| (x[0] + x[1]) as f32);
/// let b = Tensor::from_fn(Shape::new([('k', 3), ('j', 2)]).unwrap(), |x| (x[0] * x[1]) as f32);
/// let c = einsum("ik,kj->ij", &[&a, &b]).unwrap();
/// assert_eq!(c.shape().spec(), "ij");
/// ```
pub fn einsum(spec: &str, operands: &[&Tensor]) -> Result<Tensor> {
    let spec: EinsumSpec = spec.parse()?;
    match (spec.operands().len(), operands.len()) {
        (1, 1) => reduce(&spec, operands[0]),
        (2, 2) => {
            let rank = spec.output().len();
            contract(&spec, operands[0], operands[1], &Layout::row_major(rank))
        }
        (want, got) => Err(TensorError::ParseError(format!(
            "spec has {want} operands but {got} tensors were given"
        ))),
    }
}

/// Executes a two-operand contraction, writing the result in `out_layout`.
///
/// # Errors
///
/// Same conditions as [`einsum`].
pub fn contract(spec: &EinsumSpec, a: &Tensor, b: &Tensor, out_layout: &Layout) -> Result<Tensor> {
    let class = spec.classify()?;
    let sizes = spec.gemm_sizes(a.shape(), b.shape())?;
    let size_of = |ax: Axis| -> usize {
        a.shape()
            .size(ax)
            .or_else(|_| b.shape().size(ax))
            .expect("validated")
    };

    // Pack A as [batch..., m..., k...] and B as [batch..., k..., n...].
    let a_groups: Vec<Axis> = class
        .batch
        .iter()
        .chain(&class.m)
        .chain(&class.k)
        .copied()
        .collect();
    let b_groups: Vec<Axis> = class
        .batch
        .iter()
        .chain(&class.k)
        .chain(&class.n)
        .copied()
        .collect();
    let a_pack = gather(a, &a_groups, &size_of);
    let b_pack = gather(b, &b_groups, &size_of);

    let mut c_pack = vec![0.0f32; sizes.batch * sizes.m * sizes.n];
    batched_sgemm(
        sizes.batch,
        sizes.m,
        sizes.n,
        sizes.k,
        &a_pack,
        &b_pack,
        &mut c_pack,
    );

    // Scatter C [batch..., m..., n...] into the requested output layout.
    let out_shape = Shape::new(spec.output().iter().map(|&ax| (ax, size_of(ax))))?;
    if out_layout.rank() != out_shape.rank() {
        return Err(TensorError::LayoutRankMismatch {
            expected: out_shape.rank(),
            found: out_layout.rank(),
        });
    }
    let mut out = Tensor::zeros_with_layout(out_shape, out_layout.clone());
    let c_groups: Vec<Axis> = class
        .batch
        .iter()
        .chain(&class.m)
        .chain(&class.n)
        .copied()
        .collect();
    scatter(&c_pack, &c_groups, &size_of, &mut out);
    Ok(out)
}

/// Executes a one-operand einsum (a pure reduction / transpose), writing a
/// row-major output. Labels absent from the output are summed.
///
/// # Errors
///
/// Returns an error if the spec is not one-operand or shapes disagree.
pub fn reduce(spec: &EinsumSpec, a: &Tensor) -> Result<Tensor> {
    if spec.operands().len() != 1 {
        return Err(TensorError::Unsupported(
            "reduce requires a one-operand spec".into(),
        ));
    }
    let labels = &spec.operands()[0];
    if labels.len() != a.shape().rank() {
        return Err(TensorError::ShapeMismatch {
            context: "einsum operand rank",
        });
    }
    let out_shape = Shape::new(
        spec.output()
            .iter()
            .map(|&ax| Ok((ax, a.shape().size(ax)?)))
            .collect::<Result<Vec<_>>>()?,
    )?;
    let mut out = Tensor::zeros(out_shape);
    let mut idx = vec![0usize; a.shape().rank()];
    let out_positions: Vec<usize> = spec
        .output()
        .iter()
        .map(|ax| a.shape().index_of(*ax).expect("validated"))
        .collect();
    let mut out_idx = vec![0usize; out_positions.len()];
    loop {
        for (o, &p) in out_idx.iter_mut().zip(&out_positions) {
            *o = idx[p];
        }
        let off = out.offset(&out_idx);
        out.data_mut()[off] += a.at(&idx);
        if !a.advance(&mut idx) {
            break;
        }
    }
    Ok(out)
}

/// Reference einsum evaluated by brute-force nested loops; the correctness
/// oracle for [`contract`] in tests.
///
/// # Errors
///
/// Returns an error for inconsistent shapes or specs.
pub fn naive_einsum(spec: &EinsumSpec, operands: &[&Tensor]) -> Result<Tensor> {
    if spec.operands().len() != operands.len() {
        return Err(TensorError::ParseError("operand count mismatch".into()));
    }
    // Collect every label and its size.
    let mut labels: Vec<(Axis, usize)> = Vec::new();
    for (ls, t) in spec.operands().iter().zip(operands) {
        if ls.len() != t.shape().rank() {
            return Err(TensorError::ShapeMismatch {
                context: "einsum operand rank",
            });
        }
        for &ax in ls {
            let n = t.shape().size(ax)?;
            match labels.iter().find(|(a, _)| *a == ax) {
                Some(&(_, m)) if m != n => return Err(TensorError::SizeConflict(ax)),
                Some(_) => {}
                None => labels.push((ax, n)),
            }
        }
    }
    let out_shape = Shape::new(
        spec.output()
            .iter()
            .map(|&ax| {
                labels
                    .iter()
                    .find(|(a, _)| *a == ax)
                    .map(|&(a, n)| (a, n))
                    .ok_or(TensorError::UnknownAxis(ax))
            })
            .collect::<Result<Vec<_>>>()?,
    )?;
    let mut out = Tensor::zeros(out_shape);

    let mut full = vec![0usize; labels.len()];
    let op_positions: Vec<Vec<usize>> = spec
        .operands()
        .iter()
        .map(|ls| {
            ls.iter()
                .map(|ax| labels.iter().position(|(a, _)| a == ax).expect("present"))
                .collect()
        })
        .collect();
    let out_positions: Vec<usize> = spec
        .output()
        .iter()
        .map(|ax| labels.iter().position(|(a, _)| a == ax).expect("present"))
        .collect();
    loop {
        let mut prod = 1.0f32;
        for (t, pos) in operands.iter().zip(&op_positions) {
            let idx: Vec<usize> = pos.iter().map(|&p| full[p]).collect();
            prod *= t.at(&idx);
        }
        let out_idx: Vec<usize> = out_positions.iter().map(|&p| full[p]).collect();
        let off = out.offset(&out_idx);
        out.data_mut()[off] += prod;
        // advance full index
        let mut done = true;
        for i in (0..full.len()).rev() {
            full[i] += 1;
            if full[i] < labels[i].1 {
                done = false;
                break;
            }
            full[i] = 0;
        }
        if done {
            break;
        }
    }
    Ok(out)
}

/// Gathers a tensor into a dense row-major buffer ordered by `groups`.
fn gather(t: &Tensor, groups: &[Axis], size_of: &dyn Fn(Axis) -> usize) -> Vec<f32> {
    let total: usize = groups.iter().map(|&ax| size_of(ax)).product();
    let mut dst = vec![0.0f32; total];
    // dims outermost-first in pack order
    let mut dims: Vec<(usize, usize, usize)> = Vec::with_capacity(groups.len());
    let mut pack_stride = total;
    for &ax in groups {
        let len = size_of(ax);
        pack_stride /= len;
        let src_stride = t.strides()[t.shape().index_of(ax).expect("validated")];
        dims.push((len, src_stride, pack_stride));
    }
    copy_strided(&dims, t.data(), 0, &mut dst, 0);
    dst
}

/// Scatters a dense row-major buffer ordered by `groups` into a tensor.
fn scatter(src: &[f32], groups: &[Axis], size_of: &dyn Fn(Axis) -> usize, out: &mut Tensor) {
    let total: usize = groups.iter().map(|&ax| size_of(ax)).product();
    debug_assert_eq!(src.len(), total);
    let mut dims: Vec<(usize, usize, usize)> = Vec::with_capacity(groups.len());
    let mut pack_stride = total;
    let out_strides: Vec<usize> = groups
        .iter()
        .map(|&ax| out.strides()[out.shape().index_of(ax).expect("validated")])
        .collect();
    for (&ax, &os) in groups.iter().zip(&out_strides) {
        let len = size_of(ax);
        pack_stride /= len;
        dims.push((len, pack_stride, os));
    }
    copy_strided(&dims, src, 0, out.data_mut(), 0);
}

/// Recursive strided copy over `(len, src_stride, dst_stride)` dims.
pub(crate) fn copy_strided(
    dims: &[(usize, usize, usize)],
    src: &[f32],
    src_off: usize,
    dst: &mut [f32],
    dst_off: usize,
) {
    match dims {
        [] => dst[dst_off] = src[src_off],
        [(len, ss, ds)] => {
            for i in 0..*len {
                dst[dst_off + i * ds] = src[src_off + i * ss];
            }
        }
        [(len, ss, ds), rest @ ..] => {
            for i in 0..*len {
                copy_strided(rest, src, src_off + i * ss, dst, dst_off + i * ds);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_tensor(spec: &str, sizes: &[(char, usize)], seed: u64) -> Tensor {
        let shape = Shape::from_spec(spec, sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::random(shape, &Uniform::new(-1.0, 1.0), &mut rng)
    }

    #[test]
    fn contract_matches_naive_matmul() {
        let sizes = [('i', 5), ('k', 7), ('j', 4)];
        let a = rand_tensor("ik", &sizes, 1);
        let b = rand_tensor("kj", &sizes, 2);
        let spec: EinsumSpec = "ik,kj->ij".parse().unwrap();
        let fast = contract(&spec, &a, &b, &Layout::row_major(2)).unwrap();
        let slow = naive_einsum(&spec, &[&a, &b]).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn contract_matches_naive_on_mha_projection() {
        let sizes = [('p', 3), ('h', 2), ('i', 5), ('b', 2), ('j', 4)];
        let w = rand_tensor("phi", &sizes, 3);
        let x = rand_tensor("ibj", &sizes, 4);
        let spec: EinsumSpec = "phi,ibj->phbj".parse().unwrap();
        let fast = contract(&spec, &w, &x, &Layout::row_major(4)).unwrap();
        let slow = naive_einsum(&spec, &[&w, &x]).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn contract_matches_naive_on_batched_scores() {
        let sizes = [('p', 3), ('h', 2), ('b', 2), ('j', 4), ('k', 5)];
        let kk = rand_tensor("phbk", &sizes, 5);
        let qq = rand_tensor("phbj", &sizes, 6);
        let spec: EinsumSpec = "phbk,phbj->hbjk".parse().unwrap();
        let fast = contract(&spec, &kk, &qq, &Layout::row_major(4)).unwrap();
        let slow = naive_einsum(&spec, &[&kk, &qq]).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn contract_respects_input_layouts() {
        let sizes = [('i', 4), ('k', 6), ('j', 3)];
        let a = rand_tensor("ik", &sizes, 7);
        let b = rand_tensor("kj", &sizes, 8);
        let spec: EinsumSpec = "ik,kj->ij".parse().unwrap();
        let base = contract(&spec, &a, &b, &Layout::row_major(2)).unwrap();
        let a_t = a.relayout(&Layout::from_axis_order(a.shape(), "ki").unwrap());
        let b_t = b.relayout(&Layout::from_axis_order(b.shape(), "jk").unwrap());
        let got = contract(&spec, &a_t, &b_t, &Layout::row_major(2)).unwrap();
        assert!(got.max_abs_diff(&base).unwrap() < 1e-5);
    }

    #[test]
    fn contract_writes_requested_output_layout() {
        let sizes = [('i', 4), ('k', 6), ('j', 3)];
        let a = rand_tensor("ik", &sizes, 9);
        let b = rand_tensor("kj", &sizes, 10);
        let spec: EinsumSpec = "ik,kj->ij".parse().unwrap();
        let rm = contract(&spec, &a, &b, &Layout::row_major(2)).unwrap();
        let out_shape = rm.shape().clone();
        let cm = contract(
            &spec,
            &a,
            &b,
            &Layout::from_axis_order(&out_shape, "ji").unwrap(),
        )
        .unwrap();
        assert_eq!(cm.layout().spec(cm.shape()), "ji");
        assert!(cm.max_abs_diff(&rm).unwrap() < 1e-5);
    }

    #[test]
    fn reduce_sums_missing_labels() {
        let sizes = [('b', 2), ('j', 3), ('i', 4)];
        let a = rand_tensor("bji", &sizes, 11);
        let spec: EinsumSpec = "bji->i".parse().unwrap();
        let r = reduce(&spec, &a).unwrap();
        for i in 0..4 {
            let mut expect = 0.0;
            for b in 0..2 {
                for j in 0..3 {
                    expect += a.at(&[b, j, i]);
                }
            }
            assert!((r.at(&[i]) - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn einsum_dispatches_by_operand_count() {
        let sizes = [('i', 2), ('k', 3), ('j', 2)];
        let a = rand_tensor("ik", &sizes, 12);
        let b = rand_tensor("kj", &sizes, 13);
        assert!(einsum("ik,kj->ij", &[&a, &b]).is_ok());
        assert!(einsum("ik->i", &[&a]).is_ok());
        assert!(einsum("ik,kj->ij", &[&a]).is_err());
    }
}
