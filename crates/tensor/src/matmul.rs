//! Tiled single-precision matrix multiplication kernels.
//!
//! These are the CPU stand-ins for cuBLAS: every einsum in the encoder layer
//! is lowered onto [`sgemm`] / [`batched_sgemm`] over packed row-major
//! buffers. The kernel uses an `i-k-j` loop nest with cache blocking so the
//! innermost loop is a contiguous FMA sweep the compiler can vectorize.

/// Cache-block edge in elements, chosen so one `MC × KC` A-panel plus a
/// `KC × NC` B-panel fit comfortably in L2.
const BLOCK: usize = 64;

/// Computes `c += a × b` for row-major `a` (`m×k`), `b` (`k×n`), `c` (`m×n`).
///
/// Accumulation happens at `f32` precision (the paper accumulates FP16
/// GEMMs at FP32; our storage is already `f32`).
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
///
/// # Examples
///
/// ```
/// use xform_tensor::matmul::sgemm;
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = [5.0, 6.0, 7.0, 8.0]; // 2x2
/// let mut c = [0.0; 4];
/// sgemm(2, 2, 2, &a, &b, &mut c);
/// assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn sgemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a has wrong length");
    assert_eq!(b.len(), k * n, "b has wrong length");
    assert_eq!(c.len(), m * n, "c has wrong length");
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let c_row = &mut c[i * n + j0..i * n + j1];
                    for kk in k0..k1 {
                        // no zero-skip: the branch costs more than the FMAs
                        // it saves on dense operands and defeats
                        // vectorization of the inner sweep
                        let aik = a[i * k + kk];
                        let b_row = &b[kk * n + j0..kk * n + j1];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Computes `c[g] += a[g] × b[g]` for `batch` independent GEMMs stored
/// contiguously (`a`: `batch×m×k`, `b`: `batch×k×n`, `c`: `batch×m×n`).
///
/// Batch slices are independent, so they are spread across the host's
/// cores with scoped threads (each thread owns a contiguous range of `c`
/// obtained by `split_at_mut`); small problems stay on the calling thread.
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn batched_sgemm(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), batch * m * k, "a has wrong length");
    assert_eq!(b.len(), batch * k * n, "b has wrong length");
    assert_eq!(c.len(), batch * m * n, "c has wrong length");
    let serial = |c: &mut [f32], lo: usize, hi: usize| {
        for g in lo..hi {
            sgemm(
                m,
                n,
                k,
                &a[g * m * k..(g + 1) * m * k],
                &b[g * k * n..(g + 1) * k * n],
                &mut c[(g - lo) * m * n..(g - lo + 1) * m * n],
            );
        }
    };
    let threads = std::thread::available_parallelism()
        .map_or(1, |t| t.get())
        .min(batch);
    // below ~64k FMAs per slice the spawn overhead dominates
    if threads <= 1 || batch * m * n * k < (1 << 16) {
        serial(c, 0, batch);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = c;
        let mut lo = 0usize;
        for t in 0..threads {
            let hi = (t + 1) * batch / threads;
            let (mine, tail) = rest.split_at_mut((hi - lo) * m * n);
            rest = tail;
            let serial = &serial;
            s.spawn(move || serial(mine, lo, hi));
            lo = hi;
        }
    });
}

/// Reference (unblocked, triple-loop) GEMM used as a correctness oracle in
/// tests: `c += a × b`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn naive_sgemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 33, 129),
            (100, 1, 17),
        ] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            sgemm(m, n, k, &a, &b, &mut c1);
            naive_sgemm(m, n, k, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-3, "mismatch at ({m},{n},{k})");
            }
        }
    }

    #[test]
    fn sgemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = [1.0, 1.0, 1.0, 1.0];
        sgemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn batched_is_per_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let (bsz, m, n, k) = (3, 4, 5, 6);
        let a = random_mat(&mut rng, bsz * m * k);
        let b = random_mat(&mut rng, bsz * k * n);
        let mut c = vec![0.0; bsz * m * n];
        batched_sgemm(bsz, m, n, k, &a, &b, &mut c);
        for g in 0..bsz {
            let mut expect = vec![0.0; m * n];
            naive_sgemm(
                m,
                n,
                k,
                &a[g * m * k..(g + 1) * m * k],
                &b[g * k * n..(g + 1) * k * n],
                &mut expect,
            );
            for (x, y) in c[g * m * n..(g + 1) * m * n].iter().zip(&expect) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn batched_parallel_path_matches_naive() {
        // large enough that batch slices are spread across threads
        let mut rng = StdRng::seed_from_u64(11);
        let (bsz, m, n, k) = (8, 32, 32, 32);
        assert!(bsz * m * n * k >= 1 << 16);
        let a = random_mat(&mut rng, bsz * m * k);
        let b = random_mat(&mut rng, bsz * k * n);
        let mut c = vec![0.0; bsz * m * n];
        batched_sgemm(bsz, m, n, k, &a, &b, &mut c);
        for g in 0..bsz {
            let mut expect = vec![0.0; m * n];
            naive_sgemm(
                m,
                n,
                k,
                &a[g * m * k..(g + 1) * m * k],
                &b[g * k * n..(g + 1) * k * n],
                &mut expect,
            );
            for (x, y) in c[g * m * n..(g + 1) * m * n].iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "a has wrong length")]
    fn sgemm_panics_on_bad_len() {
        let mut c = [0.0; 4];
        sgemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }
}
