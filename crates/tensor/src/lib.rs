//! CPU tensor substrate for data-movement-centric transformer optimization.
//!
//! This crate provides the numerical foundation of the `substation-rs`
//! workspace, a Rust reproduction of *Ivanov et al., "Data Movement Is All
//! You Need: A Case Study on Optimizing Transformers" (MLSys 2021)*:
//!
//! * [`Shape`] / [`Axis`] — tensors with *named* logical dimensions, in the
//!   paper's single-letter convention (`b` batch, `j`/`k` sequence, `h`
//!   heads, `p`/`w` projection, `i` embedding, `u` feed-forward);
//! * [`Layout`] — permutable memory layouts, the central experimental knob
//!   of the paper's Sec. V;
//! * [`Tensor`] — dense `f32` storage addressed logically, so relayouting
//!   never changes values, only access patterns;
//! * [`einsum()`](crate::einsum()) / [`contract`](crate::contract::contract) — Einstein-sum
//!   contractions lowered onto tiled (batched) GEMM, like the paper lowers
//!   onto cuBLAS;
//! * [`ops`] — the unfused operator kernels of a BERT encoder layer,
//!   forward *and* backward;
//! * [`fused`] — single-sweep implementations of the paper's twelve fused
//!   kernels (AIB, SM, BRD, BDRLN, BSB, BLNRD, BDRB, EBSB, BS, BAOB, BAIB,
//!   BEI);
//! * [`half`] — software FP16 for mixed-precision storage accounting.
//!
//! # Examples
//!
//! A query projection as in the paper's Fig. 1, followed by its bias:
//!
//! ```
//! use xform_tensor::{einsum, ops::elementwise::bias_add, Shape, Tensor};
//! # fn main() -> Result<(), xform_tensor::TensorError> {
//! let sizes = [('p', 4), ('h', 2), ('i', 8), ('b', 2), ('j', 3)];
//! let wq = Tensor::zeros(Shape::from_spec("phi", &sizes)?);
//! let x = Tensor::zeros(Shape::from_spec("ibj", &sizes)?);
//! let bq = Tensor::zeros(Shape::from_spec("ph", &sizes)?);
//! let qq = einsum("phi,ibj->phbj", &[&wq, &x])?;
//! let q = bias_add(&qq, &bq)?;
//! assert_eq!(q.shape().spec(), "phbj");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

mod axes;
pub mod contract;
pub mod einsum;
mod error;
pub mod fused;
pub mod half;
pub mod into_ops;
mod layout;
pub mod matmul;
pub mod ops;
mod tensor;
pub mod trace;

pub use axes::{Axis, Shape};
pub use contract::einsum;
pub use error::{Result, TensorError};
pub use layout::Layout;
pub use tensor::{Iter, Tensor};
