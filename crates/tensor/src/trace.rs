//! Thread-local access tracing — the kernel-side footprint hook of the
//! plan sanitizer (`xform-core::sanitize`).
//!
//! The sanitizer's static certifier derives each scheduled kernel's
//! access footprint symbolically; its dynamic shadow interpreter wants
//! the *actual* footprint the kernels touch at runtime. Most kernels read
//! and write whole containers, which the interpreter can observe by
//! itself; the one sub-container access pattern in the forward path is
//! the stacked-Q/K/V slice read ([`Tensor::slice_range`] on the
//! outermost axis, the `carve_stacked` path of the schedule
//! interpreter). This module records those partial reads into a
//! thread-local log the shadow interpreter drains after each step, so
//! observed element intervals — not declarations — feed the per-wave
//! conflict check.
//!
//! Tracing is off by default and costs one thread-local branch per
//! traced kernel entry when disabled.

use std::cell::RefCell;

use crate::tensor::Tensor;

/// One partial read observed by a traced kernel: a contiguous interval
/// `[lo, hi)` of the source tensor's *logical* element space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRead {
    /// First logical element index read (inclusive).
    pub lo: u64,
    /// One past the last logical element index read (exclusive).
    pub hi: u64,
    /// Total logical elements of the source tensor (interval context).
    pub of: u64,
}

thread_local! {
    static TRACE: RefCell<Option<Vec<SliceRead>>> = const { RefCell::new(None) };
}

/// Starts recording partial reads on this thread, clearing any previous
/// log.
pub fn start() {
    TRACE.with(|t| *t.borrow_mut() = Some(Vec::new()));
}

/// Stops recording and returns everything logged since [`start`].
/// Returns an empty vector if tracing was never started.
pub fn stop() -> Vec<SliceRead> {
    TRACE.with(|t| t.borrow_mut().take().unwrap_or_default())
}

/// `true` while this thread is recording.
pub fn enabled() -> bool {
    TRACE.with(|t| t.borrow().is_some())
}

/// Records a partial read of `src`: `len` logical rows starting at row
/// `start` of the outermost logical axis (the only slice pattern whose
/// logical element interval is contiguous). Called by the kernels; a
/// no-op unless [`start`] is active on this thread.
pub(crate) fn record_slice(src: &Tensor, axis_index: usize, row_start: usize, rows: usize) {
    TRACE.with(|t| {
        let mut log = t.borrow_mut();
        let Some(log) = log.as_mut() else { return };
        let total = src.shape().num_elements() as u64;
        if axis_index == 0 {
            let row_words: u64 = src.shape().sizes()[1..].iter().map(|&n| n as u64).product();
            log.push(SliceRead {
                lo: row_start as u64 * row_words,
                hi: (row_start + rows) as u64 * row_words,
                of: total,
            });
        } else {
            // a non-outermost slice is not logically contiguous; record
            // the conservative full interval
            log.push(SliceRead {
                lo: 0,
                hi: total,
                of: total,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Axis, Shape};

    #[test]
    fn slice_range_records_logical_interval() {
        let t = Tensor::zeros(Shape::new([('s', 6), ('i', 4)]).unwrap());
        start();
        t.slice_range(Axis('s'), 2, 3).unwrap();
        let log = stop();
        assert_eq!(
            log,
            vec![SliceRead {
                lo: 8,
                hi: 20,
                of: 24
            }]
        );
        // tracing is off again: nothing recorded
        t.slice_range(Axis('s'), 0, 1).unwrap();
        assert!(stop().is_empty());
    }

    #[test]
    fn inner_axis_slice_records_conservative_full_interval() {
        let t = Tensor::zeros(Shape::new([('s', 6), ('i', 4)]).unwrap());
        start();
        t.slice_range(Axis('i'), 1, 2).unwrap();
        let log = stop();
        assert_eq!(
            log,
            vec![SliceRead {
                lo: 0,
                hi: 24,
                of: 24
            }]
        );
    }
}
