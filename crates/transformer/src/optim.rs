//! Optimizers for the CPU training pipeline: SGD with momentum and Adam.
//!
//! The paper trains BERT with Adam-family optimizers (it discusses LAMB in
//! related work); the optimizer itself is yet another bundle of
//! element-wise operators, so it slots into the same data-movement story.
//! These implementations operate on flat parameter/gradient tensor pairs
//! so they work with [`crate::params::EncoderWeights`] and
//! [`crate::model::TransformerModel`] alike.

use xform_tensor::Tensor;

/// A first-order optimizer over a fixed set of parameter tensors.
///
/// Call [`Optimizer::step`] with parameters and gradients in a stable
/// order; per-parameter state is keyed by position.
pub trait Optimizer {
    /// Applies one update. `params` and `grads` must align pairwise (same
    /// order, same shapes) across calls.
    ///
    /// # Panics
    ///
    /// Panics if lengths or shapes disagree.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]);

    /// The optimizer's name, for logs.
    fn name(&self) -> &'static str;
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad arity mismatch");
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            assert_eq!(p.shape(), g.shape(), "param/grad shape mismatch");
            if self.momentum == 0.0 {
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                    *pv -= self.lr * gv;
                }
            } else {
                for ((pv, gv), vv) in p.data_mut().iter_mut().zip(g.data()).zip(v.iter_mut()) {
                    *vv = self.momentum * *vv + gv;
                    *pv -= self.lr * *vv;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Adam with bias correction (Kingma & Ba).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the standard hyperparameters (β₁=0.9, β₂=0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad arity mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            assert_eq!(p.shape(), g.shape(), "param/grad shape mismatch");
            for (((pv, gv), mv), vv) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use xform_tensor::Shape;

    fn quadratic_step(opt: &mut dyn Optimizer, x0: f32, steps: usize) -> f32 {
        // minimize f(x) = x²; gradient 2x
        let mut x = Tensor::from_vec(Shape::new([('x', 1)]).unwrap(), vec![x0]).unwrap();
        for _ in 0..steps {
            let g =
                Tensor::from_vec(Shape::new([('x', 1)]).unwrap(), vec![2.0 * x.data()[0]]).unwrap();
            opt.step(&mut [&mut x], &[&g]);
        }
        x.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = quadratic_step(&mut opt, 5.0, 50);
        assert!(x.abs() < 1e-3, "sgd stalled at {x}");
    }

    #[test]
    fn momentum_accelerates_early_progress() {
        let mut plain = Sgd::new(0.01);
        let mut heavy = Sgd::with_momentum(0.01, 0.9);
        let x_plain = quadratic_step(&mut plain, 5.0, 20);
        let x_heavy = quadratic_step(&mut heavy, 5.0, 20);
        assert!(x_heavy.abs() < x_plain.abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = quadratic_step(&mut opt, 5.0, 200);
        assert!(x.abs() < 1e-2, "adam stalled at {x}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // with bias correction, the very first Adam step ≈ lr · sign(g)
        let mut opt = Adam::new(0.1);
        let mut x = Tensor::from_vec(Shape::new([('x', 1)]).unwrap(), vec![1.0]).unwrap();
        let g = Tensor::from_vec(Shape::new([('x', 1)]).unwrap(), vec![123.0]).unwrap();
        opt.step(&mut [&mut x], &[&g]);
        assert!(
            (x.data()[0] - (1.0 - 0.1)).abs() < 1e-3,
            "got {}",
            x.data()[0]
        );
    }

    #[test]
    fn adam_trains_the_encoder() {
        use crate::encoder::{EncoderLayer, Executor};
        use crate::params::EncoderWeights;
        use rand::distributions::Uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use xform_dataflow::EncoderDims;

        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(21);
        let mut w = EncoderWeights::init(&dims, &mut rng);
        let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
        let x = Tensor::random(
            Shape::from_spec("ibj", &dims.size_table()).unwrap(),
            &Uniform::new(-1.0, 1.0),
            &mut rng,
        );
        let target = Tensor::random(
            x.shape().clone(),
            &Uniform::new(-0.5, 0.5),
            &mut StdRng::seed_from_u64(22),
        );
        let mut opt = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let opts = xform_core::plan::ExecOptions::builder()
                .seed(rng.gen::<u64>())
                .build();
            let (y, acts) = layer.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
            let n = y.len() as f32;
            let mut dy = y.clone();
            let mut loss = 0.0;
            for (dv, (&yv, &tv)) in dy
                .data_mut()
                .iter_mut()
                .zip(y.data().iter().zip(target.data()))
            {
                let e = yv - tv;
                loss += e * e / n;
                *dv = 2.0 * e / n;
            }
            let (_, grads) = layer.backward(&dy, &x, &w, &acts).unwrap();
            let gs = grads.fields();
            let grad_refs: Vec<&Tensor> = gs.iter().map(|(_, t)| *t).collect();
            let mut wm = w.fields_mut();
            let mut param_refs: Vec<&mut Tensor> = wm.iter_mut().map(|(_, t)| &mut **t).collect();
            opt.step(&mut param_refs, &grad_refs);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.8,
            "adam on encoder: {} -> {last}",
            first.unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_arity_panics() {
        let mut opt = Sgd::new(0.1);
        let mut x = Tensor::from_vec(Shape::new([('x', 1)]).unwrap(), vec![0.0]).unwrap();
        opt.step(&mut [&mut x], &[]);
    }
}
