//! Plan-driven execution of the transformer layers: canned
//! [`ExecutionPlan`]s for the reference and fused executors, plus the glue
//! that binds a layer's weights into the schedule interpreter's
//! environment and reads the saved activations back out.
//!
//! This is where the recipe's output becomes runnable: the same
//! interpreter that executes the two canned plans also executes an
//! arbitrary recipe-selected plan (supply it via
//! [`xform_core::plan::ExecOptions::plan`] to the unified
//! [`crate::encoder::EncoderLayer::forward`]), so the SSSP-selected
//! layouts of `xform-core` run against the real CPU kernels with no
//! per-configuration code.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use xform_core::access::{certify_access, AccessCertificate};
use xform_core::analyze::{analyze, ArenaGranularity};
use xform_core::arena::{ArenaArtifact, ArenaOutcome, ArenaRun, CompiledArena};
use xform_core::fusion::{
    apply_epilogues, apply_plan, decoder_attend_fusion_plan, decoder_forward_fusion_plan,
    decoder_fusion_plan, decoder_project_fusion_plan, encoder_fusion_plan,
};
use xform_core::plan::{execute_plan, ExecOptions, ExecState, ExecutionPlan, SanitizeMode};
use xform_core::recipe::forward_ops;
use xform_core::sanitize::{certify, execute_plan_parallel, ParallelOptions, RaceCertificate};
use xform_dataflow::{build, EncoderDims, Graph};
use xform_tensor::{into_ops, Axis, Result, Tensor};

use crate::params::EncoderWeights;

/// The result of a unified layer forward: the layer output plus the saved
/// activations, which are assembled only when
/// [`xform_core::plan::ExecOptions::collect_activations`] was set (the
/// default). Inference-only callers read `y` directly; training callers
/// destructure with [`ForwardOutput::into_pair`].
#[derive(Debug, Clone)]
pub struct ForwardOutput<A> {
    /// The layer output `y` (`[i,b,j]`).
    pub y: Tensor,
    /// Saved activations, when collection was requested.
    pub activations: Option<A>,
}

impl<A> ForwardOutput<A> {
    /// Splits into `(y, activations)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the forward ran with
    /// `collect_activations = false`.
    pub fn into_pair(self) -> Result<(Tensor, A)> {
        let a = self.activations.ok_or_else(|| {
            xform_tensor::TensorError::Unsupported(
                "forward ran with collect_activations disabled — no saved activations".into(),
            )
        })?;
        Ok((self.y, a))
    }
}

/// A dataflow graph paired with an executable forward schedule over it,
/// carrying the race certificate that admits the schedule to the
/// wave-parallel interpreter.
#[derive(Debug, Clone)]
pub struct PlannedForward {
    /// The (possibly fused) dataflow graph the plan is lowered against.
    pub graph: Graph,
    /// The forward schedule.
    pub plan: ExecutionPlan,
    /// Freedom-from-races certificate over the plan's hazard-DAG waves.
    pub cert: RaceCertificate,
    /// Access-path certificate: every operand path proven in-bounds and
    /// alias-free, with per-step licenses for the unchecked kernel twins.
    pub access: AccessCertificate,
}

fn certified(graph: Graph, plan: ExecutionPlan) -> Result<PlannedForward> {
    let cert = certify(&graph, &plan).map_err(|lints| {
        xform_tensor::TensorError::Unsupported(format!(
            "canned plan failed race certification: {:?}",
            lints.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        ))
    })?;
    let access = certify_access(&graph, &plan).map_err(|lints| {
        xform_tensor::TensorError::Unsupported(format!(
            "canned plan failed access certification: {:?}",
            lints.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        ))
    })?;
    Ok(PlannedForward {
        graph,
        plan,
        cert,
        access,
    })
}

fn planned(graph: Graph, dy: xform_dataflow::NodeId) -> Result<PlannedForward> {
    let plan = ExecutionPlan::natural(&graph, &forward_ops(&graph, dy))?;
    certified(graph, plan)
}

/// Schedules a forward-only graph (no `dy` seed to split on): every
/// operator, in topological order.
fn planned_forward(graph: Graph) -> Result<PlannedForward> {
    let plan = ExecutionPlan::natural(&graph, &graph.topo_ops())?;
    certified(graph, plan)
}

/// Which canned schedule a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Unfused encoder, natural layouts.
    EncoderReference,
    /// Fused encoder, natural layouts.
    EncoderFused,
    /// Fused encoder with GEMM-epilogue mega-kernels (QKT+SM, Linear 1+
    /// BRD collapsed; their intermediates never materialize).
    EncoderEpilogue,
    /// Fused decoder block, natural layouts.
    DecoderFused,
    /// Fused decoder with GEMM-epilogue mega-kernels (QKT+SM, Out+BDR,
    /// Linear 1+BRD, Linear 2+BDR2 collapsed).
    DecoderEpilogue,
    /// Forward-only fused decoder block for the decode *prefill* pass:
    /// same kernels as [`PlanKind::DecoderFused`]'s forward half, no
    /// backward operators. `dims.j == dims.k` is the prompt length.
    DecoderPrefill,
    /// Decode-step projection plan: LN1 + stacked Q/K/V + bias carve over
    /// a single token column (`dims.j == 1`), producing the `qq_new`/
    /// `kk_new`/`vv_new` columns the session appends to its caches.
    DecoderStepProject,
    /// Decode-step attention plan: reads the resident `k_cache`/`v_cache`
    /// ([`xform_dataflow::DataRole::Cache`] inputs, `dims.k` = bucket
    /// capacity) plus the projected `qq` column and produces the step's
    /// `y` (`dims.j == 1`).
    DecoderStep,
}

type PlanCache = Mutex<HashMap<(EncoderDims, PlanKind), Arc<PlannedForward>>>;

fn plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the canned plan for `(dims, kind)`, building and memoizing it
/// on first use. Keying on the full dimension set means a layer whose
/// dims change simply misses the cache and lowers a fresh plan — stale
/// schedules can never be returned. Lowering happens outside the lock;
/// a racing duplicate build is benign (last writer wins).
///
/// # Errors
///
/// Returns an error if graph construction, fusion, or scheduling fails.
pub fn cached_plan(dims: &EncoderDims, kind: PlanKind) -> Result<Arc<PlannedForward>> {
    let key = (*dims, kind);
    if let Some(hit) = plan_cache().lock().unwrap().get(&key) {
        return Ok(Arc::clone(hit));
    }
    let built = Arc::new(match kind {
        PlanKind::EncoderReference => encoder_reference(dims)?,
        PlanKind::EncoderFused => encoder_fused(dims)?,
        PlanKind::EncoderEpilogue => encoder_epilogue(dims)?,
        PlanKind::DecoderFused => decoder_fused(dims)?,
        PlanKind::DecoderEpilogue => decoder_epilogue(dims)?,
        PlanKind::DecoderPrefill => decoder_prefill(dims)?,
        PlanKind::DecoderStepProject => decoder_step_project(dims)?,
        PlanKind::DecoderStep => decoder_step_attend(dims)?,
    });
    plan_cache().lock().unwrap().insert(key, Arc::clone(&built));
    Ok(built)
}

/// Number of memoized canned plans (for tests and diagnostics).
pub fn plan_cache_len() -> usize {
    plan_cache().lock().unwrap().len()
}

/// Drops every memoized plan.
pub fn clear_plan_cache() {
    plan_cache().lock().unwrap().clear();
}

/// Compiled arenas keyed alongside the plan cache. The value is an
/// `Option` so a plan the arena compiler declines (`Ok(None)`) is cached
/// negatively — the layer probes once, then falls back to the allocating
/// interpreter without recompiling on every forward.
type ArenaCache =
    Mutex<HashMap<(EncoderDims, PlanKind, ArenaGranularity), Option<Arc<CompiledArena>>>>;

fn arena_cache() -> &'static ArenaCache {
    static CACHE: OnceLock<ArenaCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The arena execution order a forward at this thread count needs:
/// wave-granularity colorings for the parallel interpreter, serial
/// colorings (tighter slabs) otherwise.
pub fn granularity_for(threads: usize) -> ArenaGranularity {
    if threads > 1 {
        ArenaGranularity::Waves
    } else {
        ArenaGranularity::Serial
    }
}

/// Returns the compiled static arena for `(dims, kind, granularity)`,
/// building and memoizing it on first use (`None` — also memoized — when
/// the canned plan has a shape the arena compiler does not support).
/// Steady-state hits are a lock plus a `HashMap` probe: no allocation.
///
/// # Errors
///
/// Returns an error if the canned plan cannot be built, or if the arena
/// coloring fails aliasing certification (an internal invariant
/// violation).
pub fn cached_arena(
    dims: &EncoderDims,
    kind: PlanKind,
    granularity: ArenaGranularity,
) -> Result<Option<Arc<CompiledArena>>> {
    let key = (*dims, kind, granularity);
    if let Some(hit) = arena_cache().lock().unwrap().get(&key) {
        return Ok(hit.clone());
    }
    let pf = cached_plan(dims, kind)?;
    let analysis = analyze(&pf.graph, &pf.plan);
    let built = CompiledArena::compile(&pf.graph, &pf.plan, &analysis, granularity)?.map(Arc::new);
    arena_cache().lock().unwrap().insert(key, built.clone());
    Ok(built)
}

/// Number of memoized arena probes, counting negative entries (for tests
/// and diagnostics).
pub fn arena_cache_len() -> usize {
    arena_cache().lock().unwrap().len()
}

/// Drops every memoized arena.
pub fn clear_arena_cache() {
    arena_cache().lock().unwrap().clear();
}

/// The arena-side mirror of a merged [`ExecOptions`]: layer knobs plus
/// the cached `XFORM_SANITIZE` resolution (reading the environment
/// allocates, so [`SanitizeMode::Env`] goes through the process-wide
/// cached flag on this path).
pub(crate) fn arena_run(opts: &ExecOptions) -> ArenaRun {
    ArenaRun {
        dropout_p: opts.dropout_p,
        activation: opts.activation,
        scaler: opts.scaler,
        seed: opts.seed,
        threads: opts.threads,
        sanitize: match opts.sanitize {
            SanitizeMode::Off => false,
            SanitizeMode::On => true,
            SanitizeMode::Env => xform_core::arena::env_sanitize_cached(),
        },
        pos: opts.pos,
    }
}

/// Drives one zero-allocation forward out of the cached arena: binds `x`
/// and the weight set straight into the slab (stacking Q/K/V into the
/// `w_qkv` region without materializing the concatenation) and copies the
/// produced `y` into the caller's buffer. `opts` must already be merged
/// with the layer knobs. Returns `Ok(false)` when the caller should fall
/// back to the allocating interpreter (no arena for this plan shape, or
/// the arena's buffers are busy in another thread).
///
/// # Errors
///
/// Returns an error if `y` has the wrong size for the layer output, the
/// arena fails to compile, or the shadow sanitizer trips.
pub(crate) fn arena_forward_into(
    dims: &EncoderDims,
    kind: PlanKind,
    x: &Tensor,
    w: &EncoderWeights,
    opts: &ExecOptions,
    y: &mut Tensor,
) -> Result<bool> {
    let Some(arena) = cached_arena(dims, kind, granularity_for(opts.threads))? else {
        return Ok(false);
    };
    if y.len() != dims.i * dims.b * dims.j {
        return Err(xform_tensor::TensorError::Unsupported(format!(
            "output tensor holds {} words; the layer produces {} ([i,b,j] = [{},{},{}])",
            y.len(),
            dims.i * dims.b * dims.j,
            dims.i,
            dims.b,
            dims.j,
        )));
    }
    let run = arena_run(opts);
    let mut bind = |name: &str, dst: &mut [f32]| -> bool {
        let src = match name {
            "x" => x,
            "w_qkv" => {
                let (nq, nk) = (w.wq.len(), w.wk.len());
                if dst.len() != nq + nk + w.wv.len() {
                    return false;
                }
                into_ops::copy_tensor_into(&w.wq, &mut dst[..nq]);
                into_ops::copy_tensor_into(&w.wk, &mut dst[nq..nq + nk]);
                into_ops::copy_tensor_into(&w.wv, &mut dst[nq + nk..]);
                return true;
            }
            "bq" => &w.bq,
            "bk" => &w.bk,
            "bv" => &w.bv,
            "wo" => &w.wo,
            "bo" => &w.bo,
            "ln1_gamma" => &w.ln1_gamma,
            "ln1_beta" => &w.ln1_beta,
            "w1" => &w.w1,
            "b1" => &w.b1,
            "w2" => &w.w2,
            "b2" => &w.b2,
            "ln2_gamma" => &w.ln2_gamma,
            "ln2_beta" => &w.ln2_beta,
            _ => return false,
        };
        if src.len() != dst.len() {
            return false;
        }
        into_ops::copy_tensor_into(src, dst);
        true
    };
    let mut wrote = false;
    let ydata = y.data_mut();
    let mut sink = |a: ArenaArtifact<'_>| {
        if let ArenaArtifact::Tensor {
            name: "y", data, ..
        } = a
        {
            if data.len() == ydata.len() {
                ydata.copy_from_slice(data);
                wrote = true;
            }
        }
    };
    match arena.execute_bound(&run, &mut bind, &mut sink)? {
        ArenaOutcome::Ran if wrote => Ok(true),
        ArenaOutcome::Ran => Err(xform_tensor::TensorError::Unsupported(
            "arena run produced no `y` output matching the destination tensor".into(),
        )),
        ArenaOutcome::Busy => Ok(false),
    }
}

/// The reference executor as a plan: the unfused encoder graph, natural
/// layouts, one step per dataflow operator.
///
/// # Errors
///
/// Returns an error if the graph cannot be scheduled.
pub fn encoder_reference(dims: &EncoderDims) -> Result<PlannedForward> {
    let eg = build::encoder(dims);
    planned(eg.graph, eg.dy)
}

/// The fused executor as a plan: the paper's encoder fusion plan applied,
/// natural layouts, one step per fused kernel.
///
/// # Errors
///
/// Returns an error if fusion or scheduling fails.
pub fn encoder_fused(dims: &EncoderDims) -> Result<PlannedForward> {
    let eg = build::encoder(dims);
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan())?;
    planned(g, eg.dy)
}

/// The fused encoder with GEMM-epilogue mega-kernels: element-wise fusion
/// first, then every detected contraction→epilogue chain collapsed into a
/// [`xform_dataflow::OpKind::ContractionEpilogue`] step whose
/// intermediate is never materialized.
///
/// # Errors
///
/// Returns an error if fusion or scheduling fails.
pub fn encoder_epilogue(dims: &EncoderDims) -> Result<PlannedForward> {
    let eg = build::encoder(dims);
    let mut g = eg.graph;
    apply_plan(&mut g, &encoder_fusion_plan())?;
    apply_epilogues(&mut g)?;
    planned(g, eg.dy)
}

/// The decoder block as a plan: the pre-LN decoder graph with its fusion
/// plan applied (causal SM, BDR residual joins, GELU BRD).
///
/// # Errors
///
/// Returns an error if fusion or scheduling fails.
pub fn decoder_fused(dims: &EncoderDims) -> Result<PlannedForward> {
    let eg = build::decoder(dims);
    let mut g = eg.graph;
    apply_plan(&mut g, &decoder_fusion_plan())?;
    planned(g, eg.dy)
}

/// The fused decoder with GEMM-epilogue mega-kernels (see
/// [`encoder_epilogue`]).
///
/// # Errors
///
/// Returns an error if fusion or scheduling fails.
pub fn decoder_epilogue(dims: &EncoderDims) -> Result<PlannedForward> {
    let eg = build::decoder(dims);
    let mut g = eg.graph;
    apply_plan(&mut g, &decoder_fusion_plan())?;
    apply_epilogues(&mut g)?;
    planned(g, eg.dy)
}

/// The decode prefill pass as a plan: the forward-only decoder graph with
/// the forward half of the decoder fusion plan applied. Same kernel names
/// and container roles as the fused decoder's forward, so the prompt's
/// `kk`/`vv` projections (and every logit) are bitwise those of a
/// full-sequence forward.
///
/// # Errors
///
/// Returns an error if fusion or scheduling fails.
pub fn decoder_prefill(dims: &EncoderDims) -> Result<PlannedForward> {
    let fg = build::decoder_prefill(dims);
    let mut g = fg.graph;
    apply_plan(&mut g, &decoder_forward_fusion_plan())?;
    planned_forward(g)
}

/// The decode-step projection plan (LN1 + QKV + bias carve over one token
/// column). See [`PlanKind::DecoderStepProject`].
///
/// # Errors
///
/// Returns an error if fusion or scheduling fails.
pub fn decoder_step_project(dims: &EncoderDims) -> Result<PlannedForward> {
    let fg = build::decoder_step_project(dims);
    let mut g = fg.graph;
    apply_plan(&mut g, &decoder_project_fusion_plan())?;
    planned_forward(g)
}

/// The decode-step attention plan reading the resident KV cache. On top
/// of the race and access certificates every canned plan carries, this
/// plan also passes [`xform_core::access::certify_decode`] (checked by
/// [`crate::decode::DecodeSession`] at compile time): no step writes a
/// single word of either cache container.
///
/// # Errors
///
/// Returns an error if fusion or scheduling fails.
pub fn decoder_step_attend(dims: &EncoderDims) -> Result<PlannedForward> {
    let fg = build::decoder_step_attend(dims);
    let mut g = fg.graph;
    apply_plan(&mut g, &decoder_attend_fusion_plan())?;
    planned_forward(g)
}

/// Dispatches one plan execution according to the run configuration: the
/// serial interpreter (one RNG stream seeded by [`ExecOptions::seed`])
/// for `threads <= 1`, the certificate-gated wave-parallel interpreter
/// (per-step RNG streams) otherwise. Shared by the unified encoder and
/// decoder forwards.
pub(crate) fn run_plan(
    graph: &Graph,
    plan: &ExecutionPlan,
    cert: Option<&RaceCertificate>,
    state: &mut ExecState,
    opts: &ExecOptions,
) -> Result<()> {
    if opts.threads > 1 {
        let cert = cert.ok_or_else(|| {
            xform_tensor::TensorError::Unsupported(
                "parallel execution requires a race certificate — supply one in the plan \
                 override or run with threads = 1"
                    .into(),
            )
        })?;
        let popts = ParallelOptions {
            threads: opts.threads,
            seed: opts.seed,
        };
        execute_plan_parallel(graph, plan, cert, state, opts, &popts)
    } else {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        execute_plan(graph, plan, state, opts, &mut rng)
    }
}

/// Wraps a finished interpreter environment into a [`ForwardOutput`]:
/// either running the layer's activation collector or just lifting `y`
/// out when collection was disabled.
pub(crate) fn finish<A>(
    mut state: ExecState,
    collect: bool,
    collector: impl FnOnce(ExecState) -> Result<(Tensor, A)>,
) -> Result<ForwardOutput<A>> {
    if collect {
        let (y, a) = collector(state)?;
        Ok(ForwardOutput {
            y,
            activations: Some(a),
        })
    } else {
        Ok(ForwardOutput {
            y: state.take("y")?,
            activations: None,
        })
    }
}

/// Binds a layer input and the shared weight set into an interpreter
/// environment under the graphs' container names. The separate Q/K/V
/// projection weights are stacked into the graphs' `w_qkv` container
/// (`[s=3p, h, i]`, Q then K then V).
///
/// # Errors
///
/// Returns an error if the weight shapes cannot be stacked.
pub fn bind_inputs(x: &Tensor, w: &EncoderWeights) -> Result<ExecState> {
    let mut state = ExecState::default();
    let w_qkv = Tensor::concat(
        Axis('s'),
        &[
            &w.wq.relabel("shi")?,
            &w.wk.relabel("shi")?,
            &w.wv.relabel("shi")?,
        ],
    )?;
    state.env.insert("x".into(), x.clone());
    state.env.insert("w_qkv".into(), w_qkv);
    for (name, t) in [
        ("bq", &w.bq),
        ("bk", &w.bk),
        ("bv", &w.bv),
        ("wo", &w.wo),
        ("bo", &w.bo),
        ("ln1_gamma", &w.ln1_gamma),
        ("ln1_beta", &w.ln1_beta),
        ("w1", &w.w1),
        ("b1", &w.b1),
        ("w2", &w.w2),
        ("b2", &w.b2),
        ("ln2_gamma", &w.ln2_gamma),
        ("ln2_beta", &w.ln2_beta),
    ] {
        state.env.insert(name.into(), t.clone());
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xform_core::plan::{execute_plan, ExecOptions};
    use xform_tensor::Shape;

    #[test]
    fn canned_plans_schedule_every_forward_operator() {
        let dims = EncoderDims::tiny();
        let reference = encoder_reference(&dims).unwrap();
        assert_eq!(reference.plan.steps.len(), 22);
        let fused = encoder_fused(&dims).unwrap();
        assert!(fused.plan.steps.len() < reference.plan.steps.len());
        assert!(xform_core::analyze::analyze(&fused.graph, &fused.plan).is_clean());
        let decoder = decoder_fused(&dims).unwrap();
        assert!(xform_core::analyze::analyze(&decoder.graph, &decoder.plan).is_clean());
        // every canned plan carries a certificate covering all its steps
        for pf in [&reference, &fused, &decoder] {
            let scheduled: usize = pf.cert.waves.iter().map(Vec::len).sum();
            assert_eq!(scheduled, pf.plan.steps.len());
            assert_eq!(
                pf.cert.plan_hash,
                xform_core::sanitize::plan_fingerprint(&pf.plan)
            );
        }
    }

    #[test]
    fn plan_cache_memoizes_per_dims_and_kind() {
        let dims = EncoderDims::tiny();
        let a = cached_plan(&dims, PlanKind::EncoderFused).unwrap();
        let b = cached_plan(&dims, PlanKind::EncoderFused).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same dims+kind must share one plan");
        let c = cached_plan(&dims, PlanKind::EncoderReference).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // a dim change misses the cache and lowers a fresh plan
        let mut bigger = dims;
        bigger.b += 1;
        let d = cached_plan(&bigger, PlanKind::EncoderFused).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(d.plan.steps.len(), a.plan.steps.len());
        assert!(plan_cache_len() >= 3);
    }

    #[test]
    fn bound_weights_cover_every_external_input() {
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = Tensor::random(
            Shape::from_spec("ibj", &dims.size_table()).unwrap(),
            &Uniform::new(-1.0, 1.0),
            &mut rng,
        );
        for pf in [
            encoder_reference(&dims).unwrap(),
            encoder_fused(&dims).unwrap(),
            decoder_fused(&dims).unwrap(),
        ] {
            let mut state = bind_inputs(&x, &w).unwrap();
            let opts = ExecOptions::builder()
                .scaler(1.0 / (dims.p as f32).sqrt())
                .build();
            execute_plan(&pf.graph, &pf.plan, &mut state, &opts, &mut rng).unwrap();
            assert_eq!(state.get("y").unwrap().shape().spec(), "ibj");
        }
    }
}
