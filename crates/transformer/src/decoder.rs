//! A GPT-2-style decoder block on the CPU substrate: **pre**-layer-norm,
//! causally masked self-attention, GELU feed-forward — the variant the
//! paper's Sec. VIII says the recipe transfers to unchanged. Forward and
//! backward, validated against numerical gradients.

use xform_core::plan::{ExecOptions, ExecState};
use xform_dataflow::EncoderDims;
use xform_tensor::fused::{self, BrdOutput, SmOutput};
use xform_tensor::ops::dropout::dropout_backward;
use xform_tensor::ops::elementwise::{add, bias_grad, ActivationKind};
use xform_tensor::ops::layernorm::{
    layernorm_backward_input, layernorm_backward_weights, LayerNormStats,
};
use xform_tensor::{einsum, Axis, Result, Tensor, TensorError};

use crate::interp::{self, bind_inputs, finish, run_plan, ForwardOutput};
use crate::params::{EncoderGrads, EncoderWeights};

/// Assembles the decoder's saved activations out of a finished
/// interpreter environment.
fn collect_decoder_activations(mut state: ExecState) -> Result<(Tensor, DecoderActivations)> {
    let missing = |name: &str| {
        TensorError::Unsupported(format!(
            "plan produced no layer-norm statistics for `{name}`"
        ))
    };
    let stats1 = state
        .stats
        .remove("ln1_out")
        .ok_or_else(|| missing("ln1_out"))?;
    let stats2 = state
        .stats
        .remove("ln2_out")
        .ok_or_else(|| missing("ln2_out"))?;
    Ok((
        state.take("y")?,
        DecoderActivations {
            ln1_out: state.take("ln1_out")?,
            stats1,
            qq: state.take("qq")?,
            kk: state.take("kk")?,
            vv: state.take("vv")?,
            sm: SmOutput {
                alpha: state.take("alpha")?,
                softmax: state.take("att")?,
                mask: state.take("att_mask")?,
            },
            gam: state.take("gamma")?,
            drop1_mask: state.take("drop1_mask")?,
            res1: state.take("res1")?,
            ln2_out: state.take("ln2_out")?,
            stats2,
            brd: BrdOutput {
                out: state.take("ff1_drop")?,
                pre_activation: state.take("ff1_b")?,
                mask: state.take("drop2_mask")?,
            },
            drop3_mask: state.take("drop3_mask")?,
        },
    ))
}

/// A configured decoder block. Weights are shared with the encoder layout
/// ([`EncoderWeights`]); only the wiring differs (pre-LN, causal mask,
/// activation choice).
#[derive(Debug, Clone)]
pub struct DecoderLayer {
    /// Problem dimensions (`j = k`).
    pub dims: EncoderDims,
    /// Feed-forward activation (GPT-2 uses GELU).
    pub activation: ActivationKind,
    /// Dropout probability.
    pub dropout_p: f32,
    /// When set, the block runs the GEMM-epilogue canned plan
    /// ([`interp::PlanKind::DecoderEpilogue`]): the QKT→SM, Out→BDR,
    /// Linear 1→BRD and Linear 2→BDR2 chains collapse into tiled
    /// mega-kernels whose intermediates never materialize.
    pub epilogue: bool,
}

/// Saved forward values for the decoder backward pass.
#[derive(Debug, Clone)]
pub struct DecoderActivations {
    /// Pre-attention layer-norm output (input to the projections).
    pub ln1_out: Tensor,
    /// Pre-attention layer-norm statistics.
    pub stats1: LayerNormStats,
    /// Biased projections.
    pub qq: Tensor,
    /// Biased key projections.
    pub kk: Tensor,
    /// Biased value projections.
    pub vv: Tensor,
    /// Causal softmax bundle.
    pub sm: SmOutput,
    /// Attention context.
    pub gam: Tensor,
    /// Attention-path dropout mask.
    pub drop1_mask: Tensor,
    /// First residual stream (`x + attention`), the pre-FFN layer-norm
    /// input.
    pub res1: Tensor,
    /// Pre-FFN layer-norm output.
    pub ln2_out: Tensor,
    /// Pre-FFN layer-norm statistics.
    pub stats2: LayerNormStats,
    /// Feed-forward bias+activation+dropout bundle.
    pub brd: BrdOutput,
    /// Output-path dropout mask.
    pub drop3_mask: Tensor,
}

impl DecoderLayer {
    /// Creates a GPT-2-style block (GELU activation).
    pub fn new(dims: EncoderDims, dropout_p: f32) -> Self {
        DecoderLayer {
            dims,
            activation: ActivationKind::Gelu,
            dropout_p,
            epilogue: false,
        }
    }

    /// Switches the block onto the GEMM-epilogue canned plan
    /// (builder-style).
    pub fn with_epilogue(mut self) -> Self {
        self.epilogue = true;
        self
    }

    /// The attention scaling factor `1/√P`.
    pub fn scaler(&self) -> f32 {
        1.0 / (self.dims.p as f32).sqrt()
    }

    /// The canned-plan cache key for the block's configuration.
    fn plan_kind(&self) -> interp::PlanKind {
        if self.epilogue {
            interp::PlanKind::DecoderEpilogue
        } else {
            interp::PlanKind::DecoderFused
        }
    }

    /// Forward propagation: `x` (`[i,b,j]`) → `y` (`[i,b,j]`) plus saved
    /// activations, with the same unified [`ExecOptions`]-driven surface
    /// as [`crate::encoder::EncoderLayer::forward`]: `threads` picks the
    /// serial or the certified wave-parallel interpreter (the decoder's
    /// canned plan carries its certificate, so the block parallelizes like
    /// the encoder), [`ExecOptions::plan`] substitutes an arbitrary plan
    /// over the decoder graph, `collect_activations` / `profiler` /
    /// `sanitize` behave identically. The layer-owned scalar knobs
    /// (`dropout_p`, `activation`, attention scale) come from the layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong shape, the plan fails
    /// validation, a parallel run lacks a certificate, or a kernel rejects
    /// its operands.
    pub fn forward(
        &self,
        x: &Tensor,
        w: &EncoderWeights,
        opts: &ExecOptions,
    ) -> Result<ForwardOutput<DecoderActivations>> {
        let cached;
        let (graph, plan, cert) = match opts.plan {
            Some(o) => (o.graph, o.plan, o.cert),
            None => {
                cached = interp::cached_plan(&self.dims, self.plan_kind())?;
                (&cached.graph, &cached.plan, Some(&cached.cert))
            }
        };
        let mut state = bind_inputs(x, w)?;
        let arena;
        let mut run_opts = opts
            .to_builder()
            .dropout_p(self.dropout_p)
            .activation(self.activation)
            .scaler(self.scaler())
            .build();
        if opts.plan.is_none() && opts.profiler.is_none() {
            if let Some(a) = interp::cached_arena(
                &self.dims,
                self.plan_kind(),
                interp::granularity_for(opts.threads),
            )? {
                arena = a;
                run_opts.arena = Some(&arena);
            }
        }
        run_plan(graph, plan, cert, &mut state, &run_opts)?;
        finish(state, opts.collect_activations, collect_decoder_activations)
    }

    /// Forward propagation into a caller-provided output tensor — the
    /// steady-state zero-allocation entry point, mirroring
    /// [`crate::encoder::EncoderLayer::forward_into`]: after warmup the
    /// call executes the decoder's canned plan out of its static arena
    /// and copies `y` into the caller's dense row-major `[i,b,j]` buffer
    /// without heap allocation, falling back transparently to the
    /// allocating [`DecoderLayer::forward`] when the arena is
    /// unavailable. Saved activations are not assembled.
    ///
    /// # Errors
    ///
    /// Returns an error if `y` has the wrong size, `x` has the wrong
    /// shape, or the execution itself fails.
    pub fn forward_into(
        &self,
        x: &Tensor,
        w: &EncoderWeights,
        opts: &ExecOptions,
        y: &mut Tensor,
    ) -> Result<()> {
        let merged = opts
            .to_builder()
            .dropout_p(self.dropout_p)
            .activation(self.activation)
            .scaler(self.scaler())
            .build();
        if opts.plan.is_none()
            && opts.profiler.is_none()
            && interp::arena_forward_into(&self.dims, self.plan_kind(), x, w, &merged, y)?
        {
            return Ok(());
        }
        let fallback = opts.to_builder().collect_activations(false).build();
        let out = self.forward(x, w, &fallback)?;
        if out.y.len() != y.len() {
            return Err(TensorError::Unsupported(format!(
                "output tensor holds {} words; the layer produced {}",
                y.len(),
                out.y.len(),
            )));
        }
        xform_tensor::into_ops::copy_tensor_into(&out.y, y.data_mut());
        Ok(())
    }

    /// Backpropagation: `(dx, weight gradients)` from the output gradient.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn backward(
        &self,
        dy: &Tensor,
        x: &Tensor,
        w: &EncoderWeights,
        a: &DecoderActivations,
    ) -> Result<(Tensor, EncoderGrads)> {
        let mut g = w.zeros_like();
        let ai = Axis('i');
        // --- feed-forward branch of residual 2 ---
        let d_ff2b = dropout_backward(dy, &a.drop3_mask)?;
        g.b2 = bias_grad(&d_ff2b, &[ai])?;
        let d_brd = einsum("iu,ibj->ubj", &[&w.w2, &d_ff2b])?;
        g.w2 = einsum("ibj,ubj->iu", &[&d_ff2b, &a.brd.out])?;
        let (d_ff1, db1) = fused::bdrb_act(
            &d_brd,
            &a.brd.mask,
            &a.brd.pre_activation,
            self.activation,
            &[Axis('u')],
        )?;
        g.b1 = db1;
        let d_ln2_out = einsum("ui,ubj->ibj", &[&w.w1, &d_ff1])?;
        g.w1 = einsum("ubj,ibj->ui", &[&d_ff1, &a.ln2_out])?;
        let (dg2, dbeta2) = layernorm_backward_weights(&d_ln2_out, &a.res1, ai, &a.stats2)?;
        g.ln2_gamma = dg2;
        g.ln2_beta = dbeta2;
        let d_res1_ln = layernorm_backward_input(&d_ln2_out, &a.res1, ai, &w.ln2_gamma, &a.stats2)?;
        // residual 2: skip branch carries dy directly
        let d_res1 = add(dy, &d_res1_ln)?;

        // --- attention branch of residual 1 ---
        let d_attn = dropout_backward(&d_res1, &a.drop1_mask)?;
        g.bo = bias_grad(&d_attn, &[ai])?;
        let d_gam = einsum("whi,ibj->whbj", &[&w.wo, &d_attn])?;
        g.wo = einsum("whbj,ibj->whi", &[&a.gam, &d_attn])?;
        let d_alpha = einsum("whbk,whbj->hbjk", &[&a.vv, &d_gam])?;
        let d_vv = einsum("whbj,hbjk->whbk", &[&d_gam, &a.sm.alpha])?;
        // masked entries have zero softmax output and zero mask, so the
        // unmasked BS kernel handles the causal case unchanged
        let d_beta = fused::bs(
            &d_alpha,
            &a.sm.mask,
            &a.sm.softmax,
            Axis('k'),
            self.scaler(),
        )?;
        let d_qq = einsum("phbk,hbjk->phbj", &[&a.kk, &d_beta])?;
        let d_kk = einsum("phbj,hbjk->phbk", &[&a.qq, &d_beta])?;
        let ph: &[Axis] = &[Axis('p'), Axis('h')];
        let wh: &[Axis] = &[Axis('w'), Axis('h')];
        let (dbq, dbk, dbv) = fused::baib(&d_qq, &d_kk, &d_vv, [ph, ph, wh])?;
        g.bq = dbq;
        g.bk = dbk;
        g.bv = dbv;
        let lk = a.ln1_out.relabel("ibk")?;
        g.wq = einsum("phbj,ibj->phi", &[&d_qq, &a.ln1_out])?;
        g.wk = einsum("phbk,ibk->phi", &[&d_kk, &lk])?;
        g.wv = einsum("whbk,ibk->whi", &[&d_vv, &lk])?;
        let d_x1 = einsum("phi,phbj->ibj", &[&w.wq, &d_qq])?;
        let d_x2 = einsum("phi,phbk->ibk", &[&w.wk, &d_kk])?.relabel("ibj")?;
        let d_x3 = einsum("whi,whbk->ibk", &[&w.wv, &d_vv])?.relabel("ibj")?;
        let d_ln1_out = add(&add(&d_x1, &d_x2)?, &d_x3)?;
        let (dg1, dbeta1) = layernorm_backward_weights(&d_ln1_out, x, ai, &a.stats1)?;
        g.ln1_gamma = dg1;
        g.ln1_beta = dbeta1;
        let d_x_ln = layernorm_backward_input(&d_ln1_out, x, ai, &w.ln1_gamma, &a.stats1)?;
        // residual 1: skip branch carries d_res1
        let dx = add(&d_x_ln, &d_res1)?;
        Ok((dx, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xform_tensor::Shape;

    fn setup() -> (DecoderLayer, EncoderWeights, Tensor) {
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(7);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = Tensor::random(
            Shape::from_spec("ibj", &dims.size_table()).unwrap(),
            &Uniform::new(-1.0, 1.0),
            &mut rng,
        );
        (DecoderLayer::new(dims, 0.0), w, x)
    }

    fn fwd(
        layer: &DecoderLayer,
        x: &Tensor,
        w: &EncoderWeights,
        seed: u64,
    ) -> (Tensor, DecoderActivations) {
        let opts = ExecOptions::builder().seed(seed).build();
        layer.forward(x, w, &opts).unwrap().into_pair().unwrap()
    }

    #[test]
    fn forward_shape_and_causality() {
        let (layer, w, x) = setup();
        let (y, acts) = fwd(&layer, &x, &w, 1);
        assert_eq!(y.shape().spec(), "ibj");
        // no attention weight looks at the future
        let d = layer.dims;
        for h in 0..d.h {
            for b in 0..d.b {
                for j in 0..d.j {
                    for k in 0..d.k {
                        if k > j {
                            assert_eq!(acts.sm.softmax.at(&[h, b, j, k]), 0.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn causality_propagates_to_output() {
        // Changing a future token must not change earlier outputs.
        let (layer, w, x) = setup();
        let (y1, _) = fwd(&layer, &x, &w, 2);
        let mut x2 = x.clone();
        let d = layer.dims;
        // perturb the last position (j = d.j - 1) for every (i, b)
        for i in 0..d.i {
            for b in 0..d.b {
                let v = x2.at(&[i, b, d.j - 1]);
                x2.set(&[i, b, d.j - 1], v + 1.0);
            }
        }
        let (y2, _) = fwd(&layer, &x2, &w, 2);
        for i in 0..d.i {
            for b in 0..d.b {
                for j in 0..d.j - 1 {
                    assert!(
                        (y1.at(&[i, b, j]) - y2.at(&[i, b, j])).abs() < 1e-5,
                        "future leak at ({i},{b},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gradients_match_numerical() {
        let (layer, w, x) = setup();
        let (y, acts) = fwd(&layer, &x, &w, 3);
        let loss_w = Tensor::random(
            y.shape().clone(),
            &Uniform::new(-1.0, 1.0),
            &mut StdRng::seed_from_u64(4),
        );
        let (dx, grads) = layer.backward(&loss_w, &x, &w, &acts).unwrap();
        let loss = |xx: &Tensor, ww: &EncoderWeights| -> f32 {
            let (yy, _) = fwd(&layer, xx, ww, 3);
            yy.iter().map(|(i, v)| loss_w.at(&i) * v).sum()
        };
        let eps = 1e-2f32;
        for flat in [0usize, 11, 29, 40] {
            let mut idx = vec![0usize; 3];
            for _ in 0..flat {
                x.advance(&mut idx);
            }
            let off = x.offset(&idx);
            let mut xp = x.clone();
            xp.data_mut()[off] += eps;
            let mut xm = x.clone();
            xm.data_mut()[off] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - dx.at(&idx)).abs() < 0.05 * (1.0 + num.abs()),
                "dx at {idx:?}: numeric {num} vs analytic {}",
                dx.at(&idx)
            );
        }
        for (name, flat) in [("wq", 2), ("wo", 7), ("w1", 5), ("ln1_gamma", 1), ("b2", 3)] {
            let analytic = grads
                .fields()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1
                .data()[flat];
            let mut wp = w.clone();
            wp.fields_mut()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1
                .data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.fields_mut()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1
                .data_mut()[flat] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - analytic).abs() < 0.05 * (1.0 + num.abs()),
                "grad {name}[{flat}]: numeric {num} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn relu_variant_also_works() {
        let (mut layer, w, x) = setup();
        layer.activation = ActivationKind::Relu;
        let (y, acts) = fwd(&layer, &x, &w, 5);
        let (dx, _) = layer.backward(&y, &x, &w, &acts).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!(dx.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_forward_matches_serial() {
        // The unified API gives the decoder a certified parallel path for
        // free: the wave-parallel interpreter must reproduce the serial
        // result bitwise (dropout off, so RNG streams don't matter).
        let (layer, w, x) = setup();
        let (y_serial, _) = fwd(&layer, &x, &w, 11);
        for threads in [2, 4] {
            let opts = ExecOptions::builder().seed(11).threads(threads).build();
            let (y_par, _) = layer.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
            assert_eq!(y_serial.data(), y_par.data(), "threads = {threads}");
        }
    }
}
